file(REMOVE_RECURSE
  "CMakeFiles/example_whatif_placement.dir/whatif_placement.cpp.o"
  "CMakeFiles/example_whatif_placement.dir/whatif_placement.cpp.o.d"
  "example_whatif_placement"
  "example_whatif_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_whatif_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
