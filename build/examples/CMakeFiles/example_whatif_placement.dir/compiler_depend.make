# Empty compiler generated dependencies file for example_whatif_placement.
# This may be replaced when dependencies are built.
