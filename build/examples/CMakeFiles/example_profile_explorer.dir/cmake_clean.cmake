file(REMOVE_RECURSE
  "CMakeFiles/example_profile_explorer.dir/profile_explorer.cpp.o"
  "CMakeFiles/example_profile_explorer.dir/profile_explorer.cpp.o.d"
  "example_profile_explorer"
  "example_profile_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_profile_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
