# Empty dependencies file for example_profile_explorer.
# This may be replaced when dependencies are built.
