# Empty dependencies file for example_cluster_scheduling.
# This may be replaced when dependencies are built.
