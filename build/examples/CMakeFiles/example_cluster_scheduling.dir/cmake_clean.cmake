file(REMOVE_RECURSE
  "CMakeFiles/example_cluster_scheduling.dir/cluster_scheduling.cpp.o"
  "CMakeFiles/example_cluster_scheduling.dir/cluster_scheduling.cpp.o.d"
  "example_cluster_scheduling"
  "example_cluster_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cluster_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
