file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_convergence.dir/bench_fig10_convergence.cpp.o"
  "CMakeFiles/bench_fig10_convergence.dir/bench_fig10_convergence.cpp.o.d"
  "bench_fig10_convergence"
  "bench_fig10_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
