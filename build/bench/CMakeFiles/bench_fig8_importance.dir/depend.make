# Empty dependencies file for bench_fig8_importance.
# This may be replaced when dependencies are built.
