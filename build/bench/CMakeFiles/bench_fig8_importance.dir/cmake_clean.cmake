file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_importance.dir/bench_fig8_importance.cpp.o"
  "CMakeFiles/bench_fig8_importance.dir/bench_fig8_importance.cpp.o.d"
  "bench_fig8_importance"
  "bench_fig8_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
