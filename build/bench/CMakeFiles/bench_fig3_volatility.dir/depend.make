# Empty dependencies file for bench_fig3_volatility.
# This may be replaced when dependencies are built.
