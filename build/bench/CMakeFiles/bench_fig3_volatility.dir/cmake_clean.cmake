file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_volatility.dir/bench_fig3_volatility.cpp.o"
  "CMakeFiles/bench_fig3_volatility.dir/bench_fig3_volatility.cpp.o.d"
  "bench_fig3_volatility"
  "bench_fig3_volatility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_volatility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
