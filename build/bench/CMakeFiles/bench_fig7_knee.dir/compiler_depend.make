# Empty compiler generated dependencies file for bench_fig7_knee.
# This may be replaced when dependencies are built.
