file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_knee.dir/bench_fig7_knee.cpp.o"
  "CMakeFiles/bench_fig7_knee.dir/bench_fig7_knee.cpp.o.d"
  "bench_fig7_knee"
  "bench_fig7_knee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_knee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
