file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_propagation.dir/bench_fig4_propagation.cpp.o"
  "CMakeFiles/bench_fig4_propagation.dir/bench_fig4_propagation.cpp.o.d"
  "bench_fig4_propagation"
  "bench_fig4_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
