file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_correlation.dir/bench_table3_correlation.cpp.o"
  "CMakeFiles/bench_table3_correlation.dir/bench_table3_correlation.cpp.o.d"
  "bench_table3_correlation"
  "bench_table3_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
