file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_scheduling.dir/bench_fig11_scheduling.cpp.o"
  "CMakeFiles/bench_fig11_scheduling.dir/bench_fig11_scheduling.cpp.o.d"
  "bench_fig11_scheduling"
  "bench_fig11_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
