file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_sla.dir/bench_fig12_sla.cpp.o"
  "CMakeFiles/bench_fig12_sla.dir/bench_fig12_sla.cpp.o.d"
  "bench_fig12_sla"
  "bench_fig12_sla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
