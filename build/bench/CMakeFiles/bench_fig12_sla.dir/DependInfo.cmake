
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_sla.cpp" "bench/CMakeFiles/bench_fig12_sla.dir/bench_fig12_sla.cpp.o" "gcc" "bench/CMakeFiles/bench_fig12_sla.dir/bench_fig12_sla.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsight_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
