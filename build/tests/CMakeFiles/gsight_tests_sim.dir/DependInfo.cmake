
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_azure_trace.cpp" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_azure_trace.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_azure_trace.cpp.o.d"
  "/root/repo/tests/sim/test_callgraph_apps.cpp" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_callgraph_apps.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_callgraph_apps.cpp.o.d"
  "/root/repo/tests/sim/test_engine.cpp" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_engine.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_engine.cpp.o.d"
  "/root/repo/tests/sim/test_instance_gateway.cpp" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_instance_gateway.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_instance_gateway.cpp.o.d"
  "/root/repo/tests/sim/test_interference.cpp" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_interference.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_interference.cpp.o.d"
  "/root/repo/tests/sim/test_observations.cpp" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_observations.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_observations.cpp.o.d"
  "/root/repo/tests/sim/test_pipelines.cpp" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_pipelines.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_pipelines.cpp.o.d"
  "/root/repo/tests/sim/test_properties.cpp" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_properties.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_properties.cpp.o.d"
  "/root/repo/tests/sim/test_request_platform.cpp" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_request_platform.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_request_platform.cpp.o.d"
  "/root/repo/tests/sim/test_server.cpp" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_server.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_server.cpp.o.d"
  "/root/repo/tests/sim/test_serverful.cpp" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_serverful.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_sim.dir/sim/test_serverful.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsight_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
