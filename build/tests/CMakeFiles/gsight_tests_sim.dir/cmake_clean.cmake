file(REMOVE_RECURSE
  "CMakeFiles/gsight_tests_sim.dir/sim/test_azure_trace.cpp.o"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_azure_trace.cpp.o.d"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_callgraph_apps.cpp.o"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_callgraph_apps.cpp.o.d"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_engine.cpp.o"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_engine.cpp.o.d"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_instance_gateway.cpp.o"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_instance_gateway.cpp.o.d"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_interference.cpp.o"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_interference.cpp.o.d"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_observations.cpp.o"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_observations.cpp.o.d"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_pipelines.cpp.o"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_pipelines.cpp.o.d"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_properties.cpp.o"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_properties.cpp.o.d"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_request_platform.cpp.o"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_request_platform.cpp.o.d"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_server.cpp.o"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_server.cpp.o.d"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_serverful.cpp.o"
  "CMakeFiles/gsight_tests_sim.dir/sim/test_serverful.cpp.o.d"
  "gsight_tests_sim"
  "gsight_tests_sim.pdb"
  "gsight_tests_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsight_tests_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
