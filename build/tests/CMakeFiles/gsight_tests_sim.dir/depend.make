# Empty dependencies file for gsight_tests_sim.
# This may be replaced when dependencies are built.
