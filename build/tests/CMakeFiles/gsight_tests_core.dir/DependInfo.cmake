
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_baselines.cpp" "tests/CMakeFiles/gsight_tests_core.dir/core/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_core.dir/core/test_baselines.cpp.o.d"
  "/root/repo/tests/core/test_overlap_encoder.cpp" "tests/CMakeFiles/gsight_tests_core.dir/core/test_overlap_encoder.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_core.dir/core/test_overlap_encoder.cpp.o.d"
  "/root/repo/tests/core/test_predictor_trainer.cpp" "tests/CMakeFiles/gsight_tests_core.dir/core/test_predictor_trainer.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_core.dir/core/test_predictor_trainer.cpp.o.d"
  "/root/repo/tests/core/test_profile_io.cpp" "tests/CMakeFiles/gsight_tests_core.dir/core/test_profile_io.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_core.dir/core/test_profile_io.cpp.o.d"
  "/root/repo/tests/core/test_profiling.cpp" "tests/CMakeFiles/gsight_tests_core.dir/core/test_profiling.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_core.dir/core/test_profiling.cpp.o.d"
  "/root/repo/tests/core/test_sla.cpp" "tests/CMakeFiles/gsight_tests_core.dir/core/test_sla.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_core.dir/core/test_sla.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsight_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
