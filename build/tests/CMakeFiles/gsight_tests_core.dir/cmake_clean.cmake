file(REMOVE_RECURSE
  "CMakeFiles/gsight_tests_core.dir/core/test_baselines.cpp.o"
  "CMakeFiles/gsight_tests_core.dir/core/test_baselines.cpp.o.d"
  "CMakeFiles/gsight_tests_core.dir/core/test_overlap_encoder.cpp.o"
  "CMakeFiles/gsight_tests_core.dir/core/test_overlap_encoder.cpp.o.d"
  "CMakeFiles/gsight_tests_core.dir/core/test_predictor_trainer.cpp.o"
  "CMakeFiles/gsight_tests_core.dir/core/test_predictor_trainer.cpp.o.d"
  "CMakeFiles/gsight_tests_core.dir/core/test_profile_io.cpp.o"
  "CMakeFiles/gsight_tests_core.dir/core/test_profile_io.cpp.o.d"
  "CMakeFiles/gsight_tests_core.dir/core/test_profiling.cpp.o"
  "CMakeFiles/gsight_tests_core.dir/core/test_profiling.cpp.o.d"
  "CMakeFiles/gsight_tests_core.dir/core/test_sla.cpp.o"
  "CMakeFiles/gsight_tests_core.dir/core/test_sla.cpp.o.d"
  "gsight_tests_core"
  "gsight_tests_core.pdb"
  "gsight_tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsight_tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
