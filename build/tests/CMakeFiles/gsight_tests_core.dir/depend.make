# Empty dependencies file for gsight_tests_core.
# This may be replaced when dependencies are built.
