
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/test_correlation.cpp" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_correlation.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_correlation.cpp.o.d"
  "/root/repo/tests/ml/test_forest_io.cpp" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_forest_io.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_forest_io.cpp.o.d"
  "/root/repo/tests/ml/test_histogram.cpp" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_histogram.cpp.o.d"
  "/root/repo/tests/ml/test_incremental_models.cpp" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_incremental_models.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_incremental_models.cpp.o.d"
  "/root/repo/tests/ml/test_matrix_dataset.cpp" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_matrix_dataset.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_matrix_dataset.cpp.o.d"
  "/root/repo/tests/ml/test_pca.cpp" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_pca.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_pca.cpp.o.d"
  "/root/repo/tests/ml/test_ridge.cpp" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_ridge.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_ridge.cpp.o.d"
  "/root/repo/tests/ml/test_rng.cpp" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_rng.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_rng.cpp.o.d"
  "/root/repo/tests/ml/test_scaler_metrics.cpp" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_scaler_metrics.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_scaler_metrics.cpp.o.d"
  "/root/repo/tests/ml/test_summary.cpp" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_summary.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_summary.cpp.o.d"
  "/root/repo/tests/ml/test_thread_pool.cpp" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_thread_pool.cpp.o.d"
  "/root/repo/tests/ml/test_tree_forest.cpp" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_tree_forest.cpp.o" "gcc" "tests/CMakeFiles/gsight_tests_ml.dir/ml/test_tree_forest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsight_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
