# Empty dependencies file for gsight_tests_ml.
# This may be replaced when dependencies are built.
