file(REMOVE_RECURSE
  "CMakeFiles/gsight_tests_ml.dir/ml/test_correlation.cpp.o"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_correlation.cpp.o.d"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_forest_io.cpp.o"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_forest_io.cpp.o.d"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_histogram.cpp.o"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_histogram.cpp.o.d"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_incremental_models.cpp.o"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_incremental_models.cpp.o.d"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_matrix_dataset.cpp.o"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_matrix_dataset.cpp.o.d"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_pca.cpp.o"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_pca.cpp.o.d"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_ridge.cpp.o"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_ridge.cpp.o.d"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_rng.cpp.o"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_rng.cpp.o.d"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_scaler_metrics.cpp.o"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_scaler_metrics.cpp.o.d"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_summary.cpp.o"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_summary.cpp.o.d"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_thread_pool.cpp.o"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_thread_pool.cpp.o.d"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_tree_forest.cpp.o"
  "CMakeFiles/gsight_tests_ml.dir/ml/test_tree_forest.cpp.o.d"
  "gsight_tests_ml"
  "gsight_tests_ml.pdb"
  "gsight_tests_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsight_tests_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
