# Empty compiler generated dependencies file for gsight_tests_sched.
# This may be replaced when dependencies are built.
