file(REMOVE_RECURSE
  "CMakeFiles/gsight_tests_sched.dir/sched/test_experiment.cpp.o"
  "CMakeFiles/gsight_tests_sched.dir/sched/test_experiment.cpp.o.d"
  "CMakeFiles/gsight_tests_sched.dir/sched/test_rescheduler.cpp.o"
  "CMakeFiles/gsight_tests_sched.dir/sched/test_rescheduler.cpp.o.d"
  "CMakeFiles/gsight_tests_sched.dir/sched/test_scheduler_properties.cpp.o"
  "CMakeFiles/gsight_tests_sched.dir/sched/test_scheduler_properties.cpp.o.d"
  "CMakeFiles/gsight_tests_sched.dir/sched/test_schedulers.cpp.o"
  "CMakeFiles/gsight_tests_sched.dir/sched/test_schedulers.cpp.o.d"
  "gsight_tests_sched"
  "gsight_tests_sched.pdb"
  "gsight_tests_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsight_tests_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
