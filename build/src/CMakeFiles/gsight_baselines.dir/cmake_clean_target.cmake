file(REMOVE_RECURSE
  "libgsight_baselines.a"
)
