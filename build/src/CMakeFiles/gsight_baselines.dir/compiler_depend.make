# Empty compiler generated dependencies file for gsight_baselines.
# This may be replaced when dependencies are built.
