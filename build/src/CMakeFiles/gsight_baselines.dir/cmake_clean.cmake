file(REMOVE_RECURSE
  "CMakeFiles/gsight_baselines.dir/baselines/esp.cpp.o"
  "CMakeFiles/gsight_baselines.dir/baselines/esp.cpp.o.d"
  "CMakeFiles/gsight_baselines.dir/baselines/pythia.cpp.o"
  "CMakeFiles/gsight_baselines.dir/baselines/pythia.cpp.o.d"
  "libgsight_baselines.a"
  "libgsight_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsight_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
