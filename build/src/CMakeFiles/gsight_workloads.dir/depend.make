# Empty dependencies file for gsight_workloads.
# This may be replaced when dependencies are built.
