
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/app.cpp" "src/CMakeFiles/gsight_workloads.dir/workloads/app.cpp.o" "gcc" "src/CMakeFiles/gsight_workloads.dir/workloads/app.cpp.o.d"
  "/root/repo/src/workloads/azure_trace.cpp" "src/CMakeFiles/gsight_workloads.dir/workloads/azure_trace.cpp.o" "gcc" "src/CMakeFiles/gsight_workloads.dir/workloads/azure_trace.cpp.o.d"
  "/root/repo/src/workloads/callgraph.cpp" "src/CMakeFiles/gsight_workloads.dir/workloads/callgraph.cpp.o" "gcc" "src/CMakeFiles/gsight_workloads.dir/workloads/callgraph.cpp.o.d"
  "/root/repo/src/workloads/ecommerce.cpp" "src/CMakeFiles/gsight_workloads.dir/workloads/ecommerce.cpp.o" "gcc" "src/CMakeFiles/gsight_workloads.dir/workloads/ecommerce.cpp.o.d"
  "/root/repo/src/workloads/function_spec.cpp" "src/CMakeFiles/gsight_workloads.dir/workloads/function_spec.cpp.o" "gcc" "src/CMakeFiles/gsight_workloads.dir/workloads/function_spec.cpp.o.d"
  "/root/repo/src/workloads/functionbench.cpp" "src/CMakeFiles/gsight_workloads.dir/workloads/functionbench.cpp.o" "gcc" "src/CMakeFiles/gsight_workloads.dir/workloads/functionbench.cpp.o.d"
  "/root/repo/src/workloads/phase.cpp" "src/CMakeFiles/gsight_workloads.dir/workloads/phase.cpp.o" "gcc" "src/CMakeFiles/gsight_workloads.dir/workloads/phase.cpp.o.d"
  "/root/repo/src/workloads/pipelines.cpp" "src/CMakeFiles/gsight_workloads.dir/workloads/pipelines.cpp.o" "gcc" "src/CMakeFiles/gsight_workloads.dir/workloads/pipelines.cpp.o.d"
  "/root/repo/src/workloads/serverful.cpp" "src/CMakeFiles/gsight_workloads.dir/workloads/serverful.cpp.o" "gcc" "src/CMakeFiles/gsight_workloads.dir/workloads/serverful.cpp.o.d"
  "/root/repo/src/workloads/socialnetwork.cpp" "src/CMakeFiles/gsight_workloads.dir/workloads/socialnetwork.cpp.o" "gcc" "src/CMakeFiles/gsight_workloads.dir/workloads/socialnetwork.cpp.o.d"
  "/root/repo/src/workloads/sparkapps.cpp" "src/CMakeFiles/gsight_workloads.dir/workloads/sparkapps.cpp.o" "gcc" "src/CMakeFiles/gsight_workloads.dir/workloads/sparkapps.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/CMakeFiles/gsight_workloads.dir/workloads/suite.cpp.o" "gcc" "src/CMakeFiles/gsight_workloads.dir/workloads/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsight_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
