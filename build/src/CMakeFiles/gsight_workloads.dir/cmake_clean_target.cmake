file(REMOVE_RECURSE
  "libgsight_workloads.a"
)
