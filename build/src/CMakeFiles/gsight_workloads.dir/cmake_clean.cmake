file(REMOVE_RECURSE
  "CMakeFiles/gsight_workloads.dir/workloads/app.cpp.o"
  "CMakeFiles/gsight_workloads.dir/workloads/app.cpp.o.d"
  "CMakeFiles/gsight_workloads.dir/workloads/azure_trace.cpp.o"
  "CMakeFiles/gsight_workloads.dir/workloads/azure_trace.cpp.o.d"
  "CMakeFiles/gsight_workloads.dir/workloads/callgraph.cpp.o"
  "CMakeFiles/gsight_workloads.dir/workloads/callgraph.cpp.o.d"
  "CMakeFiles/gsight_workloads.dir/workloads/ecommerce.cpp.o"
  "CMakeFiles/gsight_workloads.dir/workloads/ecommerce.cpp.o.d"
  "CMakeFiles/gsight_workloads.dir/workloads/function_spec.cpp.o"
  "CMakeFiles/gsight_workloads.dir/workloads/function_spec.cpp.o.d"
  "CMakeFiles/gsight_workloads.dir/workloads/functionbench.cpp.o"
  "CMakeFiles/gsight_workloads.dir/workloads/functionbench.cpp.o.d"
  "CMakeFiles/gsight_workloads.dir/workloads/phase.cpp.o"
  "CMakeFiles/gsight_workloads.dir/workloads/phase.cpp.o.d"
  "CMakeFiles/gsight_workloads.dir/workloads/pipelines.cpp.o"
  "CMakeFiles/gsight_workloads.dir/workloads/pipelines.cpp.o.d"
  "CMakeFiles/gsight_workloads.dir/workloads/serverful.cpp.o"
  "CMakeFiles/gsight_workloads.dir/workloads/serverful.cpp.o.d"
  "CMakeFiles/gsight_workloads.dir/workloads/socialnetwork.cpp.o"
  "CMakeFiles/gsight_workloads.dir/workloads/socialnetwork.cpp.o.d"
  "CMakeFiles/gsight_workloads.dir/workloads/sparkapps.cpp.o"
  "CMakeFiles/gsight_workloads.dir/workloads/sparkapps.cpp.o.d"
  "CMakeFiles/gsight_workloads.dir/workloads/suite.cpp.o"
  "CMakeFiles/gsight_workloads.dir/workloads/suite.cpp.o.d"
  "libgsight_workloads.a"
  "libgsight_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsight_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
