
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/CMakeFiles/gsight_ml.dir/ml/dataset.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/CMakeFiles/gsight_ml.dir/ml/decision_tree.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/decision_tree.cpp.o.d"
  "/root/repo/src/ml/forest_io.cpp" "src/CMakeFiles/gsight_ml.dir/ml/forest_io.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/forest_io.cpp.o.d"
  "/root/repo/src/ml/incremental_forest.cpp" "src/CMakeFiles/gsight_ml.dir/ml/incremental_forest.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/incremental_forest.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/CMakeFiles/gsight_ml.dir/ml/knn.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/knn.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/CMakeFiles/gsight_ml.dir/ml/linear.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/linear.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/CMakeFiles/gsight_ml.dir/ml/matrix.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/CMakeFiles/gsight_ml.dir/ml/metrics.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/CMakeFiles/gsight_ml.dir/ml/mlp.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/mlp.cpp.o.d"
  "/root/repo/src/ml/model.cpp" "src/CMakeFiles/gsight_ml.dir/ml/model.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/model.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/CMakeFiles/gsight_ml.dir/ml/pca.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/pca.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/CMakeFiles/gsight_ml.dir/ml/random_forest.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/random_forest.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/CMakeFiles/gsight_ml.dir/ml/scaler.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/scaler.cpp.o.d"
  "/root/repo/src/ml/svr.cpp" "src/CMakeFiles/gsight_ml.dir/ml/svr.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/svr.cpp.o.d"
  "/root/repo/src/ml/thread_pool.cpp" "src/CMakeFiles/gsight_ml.dir/ml/thread_pool.cpp.o" "gcc" "src/CMakeFiles/gsight_ml.dir/ml/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsight_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
