file(REMOVE_RECURSE
  "libgsight_ml.a"
)
