file(REMOVE_RECURSE
  "CMakeFiles/gsight_ml.dir/ml/dataset.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/dataset.cpp.o.d"
  "CMakeFiles/gsight_ml.dir/ml/decision_tree.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/decision_tree.cpp.o.d"
  "CMakeFiles/gsight_ml.dir/ml/forest_io.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/forest_io.cpp.o.d"
  "CMakeFiles/gsight_ml.dir/ml/incremental_forest.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/incremental_forest.cpp.o.d"
  "CMakeFiles/gsight_ml.dir/ml/knn.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/knn.cpp.o.d"
  "CMakeFiles/gsight_ml.dir/ml/linear.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/linear.cpp.o.d"
  "CMakeFiles/gsight_ml.dir/ml/matrix.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/matrix.cpp.o.d"
  "CMakeFiles/gsight_ml.dir/ml/metrics.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/metrics.cpp.o.d"
  "CMakeFiles/gsight_ml.dir/ml/mlp.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/mlp.cpp.o.d"
  "CMakeFiles/gsight_ml.dir/ml/model.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/model.cpp.o.d"
  "CMakeFiles/gsight_ml.dir/ml/pca.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/pca.cpp.o.d"
  "CMakeFiles/gsight_ml.dir/ml/random_forest.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/random_forest.cpp.o.d"
  "CMakeFiles/gsight_ml.dir/ml/scaler.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/scaler.cpp.o.d"
  "CMakeFiles/gsight_ml.dir/ml/svr.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/svr.cpp.o.d"
  "CMakeFiles/gsight_ml.dir/ml/thread_pool.cpp.o"
  "CMakeFiles/gsight_ml.dir/ml/thread_pool.cpp.o.d"
  "libgsight_ml.a"
  "libgsight_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsight_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
