# Empty dependencies file for gsight_ml.
# This may be replaced when dependencies are built.
