file(REMOVE_RECURSE
  "CMakeFiles/gsight_sim.dir/sim/autoscaler.cpp.o"
  "CMakeFiles/gsight_sim.dir/sim/autoscaler.cpp.o.d"
  "CMakeFiles/gsight_sim.dir/sim/cluster.cpp.o"
  "CMakeFiles/gsight_sim.dir/sim/cluster.cpp.o.d"
  "CMakeFiles/gsight_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/gsight_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/gsight_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/gsight_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/gsight_sim.dir/sim/gateway.cpp.o"
  "CMakeFiles/gsight_sim.dir/sim/gateway.cpp.o.d"
  "CMakeFiles/gsight_sim.dir/sim/instance.cpp.o"
  "CMakeFiles/gsight_sim.dir/sim/instance.cpp.o.d"
  "CMakeFiles/gsight_sim.dir/sim/interference.cpp.o"
  "CMakeFiles/gsight_sim.dir/sim/interference.cpp.o.d"
  "CMakeFiles/gsight_sim.dir/sim/platform.cpp.o"
  "CMakeFiles/gsight_sim.dir/sim/platform.cpp.o.d"
  "CMakeFiles/gsight_sim.dir/sim/recorder.cpp.o"
  "CMakeFiles/gsight_sim.dir/sim/recorder.cpp.o.d"
  "CMakeFiles/gsight_sim.dir/sim/request.cpp.o"
  "CMakeFiles/gsight_sim.dir/sim/request.cpp.o.d"
  "CMakeFiles/gsight_sim.dir/sim/resources.cpp.o"
  "CMakeFiles/gsight_sim.dir/sim/resources.cpp.o.d"
  "CMakeFiles/gsight_sim.dir/sim/server.cpp.o"
  "CMakeFiles/gsight_sim.dir/sim/server.cpp.o.d"
  "libgsight_sim.a"
  "libgsight_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsight_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
