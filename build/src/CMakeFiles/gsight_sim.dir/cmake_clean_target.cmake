file(REMOVE_RECURSE
  "libgsight_sim.a"
)
