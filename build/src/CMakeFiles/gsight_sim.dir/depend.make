# Empty dependencies file for gsight_sim.
# This may be replaced when dependencies are built.
