
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/autoscaler.cpp" "src/CMakeFiles/gsight_sim.dir/sim/autoscaler.cpp.o" "gcc" "src/CMakeFiles/gsight_sim.dir/sim/autoscaler.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/CMakeFiles/gsight_sim.dir/sim/cluster.cpp.o" "gcc" "src/CMakeFiles/gsight_sim.dir/sim/cluster.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/gsight_sim.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/gsight_sim.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/gsight_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/gsight_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/gateway.cpp" "src/CMakeFiles/gsight_sim.dir/sim/gateway.cpp.o" "gcc" "src/CMakeFiles/gsight_sim.dir/sim/gateway.cpp.o.d"
  "/root/repo/src/sim/instance.cpp" "src/CMakeFiles/gsight_sim.dir/sim/instance.cpp.o" "gcc" "src/CMakeFiles/gsight_sim.dir/sim/instance.cpp.o.d"
  "/root/repo/src/sim/interference.cpp" "src/CMakeFiles/gsight_sim.dir/sim/interference.cpp.o" "gcc" "src/CMakeFiles/gsight_sim.dir/sim/interference.cpp.o.d"
  "/root/repo/src/sim/platform.cpp" "src/CMakeFiles/gsight_sim.dir/sim/platform.cpp.o" "gcc" "src/CMakeFiles/gsight_sim.dir/sim/platform.cpp.o.d"
  "/root/repo/src/sim/recorder.cpp" "src/CMakeFiles/gsight_sim.dir/sim/recorder.cpp.o" "gcc" "src/CMakeFiles/gsight_sim.dir/sim/recorder.cpp.o.d"
  "/root/repo/src/sim/request.cpp" "src/CMakeFiles/gsight_sim.dir/sim/request.cpp.o" "gcc" "src/CMakeFiles/gsight_sim.dir/sim/request.cpp.o.d"
  "/root/repo/src/sim/resources.cpp" "src/CMakeFiles/gsight_sim.dir/sim/resources.cpp.o" "gcc" "src/CMakeFiles/gsight_sim.dir/sim/resources.cpp.o.d"
  "/root/repo/src/sim/server.cpp" "src/CMakeFiles/gsight_sim.dir/sim/server.cpp.o" "gcc" "src/CMakeFiles/gsight_sim.dir/sim/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsight_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
