file(REMOVE_RECURSE
  "CMakeFiles/gsight_sched.dir/sched/bestfit.cpp.o"
  "CMakeFiles/gsight_sched.dir/sched/bestfit.cpp.o.d"
  "CMakeFiles/gsight_sched.dir/sched/experiment.cpp.o"
  "CMakeFiles/gsight_sched.dir/sched/experiment.cpp.o.d"
  "CMakeFiles/gsight_sched.dir/sched/gsight_scheduler.cpp.o"
  "CMakeFiles/gsight_sched.dir/sched/gsight_scheduler.cpp.o.d"
  "CMakeFiles/gsight_sched.dir/sched/kube_spread.cpp.o"
  "CMakeFiles/gsight_sched.dir/sched/kube_spread.cpp.o.d"
  "CMakeFiles/gsight_sched.dir/sched/rescheduler.cpp.o"
  "CMakeFiles/gsight_sched.dir/sched/rescheduler.cpp.o.d"
  "CMakeFiles/gsight_sched.dir/sched/scheduler.cpp.o"
  "CMakeFiles/gsight_sched.dir/sched/scheduler.cpp.o.d"
  "CMakeFiles/gsight_sched.dir/sched/worstfit.cpp.o"
  "CMakeFiles/gsight_sched.dir/sched/worstfit.cpp.o.d"
  "libgsight_sched.a"
  "libgsight_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsight_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
