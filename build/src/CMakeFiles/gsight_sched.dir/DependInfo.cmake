
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/bestfit.cpp" "src/CMakeFiles/gsight_sched.dir/sched/bestfit.cpp.o" "gcc" "src/CMakeFiles/gsight_sched.dir/sched/bestfit.cpp.o.d"
  "/root/repo/src/sched/experiment.cpp" "src/CMakeFiles/gsight_sched.dir/sched/experiment.cpp.o" "gcc" "src/CMakeFiles/gsight_sched.dir/sched/experiment.cpp.o.d"
  "/root/repo/src/sched/gsight_scheduler.cpp" "src/CMakeFiles/gsight_sched.dir/sched/gsight_scheduler.cpp.o" "gcc" "src/CMakeFiles/gsight_sched.dir/sched/gsight_scheduler.cpp.o.d"
  "/root/repo/src/sched/kube_spread.cpp" "src/CMakeFiles/gsight_sched.dir/sched/kube_spread.cpp.o" "gcc" "src/CMakeFiles/gsight_sched.dir/sched/kube_spread.cpp.o.d"
  "/root/repo/src/sched/rescheduler.cpp" "src/CMakeFiles/gsight_sched.dir/sched/rescheduler.cpp.o" "gcc" "src/CMakeFiles/gsight_sched.dir/sched/rescheduler.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/gsight_sched.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/gsight_sched.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/sched/worstfit.cpp" "src/CMakeFiles/gsight_sched.dir/sched/worstfit.cpp.o" "gcc" "src/CMakeFiles/gsight_sched.dir/sched/worstfit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsight_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
