file(REMOVE_RECURSE
  "libgsight_sched.a"
)
