# Empty dependencies file for gsight_sched.
# This may be replaced when dependencies are built.
