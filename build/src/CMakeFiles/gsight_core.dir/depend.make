# Empty dependencies file for gsight_core.
# This may be replaced when dependencies are built.
