file(REMOVE_RECURSE
  "CMakeFiles/gsight_core.dir/core/encoder.cpp.o"
  "CMakeFiles/gsight_core.dir/core/encoder.cpp.o.d"
  "CMakeFiles/gsight_core.dir/core/overlap_coding.cpp.o"
  "CMakeFiles/gsight_core.dir/core/overlap_coding.cpp.o.d"
  "CMakeFiles/gsight_core.dir/core/predictor.cpp.o"
  "CMakeFiles/gsight_core.dir/core/predictor.cpp.o.d"
  "CMakeFiles/gsight_core.dir/core/sla.cpp.o"
  "CMakeFiles/gsight_core.dir/core/sla.cpp.o.d"
  "CMakeFiles/gsight_core.dir/core/trainer.cpp.o"
  "CMakeFiles/gsight_core.dir/core/trainer.cpp.o.d"
  "libgsight_core.a"
  "libgsight_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsight_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
