file(REMOVE_RECURSE
  "libgsight_core.a"
)
