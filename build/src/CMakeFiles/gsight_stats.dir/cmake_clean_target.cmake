file(REMOVE_RECURSE
  "libgsight_stats.a"
)
