# Empty dependencies file for gsight_stats.
# This may be replaced when dependencies are built.
