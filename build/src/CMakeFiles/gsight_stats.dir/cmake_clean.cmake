file(REMOVE_RECURSE
  "CMakeFiles/gsight_stats.dir/stats/correlation.cpp.o"
  "CMakeFiles/gsight_stats.dir/stats/correlation.cpp.o.d"
  "CMakeFiles/gsight_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/gsight_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/gsight_stats.dir/stats/rng.cpp.o"
  "CMakeFiles/gsight_stats.dir/stats/rng.cpp.o.d"
  "CMakeFiles/gsight_stats.dir/stats/summary.cpp.o"
  "CMakeFiles/gsight_stats.dir/stats/summary.cpp.o.d"
  "libgsight_stats.a"
  "libgsight_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsight_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
