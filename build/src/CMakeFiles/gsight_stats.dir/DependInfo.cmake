
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cpp" "src/CMakeFiles/gsight_stats.dir/stats/correlation.cpp.o" "gcc" "src/CMakeFiles/gsight_stats.dir/stats/correlation.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/gsight_stats.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/gsight_stats.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/CMakeFiles/gsight_stats.dir/stats/rng.cpp.o" "gcc" "src/CMakeFiles/gsight_stats.dir/stats/rng.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/gsight_stats.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/gsight_stats.dir/stats/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
