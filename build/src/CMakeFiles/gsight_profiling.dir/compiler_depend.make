# Empty compiler generated dependencies file for gsight_profiling.
# This may be replaced when dependencies are built.
