
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/load_generator.cpp" "src/CMakeFiles/gsight_profiling.dir/profiling/load_generator.cpp.o" "gcc" "src/CMakeFiles/gsight_profiling.dir/profiling/load_generator.cpp.o.d"
  "/root/repo/src/profiling/metric_set.cpp" "src/CMakeFiles/gsight_profiling.dir/profiling/metric_set.cpp.o" "gcc" "src/CMakeFiles/gsight_profiling.dir/profiling/metric_set.cpp.o.d"
  "/root/repo/src/profiling/profile.cpp" "src/CMakeFiles/gsight_profiling.dir/profiling/profile.cpp.o" "gcc" "src/CMakeFiles/gsight_profiling.dir/profiling/profile.cpp.o.d"
  "/root/repo/src/profiling/profile_io.cpp" "src/CMakeFiles/gsight_profiling.dir/profiling/profile_io.cpp.o" "gcc" "src/CMakeFiles/gsight_profiling.dir/profiling/profile_io.cpp.o.d"
  "/root/repo/src/profiling/solo_profiler.cpp" "src/CMakeFiles/gsight_profiling.dir/profiling/solo_profiler.cpp.o" "gcc" "src/CMakeFiles/gsight_profiling.dir/profiling/solo_profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsight_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsight_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
