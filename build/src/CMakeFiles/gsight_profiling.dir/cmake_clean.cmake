file(REMOVE_RECURSE
  "CMakeFiles/gsight_profiling.dir/profiling/load_generator.cpp.o"
  "CMakeFiles/gsight_profiling.dir/profiling/load_generator.cpp.o.d"
  "CMakeFiles/gsight_profiling.dir/profiling/metric_set.cpp.o"
  "CMakeFiles/gsight_profiling.dir/profiling/metric_set.cpp.o.d"
  "CMakeFiles/gsight_profiling.dir/profiling/profile.cpp.o"
  "CMakeFiles/gsight_profiling.dir/profiling/profile.cpp.o.d"
  "CMakeFiles/gsight_profiling.dir/profiling/profile_io.cpp.o"
  "CMakeFiles/gsight_profiling.dir/profiling/profile_io.cpp.o.d"
  "CMakeFiles/gsight_profiling.dir/profiling/solo_profiler.cpp.o"
  "CMakeFiles/gsight_profiling.dir/profiling/solo_profiler.cpp.o.d"
  "libgsight_profiling.a"
  "libgsight_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsight_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
