file(REMOVE_RECURSE
  "libgsight_profiling.a"
)
