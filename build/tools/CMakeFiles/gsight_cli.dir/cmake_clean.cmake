file(REMOVE_RECURSE
  "CMakeFiles/gsight_cli.dir/gsight_cli.cpp.o"
  "CMakeFiles/gsight_cli.dir/gsight_cli.cpp.o.d"
  "gsight"
  "gsight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsight_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
