# Empty dependencies file for gsight_cli.
# This may be replaced when dependencies are built.
