// What-if placement explorer — the scenario the paper's intro motivates:
// a latency-sensitive social network is running; an operator wants to
// admit a batch job (video transcoding) and needs to know, *before*
// deploying, which socket it can land on without blowing the service's
// tail latency.
//
// The example trains a Gsight IPC predictor online, sweeps every candidate
// placement of the batch job, prints the predicted IPC for each, then
// deploys the predictor's best and worst picks and compares the measured
// p99 — demonstrating that the prediction ranking is actionable.
#include <cstdio>

#include "core/trainer.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/socialnetwork.hpp"

using namespace gsight;

namespace {

constexpr std::size_t kServers = 4;

core::ScenarioSpec make_spec(const std::vector<std::size_t>& sn_placement,
                             std::size_t batch_server) {
  core::ScenarioSpec spec;
  core::ScenarioSpec::Member sn;
  sn.app = wl::social_network();
  sn.qps = 50.0;
  sn.fn_to_server = sn_placement;
  spec.members.push_back(std::move(sn));
  core::ScenarioSpec::Member batch;
  batch.app = wl::video_processing(0.6);
  batch.fn_to_server = {batch_server};
  spec.members.push_back(std::move(batch));
  return spec;
}

}  // namespace

int main() {
  prof::SoloProfilerConfig profiler_cfg;
  profiler_cfg.server = sim::ServerConfig::socket();
  profiler_cfg.ls_profile_s = 20.0;
  prof::ProfileStore store;
  core::ensure_profile(store, wl::social_network(), 50.0, profiler_cfg);
  core::ensure_profile(store, wl::video_processing(0.6), 0.0, profiler_cfg);

  core::RunnerConfig rc;
  rc.servers = kServers;
  rc.server = sim::ServerConfig::socket();
  core::ScenarioRunner runner(&store, rc);

  core::PredictorConfig pc;
  pc.encoder.servers = kServers;
  pc.encoder.max_workloads = 4;
  core::GsightPredictor predictor(pc);

  // The service's functions are spread across the four sockets the way a
  // Kubernetes-style scheduler would place them.
  std::vector<std::size_t> sn_placement(9);
  for (std::size_t i = 0; i < 9; ++i) sn_placement[i] = i % kServers;

  // --- Online training: observe the batch job landing on random sockets --
  stats::Rng rng(99);
  std::printf("training the predictor on 10 observed colocations...\n");
  for (int round = 0; round < 10; ++round) {
    const auto outcome =
        runner.run(make_spec(sn_placement, rng.uniform_index(kServers)));
    for (double ipc : outcome.window_ipc) {
      predictor.observe(outcome.scenario, ipc);
    }
  }
  predictor.flush();

  // --- Sweep every candidate placement ------------------------------------
  std::printf("\ncandidate placements for the video-processing job:\n");
  std::printf("%8s %18s %s\n", "socket", "predicted SN IPC",
              "colocated SN functions");
  double best_ipc = -1.0, worst_ipc = 1e18;
  std::size_t best = 0, worst = 0;
  const auto sn = wl::social_network();
  for (std::size_t server = 0; server < kServers; ++server) {
    // Describe the scenario without running it: profiles + placement only.
    core::Scenario scenario;
    scenario.servers = kServers;
    scenario.workloads.push_back(
        {&store.get(core::profile_key("social-network", 50.0)), sn_placement,
         0.0, 0.0});
    scenario.workloads.push_back(
        {&store.get("video-processing"), {server}, 0.0,
         store.get("video-processing").solo_jct_s});
    const double ipc = predictor.predict(scenario);
    std::string colocated;
    for (std::size_t fn = 0; fn < 9; ++fn) {
      if (sn_placement[fn] == server) {
        colocated += sn.functions[fn].name + " ";
      }
    }
    std::printf("%8zu %18.3f %s\n", server, ipc, colocated.c_str());
    if (ipc > best_ipc) {
      best_ipc = ipc;
      best = server;
    }
    if (ipc < worst_ipc) {
      worst_ipc = ipc;
      worst = server;
    }
  }

  // --- Validate the ranking against ground truth --------------------------
  std::printf("\ndeploying the predictor's best (socket %zu) and worst "
              "(socket %zu) picks...\n", best, worst);
  const auto best_run = runner.run(make_spec(sn_placement, best));
  const auto worst_run = runner.run(make_spec(sn_placement, worst));
  std::printf("measured SN p99: best pick %.1f ms, worst pick %.1f ms\n",
              best_run.p99_latency_s * 1e3, worst_run.p99_latency_s * 1e3);
  std::printf("measured SN IPC: best pick %.3f, worst pick %.3f\n",
              best_run.mean_ipc, worst_run.mean_ipc);
  std::printf("-> %s\n",
              best_run.p99_latency_s <= worst_run.p99_latency_s
                  ? "the predicted ranking matches the measured outcome"
                  : "ranking mismatch (expected occasionally at this tiny "
                    "training size)");
  return 0;
}
