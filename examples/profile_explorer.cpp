// Profile explorer — inspect what the solo-run profiler actually captures
// for every workload in the suite: the Table 3 metric vector per function,
// solo QoS reference points, and the derived demand vector. Useful when
// adding new workload models: if a function's profile doesn't reflect its
// intended bottleneck, the predictor can't either.
#include <cstdio>

#include "profiling/solo_profiler.hpp"
#include "workloads/suite.hpp"

using namespace gsight;

int main(int argc, char** argv) {
  prof::SoloProfilerConfig cfg;
  cfg.server = sim::ServerConfig::socket();
  cfg.ls_profile_s = 20.0;
  prof::SoloProfiler profiler(cfg);

  std::vector<wl::App> apps;
  if (argc > 1) {
    // Explore one app by name, e.g. ./example_profile_explorer matmul
    apps.push_back(wl::by_name(argv[1]));
  } else {
    apps = {wl::by_name("social-network"), wl::by_name("matmul"),
            wl::by_name("iperf")};
    std::printf("(pass a workload name to inspect it; showing 3 defaults. "
                "Known names:");
    for (const auto& a : wl::full_suite()) std::printf(" %s", a.name.c_str());
    std::printf(")\n");
  }

  for (const auto& app : apps) {
    prof::ProfileRequest request;
    request.app = app;
    const auto profile = profiler.profile(request);
    std::printf("\n=== %s [%s] ===\n", profile.app_name.c_str(),
                wl::to_string(app.cls).c_str());
    if (app.cls == wl::WorkloadClass::kLatencySensitive) {
      std::printf("solo e2e: mean %.2f ms, p99 %.2f ms @ %.0f qps\n",
                  profile.solo_e2e_mean_s * 1e3, profile.solo_e2e_p99_s * 1e3,
                  app.default_qps);
    } else {
      std::printf("solo JCT: %.1f s\n", profile.solo_jct_s);
    }
    for (const auto& fn : profile.functions) {
      std::printf("\n  %-24s solo %.4gs  p99 %.4gms  demand: %.1f cores, "
                  "%.1f MB LLC, %.1f GB/s mem, %.0f MB/s disk, %.0f Mb/s "
                  "net\n",
                  fn.fn_name.c_str(), fn.solo_duration_s,
                  fn.solo_p99_latency_s * 1e3, fn.demand.cores,
                  fn.demand.llc_mb, fn.demand.membw_gbps, fn.demand.disk_mbps,
                  fn.demand.net_mbps);
      std::printf("    metrics:");
      for (std::size_t k = 0; k < prof::kMetricCount; ++k) {
        const auto m = static_cast<prof::Metric>(k);
        std::printf(" %s=%.3g%s", prof::metric_name(m), fn.metrics[k],
                    prof::is_selected(m) ? "" : "*");
      }
      std::printf("\n");
    }
  }
  std::printf("\n(* = metric excluded by Gsight's |corr| >= 0.1 selection)\n");
  return 0;
}
