// Cluster scheduling example — the §4 case study in miniature: an
// 8-socket cluster serving two LS apps under a diurnal Azure-style trace
// with autoscaling, plus periodic batch jobs. Two schedulers are compared
// end to end: Gsight (predictive, binary-search packing) and the reactive
// Worst Fit spreader.
#include <cstdio>

#include "core/campaign.hpp"
#include "core/trainer.hpp"
#include "sched/experiment.hpp"
#include "sched/gsight_scheduler.hpp"
#include "sched/worstfit.hpp"
#include "workloads/ecommerce.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/socialnetwork.hpp"

using namespace gsight;

int main() {
  // --- 1. Profiles + a quick online-trained IPC predictor -----------------
  core::BuilderConfig cfg;
  cfg.runner.servers = 8;
  cfg.runner.server = sim::ServerConfig::socket();
  cfg.encoder.servers = 8;
  cfg.sc_scale = 0.08;
  cfg.profiler.server = sim::ServerConfig::socket();
  cfg.profiler.ls_profile_s = 20.0;
  prof::ProfileStore store;
  core::DatasetBuilder builder(&store, cfg, 42);

  std::printf("training the IPC predictor on 80 colocation scenarios...\n");
  core::PredictorConfig pcfg;
  pcfg.encoder = cfg.encoder;
  core::GsightPredictor predictor(pcfg);
  core::BuildRequest request;
  request.cls = core::ColocationClass::kLsScBg;
  request.qos = core::QosKind::kIpc;
  request.count = 80;
  const auto stream = builder.build(request);
  ml::Dataset train(predictor.encoder().dimension());
  for (const auto& s : stream) {
    for (double l : s.labels) train.add(s.features, l);
  }
  predictor.train(train);

  std::vector<prof::ProfileRequest> missing;
  for (const auto& app :
       {wl::social_network(), wl::e_commerce(), wl::matmul(3.0 * cfg.sc_scale),
        wl::dd(3.0 * cfg.sc_scale), wl::video_processing(4.0 * cfg.sc_scale),
        wl::iot_collector()}) {
    if (!store.contains(app.name)) {
      prof::ProfileRequest pr;
      pr.app = app;
      missing.push_back(std::move(pr));
    }
  }
  const prof::ProfileStore profiled = core::profile_all(cfg.profiler, missing);
  for (const auto& [name, profile] : profiled.all()) {
    store.put(profile);
  }

  // --- 2. The experiment ---------------------------------------------------
  sched::ExperimentConfig ec;
  ec.servers = 8;
  ec.server = sim::ServerConfig::socket();
  ec.duration_s = 240.0;
  ec.trace.base_qps = 90.0;
  ec.trace.day_seconds = 240.0;
  ec.sc_scale = cfg.sc_scale;
  ec.autoscaler.max_replicas = 16;
  sched::SchedulingExperiment experiment(&store, ec);

  sched::GsightScheduler gsight(&predictor);
  sched::WorstFitScheduler worstfit;
  for (sched::Scheduler* scheduler :
       std::initializer_list<sched::Scheduler*>{&gsight, &worstfit}) {
    const auto report = experiment.run(*scheduler);
    std::printf("\n[%s]\n", report.scheduler.c_str());
    std::printf("  requests completed : %llu (failed %llu)\n",
                static_cast<unsigned long long>(report.requests_completed),
                static_cast<unsigned long long>(report.requests_failed));
    std::printf("  batch jobs finished: %llu\n",
                static_cast<unsigned long long>(report.jobs_completed));
    std::printf("  mean density       : %.4f instances/core\n",
                report.mean_density());
    std::printf("  mean CPU util      : %.1f%%   mean memory util: %.1f%%\n",
                100.0 * report.mean_cpu_util(),
                100.0 * report.mean_mem_util());
    for (const auto& sla : report.sla) {
      std::printf("  %-16s SLA %3.0f ms: met in %.1f%% of windows "
                  "(overall p99 %.0f ms)\n",
                  sla.app.c_str(), sla.sla_p99_s * 1e3,
                  100.0 * sla.satisfied_fraction, sla.overall_p99_s * 1e3);
    }
  }
  std::printf("\n(see bench_fig11_scheduling / bench_fig12_sla for the full "
              "three-scheduler study)\n");
  return 0;
}
