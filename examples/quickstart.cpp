// Quickstart — the smallest end-to-end Gsight workflow:
//   1. profile two workloads solo (one call each, §3.2),
//   2. describe a colocation scenario (placement + timing),
//   3. train the predictor on a few observed scenarios,
//   4. predict the QoS of a new placement before deploying it.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/example_quickstart
#include <cstdio>

#include "core/trainer.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/socialnetwork.hpp"

using namespace gsight;

int main() {
  // ---------------------------------------------------------------- 1
  // Solo-run profiles: each function of each workload on a dedicated
  // socket, driven by the open-loop load generator.
  prof::SoloProfilerConfig profiler_cfg;
  profiler_cfg.server = sim::ServerConfig::socket();
  profiler_cfg.ls_profile_s = 20.0;

  prof::ProfileStore store;
  const std::string sn_key = core::ensure_profile(
      store, wl::social_network(), /*qps=*/40.0, profiler_cfg);
  const std::string mm_key = core::ensure_profile(
      store, wl::matmul(/*minutes=*/0.4), /*qps=*/0.0, profiler_cfg);
  std::printf("profiled: %s (9 functions), %s\n", sn_key.c_str(),
              mm_key.c_str());
  std::printf("social network solo p99: %.1f ms, solo IPC: %.2f\n",
              store.get(sn_key).solo_e2e_p99_s * 1e3,
              store.get(sn_key).solo_mean_ipc);

  // ---------------------------------------------------------------- 2+3
  // Observe a handful of colocations (here: simulated ground truth from
  // the ScenarioRunner; in production these come from live monitoring).
  core::RunnerConfig rc;
  rc.servers = 4;
  rc.server = sim::ServerConfig::socket();
  core::ScenarioRunner runner(&store, rc);

  core::PredictorConfig pc;
  pc.encoder.servers = 4;
  pc.encoder.max_workloads = 4;
  pc.model = core::ModelKind::kIRFR;
  core::GsightPredictor predictor(pc);

  stats::Rng rng(7);
  core::Scenario last_scenario;
  for (int round = 0; round < 20; ++round) {
    core::ScenarioSpec spec;
    core::ScenarioSpec::Member sn;
    sn.app = wl::social_network();
    sn.qps = 40.0;
    sn.fn_to_server.resize(9);
    for (auto& s : sn.fn_to_server) s = rng.uniform_index(4);
    core::ScenarioSpec::Member mm;
    mm.app = wl::matmul(0.4);
    mm.fn_to_server = {rng.uniform_index(4)};
    spec.members = {sn, mm};

    const auto outcome = runner.run(spec);
    for (double ipc : outcome.window_ipc) {
      predictor.observe(outcome.scenario, ipc);
    }
    last_scenario = outcome.scenario;
  }
  predictor.flush();
  std::printf("trained on %zu observed samples\n", predictor.samples_seen());

  // ---------------------------------------------------------------- 4
  // What-if: predict the social network's IPC under two placements of the
  // matmul corunner before committing either.
  core::Scenario what_if = last_scenario;
  const std::size_t sn_server = what_if.workloads[0].fn_to_server[0];
  what_if.workloads[1].fn_to_server = {sn_server};  // colocated
  const double colocated = predictor.predict(what_if);
  what_if.workloads[1].fn_to_server = {(sn_server + 1) % 4};  // isolated
  const double isolated = predictor.predict(what_if);
  std::printf("predicted IPC with matmul on the same socket: %.3f\n",
              colocated);
  std::printf("predicted IPC with matmul isolated:           %.3f\n",
              isolated);
  std::printf("-> %s\n", isolated >= colocated
                             ? "isolating the corunner is the safer placement"
                             : "colocation looks safe for this pair");
  return 0;
}
