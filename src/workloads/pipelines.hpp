// Additional serverless applications from the paper's Table 1 survey:
// web search (LS, [9]), an ML inference pipeline (LS, preprocess ->
// infer -> postprocess), and a MapReduce-style wordcount (SC, [22][26]) —
// the latter exercises *parallel nested branches* (a scatter-gather DAG),
// a call-graph shape the social network and e-commerce apps do not cover.
#pragma once

#include "workloads/app.hpp"

namespace gsight::wl {

/// Web search: frontend -> query-rewrite -> [3 parallel index shards,
/// nested] -> rank -> snippets. End-to-end latency gated by the slowest
/// shard (scatter-gather).
App web_search();

/// ML inference pipeline: preprocess (decode/resize) -> infer (dense
/// CPU) -> postprocess (format/notify, async).
App inference_pipeline();

/// Wordcount: split -> [k parallel mappers, nested] -> reduce. JCT is the
/// makespan of the scatter-gather job.
App wordcount(std::size_t mappers = 4, double minutes = 1.0);

}  // namespace gsight::wl
