// Phase-level workload model. Every function execution is a sequence of
// phases; each phase carries a resource-demand vector and a baseline
// microarchitecture signature. Phases are what make partial interference
// *temporally* varied (Observation 3): overlapping a corunner with an LR
// job's shuffle phase hurts far more than overlapping its tail.
#pragma once

#include <string>
#include <vector>

namespace gsight::wl {

/// Resources a phase occupies / consumes while running, plus the time
/// decomposition of its solo execution. Fractions frac_* describe where the
/// solo wall-clock time goes; the remainder (1 - sum) is contention-immune
/// time (sleeps, remote waits).
struct ResourceDemand {
  double cores = 1.0;        ///< CPU threads occupied while running
  double llc_mb = 1.0;       ///< last-level-cache working set
  double membw_gbps = 0.5;   ///< sustained memory bandwidth
  double disk_mbps = 0.0;    ///< disk throughput
  double net_mbps = 0.0;     ///< NIC throughput
  double mem_gb = 0.128;     ///< resident memory footprint

  double frac_cpu = 1.0;     ///< share of solo time that is compute
  double frac_disk = 0.0;    ///< share of solo time blocked on disk
  double frac_net = 0.0;     ///< share of solo time blocked on network
};

/// Baseline microarchitecture signature of a phase under solo execution.
/// MPKI = misses per thousand instructions. These seed the synthetic
/// counters the profiler reports; contention shifts them (see
/// sim::InterferenceModel).
struct MicroArchProfile {
  double base_ipc = 1.5;
  double branch_mpki = 4.0;
  double l1i_mpki = 6.0;
  double l1d_mpki = 20.0;
  double l2_mpki = 8.0;
  double l3_mpki = 2.0;
  double dtlb_mpki = 1.0;
  double itlb_mpki = 0.5;
  double mem_lp = 4.0;  ///< memory-level parallelism (excluded metric, Table 3)
};

struct Phase {
  std::string name;
  double solo_duration_s = 0.01;  ///< wall-clock duration under solo run
  ResourceDemand demand;
  MicroArchProfile uarch;
};

/// Convenience builders for the common phase archetypes used by the suite.
Phase cpu_phase(std::string name, double duration_s, double cores = 1.0,
                double llc_mb = 4.0, double ipc = 2.2);
Phase memory_phase(std::string name, double duration_s, double cores = 1.0,
                   double llc_mb = 12.0, double membw_gbps = 6.0);
Phase disk_phase(std::string name, double duration_s, double disk_mbps = 200.0);
Phase net_phase(std::string name, double duration_s, double net_mbps = 800.0);
Phase mixed_phase(std::string name, double duration_s);

}  // namespace gsight::wl
