#include "workloads/socialnetwork.hpp"

namespace gsight::wl {

namespace {

FunctionSpec ls_function(std::string name, Phase phase, double mem_gb,
                         double cold_start_s = 2.0) {
  FunctionSpec fn;
  fn.name = std::move(name);
  fn.mem_alloc_gb = mem_gb;
  fn.cold_start_s = cold_start_s;
  fn.jitter_sigma = 0.12;
  fn.phases.push_back(std::move(phase));
  return fn;
}

}  // namespace

App social_network() {
  App app;
  app.name = "social-network";
  app.cls = WorkloadClass::kLatencySensitive;
  app.default_qps = 60.0;
  app.functions.resize(9);

  // Service times are millisecond-scale per Observation 3 / Azure data.
  app.functions[kComposePost] =
      ls_function("compose-post", cpu_phase("compose", 0.004, 1.0, 2.0, 1.8),
                  0.25);
  {
    Phase media = mixed_phase("media", 0.010);
    media.demand.disk_mbps = 150.0;
    media.demand.frac_disk = 0.35;
    media.demand.frac_cpu = 0.5;
    media.demand.net_mbps = 80.0;
    app.functions[kUploadMedia] = ls_function("upload-media", media, 0.5);
  }
  app.functions[kUploadText] =
      ls_function("upload-text", cpu_phase("text", 0.003, 0.8, 1.0, 1.6), 0.128);
  app.functions[kUploadUrls] =
      ls_function("upload-urls", net_phase("shorten", 0.003, 30.0), 0.128);
  app.functions[kUploadUniqueId] =
      ls_function("upload-unique-id", cpu_phase("uuid", 0.001, 0.3, 0.3, 2.0),
                  0.128);
  {
    Phase compose = memory_phase("assemble", 0.008, 1.5, 6.0, 3.0);
    compose.demand.net_mbps = 60.0;
    compose.demand.frac_net = 0.15;
    compose.demand.frac_cpu = 0.75;
    app.functions[kComposeAndUpload] =
        ls_function("compose-and-upload", compose, 0.5);
  }
  {
    Phase storage = disk_phase("persist", 0.006, 120.0);
    storage.demand.frac_cpu = 0.25;
    storage.demand.frac_disk = 0.65;
    app.functions[kPostStorage] = ls_function("post-storage", storage, 0.5);
  }
  {
    Phase timeline = memory_phase("fanout", 0.007, 1.2, 8.0, 4.0);
    timeline.demand.net_mbps = 100.0;
    timeline.demand.frac_net = 0.2;
    timeline.demand.frac_cpu = 0.7;
    app.functions[kUploadHomeTimeline] =
        ls_function("upload-home-timeline", timeline, 0.5);
  }
  {
    // Graph lookup: cache/TLB hungry, the most interference-sensitive
    // function (the paper sees 3x worse p99 when matmul lands on it).
    Phase follow = memory_phase("graph-walk", 0.009, 1.0, 14.0, 5.0);
    follow.uarch.dtlb_mpki = 5.0;
    follow.uarch.l3_mpki = 10.0;
    app.functions[kGetFollowers] = ls_function("get-followers", follow, 0.75);
  }

  app.graph = CallGraph(9);
  app.graph.set_root(kComposePost);
  app.graph.add_edge(kComposePost, kUploadMedia, EdgeKind::kNested);
  app.graph.add_edge(kComposePost, kUploadText, EdgeKind::kAsync);
  app.graph.add_edge(kComposePost, kUploadUrls, EdgeKind::kAsync);
  app.graph.add_edge(kComposePost, kUploadUniqueId, EdgeKind::kAsync);
  app.graph.add_edge(kUploadMedia, kComposeAndUpload, EdgeKind::kNested);
  app.graph.add_edge(kComposeAndUpload, kPostStorage, EdgeKind::kAsync);
  app.graph.add_edge(kComposeAndUpload, kUploadHomeTimeline, EdgeKind::kNested);
  app.graph.add_edge(kUploadHomeTimeline, kGetFollowers, EdgeKind::kNested);
  app.validate();
  return app;
}

}  // namespace gsight::wl
