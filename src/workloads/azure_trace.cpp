#include "workloads/azure_trace.hpp"

#include <cmath>
#include <numbers>

namespace gsight::wl {

double AzureTraceGenerator::rate_at(double t) const {
  const double two_pi = 2.0 * std::numbers::pi;
  const double day_angle = two_pi * t / config_.day_seconds + config_.phase_shift;
  const double week_angle = day_angle / 7.0;
  double rate = config_.base_qps *
                (1.0 + config_.diurnal_amplitude * std::sin(day_angle)) *
                (1.0 + config_.weekly_amplitude * std::sin(week_angle));
  return std::max(rate, 0.0);
}

std::vector<double> AzureTraceGenerator::arrivals(double t0, double t1) {
  // Thinning (Lewis & Shedler): simulate a homogeneous process at the peak
  // rate and accept each point with probability rate(t)/peak.
  const double peak = config_.base_qps * (1.0 + config_.diurnal_amplitude) *
                      (1.0 + config_.weekly_amplitude) * 1.5;
  std::vector<double> out;
  if (peak <= 0.0) return out;
  double t = t0;
  for (;;) {
    t += rng_.exponential(peak);
    if (t >= t1) break;
    double accept = rate_at(t) / peak;
    if (config_.noise_sigma > 0.0) {
      accept *= std::exp(config_.noise_sigma * rng_.normal());
    }
    if (rng_.uniform() < accept) out.push_back(t);
  }
  return out;
}

std::vector<double> zipf_weights(std::size_t n, double skew) {
  std::vector<double> w(n, 0.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), skew);
    sum += w[i];
  }
  for (auto& v : w) v /= sum;
  return w;
}

}  // namespace gsight::wl
