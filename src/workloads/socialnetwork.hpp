// The DeathStarBench social-network message-posting workflow [16], ported
// to functions exactly as Figure 2 of the paper:
//   (1) compose-post        -> (2) upload-media [nested, critical]
//                              (3) upload-text        [async]
//                              (4) upload-urls        [async]
//                              (5) upload-unique-id   [async]
//   (2) -> (6) compose-and-upload [nested]
//   (6) -> (7) post-storage       [async]
//          (8) upload-home-timeline [nested]
//   (8) -> (9) get-followers       [nested]
// Critical path: 1 -> 2 -> 6 -> 8 -> 9 (Observation 2).
#pragma once

#include "workloads/app.hpp"

namespace gsight::wl {

/// Indices of the nine functions (0-based; paper numbering minus one).
enum SocialNetworkFn : std::size_t {
  kComposePost = 0,
  kUploadMedia = 1,
  kUploadText = 2,
  kUploadUrls = 3,
  kUploadUniqueId = 4,
  kComposeAndUpload = 5,
  kPostStorage = 6,
  kUploadHomeTimeline = 7,
  kGetFollowers = 8,
};

App social_network();

}  // namespace gsight::wl
