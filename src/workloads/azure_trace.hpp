// Synthetic Azure-Functions-style invocation trace [49]: per-hour invocation
// rates follow diurnal and weekly patterns; per-app popularity is heavy
// tailed; arrivals within a rate window are Poisson. Used to drive the
// scheduling study (Figures 11-12), where cold starts cluster on the rising
// edge of the diurnal wave (~8/min in the paper's setup).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace gsight::wl {

struct AzureTraceConfig {
  double base_qps = 40.0;          ///< mean aggregate request rate
  double diurnal_amplitude = 0.6;  ///< 0..1 swing around the mean over a day
  double weekly_amplitude = 0.2;   ///< weekday/weekend modulation
  double day_seconds = 600.0;      ///< compressed "day" so sims stay short
  double phase_shift = 0.0;        ///< offset into the day at t=0 (radians)
  double noise_sigma = 0.08;       ///< multiplicative log-normal rate noise
};

class AzureTraceGenerator {
 public:
  explicit AzureTraceGenerator(AzureTraceConfig config, std::uint64_t seed = 7)
      : config_(config), rng_(seed) {}

  /// Instantaneous request rate at simulated time t (requests/s, >= 0).
  double rate_at(double t) const;
  /// Arrival timestamps in [t0, t1) from a (non-homogeneous) Poisson
  /// process thinned against rate_at.
  std::vector<double> arrivals(double t0, double t1);

  const AzureTraceConfig& config() const { return config_; }

 private:
  AzureTraceConfig config_;
  stats::Rng rng_;
};

/// Heavy-tailed per-app weights (Zipf-like, normalised to sum 1) for
/// splitting an aggregate trace across `n` applications.
std::vector<double> zipf_weights(std::size_t n, double skew = 1.1);

}  // namespace gsight::wl
