// Registry of every workload in the repository, grouped the way the
// paper's experiments consume them.
#pragma once

#include <vector>

#include "workloads/app.hpp"

namespace gsight::wl {

/// The four §2.1 characterization corunners (matmul, dd, iperf, video).
std::vector<App> characterization_corunners();
/// All serverless LS apps (social network, e-commerce, ml-serving, ...).
std::vector<App> ls_suite();
/// All serverless SC apps.
std::vector<App> sc_suite();
/// All serverless BG apps.
std::vector<App> bg_suite();
/// Everything serverless.
std::vector<App> full_suite();
/// Look up an app by name across the full suite; throws std::out_of_range.
App by_name(const std::string& name);

}  // namespace gsight::wl
