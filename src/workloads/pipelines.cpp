#include "workloads/pipelines.hpp"

namespace gsight::wl {

App web_search() {
  App app;
  app.name = "web-search";
  app.cls = WorkloadClass::kLatencySensitive;
  app.default_qps = 50.0;
  app.functions.resize(7);

  auto ls = [](std::string name, Phase phase, double mem_gb) {
    FunctionSpec fn;
    fn.name = std::move(name);
    fn.mem_alloc_gb = mem_gb;
    fn.cold_start_s = 1.5;
    fn.jitter_sigma = 0.12;
    fn.phases.push_back(std::move(phase));
    return fn;
  };

  app.functions[0] = ls("search-frontend", cpu_phase("parse", 0.002, 0.8, 1.0, 1.8), 0.25);
  app.functions[1] = ls("query-rewrite", cpu_phase("rewrite", 0.003, 1.0, 2.0, 1.6), 0.25);
  for (int shard = 0; shard < 3; ++shard) {
    Phase lookup = memory_phase("posting-list", 0.008, 1.2, 12.0, 4.5);
    lookup.uarch.dtlb_mpki = 4.0;
    app.functions[2 + shard] =
        ls("index-shard-" + std::to_string(shard), lookup, 1.0);
  }
  {
    Phase rank = cpu_phase("rank", 0.005, 2.0, 6.0, 2.4);
    rank.demand.membw_gbps = 3.0;
    app.functions[5] = ls("ranker", rank, 0.5);
  }
  app.functions[6] =
      ls("snippets", mixed_phase("snippets", 0.004), 0.5);

  app.graph = CallGraph(7);
  app.graph.set_root(0);
  app.graph.add_edge(0, 1, EdgeKind::kNested);
  // Scatter: the rewrite fans out to all three shards and waits for all.
  app.graph.add_edge(1, 2, EdgeKind::kNested);
  app.graph.add_edge(1, 3, EdgeKind::kNested);
  app.graph.add_edge(1, 4, EdgeKind::kNested);
  // Gather: ranking runs after the shards return (modelled as a nested
  // call from the first shard; the rewrite still waits on all three).
  app.graph.add_edge(2, 5, EdgeKind::kNested);
  app.graph.add_edge(5, 6, EdgeKind::kNested);
  app.validate();
  return app;
}

App inference_pipeline() {
  App app;
  app.name = "inference-pipeline";
  app.cls = WorkloadClass::kLatencySensitive;
  app.default_qps = 40.0;
  app.functions.resize(3);
  {
    Phase pre = mixed_phase("decode-resize", 0.006);
    pre.demand.net_mbps = 150.0;
    pre.demand.frac_net = 0.25;
    pre.demand.frac_cpu = 0.6;
    FunctionSpec fn;
    fn.name = "preprocess";
    fn.mem_alloc_gb = 0.5;
    fn.cold_start_s = 2.0;
    fn.jitter_sigma = 0.15;
    fn.phases.push_back(std::move(pre));
    app.functions[0] = std::move(fn);
  }
  {
    Phase infer = cpu_phase("dense-infer", 0.015, 3.0, 8.0, 2.9);
    infer.demand.membw_gbps = 5.0;
    FunctionSpec fn;
    fn.name = "infer";
    fn.mem_alloc_gb = 2.0;
    fn.cold_start_s = 5.0;  // model load
    fn.jitter_sigma = 0.05;
    fn.phases.push_back(std::move(infer));
    app.functions[1] = std::move(fn);
  }
  {
    FunctionSpec fn;
    fn.name = "postprocess";
    fn.mem_alloc_gb = 0.128;
    fn.cold_start_s = 0.8;
    fn.jitter_sigma = 0.1;
    fn.phases.push_back(net_phase("notify", 0.002, 20.0));
    app.functions[2] = std::move(fn);
  }
  app.graph = CallGraph(3);
  app.graph.set_root(0);
  app.graph.add_edge(0, 1, EdgeKind::kNested);
  app.graph.add_edge(1, 2, EdgeKind::kAsync);
  app.validate();
  return app;
}

App wordcount(std::size_t mappers, double minutes) {
  App app;
  app.name = "wordcount";
  app.cls = WorkloadClass::kShortCompute;
  app.functions.resize(mappers + 2);

  {
    FunctionSpec split;
    split.name = "wc-split";
    split.mem_alloc_gb = 1.0;
    split.cold_start_s = 1.0;
    split.phases.push_back(
        disk_phase("split-input", minutes * 10.0, 300.0));
    app.functions[0] = std::move(split);
  }
  for (std::size_t m = 0; m < mappers; ++m) {
    FunctionSpec map;
    map.name = "wc-map-" + std::to_string(m);
    map.mem_alloc_gb = 1.5;
    map.cold_start_s = 1.0;
    Phase count = memory_phase("count", minutes * 40.0, 2.0, 10.0, 5.0);
    count.demand.disk_mbps = 60.0;
    count.demand.frac_disk = 0.1;
    count.demand.frac_cpu = 0.8;
    map.phases.push_back(std::move(count));
    app.functions[1 + m] = std::move(map);
  }
  {
    FunctionSpec reduce;
    reduce.name = "wc-reduce";
    reduce.mem_alloc_gb = 1.0;
    reduce.cold_start_s = 1.0;
    Phase agg = cpu_phase("aggregate", minutes * 12.0, 1.5, 4.0, 1.8);
    agg.demand.net_mbps = 400.0;
    agg.demand.frac_net = 0.3;
    agg.demand.frac_cpu = 0.65;
    reduce.phases.push_back(std::move(agg));
    app.functions[mappers + 1] = std::move(reduce);
  }

  app.graph = CallGraph(mappers + 2);
  app.graph.set_root(0);
  // Scatter to all mappers (nested: the job waits for all of them), then
  // the first mapper chains to the reducer.
  for (std::size_t m = 0; m < mappers; ++m) {
    app.graph.add_edge(0, 1 + m, EdgeKind::kNested);
  }
  app.graph.add_edge(1, mappers + 1, EdgeKind::kNested);
  app.validate();
  return app;
}

}  // namespace gsight::wl
