#include "workloads/serverful.hpp"

#include "workloads/sparkapps.hpp"

namespace gsight::wl {

App monolithize(const App& app) {
  App mono;
  mono.name = app.name + "-monolith";
  mono.cls = app.cls;
  mono.default_qps = app.default_qps;

  FunctionSpec fused;
  fused.name = mono.name;
  double total_mem = 0.0;
  double worst_cold = 0.0;
  // One blended phase per request: the monolith executes the whole request
  // inside one container, so the profiler sees only aggregate behaviour.
  Phase blended;
  blended.name = "monolith";
  blended.solo_duration_s = 0.0;
  blended.demand = ResourceDemand{};
  blended.demand.cores = 0.0;
  blended.demand.llc_mb = 0.0;
  blended.demand.membw_gbps = 0.0;
  blended.demand.frac_cpu = 0.0;
  MicroArchProfile ua{};
  ua.base_ipc = ua.branch_mpki = ua.l1i_mpki = ua.l1d_mpki = 0.0;
  ua.l2_mpki = ua.l3_mpki = ua.dtlb_mpki = ua.itlb_mpki = ua.mem_lp = 0.0;

  double total_time = 0.0;
  for (const auto& fn : app.functions) total_time += fn.solo_duration_s();
  for (const auto& fn : app.functions) {
    const double w = total_time > 0.0 ? fn.solo_duration_s() / total_time : 0.0;
    const auto d = fn.average_demand();
    blended.demand.cores += w * d.cores;
    blended.demand.llc_mb += w * d.llc_mb;
    blended.demand.membw_gbps += w * d.membw_gbps;
    blended.demand.disk_mbps += w * d.disk_mbps;
    blended.demand.net_mbps += w * d.net_mbps;
    blended.demand.frac_cpu += w * d.frac_cpu;
    blended.demand.frac_disk += w * d.frac_disk;
    blended.demand.frac_net += w * d.frac_net;
    const auto u = fn.average_uarch();
    ua.base_ipc += w * u.base_ipc;
    ua.branch_mpki += w * u.branch_mpki;
    ua.l1i_mpki += w * u.l1i_mpki;
    ua.l1d_mpki += w * u.l1d_mpki;
    ua.l2_mpki += w * u.l2_mpki;
    ua.l3_mpki += w * u.l3_mpki;
    ua.dtlb_mpki += w * u.dtlb_mpki;
    ua.itlb_mpki += w * u.itlb_mpki;
    ua.mem_lp += w * u.mem_lp;
    total_mem += fn.mem_alloc_gb;
    worst_cold = std::max(worst_cold, fn.cold_start_s);
  }
  blended.solo_duration_s = app.critical_path_solo_s();
  blended.demand.mem_gb = total_mem;
  blended.uarch = ua;
  fused.phases.push_back(std::move(blended));
  fused.mem_alloc_gb = total_mem;
  fused.cold_start_s = worst_cold;

  mono.functions.push_back(std::move(fused));
  mono.graph = CallGraph(1);
  mono.graph.set_root(0);
  return mono;
}

App redis_server() {
  App app;
  app.name = "redis";
  app.cls = WorkloadClass::kLatencySensitive;
  app.default_qps = 200.0;
  FunctionSpec fn;
  fn.name = "redis";
  fn.mem_alloc_gb = 8.0;
  fn.cold_start_s = 5.0;
  fn.jitter_sigma = 0.1;
  Phase op = memory_phase("kv-op", 0.0008, 1.0, 6.0, 2.0);
  op.demand.net_mbps = 50.0;
  op.demand.frac_net = 0.2;
  op.demand.frac_cpu = 0.7;
  fn.phases.push_back(std::move(op));
  app.functions.push_back(std::move(fn));
  app.graph = CallGraph(1);
  app.graph.set_root(0);
  return app;
}

App solr_search() {
  App app;
  app.name = "solr";
  app.cls = WorkloadClass::kLatencySensitive;
  app.default_qps = 50.0;
  FunctionSpec fn;
  fn.name = "solr";
  fn.mem_alloc_gb = 12.0;
  fn.cold_start_s = 20.0;
  fn.jitter_sigma = 0.15;
  Phase q = memory_phase("query", 0.02, 2.0, 16.0, 5.0);
  q.demand.disk_mbps = 40.0;
  q.demand.frac_disk = 0.15;
  q.demand.frac_cpu = 0.75;
  q.uarch.itlb_mpki = 2.0;
  fn.phases.push_back(std::move(q));
  app.functions.push_back(std::move(fn));
  app.graph = CallGraph(1);
  app.graph.set_root(0);
  return app;
}

App mongodb_server() {
  App app;
  app.name = "mongodb";
  app.cls = WorkloadClass::kLatencySensitive;
  app.default_qps = 80.0;
  FunctionSpec fn;
  fn.name = "mongodb";
  fn.mem_alloc_gb = 16.0;
  fn.cold_start_s = 10.0;
  fn.jitter_sigma = 0.12;
  Phase q = disk_phase("doc-op", 0.005, 90.0);
  q.demand.frac_cpu = 0.35;
  q.demand.frac_disk = 0.5;
  q.demand.llc_mb = 6.0;
  q.demand.membw_gbps = 2.0;
  fn.phases.push_back(std::move(q));
  app.functions.push_back(std::move(fn));
  app.graph = CallGraph(1);
  app.graph.set_root(0);
  return app;
}

App bigdata_sort() {
  App app;
  app.name = "bigdatabench-sort";
  app.cls = WorkloadClass::kShortCompute;
  FunctionSpec fn;
  fn.name = "bigdatabench-sort";
  fn.mem_alloc_gb = 24.0;
  fn.cold_start_s = 4.0;
  Phase read = disk_phase("read", 40.0, 450.0);
  read.demand.mem_gb = 20.0;
  Phase sort = memory_phase("sort", 160.0, 4.0, 22.0, 14.0);
  sort.demand.mem_gb = 24.0;
  Phase write = disk_phase("write", 50.0, 380.0);
  fn.phases = {std::move(read), std::move(sort), std::move(write)};
  app.functions.push_back(std::move(fn));
  app.graph = CallGraph(1);
  app.graph.set_root(0);
  return app;
}

std::vector<App> serverful_suite() {
  return {monolithize(logistic_regression()), bigdata_sort(), redis_server(),
          solr_search(), mongodb_server()};
}

}  // namespace gsight::wl
