#include "workloads/ecommerce.hpp"

namespace gsight::wl {

App e_commerce() {
  App app;
  app.name = "e-commerce";
  app.cls = WorkloadClass::kLatencySensitive;
  app.default_qps = 80.0;
  app.functions.resize(6);

  {
    FunctionSpec fn;
    fn.name = "frontend";
    fn.mem_alloc_gb = 0.25;
    fn.cold_start_s = 1.5;
    fn.jitter_sigma = 0.1;
    fn.phases.push_back(cpu_phase("render", 0.003, 1.0, 2.0, 1.7));
    app.functions[kFrontend] = std::move(fn);
  }
  {
    FunctionSpec fn;
    fn.name = "catalog";
    fn.mem_alloc_gb = 0.5;
    fn.cold_start_s = 1.8;
    fn.jitter_sigma = 0.1;
    Phase lookup = memory_phase("lookup", 0.004, 1.0, 10.0, 3.0);
    lookup.uarch.dtlb_mpki = 3.5;
    fn.phases.push_back(std::move(lookup));
    app.functions[kCatalog] = std::move(fn);
  }
  {
    FunctionSpec fn;
    fn.name = "cart";
    fn.mem_alloc_gb = 0.25;
    fn.cold_start_s = 1.2;
    fn.jitter_sigma = 0.1;
    fn.phases.push_back(cpu_phase("update-cart", 0.002, 0.6, 1.0, 1.9));
    app.functions[kCart] = std::move(fn);
  }
  {
    FunctionSpec fn;
    fn.name = "payment";
    fn.mem_alloc_gb = 0.25;
    fn.cold_start_s = 2.0;
    fn.jitter_sigma = 0.15;
    Phase pay = net_phase("authorize", 0.006, 20.0);
    pay.demand.frac_net = 0.6;  // external gateway round-trips
    pay.demand.frac_cpu = 0.2;
    fn.phases.push_back(std::move(pay));
    app.functions[kPayment] = std::move(fn);
  }
  {
    FunctionSpec fn;
    fn.name = "inventory";
    fn.mem_alloc_gb = 0.5;
    fn.cold_start_s = 1.5;
    fn.jitter_sigma = 0.1;
    Phase inv = disk_phase("reserve-stock", 0.004, 80.0);
    inv.demand.frac_cpu = 0.3;
    inv.demand.frac_disk = 0.55;
    fn.phases.push_back(std::move(inv));
    app.functions[kInventory] = std::move(fn);
  }
  {
    FunctionSpec fn;
    fn.name = "confirmation";
    fn.mem_alloc_gb = 0.128;
    fn.cold_start_s = 1.0;
    fn.jitter_sigma = 0.1;
    Phase notify = net_phase("notify", 0.002, 10.0);
    fn.phases.push_back(std::move(notify));
    app.functions[kConfirmation] = std::move(fn);
  }

  // frontend -> catalog -> cart -> payment (critical, nested);
  // payment -> inventory (nested), confirmation (async).
  app.graph = CallGraph(6);
  app.graph.set_root(kFrontend);
  app.graph.add_edge(kFrontend, kCatalog, EdgeKind::kNested);
  app.graph.add_edge(kCatalog, kCart, EdgeKind::kNested);
  app.graph.add_edge(kCart, kPayment, EdgeKind::kNested);
  app.graph.add_edge(kPayment, kInventory, EdgeKind::kNested);
  app.graph.add_edge(kPayment, kConfirmation, EdgeKind::kAsync);
  app.validate();
  return app;
}

}  // namespace gsight::wl
