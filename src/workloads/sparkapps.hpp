// SparkBench-style SC workloads [30] with explicit execution phases,
// reproducing the temporal-variation study of Observation 3 / Figure 3(b):
// LogisticRegression (4M examples, 15 GB) and KMeans (2x4M points, 15 GB).
// The later map iterations and the shuffle phase are the interference-
// sensitive windows, so JCT depends strongly on the corunner's start delay.
#pragma once

#include "workloads/app.hpp"

namespace gsight::wl {

/// LR: load -> early map iterations (cache-resident, mildly sensitive) ->
/// late map iterations (bandwidth-bound, very sensitive) -> shuffle
/// (network+memory, very sensitive) -> reduce.
App logistic_regression();

/// KMeans: load -> assign (bandwidth-bound) -> update/shuffle -> converge.
App kmeans();

/// Scaled-down variants (seconds instead of minutes) for unit tests.
App logistic_regression_small();
App kmeans_small();

/// ML model serving: CPU-intensive LS inference endpoint (used as the
/// "CPU intensive" domain of the Figure 13 recovery study).
App ml_serving();

}  // namespace gsight::wl
