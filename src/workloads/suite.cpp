#include "workloads/suite.hpp"

#include <stdexcept>

#include "workloads/ecommerce.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/socialnetwork.hpp"
#include "workloads/pipelines.hpp"
#include "workloads/sparkapps.hpp"

namespace gsight::wl {

std::vector<App> characterization_corunners() {
  return {matmul(), dd(), iperf(), video_processing()};
}

std::vector<App> ls_suite() {
  return {social_network(), e_commerce(), ml_serving(), web_search(),
          inference_pipeline()};
}

std::vector<App> sc_suite() {
  return {matmul(), dd(), iperf(), video_processing(), float_operation(),
          feature_generation(), logistic_regression(), kmeans(), wordcount()};
}

std::vector<App> bg_suite() { return {iot_collector(), monitoring_probe()}; }

std::vector<App> full_suite() {
  std::vector<App> all = ls_suite();
  for (auto& a : sc_suite()) all.push_back(std::move(a));
  for (auto& a : bg_suite()) all.push_back(std::move(a));
  return all;
}

App by_name(const std::string& name) {
  for (auto& a : full_suite()) {
    if (a.name == name) return a;
  }
  throw std::out_of_range("unknown workload: " + name);
}

}  // namespace gsight::wl
