#include "workloads/function_spec.hpp"

#include <cassert>

namespace gsight::wl {

std::string to_string(WorkloadClass c) {
  switch (c) {
    case WorkloadClass::kBackground:
      return "BG";
    case WorkloadClass::kShortCompute:
      return "SC";
    case WorkloadClass::kLatencySensitive:
      return "LS";
  }
  return "?";
}

double FunctionSpec::solo_duration_s() const {
  double total = 0.0;
  for (const auto& p : phases) total += p.solo_duration_s;
  return total;
}

ResourceDemand FunctionSpec::average_demand() const {
  assert(!phases.empty());
  ResourceDemand avg{};
  avg.cores = avg.llc_mb = avg.membw_gbps = avg.disk_mbps = avg.net_mbps = 0.0;
  avg.mem_gb = 0.0;
  avg.frac_cpu = avg.frac_disk = avg.frac_net = 0.0;
  const double total = solo_duration_s();
  for (const auto& p : phases) {
    const double w = total > 0.0 ? p.solo_duration_s / total
                                 : 1.0 / static_cast<double>(phases.size());
    avg.cores += w * p.demand.cores;
    avg.llc_mb += w * p.demand.llc_mb;
    avg.membw_gbps += w * p.demand.membw_gbps;
    avg.disk_mbps += w * p.demand.disk_mbps;
    avg.net_mbps += w * p.demand.net_mbps;
    avg.mem_gb = std::max(avg.mem_gb, p.demand.mem_gb);  // peak footprint
    avg.frac_cpu += w * p.demand.frac_cpu;
    avg.frac_disk += w * p.demand.frac_disk;
    avg.frac_net += w * p.demand.frac_net;
  }
  return avg;
}

MicroArchProfile FunctionSpec::average_uarch() const {
  assert(!phases.empty());
  MicroArchProfile avg{};
  avg.base_ipc = avg.branch_mpki = avg.l1i_mpki = avg.l1d_mpki = 0.0;
  avg.l2_mpki = avg.l3_mpki = avg.dtlb_mpki = avg.itlb_mpki = avg.mem_lp = 0.0;
  const double total = solo_duration_s();
  for (const auto& p : phases) {
    const double w = total > 0.0 ? p.solo_duration_s / total
                                 : 1.0 / static_cast<double>(phases.size());
    avg.base_ipc += w * p.uarch.base_ipc;
    avg.branch_mpki += w * p.uarch.branch_mpki;
    avg.l1i_mpki += w * p.uarch.l1i_mpki;
    avg.l1d_mpki += w * p.uarch.l1d_mpki;
    avg.l2_mpki += w * p.uarch.l2_mpki;
    avg.l3_mpki += w * p.uarch.l3_mpki;
    avg.dtlb_mpki += w * p.uarch.dtlb_mpki;
    avg.itlb_mpki += w * p.uarch.itlb_mpki;
    avg.mem_lp += w * p.uarch.mem_lp;
  }
  return avg;
}

}  // namespace gsight::wl
