#include "workloads/phase.hpp"

namespace gsight::wl {

Phase cpu_phase(std::string name, double duration_s, double cores,
                double llc_mb, double ipc) {
  Phase p;
  p.name = std::move(name);
  p.solo_duration_s = duration_s;
  p.demand.cores = cores;
  p.demand.llc_mb = llc_mb;
  p.demand.membw_gbps = 1.0;
  p.demand.frac_cpu = 0.95;
  p.uarch.base_ipc = ipc;
  p.uarch.l3_mpki = 0.8;
  p.uarch.l2_mpki = 4.0;
  return p;
}

Phase memory_phase(std::string name, double duration_s, double cores,
                   double llc_mb, double membw_gbps) {
  Phase p;
  p.name = std::move(name);
  p.solo_duration_s = duration_s;
  p.demand.cores = cores;
  p.demand.llc_mb = llc_mb;
  p.demand.membw_gbps = membw_gbps;
  p.demand.frac_cpu = 0.9;
  p.uarch.base_ipc = 0.9;
  p.uarch.l1d_mpki = 35.0;
  p.uarch.l2_mpki = 18.0;
  p.uarch.l3_mpki = 8.0;
  p.uarch.dtlb_mpki = 3.0;
  p.uarch.mem_lp = 8.0;
  return p;
}

Phase disk_phase(std::string name, double duration_s, double disk_mbps) {
  Phase p;
  p.name = std::move(name);
  p.solo_duration_s = duration_s;
  p.demand.cores = 0.3;
  p.demand.llc_mb = 0.5;
  p.demand.membw_gbps = 0.4;
  p.demand.disk_mbps = disk_mbps;
  p.demand.frac_cpu = 0.15;
  p.demand.frac_disk = 0.8;
  p.uarch.base_ipc = 0.7;
  p.uarch.l3_mpki = 1.0;
  return p;
}

Phase net_phase(std::string name, double duration_s, double net_mbps) {
  Phase p;
  p.name = std::move(name);
  p.solo_duration_s = duration_s;
  p.demand.cores = 0.3;
  p.demand.llc_mb = 0.5;
  p.demand.membw_gbps = 0.5;
  p.demand.net_mbps = net_mbps;
  p.demand.frac_cpu = 0.15;
  p.demand.frac_net = 0.8;
  p.uarch.base_ipc = 0.8;
  p.uarch.l3_mpki = 0.6;
  return p;
}

Phase mixed_phase(std::string name, double duration_s) {
  Phase p;
  p.name = std::move(name);
  p.solo_duration_s = duration_s;
  p.demand.cores = 1.5;
  p.demand.llc_mb = 8.0;
  p.demand.membw_gbps = 4.0;
  p.demand.disk_mbps = 60.0;
  p.demand.net_mbps = 100.0;
  p.demand.frac_cpu = 0.6;
  p.demand.frac_disk = 0.15;
  p.demand.frac_net = 0.15;
  p.uarch.base_ipc = 1.2;
  p.uarch.l1d_mpki = 28.0;
  p.uarch.l2_mpki = 12.0;
  p.uarch.l3_mpki = 4.0;
  p.uarch.dtlb_mpki = 2.0;
  return p;
}

}  // namespace gsight::wl
