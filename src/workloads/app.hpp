// App — a deployable serverless workload: a set of functions plus the call
// graph connecting them, classified per Table 1 (BG / SC / LS).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "workloads/callgraph.hpp"
#include "workloads/function_spec.hpp"

namespace gsight::wl {

struct App {
  std::string name;
  WorkloadClass cls = WorkloadClass::kLatencySensitive;
  std::vector<FunctionSpec> functions;
  CallGraph graph;

  /// LS: sustainable solo request rate used as the default load point
  /// (requests/s toward the root function). Ignored for SC/BG.
  double default_qps = 50.0;

  std::size_t function_count() const { return functions.size(); }
  const FunctionSpec& function(std::size_t i) const { return functions.at(i); }

  /// Sum of solo durations along the critical path — the ideal end-to-end
  /// latency (LS) or minimum JCT contribution (SC) of one request.
  double critical_path_solo_s() const;
  /// Sum of solo durations over all functions (total work per request).
  double total_solo_s() const;
  /// Throws std::logic_error when the graph and function list disagree.
  void validate() const;
};

}  // namespace gsight::wl
