// Serverful (monolithic) counterparts used for the Figure 10(a) convergence
// comparison: SparkBench, BigDataBench, Redis, Solr and MongoDB as single
// coarse workloads. `monolithize` is the generic transform that fuses any
// multi-function app into one workload-level container — the exact
// degradation Observation 6 studies (function-level detail is lost; all
// phases are blended into a single averaged profile).
#pragma once

#include "workloads/app.hpp"

namespace gsight::wl {

/// Fuse all functions of `app` into a single function whose phase list is
/// the duration-weighted blend of the original functions; call structure is
/// erased. The result models workload-level profiling granularity.
App monolithize(const App& app);

App redis_server();
App solr_search();
App mongodb_server();
App bigdata_sort();

/// The five serverful benchmarks of §6.2's convergence experiment.
std::vector<App> serverful_suite();

}  // namespace gsight::wl
