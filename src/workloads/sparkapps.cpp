#include "workloads/sparkapps.hpp"

namespace gsight::wl {

namespace {

App phased_job(std::string name, std::vector<Phase> phases, double mem_gb) {
  App app;
  app.name = name;
  app.cls = WorkloadClass::kShortCompute;
  FunctionSpec fn;
  fn.name = std::move(name);
  fn.mem_alloc_gb = mem_gb;
  fn.cold_start_s = 3.0;
  fn.phases = std::move(phases);
  app.functions.push_back(std::move(fn));
  app.graph = CallGraph(1);
  app.graph.set_root(0);
  return app;
}

std::vector<Phase> lr_phases(double scale) {
  Phase load = disk_phase("load", 60.0 * scale, 250.0);
  load.demand.mem_gb = 12.0;

  Phase map_early = cpu_phase("map-early", 120.0 * scale, 3.0, 8.0, 2.0);
  map_early.demand.membw_gbps = 3.0;
  map_early.demand.mem_gb = 14.0;

  // Working set outgrows the cache: bandwidth-bound, cache-sensitive and
  // with little memory-level parallelism to hide added latency — this is
  // the phase that makes mid-run overlap hurt most (Figure 3(b)).
  Phase map_late = memory_phase("map-late", 150.0 * scale, 3.5, 20.0, 12.0);
  map_late.demand.mem_gb = 15.0;
  map_late.uarch.mem_lp = 3.0;
  map_late.uarch.l3_mpki = 12.0;

  Phase shuffle = memory_phase("shuffle", 60.0 * scale, 2.0, 10.0, 8.0);
  shuffle.demand.net_mbps = 1500.0;
  shuffle.demand.frac_net = 0.4;
  shuffle.demand.frac_cpu = 0.5;
  shuffle.demand.mem_gb = 15.0;

  Phase reduce = cpu_phase("reduce", 40.0 * scale, 2.0, 6.0, 1.8);
  reduce.demand.mem_gb = 8.0;
  return {std::move(load), std::move(map_early), std::move(map_late),
          std::move(shuffle), std::move(reduce)};
}

std::vector<Phase> kmeans_phases(double scale) {
  Phase load = disk_phase("load", 50.0 * scale, 250.0);
  load.demand.mem_gb = 12.0;

  Phase assign = memory_phase("assign", 180.0 * scale, 3.5, 18.0, 11.0);
  assign.demand.mem_gb = 15.0;
  assign.uarch.mem_lp = 3.0;
  assign.uarch.l3_mpki = 11.0;

  Phase update = memory_phase("update-shuffle", 70.0 * scale, 2.0, 10.0, 7.0);
  update.demand.net_mbps = 1200.0;
  update.demand.frac_net = 0.35;
  update.demand.frac_cpu = 0.55;
  update.demand.mem_gb = 15.0;

  Phase converge = cpu_phase("converge", 50.0 * scale, 2.0, 6.0, 2.0);
  converge.demand.mem_gb = 8.0;
  return {std::move(load), std::move(assign), std::move(update),
          std::move(converge)};
}

}  // namespace

App logistic_regression() {
  return phased_job("logistic-regression", lr_phases(1.0), 15.0);
}

App kmeans() { return phased_job("kmeans", kmeans_phases(1.0), 15.0); }

App logistic_regression_small() {
  return phased_job("logistic-regression-small", lr_phases(0.02), 2.0);
}

App kmeans_small() {
  return phased_job("kmeans-small", kmeans_phases(0.02), 2.0);
}

App ml_serving() {
  App app;
  app.name = "ml-serving";
  app.cls = WorkloadClass::kLatencySensitive;
  app.default_qps = 40.0;
  FunctionSpec fn;
  fn.name = "ml-serving";
  fn.mem_alloc_gb = 1.5;
  fn.cold_start_s = 4.0;
  fn.jitter_sigma = 0.08;
  // Dense inference: very high IPC, modest cache, minimal IO.
  Phase infer = cpu_phase("infer", 0.012, 2.0, 6.0, 2.8);
  infer.demand.membw_gbps = 4.0;
  fn.phases.push_back(std::move(infer));
  app.functions.push_back(std::move(fn));
  app.graph = CallGraph(1);
  app.graph.set_root(0);
  return app;
}

}  // namespace gsight::wl
