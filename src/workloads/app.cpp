#include "workloads/app.hpp"

#include <stdexcept>

namespace gsight::wl {

double App::critical_path_solo_s() const {
  double total = 0.0;
  for (std::size_t node : graph.critical_path()) {
    total += functions.at(node).solo_duration_s();
  }
  return total;
}

double App::total_solo_s() const {
  double total = 0.0;
  for (const auto& f : functions) total += f.solo_duration_s();
  return total;
}

void App::validate() const {
  if (functions.empty()) throw std::logic_error("App: no functions");
  if (graph.function_count() != functions.size()) {
    throw std::logic_error("App '" + name + "': graph size " +
                           std::to_string(graph.function_count()) +
                           " != function count " +
                           std::to_string(functions.size()));
  }
  graph.validate();
  for (const auto& f : functions) {
    if (f.phases.empty()) {
      throw std::logic_error("App '" + name + "': function '" + f.name +
                             "' has no phases");
    }
  }
}

}  // namespace gsight::wl
