#include "workloads/callgraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace gsight::wl {

void CallGraph::add_edge(std::size_t caller, std::size_t callee, EdgeKind kind) {
  if (caller >= children_.size() || callee >= children_.size()) {
    throw std::logic_error("CallGraph::add_edge: node index out of range");
  }
  children_[caller].push_back({callee, kind});
}

std::vector<std::size_t> CallGraph::critical_path() const {
  // Walk nested edges greedily: at each node, descend into the nested child
  // whose own nested subtree is the longest (by node count) — for the
  // workloads in this suite each node has at most one nested child, so the
  // tie-break rarely matters but keeps the function total.
  std::vector<std::size_t> path;
  if (children_.empty()) return path;
  std::vector<char> visiting(children_.size(), 0);
  std::size_t node = root_;
  for (;;) {
    if (visiting[node]) throw std::logic_error("CallGraph: cycle detected");
    visiting[node] = 1;
    path.push_back(node);
    const CallEdge* next = nullptr;
    for (const auto& e : children_[node]) {
      if (e.kind == EdgeKind::kNested) {
        next = &e;
        break;
      }
    }
    if (next == nullptr) break;
    node = next->callee;
  }
  return path;
}

bool CallGraph::on_critical_path(std::size_t node) const {
  const auto path = critical_path();
  return std::find(path.begin(), path.end(), node) != path.end();
}

std::vector<std::size_t> CallGraph::topological_order() const {
  std::vector<int> state(children_.size(), 0);  // 0 new, 1 visiting, 2 done
  std::vector<std::size_t> order;
  order.reserve(children_.size());
  // Iterative DFS from every node (graphs may have several roots when side
  // functions are never callers).
  for (std::size_t start = 0; start < children_.size(); ++start) {
    if (state[start] != 0) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{start, 0}};
    state[start] = 1;
    while (!stack.empty()) {
      auto& [node, next_child] = stack.back();
      if (next_child < children_[node].size()) {
        const std::size_t c = children_[node][next_child++].callee;
        if (state[c] == 1) throw std::logic_error("CallGraph: cycle detected");
        if (state[c] == 0) {
          state[c] = 1;
          stack.emplace_back(c, 0);
        }
      } else {
        state[node] = 2;
        order.push_back(node);
        stack.pop_back();
      }
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

void CallGraph::validate() const {
  if (children_.empty()) throw std::logic_error("CallGraph: empty graph");
  if (root_ >= children_.size()) throw std::logic_error("CallGraph: bad root");
  (void)topological_order();  // throws on cycle
}

}  // namespace gsight::wl
