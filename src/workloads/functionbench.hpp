// FunctionBench-style microbenchmarks and applications [25], modelled as
// phased synthetic functions. The four used in §2's characterization:
//   matmul           — CPU-intensive (high IPC pressure, large LLC set)
//   dd               — disk-I/O-intensive
//   iperf            — network-intensive
//   video_processing — high CPU+memory, medium disk/network pressure
// plus float_operation (seconds-scale SC) and the multi-function
// feature_generation pipeline used as training workload in Observation 6.
#pragma once

#include "workloads/app.hpp"

namespace gsight::wl {

App matmul(double minutes = 3.0);
App dd(double minutes = 3.0);
App iperf(double minutes = 3.0);
App video_processing(double minutes = 4.0);
App float_operation();
/// Three-function SC pipeline: extract -> transform -> aggregate.
App feature_generation();
/// BG examples from Table 1: periodic IoT collection & monitoring probes.
App iot_collector();
App monitoring_probe();

}  // namespace gsight::wl
