// FunctionSpec — the static description of one serverless function: its
// phases, memory allocation, and cold-start behaviour. Instances of a
// function are created by the platform (sim::FunctionInstance); the spec is
// immutable shared data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/phase.hpp"

namespace gsight::wl {

/// Table 1's taxonomy of serverless workloads.
enum class WorkloadClass : std::uint8_t {
  kBackground,     ///< BG: scheduled/intermittent, no latency requirement
  kShortCompute,   ///< SC: minute-scale jobs; JCT is the QoS metric
  kLatencySensitive  ///< LS: frequent invocations; tail latency is the QoS
};

std::string to_string(WorkloadClass c);

struct FunctionSpec {
  std::string name;
  std::vector<Phase> phases;        ///< executed in order per invocation
  double mem_alloc_gb = 0.128;      ///< configured allocation (AWS-style)
  double cold_start_s = 0.5;        ///< extra first-invocation latency
  /// Multiplicative log-normal jitter (sigma) applied to per-invocation
  /// phase durations; models input-dependent work.
  double jitter_sigma = 0.05;

  /// Total solo execution time of one invocation (sum of phases).
  double solo_duration_s() const;
  /// Demand averaged over phases, weighted by phase duration. Used for
  /// placement decisions and the R (allocation) matrices.
  ResourceDemand average_demand() const;
  MicroArchProfile average_uarch() const;
};

}  // namespace gsight::wl
