// TPC-W-style e-commerce workload [36] ported to functions: a "place order"
// request path with catalog lookup, cart, payment, inventory and
// confirmation side effects. Used together with feature-generation as the
// training workload of Observation 6 and as the second LS app in the
// scheduling study (SLA 88 ms in the paper).
#pragma once

#include "workloads/app.hpp"

namespace gsight::wl {

enum ECommerceFn : std::size_t {
  kFrontend = 0,
  kCatalog = 1,
  kCart = 2,
  kPayment = 3,
  kInventory = 4,
  kConfirmation = 5,
};

App e_commerce();

}  // namespace gsight::wl
