// CallGraph — the end-to-end function call path of a workload (Figure 2).
// Nodes reference functions by index into the owning App; edges carry the
// invocation semantics:
//   kNested — caller blocks until the callee returns (nested chain [58]);
//             the caller's end-to-end completion includes the callee.
//   kAsync  — fire-and-forget side branch; does not extend the caller's
//             completion (non-critical path).
// Sequence chains are expressed as a nested edge from the last element:
// what matters for interference propagation is only whether downstream
// invocation rate is gated by upstream completion, which both encode.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gsight::wl {

enum class EdgeKind { kNested, kAsync };

struct CallEdge {
  std::size_t callee = 0;  ///< function index within the App
  EdgeKind kind = EdgeKind::kNested;
};

class CallGraph {
 public:
  CallGraph() = default;
  explicit CallGraph(std::size_t function_count)
      : children_(function_count) {}

  std::size_t function_count() const { return children_.size(); }
  void resize(std::size_t function_count) { children_.resize(function_count); }

  void add_edge(std::size_t caller, std::size_t callee, EdgeKind kind);
  const std::vector<CallEdge>& children(std::size_t node) const {
    return children_[node];
  }

  std::size_t root() const { return root_; }
  void set_root(std::size_t r) { root_ = r; }

  /// Nodes on the critical (nested) path from the root, in call order.
  std::vector<std::size_t> critical_path() const;
  /// True if `node` lies on the critical path.
  bool on_critical_path(std::size_t node) const;
  /// Topological order (callers before callees). The graph must be acyclic;
  /// verified with an internal check that throws std::logic_error on cycles.
  std::vector<std::size_t> topological_order() const;
  /// Validate indices and acyclicity; throws std::logic_error on failure.
  void validate() const;

 private:
  std::vector<std::vector<CallEdge>> children_;
  std::size_t root_ = 0;
};

}  // namespace gsight::wl
