#include "workloads/functionbench.hpp"

namespace gsight::wl {

namespace {

App single_function_app(std::string name, WorkloadClass cls, FunctionSpec fn) {
  App app;
  app.name = std::move(name);
  app.cls = cls;
  app.functions.push_back(std::move(fn));
  app.graph = CallGraph(1);
  app.graph.set_root(0);
  return app;
}

}  // namespace

App matmul(double minutes) {
  FunctionSpec fn;
  fn.name = "matmul";
  fn.mem_alloc_gb = 3.0;
  fn.cold_start_s = 1.2;
  // Dense BLAS-style kernel: pegs most of a socket and streams memory.
  Phase p = cpu_phase("multiply", minutes * 60.0, /*cores=*/12.0,
                      /*llc_mb=*/16.0, /*ipc=*/2.6);
  p.demand.membw_gbps = 8.0;
  p.demand.mem_gb = 2.5;
  p.uarch.l1d_mpki = 24.0;
  p.uarch.l2_mpki = 10.0;
  p.uarch.l3_mpki = 3.0;
  fn.phases.push_back(std::move(p));
  return single_function_app("matmul", WorkloadClass::kShortCompute,
                             std::move(fn));
}

App dd(double minutes) {
  FunctionSpec fn;
  fn.name = "dd";
  fn.mem_alloc_gb = 0.5;
  fn.cold_start_s = 0.6;
  fn.phases.push_back(disk_phase("copy", minutes * 60.0, /*disk_mbps=*/350.0));
  return single_function_app("dd", WorkloadClass::kShortCompute, std::move(fn));
}

App iperf(double minutes) {
  FunctionSpec fn;
  fn.name = "iperf";
  fn.mem_alloc_gb = 0.25;
  fn.cold_start_s = 0.4;
  fn.phases.push_back(net_phase("stream", minutes * 60.0, /*net_mbps=*/2000.0));
  return single_function_app("iperf", WorkloadClass::kShortCompute,
                             std::move(fn));
}

App video_processing(double minutes) {
  FunctionSpec fn;
  fn.name = "video-processing";
  fn.mem_alloc_gb = 3.0;
  fn.cold_start_s = 1.5;
  // Decode (disk+cpu), transcode (cpu+memory heavy), encode+upload.
  Phase decode = mixed_phase("decode", minutes * 12.0);
  decode.demand.disk_mbps = 120.0;
  decode.demand.frac_disk = 0.3;
  decode.demand.frac_cpu = 0.6;
  Phase transcode = memory_phase("transcode", minutes * 36.0, /*cores=*/6.0,
                                 /*llc_mb=*/18.0, /*membw_gbps=*/10.0);
  transcode.demand.cores = 6.0;
  transcode.demand.mem_gb = 2.8;
  Phase encode = mixed_phase("encode-upload", minutes * 12.0);
  encode.demand.net_mbps = 200.0;
  encode.demand.frac_net = 0.25;
  fn.phases = {std::move(decode), std::move(transcode), std::move(encode)};
  return single_function_app("video-processing", WorkloadClass::kShortCompute,
                             std::move(fn));
}

App float_operation() {
  FunctionSpec fn;
  fn.name = "float-operation";
  fn.mem_alloc_gb = 0.128;
  fn.cold_start_s = 0.3;
  fn.phases.push_back(cpu_phase("fma-loop", 2.0, 1.0, 1.0, 3.0));
  return single_function_app("float-operation", WorkloadClass::kShortCompute,
                             std::move(fn));
}

App feature_generation() {
  App app;
  app.name = "feature-generation";
  app.cls = WorkloadClass::kShortCompute;

  FunctionSpec extract;
  extract.name = "fg-extract";
  extract.mem_alloc_gb = 1.0;
  extract.phases.push_back(disk_phase("read-dataset", 40.0, 250.0));

  FunctionSpec transform;
  transform.name = "fg-transform";
  transform.mem_alloc_gb = 2.0;
  transform.phases.push_back(
      memory_phase("vectorize", 90.0, 2.0, 10.0, 6.0));

  FunctionSpec aggregate;
  aggregate.name = "fg-aggregate";
  aggregate.mem_alloc_gb = 1.0;
  Phase agg = cpu_phase("reduce", 30.0, 2.0, 6.0, 2.0);
  agg.demand.net_mbps = 150.0;
  agg.demand.frac_net = 0.2;
  agg.demand.frac_cpu = 0.75;
  aggregate.phases.push_back(std::move(agg));

  app.functions = {std::move(extract), std::move(transform),
                   std::move(aggregate)};
  app.graph = CallGraph(3);
  app.graph.set_root(0);
  app.graph.add_edge(0, 1, EdgeKind::kNested);
  app.graph.add_edge(1, 2, EdgeKind::kNested);
  return app;
}

App iot_collector() {
  FunctionSpec fn;
  fn.name = "iot-collector";
  fn.mem_alloc_gb = 0.128;
  fn.cold_start_s = 0.3;
  Phase p = net_phase("collect", 5.0, 50.0);
  p.demand.disk_mbps = 20.0;
  p.demand.frac_disk = 0.1;
  p.demand.frac_net = 0.6;
  fn.phases.push_back(std::move(p));
  return single_function_app("iot-collector", WorkloadClass::kBackground,
                             std::move(fn));
}

App monitoring_probe() {
  FunctionSpec fn;
  fn.name = "monitoring-probe";
  fn.mem_alloc_gb = 0.128;
  fn.cold_start_s = 0.2;
  fn.phases.push_back(cpu_phase("scrape-eval", 1.0, 0.5, 0.5, 1.5));
  return single_function_app("monitoring-probe", WorkloadClass::kBackground,
                             std::move(fn));
}

}  // namespace gsight::wl
