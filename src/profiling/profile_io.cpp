#include "profiling/profile_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace gsight::prof {

namespace {

constexpr const char* kMagic = "gsight-profile-v1";

void expect(std::istream& in, const std::string& tag) {
  std::string token;
  if (!(in >> token) || token != tag) {
    throw std::runtime_error("profile parse error: expected '" + tag +
                             "', got '" + token + "'");
  }
}

// App/function names may contain spaces in principle; encode length-prefixed.
void write_string(std::ostream& out, const std::string& s) {
  out << s.size() << ' ' << s;
}

std::string read_string(std::istream& in) {
  std::size_t n = 0;
  if (!(in >> n)) throw std::runtime_error("profile parse error: string size");
  in.get();  // the separating space
  std::string s(n, '\0');
  if (!in.read(s.data(), static_cast<std::streamsize>(n))) {
    throw std::runtime_error("profile parse error: string body");
  }
  return s;
}

void write_demand(std::ostream& out, const wl::ResourceDemand& d) {
  out << d.cores << ' ' << d.llc_mb << ' ' << d.membw_gbps << ' '
      << d.disk_mbps << ' ' << d.net_mbps << ' ' << d.mem_gb << ' '
      << d.frac_cpu << ' ' << d.frac_disk << ' ' << d.frac_net;
}

wl::ResourceDemand read_demand(std::istream& in) {
  wl::ResourceDemand d;
  if (!(in >> d.cores >> d.llc_mb >> d.membw_gbps >> d.disk_mbps >>
        d.net_mbps >> d.mem_gb >> d.frac_cpu >> d.frac_disk >> d.frac_net)) {
    throw std::runtime_error("profile parse error: demand");
  }
  return d;
}

}  // namespace

void write_profile(std::ostream& out, const AppProfile& profile) {
  out << std::setprecision(17);
  out << kMagic << '\n';
  out << "app ";
  write_string(out, profile.app_name);
  out << ' ' << static_cast<int>(profile.cls) << ' '
      << profile.solo_e2e_p99_s << ' ' << profile.solo_e2e_mean_s << ' '
      << profile.solo_jct_s << ' ' << profile.solo_mean_ipc << ' '
      << profile.functions.size() << '\n';
  for (const auto& fn : profile.functions) {
    out << "fn ";
    write_string(out, fn.fn_name);
    out << ' ' << fn.solo_duration_s << ' ' << fn.solo_mean_latency_s << ' '
        << fn.solo_p99_latency_s << ' ' << fn.solo_ipc << ' '
        << fn.mem_alloc_gb << '\n';
    out << "demand ";
    write_demand(out, fn.demand);
    out << '\n';
    out << "metrics";
    for (double m : fn.metrics) out << ' ' << m;
    out << '\n';
  }
  if (!out) throw std::runtime_error("profile write failed");
}

AppProfile read_profile(std::istream& in) {
  expect(in, kMagic);
  expect(in, "app");
  AppProfile profile;
  profile.app_name = read_string(in);
  int cls = 0;
  std::size_t fn_count = 0;
  if (!(in >> cls >> profile.solo_e2e_p99_s >> profile.solo_e2e_mean_s >>
        profile.solo_jct_s >> profile.solo_mean_ipc >> fn_count)) {
    throw std::runtime_error("profile parse error: app header");
  }
  profile.cls = static_cast<wl::WorkloadClass>(cls);
  profile.functions.resize(fn_count);
  for (auto& fn : profile.functions) {
    expect(in, "fn");
    fn.app_name = profile.app_name;
    fn.fn_name = read_string(in);
    if (!(in >> fn.solo_duration_s >> fn.solo_mean_latency_s >>
          fn.solo_p99_latency_s >> fn.solo_ipc >> fn.mem_alloc_gb)) {
      throw std::runtime_error("profile parse error: fn header");
    }
    expect(in, "demand");
    fn.demand = read_demand(in);
    expect(in, "metrics");
    for (double& m : fn.metrics) {
      if (!(in >> m)) throw std::runtime_error("profile parse error: metrics");
    }
  }
  return profile;
}

std::vector<std::string> store_keys(const ProfileStore& store) {
  std::vector<std::string> keys;
  keys.reserve(store.size());
  for (const auto& [key, profile] : store.all()) keys.push_back(key);
  return keys;
}

void save_store(const ProfileStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << "gsight-store-v1 " << store.size() << '\n';
  for (const auto& [key, profile] : store.all()) {
    out << "key ";
    out << key.size() << ' ' << key << '\n';
    write_profile(out, profile);
  }
  if (!out) throw std::runtime_error("store write failed: " + path);
}

ProfileStore load_store(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  std::string magic;
  std::size_t count = 0;
  if (!(in >> magic >> count) || magic != "gsight-store-v1") {
    throw std::runtime_error("bad store header in " + path);
  }
  ProfileStore store;
  for (std::size_t i = 0; i < count; ++i) {
    expect(in, "key");
    const std::string key = read_string(in);
    AppProfile profile = read_profile(in);
    profile.app_name = key;  // the composite key is the canonical name
    store.put(std::move(profile));
  }
  return store;
}

}  // namespace gsight::prof
