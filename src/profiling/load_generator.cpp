#include "profiling/load_generator.hpp"

#include <algorithm>
#include <memory>

namespace gsight::prof {

double LoadGenerator::run_steps(sim::Platform& platform, std::size_t app,
                                const std::vector<LoadStep>& steps) {
  double t = platform.now();
  for (const auto& step : steps) {
    const double qps = step.qps;
    platform.engine().at(t, [&platform, app, qps] {
      platform.set_open_loop(app, qps);
    });
    t += step.duration_s;
  }
  platform.engine().at(t, [&platform, app] { platform.set_open_loop(app, 0.0); });
  return t;
}

std::vector<LoadStep> LoadGenerator::ramp(double lo, double hi,
                                          std::size_t steps, double step_s) {
  std::vector<LoadStep> out;
  out.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const double frac =
        steps > 1 ? static_cast<double>(i) / static_cast<double>(steps - 1)
                  : 0.0;
    out.push_back({lo + (hi - lo) * frac, step_s});
  }
  return out;
}

std::size_t LoadGenerator::run_closed_loop(sim::Platform& platform,
                                           std::size_t app,
                                           std::size_t concurrency,
                                           double duration_s) {
  const double deadline = platform.now() + duration_s;
  // Each virtual user re-issues a request as soon as the previous one
  // completes; state is shared_ptr'd because completions may fire while
  // the engine is draining after the deadline.
  struct State {
    sim::Platform* platform;
    std::size_t app;
    double deadline;
    std::size_t issued = 0;
  };
  auto state = std::make_shared<State>(State{&platform, app, deadline});
  // Forward declaration via shared function object for self-reference. The
  // lambda must capture itself weakly: a shared self-capture is a reference
  // cycle that leaks the State (found by the ASan stage of check.sh).
  auto issue = std::make_shared<std::function<void()>>();
  const std::weak_ptr<std::function<void()>> weak_issue = issue;
  *issue = [state, weak_issue] {
    if (state->platform->now() >= state->deadline) return;
    ++state->issued;
    state->platform->issue_request(
        state->app, [weak_issue](double, bool) {
          // Completions can fire while the engine drains after the run;
          // by then the loop is gone and there is nothing to re-issue.
          if (const auto fn = weak_issue.lock()) (*fn)();
        });
  };
  for (std::size_t u = 0; u < concurrency; ++u) (*issue)();
  platform.run_until(deadline);
  return state->issued;
}

}  // namespace gsight::prof
