#include "profiling/metric_set.hpp"

#include <algorithm>
#include <cassert>

namespace gsight::prof {

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kBranchMpki: return "branch_mpki";
    case Metric::kCtxSwitches: return "context_switches";
    case Metric::kMemLp: return "mlp";
    case Metric::kL1dMpki: return "l1d_mpki";
    case Metric::kItlbMpki: return "itlb_mpki";
    case Metric::kCpuUtil: return "cpu_utilization";
    case Metric::kMemUtil: return "memory_utilization";
    case Metric::kNetBw: return "network_bandwidth";
    case Metric::kTx: return "tx";
    case Metric::kRx: return "rx";
    case Metric::kL1iMpki: return "l1i_mpki";
    case Metric::kL2Mpki: return "l2_mpki";
    case Metric::kL3Mpki: return "l3_mpki";
    case Metric::kDtlbMpki: return "dtlb_mpki";
    case Metric::kIpc: return "ipc";
    case Metric::kLlcOccupancy: return "llc";
    case Metric::kMemIo: return "memory_io";
    case Metric::kDiskIo: return "disk_io";
    case Metric::kCpuFreq: return "cpu_frequency";
    case Metric::kCount: break;
  }
  return "?";
}

const std::array<Metric, kSelectedCount>& selected_metrics() {
  static const std::array<Metric, kSelectedCount> sel = {
      Metric::kBranchMpki, Metric::kCtxSwitches, Metric::kL1dMpki,
      Metric::kItlbMpki,   Metric::kCpuUtil,     Metric::kMemUtil,
      Metric::kNetBw,      Metric::kTx,          Metric::kRx,
      Metric::kL1iMpki,    Metric::kL2Mpki,      Metric::kL3Mpki,
      Metric::kDtlbMpki,   Metric::kIpc,         Metric::kLlcOccupancy,
      Metric::kCpuFreq,
  };
  return sel;
}

bool is_selected(Metric m) {
  const auto& sel = selected_metrics();
  return std::find(sel.begin(), sel.end(), m) != sel.end();
}

MetricVector metrics_from(const sim::MetricAccum& window, double mem_alloc_gb,
                          double window_s) {
  MetricVector v{};
  // `window` must already be finalized (means over busy time) — both
  // Recorder::windows() and Recorder::total() return finalized values.
  const sim::MetricAccum& w = window;
  const double duty =
      window_s > 0.0 ? std::min(1.0, window.dt / window_s) : 1.0;
  v[static_cast<std::size_t>(Metric::kBranchMpki)] = w.branch_mpki;
  v[static_cast<std::size_t>(Metric::kCtxSwitches)] = duty * w.ctx_per_s;
  v[static_cast<std::size_t>(Metric::kMemLp)] = w.mem_lp;
  v[static_cast<std::size_t>(Metric::kL1dMpki)] = w.l1d_mpki;
  v[static_cast<std::size_t>(Metric::kItlbMpki)] = w.itlb_mpki;
  v[static_cast<std::size_t>(Metric::kCpuUtil)] = duty * w.cpu_util;
  v[static_cast<std::size_t>(Metric::kMemUtil)] =
      mem_alloc_gb > 0.0 ? w.mem_gb / mem_alloc_gb : 0.0;
  const double net = duty * w.net_mbps;
  v[static_cast<std::size_t>(Metric::kNetBw)] = net;
  // TX/RX split of NIC traffic: responses dominate transmit for services.
  v[static_cast<std::size_t>(Metric::kTx)] = 0.4 * net;
  v[static_cast<std::size_t>(Metric::kRx)] = 0.6 * net;
  v[static_cast<std::size_t>(Metric::kL1iMpki)] = w.l1i_mpki;
  v[static_cast<std::size_t>(Metric::kL2Mpki)] = w.l2_mpki;
  v[static_cast<std::size_t>(Metric::kL3Mpki)] = w.l3_mpki;
  v[static_cast<std::size_t>(Metric::kDtlbMpki)] = w.dtlb_mpki;
  v[static_cast<std::size_t>(Metric::kIpc)] = w.ipc;
  v[static_cast<std::size_t>(Metric::kLlcOccupancy)] = w.llc_occupancy_mb;
  v[static_cast<std::size_t>(Metric::kMemIo)] = duty * w.membw_gbps;
  v[static_cast<std::size_t>(Metric::kDiskIo)] = duty * w.disk_mbps;
  v[static_cast<std::size_t>(Metric::kCpuFreq)] = w.cpu_freq_ghz;
  return v;
}

std::array<double, kSelectedCount> select(const MetricVector& all) {
  std::array<double, kSelectedCount> out{};
  const auto& sel = selected_metrics();
  for (std::size_t i = 0; i < sel.size(); ++i) {
    out[i] = all[static_cast<std::size_t>(sel[i])];
  }
  return out;
}

}  // namespace gsight::prof
