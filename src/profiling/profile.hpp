// FunctionProfile — the solo-run signature of one function (§3.2):
// the 19-metric vector plus solo QoS reference points and the demand
// vector that seeds the R (allocation) matrices. ProfileStore collects the
// profiles of all onboarded workloads.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "profiling/metric_set.hpp"
#include "workloads/app.hpp"

namespace gsight::prof {

struct FunctionProfile {
  std::string app_name;
  std::string fn_name;
  MetricVector metrics{};          ///< solo-run means of the 19 metrics
  double solo_duration_s = 0.0;    ///< one execution, solo (lifetime basis)
  double solo_mean_latency_s = 0.0;
  double solo_p99_latency_s = 0.0;
  double solo_ipc = 0.0;
  wl::ResourceDemand demand;       ///< duration-weighted average demand
  double mem_alloc_gb = 0.0;
};

/// Profiles of all functions of one app, in function order, plus app-level
/// solo QoS used for SLA construction.
struct AppProfile {
  std::string app_name;
  wl::WorkloadClass cls = wl::WorkloadClass::kLatencySensitive;
  std::vector<FunctionProfile> functions;
  double solo_e2e_p99_s = 0.0;   ///< LS: solo end-to-end tail latency
  double solo_e2e_mean_s = 0.0;
  double solo_jct_s = 0.0;       ///< SC: solo job completion time
  double solo_mean_ipc = 0.0;    ///< request-weighted across functions

  const FunctionProfile& fn(std::size_t i) const { return functions.at(i); }
};

class ProfileStore {
 public:
  void put(AppProfile profile);
  bool contains(const std::string& app_name) const;
  const AppProfile& get(const std::string& app_name) const;
  std::size_t size() const { return profiles_.size(); }
  /// All profiles by key (ordered) — for persistence and introspection.
  const std::map<std::string, AppProfile>& all() const { return profiles_; }

 private:
  std::map<std::string, AppProfile> profiles_;
};

}  // namespace gsight::prof
