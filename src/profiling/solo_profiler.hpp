// SoloProfiler — Gsight's low-cost profiling path (§3.2): each function
// runs on a dedicated server (no colocation even with its siblings), the
// open-loop load generator drives LS apps for a few simulated minutes, SC
// and BG apps run once, and the recorder's exact time-weighted integrals
// become the profile. Cost is O(M + N) solo runs, the paper's headline
// advantage over pairwise or microbenchmark profiling.
//
// Entry points take a ProfileRequest (what to profile, at which rate)
// rather than positional arguments; batch profiling follows the seed
// contract of DESIGN.md §9 — request i runs under SeedStream::derive(
// config.seed, i) — so core::profile_all can fan the same batch across
// threads with bit-identical results.
#pragma once

#include "profiling/profile.hpp"
#include "sim/platform.hpp"

namespace gsight::prof {

struct SoloProfilerConfig {
  /// Simulated wall-clock of an LS profiling run ("profiles within 5
  /// minutes" in the paper; shorter keeps benches fast and is plenty for
  /// converged means).
  double ls_profile_s = 60.0;
  /// Override for the LS request rate; 0 uses the app's default_qps. A
  /// per-request qps takes precedence over both.
  double ls_qps = 0.0;
  /// Whether cold starts are part of the profile (§5.2: if invocations may
  /// hit cold starts in production, profile with the startup phase).
  bool include_cold_start = false;
  sim::ServerConfig server = sim::ServerConfig::tianjin_testbed();
  sim::InterferenceParams interference;
  std::uint64_t seed = 99;
  /// Cleared by campaign workers (core::profile_all) so concurrent
  /// profiling runs never race on the process-wide default trace sink.
  bool use_default_trace_sink = true;
};

/// One profiling task: the app plus its request-rate operating point.
struct ProfileRequest {
  wl::App app;
  /// LS driving rate for this profile; 0 falls back to config.ls_qps,
  /// then to the app's default_qps. Ignored for SC/BG apps.
  double qps = 0.0;
};

class SoloProfiler {
 public:
  explicit SoloProfiler(SoloProfilerConfig config = {}) : config_(config) {}

  /// Profile one request: fresh platform, one dedicated server per
  /// function.
  AppProfile profile(const ProfileRequest& request) const;
  /// Profile a batch serially under per-index derived seeds. For the
  /// parallel equivalent (identical output), see core::profile_all.
  ProfileStore profile_all(const std::vector<ProfileRequest>& requests) const;

  const SoloProfilerConfig& config() const { return config_; }

 private:
  SoloProfilerConfig config_;
};

}  // namespace gsight::prof
