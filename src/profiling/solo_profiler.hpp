// SoloProfiler — Gsight's low-cost profiling path (§3.2): each function
// runs on a dedicated server (no colocation even with its siblings), the
// open-loop load generator drives LS apps for a few simulated minutes, SC
// and BG apps run once, and the recorder's exact time-weighted integrals
// become the profile. Cost is O(M + N) solo runs, the paper's headline
// advantage over pairwise or microbenchmark profiling.
#pragma once

#include "profiling/profile.hpp"
#include "sim/platform.hpp"

namespace gsight::prof {

struct SoloProfilerConfig {
  /// Simulated wall-clock of an LS profiling run ("profiles within 5
  /// minutes" in the paper; shorter keeps benches fast and is plenty for
  /// converged means).
  double ls_profile_s = 60.0;
  /// Override for the LS request rate; 0 uses the app's default_qps.
  double ls_qps = 0.0;
  /// Whether cold starts are part of the profile (§5.2: if invocations may
  /// hit cold starts in production, profile with the startup phase).
  bool include_cold_start = false;
  sim::ServerConfig server = sim::ServerConfig::tianjin_testbed();
  sim::InterferenceParams interference;
  std::uint64_t seed = 99;
};

class SoloProfiler {
 public:
  explicit SoloProfiler(SoloProfilerConfig config = {}) : config_(config) {}

  /// Profile one app: fresh platform, one dedicated server per function.
  AppProfile profile(const wl::App& app) const;
  /// Profile many apps into a store.
  ProfileStore profile_all(const std::vector<wl::App>& apps) const;

 private:
  SoloProfilerConfig config_;
};

}  // namespace gsight::prof
