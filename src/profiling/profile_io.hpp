// Persistence for profiles and datasets. Profiling is the expensive,
// once-per-workload step of the Gsight pipeline (§3.2); persisting the
// ProfileStore lets deployments reuse profiles across restarts, exactly
// as the paper's artifact ships its initial training dataset as files.
//
// Format: a line-oriented, versioned text format (stable across platforms,
// diff-able, no external dependencies). Not an interchange format — both
// ends are this library.
#pragma once

#include <iosfwd>
#include <string>

#include "profiling/profile.hpp"

namespace gsight::prof {

/// Serialise one app profile / a whole store. Throws std::runtime_error
/// on I/O failure.
void write_profile(std::ostream& out, const AppProfile& profile);
AppProfile read_profile(std::istream& in);

void save_store(const ProfileStore& store, const std::string& path);
ProfileStore load_store(const std::string& path);

/// All profiles currently in a store, in key order (for save_store and
/// introspection).
std::vector<std::string> store_keys(const ProfileStore& store);

}  // namespace gsight::prof
