#include "profiling/solo_profiler.hpp"

#include "stats/seed_stream.hpp"
#include "stats/summary.hpp"

namespace gsight::prof {

AppProfile SoloProfiler::profile(const ProfileRequest& request) const {
  const wl::App& app = request.app;
  sim::PlatformConfig pc;
  pc.servers = app.function_count();
  pc.server = config_.server;
  pc.interference = config_.interference;
  pc.seed = config_.seed;
  pc.use_default_trace_sink = config_.use_default_trace_sink;
  if (!config_.include_cold_start) {
    // Warm profile: make startup free so it never pollutes the metrics.
    pc.instance.startup_cores = 0.0;
    pc.instance.startup_disk_mbps = 0.0;
  }
  sim::Platform platform(pc);

  std::vector<std::size_t> placement(app.function_count());
  for (std::size_t i = 0; i < placement.size(); ++i) placement[i] = i;
  const std::size_t id = platform.deploy(app, placement);

  if (!config_.include_cold_start) {
    // Pre-warm every instance with one throwaway request / job.
    if (app.cls == wl::WorkloadClass::kLatencySensitive) {
      platform.issue_request(id);
    } else {
      platform.submit_job(id);
    }
    platform.run_until(platform.now() + 2.0 * app.total_solo_s() + 30.0);
    platform.recorder().clear();
  }

  const double t0 = platform.now();
  if (app.cls == wl::WorkloadClass::kLatencySensitive) {
    const double qps = request.qps > 0.0
                           ? request.qps
                           : (config_.ls_qps > 0.0 ? config_.ls_qps
                                                   : app.default_qps);
    platform.set_open_loop(id, qps);
    platform.run_until(t0 + config_.ls_profile_s);
    platform.set_open_loop(id, 0.0);
    // Drain in-flight requests.
    platform.run_until(platform.now() + 5.0);
  } else {
    bool done = false;
    platform.submit_job(id, [&done](double) { done = true; });
    // Jobs run at solo speed; leave generous headroom for cold starts.
    platform.run_until(t0 + 2.0 * app.total_solo_s() + 120.0);
    (void)done;
  }

  // Discard pre-warm latencies if cold starts excluded: stats were gathered
  // from t0 on for requests; the pre-warm request's latency is in stats too,
  // so filter by completion time.
  const auto& st = platform.stats(id);
  AppProfile out;
  out.app_name = app.name;
  out.cls = app.cls;
  out.functions.resize(app.function_count());

  stats::Running ipc_all;
  for (std::size_t fn = 0; fn < app.function_count(); ++fn) {
    FunctionProfile& p = out.functions[fn];
    p.app_name = app.name;
    p.fn_name = app.function(fn).name;
    p.mem_alloc_gb = app.function(fn).mem_alloc_gb;
    p.demand = app.function(fn).average_demand();
    p.solo_duration_s = app.function(fn).solo_duration_s();
    const auto total = platform.recorder().total(id, fn);
    // LS profiles duty-scale per-second metrics over the profiling span so
    // the profile reflects the invocation frequency it was taken at. SC/BG
    // jobs run continuously while active, so their rates are the busy
    // means (the horizon includes idle drain time that would otherwise
    // dilute them).
    const double span = app.cls == wl::WorkloadClass::kLatencySensitive
                            ? platform.now() - t0
                            : 0.0;
    p.metrics = metrics_from(total, p.mem_alloc_gb, span);
    p.solo_ipc = total.ipc;  // already a mean after finalized()
    ipc_all.add(p.solo_ipc);

    std::vector<double> lat;
    for (const auto& [t, l] : st.fn_latency[fn]) {
      if (t >= t0) lat.push_back(l);
    }
    if (!lat.empty()) {
      p.solo_mean_latency_s = stats::mean(lat);
      p.solo_p99_latency_s = stats::percentile(std::move(lat), 99.0);
    }
  }
  out.solo_mean_ipc = ipc_all.mean();

  if (app.cls == wl::WorkloadClass::kLatencySensitive) {
    auto e2e = st.e2e_values_between(t0, platform.now() + 1.0);
    if (!e2e.empty()) {
      out.solo_e2e_mean_s = stats::mean(e2e);
      out.solo_e2e_p99_s = stats::percentile(std::move(e2e), 99.0);
    }
  } else if (!st.jct.empty()) {
    out.solo_jct_s = st.jct.back().second;
  }
  return out;
}

ProfileStore SoloProfiler::profile_all(
    const std::vector<ProfileRequest>& requests) const {
  // Per-index derived seeds — the same derivation core::profile_all uses
  // for its parallel tasks, which is what makes the two bit-identical.
  ProfileStore store;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    SoloProfilerConfig task_config = config_;
    task_config.seed = stats::SeedStream::derive(config_.seed, i);
    store.put(SoloProfiler(task_config).profile(requests[i]));
  }
  return store;
}

}  // namespace gsight::prof
