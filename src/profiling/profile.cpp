#include "profiling/profile.hpp"

#include <stdexcept>

namespace gsight::prof {

void ProfileStore::put(AppProfile profile) {
  profiles_[profile.app_name] = std::move(profile);
}

bool ProfileStore::contains(const std::string& app_name) const {
  return profiles_.count(app_name) > 0;
}

const AppProfile& ProfileStore::get(const std::string& app_name) const {
  const auto it = profiles_.find(app_name);
  if (it == profiles_.end()) {
    throw std::out_of_range("no profile for app: " + app_name);
  }
  return it->second;
}

}  // namespace gsight::prof
