// The 19 system-layer + microarchitecture-layer metrics of Table 3, and
// the 16-metric subset Gsight selects (|Pearson| or |Spearman| >= 0.1 —
// MLP, memory IO and disk IO are dropped). Order is part of the public
// contract: overlap-coded feature vectors index metrics by this enum.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "sim/recorder.hpp"

namespace gsight::prof {

enum class Metric : std::size_t {
  kBranchMpki = 0,
  kCtxSwitches,
  kMemLp,        // excluded by selection (|corr| < 0.1)
  kL1dMpki,
  kItlbMpki,
  kCpuUtil,
  kMemUtil,
  kNetBw,
  kTx,
  kRx,
  kL1iMpki,
  kL2Mpki,
  kL3Mpki,
  kDtlbMpki,
  kIpc,
  kLlcOccupancy,
  kMemIo,        // excluded
  kDiskIo,       // excluded
  kCpuFreq,
  kCount,
};

inline constexpr std::size_t kMetricCount =
    static_cast<std::size_t>(Metric::kCount);
/// Number of metrics Gsight feeds into the model (16, per §3.2).
inline constexpr std::size_t kSelectedCount = 16;

const char* metric_name(Metric m);

/// The 16 selected metrics, in feature-vector order.
const std::array<Metric, kSelectedCount>& selected_metrics();
bool is_selected(Metric m);

using MetricVector = std::array<double, kMetricCount>;

/// Derive the full 19-metric vector from a **finalized** recorder window
/// (Recorder::windows()/total() return finalized accumulators; call
/// MetricAccum::finalized() yourself on raw ones).
/// `mem_alloc_gb` supplies the denominator for memory utilisation.
/// `window_s` (if > 0) duty-scales the per-second metrics (context
/// switches, NIC/disk/memory traffic, CPU utilisation) by the busy
/// fraction of the window — what a 1 Hz system monitor reports for a
/// function that only ran part of the second. Per-instruction metrics
/// (MPKIs, IPC, frequency, occupancy) are duty-independent.
MetricVector metrics_from(const sim::MetricAccum& window, double mem_alloc_gb,
                          double window_s = 0.0);

/// Project the 19-metric vector onto the 16 selected entries.
std::array<double, kSelectedCount> select(const MetricVector& all);

}  // namespace gsight::prof
