// LoadGenerator — the open-loop load driver of §6.4 ("we develop an
// open-loop load generator, which can test each LS workload under various
// access loads and generate profiles within 5 minutes"). Wraps the
// platform's Poisson arrival machinery with stepped QPS schedules, and
// offers a closed-loop mode (fixed concurrency) for saturation probing.
#pragma once

#include <vector>

#include "sim/platform.hpp"

namespace gsight::prof {

struct LoadStep {
  double qps = 0.0;
  double duration_s = 0.0;
};

class LoadGenerator {
 public:
  /// Schedule a stepped open-loop profile against `app` starting now;
  /// returns the time at which the schedule ends (load stops then).
  static double run_steps(sim::Platform& platform, std::size_t app,
                          const std::vector<LoadStep>& steps);

  /// Evenly spaced QPS ramp from `lo` to `hi` (inclusive) over `steps`
  /// levels of `step_s` seconds each.
  static std::vector<LoadStep> ramp(double lo, double hi, std::size_t steps,
                                    double step_s);

  /// Closed loop: keep `concurrency` requests in flight for `duration_s`.
  /// Returns the number of requests issued.
  static std::size_t run_closed_loop(sim::Platform& platform, std::size_t app,
                                     std::size_t concurrency,
                                     double duration_s);
};

}  // namespace gsight::prof
