#include "ml/mlp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gsight::ml {

void IncrementalMlp::init(std::size_t input_dim) {
  layers_.clear();
  std::vector<std::size_t> dims;
  dims.push_back(input_dim);
  dims.insert(dims.end(), config_.hidden.begin(), config_.hidden.end());
  dims.push_back(1);  // scalar regression head
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    Layer layer;
    layer.w = Matrix(dims[l + 1], dims[l]);
    layer.b.assign(dims[l + 1], 0.0);
    layer.vw = Matrix(dims[l + 1], dims[l]);
    layer.vb.assign(dims[l + 1], 0.0);
    // He initialisation for ReLU layers.
    const double scale = std::sqrt(2.0 / static_cast<double>(dims[l]));
    for (auto& v : layer.w.flat()) v = rng_.normal(0.0, scale);
    layers_.push_back(std::move(layer));
  }
}

double IncrementalMlp::forward(
    std::span<const double> x,
    std::vector<std::vector<double>>& activations) const {
  activations.clear();
  activations.emplace_back(x.begin(), x.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    auto z = layers_[l].w.matvec(activations.back());
    for (std::size_t j = 0; j < z.size(); ++j) z[j] += layers_[l].b[j];
    if (l + 1 < layers_.size()) {
      for (auto& v : z) v = v > 0.0 ? v : 0.0;  // ReLU
    }
    activations.push_back(std::move(z));
  }
  return activations.back()[0];
}

void IncrementalMlp::backward(
    const std::vector<std::vector<double>>& activations, double grad_out) {
  // delta for the output layer (linear head): dL/dz = grad_out.
  std::vector<double> delta{grad_out};
  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    const auto& input = activations[li];
    // Gradient wrt inputs (needed before weights are updated).
    std::vector<double> grad_in;
    if (li > 0) {
      grad_in = layer.w.matvec_transposed(delta);
      // ReLU derivative of the activation that produced `input`.
      for (std::size_t j = 0; j < grad_in.size(); ++j) {
        if (input[j] <= 0.0) grad_in[j] = 0.0;
      }
    }
    const double lr = config_.learning_rate;
    for (std::size_t o = 0; o < layer.b.size(); ++o) {
      // Per-unit gradient clipping keeps long incremental runs stable on
      // wide inputs (occasional extreme activations otherwise compound
      // through the momentum buffers).
      const double d = std::clamp(delta[o], -3.0, 3.0);
      auto wrow = layer.w.row(o);
      auto vrow = layer.vw.row(o);
      for (std::size_t j = 0; j < wrow.size(); ++j) {
        const double g = d * input[j] + config_.l2 * wrow[j];
        vrow[j] = config_.momentum * vrow[j] - lr * g;
        wrow[j] = std::clamp(wrow[j] + vrow[j], -50.0, 50.0);
      }
      layer.vb[o] = config_.momentum * layer.vb[o] - lr * d;
      layer.b[o] += layer.vb[o];
    }
    delta = std::move(grad_in);
  }
}

void IncrementalMlp::refit(const Dataset& new_batch) {
  if (layers_.empty()) init(new_batch.feature_count());
  Dataset train = scaled_sample(config_.replay_rows);
  std::vector<std::vector<double>> activations;
  for (std::size_t e = 0; e < config_.epochs_per_batch; ++e) {
    const auto order = rng_.permutation(train.size());
    for (std::size_t idx : order) {
      const double pred = forward(train.x(idx), activations);
      // Clipped gradient of 0.5*err^2: bounds the update when early-phase
      // predictions are far off, preventing divergence on wide inputs.
      const double grad =
          std::clamp(pred - train.y(idx), -3.0, 3.0);
      backward(activations, grad);
    }
  }
}

double IncrementalMlp::predict(std::span<const double> x) const {
  if (layers_.empty()) return 0.0;
  const auto xs = scale_x(x);
  std::vector<std::vector<double>> activations;
  return unscale_y(forward(xs, activations));
}

}  // namespace gsight::ml
