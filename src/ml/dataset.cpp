#include "ml/dataset.hpp"

#include <cassert>

namespace gsight::ml {

void Dataset::add(std::span<const double> x, double y) {
  features_.push_row(x);
  targets_.push_back(y);
}

void Dataset::append(const Dataset& other) {
  for (std::size_t i = 0; i < other.size(); ++i) add(other.x(i), other.y(i));
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(feature_count());
  for (std::size_t idx : indices) {
    assert(idx < size());
    out.add(x(idx), y(idx));
  }
  return out;
}

Dataset Dataset::head(std::size_t n) const {
  Dataset out(feature_count());
  const std::size_t m = std::min(n, size());
  for (std::size_t i = 0; i < m; ++i) out.add(x(i), y(i));
  return out;
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           stats::Rng& rng) const {
  assert(train_fraction >= 0.0 && train_fraction <= 1.0);
  const auto order = rng.permutation(size());
  const auto cut = static_cast<std::size_t>(train_fraction *
                                            static_cast<double>(size()));
  Dataset train(feature_count());
  Dataset test(feature_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    (i < cut ? train : test).add(x(order[i]), y(order[i]));
  }
  return {std::move(train), std::move(test)};
}

void Dataset::shuffle(stats::Rng& rng) {
  const auto order = rng.permutation(size());
  Dataset out(feature_count());
  for (std::size_t idx : order) out.add(x(idx), y(idx));
  *this = std::move(out);
}

}  // namespace gsight::ml
