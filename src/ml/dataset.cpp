#include "ml/dataset.hpp"

#include <algorithm>
#include <cassert>

namespace gsight::ml {

void ColumnStore::sync(const Matrix& features) {
  if (features_ != features.cols() || rows_synced_ > features.rows()) {
    flat_.clear();
    features_ = features.cols();
    stride_ = 0;
    rows_synced_ = 0;
  }
  const std::size_t end = features.rows();
  if (rows_synced_ == end || features_ == 0) return;
  if (end > stride_) {
    // Geometric growth keeps appends amortised O(1) per element: columns
    // are re-packed at the wider stride only when the capacity doubles.
    const std::size_t new_stride = std::max(end, 2 * stride_);
    std::vector<double> wider(features_ * new_stride);
    for (std::size_t f = 0; f < features_; ++f) {
      std::copy_n(flat_.data() + f * stride_, rows_synced_,
                  wider.data() + f * new_stride);
    }
    flat_ = std::move(wider);
    stride_ = new_stride;
  }
  for (std::size_t r = rows_synced_; r < end; ++r) {
    const auto row = features.row(r);
    for (std::size_t f = 0; f < features_; ++f) {
      flat_[f * stride_ + r] = row[f];
    }
  }
  rows_synced_ = end;
}

const ColumnStore& Dataset::columns() const {
  columns_.sync(features_);
  return columns_;
}

void Dataset::add(std::span<const double> x, double y) {
  features_.push_row(x);
  targets_.push_back(y);
}

void Dataset::append(const Dataset& other) {
  for (std::size_t i = 0; i < other.size(); ++i) add(other.x(i), other.y(i));
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(feature_count());
  for (std::size_t idx : indices) {
    assert(idx < size());
    out.add(x(idx), y(idx));
  }
  return out;
}

Dataset Dataset::head(std::size_t n) const {
  Dataset out(feature_count());
  const std::size_t m = std::min(n, size());
  for (std::size_t i = 0; i < m; ++i) out.add(x(i), y(i));
  return out;
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           stats::Rng& rng) const {
  assert(train_fraction >= 0.0 && train_fraction <= 1.0);
  const auto order = rng.permutation(size());
  const auto cut = static_cast<std::size_t>(train_fraction *
                                            static_cast<double>(size()));
  Dataset train(feature_count());
  Dataset test(feature_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    (i < cut ? train : test).add(x(order[i]), y(order[i]));
  }
  return {std::move(train), std::move(test)};
}

void Dataset::shuffle(stats::Rng& rng) {
  const auto order = rng.permutation(size());
  Dataset out(feature_count());
  for (std::size_t idx : order) out.add(x(idx), y(idx));
  *this = std::move(out);
}

}  // namespace gsight::ml
