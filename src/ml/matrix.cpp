#include "ml/matrix.hpp"

#include <cassert>

namespace gsight::ml {

void Matrix::push_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  assert(values.size() == cols_);
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

std::span<double> Matrix::append_row() {
  assert(cols_ > 0);
  data_.resize(data_.size() + cols_, 0.0);
  ++rows_;
  return row(rows_ - 1);
}

std::vector<double> Matrix::matvec(std::span<const double> x) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) y[r] = dot(row(r), x);
  return y;
}

std::vector<double> Matrix::matvec_transposed(std::span<const double> x) const {
  assert(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto rr = row(r);
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += xr * rr[c];
  }
  return y;
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace gsight::ml
