// gsight-analyze: hot-path
#include "ml/forest_kernel.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <string_view>

namespace gsight::ml {

void BlockedForest::build(
    std::span<const DecisionTreeRegressor::Node> flat_nodes,
    std::span<const std::size_t> offsets) {
  const std::size_t trees = offsets.empty() ? 0 : offsets.size() - 1;
  const std::size_t total = flat_nodes.size();
  nodes.assign(total, PackedNode{});
  value.assign(total, 0.0);
  root.assign(trees, 0);
  depth.assign(trees, 0);

  // Per-tree breadth-first renumbering. The BFS queue doubles as the
  // local->global map: slot q of `order` is the tree-local index that
  // ends up at global index base + q.
  std::vector<std::uint32_t> order;
  std::vector<std::int32_t> global_of;  // tree-local index -> global index
  std::vector<std::int32_t> level;      // tree-local index -> BFS depth
  for (std::size_t t = 0; t < trees; ++t) {
    const std::size_t base = offsets[t];
    const std::size_t count = offsets[t + 1] - base;
    root[t] = static_cast<std::int32_t>(base);
    if (count == 0) continue;
    const DecisionTreeRegressor::Node* src = flat_nodes.data() + base;

    order.clear();
    order.push_back(0);  // root first, as in the source layout
    global_of.assign(count, 0);
    global_of[0] = static_cast<std::int32_t>(base);
    level.assign(count, 0);
    for (std::size_t head = 0; head < order.size(); ++head) {
      const auto& node = src[order[head]];
      if (node.feature == DecisionTreeRegressor::Node::kLeaf) continue;
      const std::int32_t child_level = level[order[head]] + 1;
      depth[t] = std::max(depth[t], child_level);
      global_of[node.left] = static_cast<std::int32_t>(base + order.size());
      level[node.left] = child_level;
      order.push_back(node.left);
      global_of[node.right] = static_cast<std::int32_t>(base + order.size());
      level[node.right] = child_level;
      order.push_back(node.right);
    }
    assert(order.size() == count);

    for (std::size_t q = 0; q < order.size(); ++q) {
      const auto& node = src[order[q]];
      const std::size_t g = base + q;
      if (node.feature == DecisionTreeRegressor::Node::kLeaf) {
        // Leaves self-loop: kernels step every lane unconditionally for
        // a fixed number of rounds, and a lane parked on a leaf just
        // stays put — no per-lane "done" bookkeeping anywhere.
        nodes[g] = {0.0, kLeaf, static_cast<std::int32_t>(g)};
        value[g] = node.value;
      } else {
        // BFS pushes siblings back to back, so the right child is
        // always left + 1 — the kernels rely on it.
        assert(global_of[node.right] == global_of[node.left] + 1);
        nodes[g] = {node.threshold, static_cast<std::int32_t>(node.feature),
                    global_of[node.left]};
      }
    }
  }
}

namespace forest_kernel {

KernelChoice dispatch_choice() {
  static const KernelChoice choice = [] {
    const char* env = std::getenv("GSIGHT_FOREST_KERNEL");
    if (env != nullptr && std::string_view(env) == "simd" &&
        simd_available()) {
      return KernelChoice::kSimd;
    }
    return KernelChoice::kScalarBlocked;
  }();
  return choice;
}

void leaves(const BlockedForest& forest, std::span<const double> x,
            std::span<double> out) {
  if (dispatch_choice() == KernelChoice::kSimd) {
    leaves_simd(forest, x, out);
  } else {
    leaves_scalar(forest, x, out);
  }
}

void gather(const BlockedForest& forest, const Matrix& xs,
            std::span<double> out) {
  if (dispatch_choice() == KernelChoice::kSimd) {
    gather_simd(forest, xs, out);
  } else {
    gather_scalar(forest, xs, out);
  }
}

double reduce_mean(std::span<const double> leaves) {
  double sum = 0.0;
  for (const double v : leaves) sum += v;
  return sum / static_cast<double>(leaves.size());
}

namespace {

/// One branchless lane step. A parked (leaf) lane has feature == -1, so
/// the active mask zeroes both the clamped feature read (x[0], any
/// value) and the step offset, and the lane self-loops through its own
/// left link; straight-line cmov/and code, no branches.
inline std::int32_t step_lane(const BlockedForest::PackedNode* nodes,
                              const double* x, std::int32_t i) {
  const BlockedForest::PackedNode node = nodes[i];
  const std::int32_t active = ~(node.feature >> 31);  // -1 split, 0 leaf
  const std::int32_t f = node.feature & active;
  const std::int32_t go_right = x[f] <= node.threshold ? 0 : 1;
  return node.left + (go_right & active);
}

}  // namespace

void leaves_scalar(const BlockedForest& forest, std::span<const double> x,
                   std::span<double> leaves) {
  assert(leaves.size() == forest.tree_count());
  const BlockedForest::PackedNode* nodes = forest.nodes.data();
  const std::size_t trees = forest.tree_count();
  for (std::size_t t0 = 0; t0 < trees; t0 += kLaneWidth) {
    const std::size_t width = std::min(kLaneWidth, trees - t0);
    std::int32_t idx[kLaneWidth];
    std::int32_t rounds = 0;
    for (std::size_t k = 0; k < kLaneWidth; ++k) {
      // Tail blocks pad with lane 0's tree; the duplicate walks are
      // cache-warm and their results are simply not stored.
      const std::size_t t = t0 + (k < width ? k : 0);
      idx[k] = forest.root[t];
      rounds = std::max(rounds, forest.depth[t]);
    }
    for (std::int32_t s = 0; s < rounds; ++s) {
      for (std::size_t k = 0; k < kLaneWidth; ++k) {
        idx[k] = step_lane(nodes, x.data(), idx[k]);
      }
    }
    for (std::size_t k = 0; k < width; ++k) {
      leaves[t0 + k] = forest.value[static_cast<std::size_t>(idx[k])];
    }
  }
}

void gather_scalar(const BlockedForest& forest, const Matrix& xs,
                   std::span<double> out) {
  assert(out.size() == xs.rows());
  const BlockedForest::PackedNode* nodes = forest.nodes.data();
  const std::size_t trees = forest.tree_count();
  const std::size_t rows = xs.rows();
  for (std::size_t r0 = 0; r0 < rows; r0 += kLaneWidth) {
    const std::size_t width = std::min(kLaneWidth, rows - r0);
    double acc[kLaneWidth] = {};
    const double* lane_x[kLaneWidth];
    for (std::size_t k = 0; k < kLaneWidth; ++k) {
      // Tail blocks alias the extra lanes onto row r0; their results
      // are not stored.
      lane_x[k] = xs.row(r0 + (k < width ? k : 0)).data();
    }
    // Trees ascending in the inner loop: each lane's accumulator adds
    // leaf values in exactly the reference order, and the tree's hot
    // top levels stay cache-resident while the lane block walks it.
    for (std::size_t t = 0; t < trees; ++t) {
      std::int32_t idx[kLaneWidth];
      for (std::size_t k = 0; k < kLaneWidth; ++k) idx[k] = forest.root[t];
      const std::int32_t rounds = forest.depth[t];
      for (std::int32_t s = 0; s < rounds; ++s) {
        for (std::size_t k = 0; k < kLaneWidth; ++k) {
          idx[k] = step_lane(nodes, lane_x[k], idx[k]);
        }
      }
      for (std::size_t k = 0; k < kLaneWidth; ++k) {
        acc[k] += forest.value[static_cast<std::size_t>(idx[k])];
      }
    }
    for (std::size_t k = 0; k < width; ++k) {
      out[r0 + k] = acc[k] / static_cast<double>(trees);
    }
  }
}

#if !defined(GSIGHT_SIMD_AVX2)

bool simd_available() { return false; }

// Scalar-forwarding definitions keep call sites build-flavor agnostic
// when GSIGHT_SIMD is OFF (or the toolchain lacks AVX2).
void leaves_simd(const BlockedForest& forest, std::span<const double> x,
                 std::span<double> leaves) {
  leaves_scalar(forest, x, leaves);
}

void gather_simd(const BlockedForest& forest, const Matrix& xs,
                 std::span<double> out) {
  gather_scalar(forest, xs, out);
}

#endif  // !GSIGHT_SIMD_AVX2

}  // namespace forest_kernel

}  // namespace gsight::ml
