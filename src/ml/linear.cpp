#include "ml/linear.hpp"

#include <cmath>

namespace gsight::ml {

void IncrementalLinear::sgd_pass(const Dataset& scaled) {
  const auto order = rng_.permutation(scaled.size());
  const double lr = config_.learning_rate;
  for (std::size_t idx : order) {
    const auto x = scaled.x(idx);
    const double err = (dot(w_, x) + b_) - scaled.y(idx);
    // Normalised LMS: dividing by ||x||^2 keeps the update stable for any
    // feature dimensionality (lr < 2 guarantees convergence), which
    // matters for the 2 580-dimensional overlap codes.
    const double step = lr * err / (1.0 + dot(x, x));
    for (std::size_t j = 0; j < w_.size(); ++j) {
      w_[j] -= step * x[j] + lr * config_.l2 * w_[j];
    }
    b_ -= step;
  }
}

void IncrementalLinear::refit(const Dataset& new_batch) {
  if (w_.empty()) w_.assign(new_batch.feature_count(), 0.0);
  // Train on the scaled new batch plus a replay subsample of history.
  Dataset train = scaled_sample(config_.replay_rows);
  for (std::size_t e = 0; e < config_.epochs_per_batch; ++e) sgd_pass(train);
}

double IncrementalLinear::predict(std::span<const double> x) const {
  if (w_.empty()) return 0.0;
  const auto xs = scale_x(x);
  return unscale_y(dot(w_, xs) + b_);
}

void RidgeClosedForm::fit(const Dataset& data) {
  if (data.empty()) return;
  // Augment with a bias column: solve (X^T X + l2 I) w = X^T y.
  const std::size_t d = data.feature_count() + 1;
  std::vector<double> a(d * d, 0.0);  // symmetric normal matrix
  std::vector<double> rhs(d, 0.0);
  std::vector<double> row(d, 1.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto x = data.x(i);
    for (std::size_t j = 0; j + 1 < d; ++j) row[j] = x[j];
    row[d - 1] = 1.0;
    const double y = data.y(i);
    for (std::size_t j = 0; j < d; ++j) {
      rhs[j] += row[j] * y;
      for (std::size_t k = j; k < d; ++k) a[j * d + k] += row[j] * row[k];
    }
  }
  for (std::size_t j = 0; j + 1 < d; ++j) a[j * d + j] += l2_;  // not the bias
  // In-place Cholesky on the upper triangle: a = L^T stored rowwise.
  for (std::size_t j = 0; j < d; ++j) {
    double diag = a[j * d + j];
    for (std::size_t k = 0; k < j; ++k) diag -= a[k * d + j] * a[k * d + j];
    diag = std::sqrt(std::max(diag, 1e-12));
    a[j * d + j] = diag;
    for (std::size_t c = j + 1; c < d; ++c) {
      double v = a[j * d + c];
      for (std::size_t k = 0; k < j; ++k) v -= a[k * d + j] * a[k * d + c];
      a[j * d + c] = v / diag;
    }
  }
  // Forward then backward substitution.
  std::vector<double> z(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    double v = rhs[j];
    for (std::size_t k = 0; k < j; ++k) v -= a[k * d + j] * z[k];
    z[j] = v / a[j * d + j];
  }
  std::vector<double> w(d, 0.0);
  for (std::size_t j = d; j-- > 0;) {
    double v = z[j];
    for (std::size_t k = j + 1; k < d; ++k) v -= a[j * d + k] * w[k];
    w[j] = v / a[j * d + j];
  }
  w_.assign(w.begin(), w.end() - 1);
  b_ = w.back();
}

double RidgeClosedForm::predict(std::span<const double> x) const {
  if (w_.empty()) return 0.0;
  return dot(w_, x) + b_;
}

}  // namespace gsight::ml
