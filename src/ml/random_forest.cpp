// gsight-analyze: hot-path
#include "ml/random_forest.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <optional>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "ml/thread_pool.hpp"

namespace gsight::ml {

void RandomForestRegressor::fit_one(const Dataset& data, std::size_t slot,
                                    std::uint64_t seed) {
  stats::Rng rng(seed);
  const auto n = static_cast<std::size_t>(std::max(
      1.0, config_.bootstrap_fraction * static_cast<double>(data.size())));
  std::vector<std::size_t> rows(n);
  for (auto& r : rows) r = rng.uniform_index(data.size());
  DecisionTreeRegressor tree(config_.tree);
  tree.fit(data, rows, rng);
  trees_[slot] = std::move(tree);
}

void RandomForestRegressor::fit(const Dataset& data, stats::Rng& rng) {
  assert(!data.empty());
  feature_count_ = data.feature_count();
  trees_.assign(config_.n_trees, DecisionTreeRegressor(config_.tree));
  std::vector<std::uint64_t> seeds(config_.n_trees);
  for (auto& s : seeds) s = rng.next();
  // Prime the shared feature-major view on this thread before fanning
  // out: Dataset::columns() is lazy and not safe to first-build
  // concurrently.
  if (config_.tree.kernel == TreeKernel::kColumnar) data.columns();
  std::optional<ThreadPool> local;
  ThreadPool* pool = &ThreadPool::shared();
  if (config_.threads != 0) {
    local.emplace(config_.threads);
    pool = &*local;
  }
  pool->parallel_for(config_.n_trees,
                     [&](std::size_t i) { fit_one(data, i, seeds[i]); });
  rebuild_flat();
}

void RandomForestRegressor::rebuild_flat() {
  flat_offsets_.assign(trees_.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    flat_offsets_[t] = total;
    total += trees_[t].nodes().size();
  }
  flat_offsets_[trees_.size()] = total;
  flat_nodes_.clear();
  flat_nodes_.reserve(total);
  for (const auto& tree : trees_) {
    const auto nodes = tree.nodes();
    flat_nodes_.insert(flat_nodes_.end(), nodes.begin(), nodes.end());
  }
  blocked_.build(flat_nodes_, flat_offsets_);
}

double RandomForestRegressor::traverse(std::size_t tree,
                                       std::span<const double> x) const {
  const DecisionTreeRegressor::Node* base =
      flat_nodes_.data() + flat_offsets_[tree];
  std::uint32_t i = 0;
  for (;;) {
    const auto& node = base[i];
    if (node.feature == DecisionTreeRegressor::Node::kLeaf) return node.value;
    assert(node.feature < x.size());
    i = x[node.feature] <= node.threshold ? node.left : node.right;
  }
}

// noinline keeps exactly one copy of the branchy node walk: duplicated
// inlined copies (e.g. inside predict_batch_reference) measured up to
// 20% slower purely from code-placement luck, which would corrupt the
// reference timings the blocked kernels are judged against.
__attribute__((noinline)) double RandomForestRegressor::predict_reference(
    std::span<const double> x) const {
  if (trees_.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t t = 0; t < trees_.size(); ++t) sum += traverse(t, x);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForestRegressor::predict_batch_reference(
    const Matrix& xs) const {
  std::vector<double> out(xs.rows(), 0.0);
  for (std::size_t r = 0; r < xs.rows(); ++r) {
    out[r] = predict_reference(xs.row(r));
  }
  return out;
}

double RandomForestRegressor::predict(std::span<const double> x) const {
  if (trees_.empty()) return 0.0;
  // Leaf values land in a stack block for any realistic forest (deployed
  // IRFR runs 80–100 trees); the heap path only exists so oversized
  // configs stay correct.
  constexpr std::size_t kMaxStackTrees = 256;
  std::array<double, kMaxStackTrees> stack_leaves;
  std::vector<double> heap_leaves;
  std::span<double> leaves;
  if (trees_.size() <= kMaxStackTrees) {
    leaves = std::span<double>(stack_leaves.data(), trees_.size());
  } else {
    heap_leaves.resize(trees_.size());
    leaves = heap_leaves;
  }
  forest_kernel::leaves(blocked_, x, leaves);
  return forest_kernel::reduce_mean(leaves);
}

void RandomForestRegressor::predict_batch(const Matrix& xs,
                                          std::vector<double>& out) const {
  out.assign(xs.rows(), 0.0);
  if (trees_.empty() || xs.rows() == 0) return;
  if (xs.rows() >= forest_kernel::kGatherMinRows) {
    // Wide batch: trees outer, kLaneWidth rows per step — each tree's
    // breadth-first node block stays cache-resident while the whole
    // batch streams through it.
    forest_kernel::gather(blocked_, xs, out);
    return;
  }
  for (std::size_t r = 0; r < xs.rows(); ++r) {
    out[r] = predict(xs.row(r));
  }
}

std::vector<double> RandomForestRegressor::predict_batch(
    const Matrix& xs) const {
  std::vector<double> out;
  predict_batch(xs, out);
  return out;
}

std::vector<double> RandomForestRegressor::importance() const {
  std::vector<double> total(feature_count_, 0.0);
  double grand = 0.0;
  for (const auto& t : trees_) {
    const auto& imp = t.importance();
    for (std::size_t j = 0; j < imp.size(); ++j) {
      total[j] += imp[j];
      grand += imp[j];
    }
  }
  if (grand > 0.0) {
    for (auto& v : total) v /= grand;
  }
  return total;
}

void RandomForestRegressor::refresh_trees(const Dataset& data, std::size_t count,
                                          stats::Rng& rng) {
  if (!fitted()) {
    fit(data, rng);
    return;
  }
  if (count == 0) return;
  count = std::min(count, trees_.size());
  const auto slots = rng.sample_without_replacement(trees_.size(), count);
  std::vector<std::uint64_t> seeds(count);
  for (auto& s : seeds) s = rng.next();
  if (config_.tree.kernel == TreeKernel::kColumnar) data.columns();
  ThreadPool::shared().parallel_for(
      count, [&](std::size_t i) { fit_one(data, slots[i], seeds[i]); });
  rebuild_flat();
}


void RandomForestRegressor::save(std::ostream& out) const {
  out << std::setprecision(17);
  out << "forest " << trees_.size() << ' ' << feature_count_ << ' '
      << config_.n_trees << ' ' << config_.bootstrap_fraction << ' '
      << config_.tree.max_depth << ' ' << config_.tree.min_samples_split
      << ' ' << config_.tree.min_samples_leaf << ' '
      << config_.tree.max_features << ' '
      << static_cast<int>(config_.tree.split_mode) << '\n';
  for (const auto& tree : trees_) tree.save(out);
  if (!out) throw std::runtime_error("forest write failed");
}

void RandomForestRegressor::load(std::istream& in) {
  // Parse into locals and validate before committing anything: a header
  // that fails validation must not leave the forest half-mutated.
  std::string tag;
  std::size_t tree_count = 0;
  std::size_t feature_count = 0;
  ForestConfig config;
  int split_mode = 0;
  if (!(in >> tag >> tree_count >> feature_count >> config.n_trees >>
        config.bootstrap_fraction >> config.tree.max_depth >>
        config.tree.min_samples_split >> config.tree.min_samples_leaf >>
        config.tree.max_features >> split_mode) ||
      tag != "forest") {
    throw std::runtime_error("forest parse error: header");
  }
  // Bounds checks: a corrupt or hostile header must fail cleanly, not
  // drive a multi-gigabyte trees_.assign or an out-of-range enum.
  constexpr std::size_t kMaxTrees = 100000;
  constexpr std::size_t kMaxFeatures = 1000000;
  if (tree_count > kMaxTrees || config.n_trees > kMaxTrees) {
    throw std::runtime_error("forest parse error: implausible tree count");
  }
  if (feature_count > kMaxFeatures) {
    throw std::runtime_error("forest parse error: implausible feature count");
  }
  if (!std::isfinite(config.bootstrap_fraction) ||
      config.bootstrap_fraction <= 0.0 || config.bootstrap_fraction > 1.0) {
    throw std::runtime_error(
        "forest parse error: bootstrap_fraction outside (0, 1]");
  }
  if (split_mode != static_cast<int>(SplitMode::kBest) &&
      split_mode != static_cast<int>(SplitMode::kRandom)) {
    throw std::runtime_error("forest parse error: unknown split mode");
  }
  if (config.tree.max_depth == 0 || config.tree.min_samples_split < 2 ||
      config.tree.min_samples_leaf == 0) {
    throw std::runtime_error("forest parse error: degenerate tree config");
  }
  config.tree.split_mode = static_cast<SplitMode>(split_mode);
  config.threads = config_.threads;  // runtime knob, not persisted
  config_ = config;
  feature_count_ = feature_count;
  trees_.assign(tree_count, DecisionTreeRegressor(config_.tree));
  for (auto& tree : trees_) tree.load(in);
  rebuild_flat();
}

}  // namespace gsight::ml
