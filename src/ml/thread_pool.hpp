// Work-sharing thread pool used to parallelise random-forest training
// (per-tree) and batched inference. Follows the C++ Core Guidelines
// concurrency rules: joins in the destructor (CP.25-style gsl::joining
// behaviour), no detached threads, exceptions from tasks are rethrown to
// the caller of parallel_for.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gsight::ml {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Run body(i) for i in [0, n), distributing across the pool, and block
  /// until all iterations complete. The first exception thrown by any
  /// iteration is rethrown here. Reentrant calls from within a task are not
  /// supported (they would deadlock on a single-thread pool); callers in
  /// this codebase never nest.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Process-wide pool for library internals.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::queue<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace gsight::ml
