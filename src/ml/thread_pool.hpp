// Work-sharing thread pool used to parallelise random-forest training
// (per-tree) and batched inference. Follows the C++ Core Guidelines
// concurrency rules: joins in the destructor (CP.25-style gsl::joining
// behaviour), no detached threads, exceptions from tasks are rethrown to
// the caller of parallel_for.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/lock.hpp"

namespace gsight::ml {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Run body(i) for i in [0, n), distributing across the pool, and block
  /// until all iterations complete. The first exception thrown by any
  /// iteration is rethrown here. Completion is tracked per batch and the
  /// caller participates in draining its own batch, so concurrent calls
  /// from several threads and nested calls from inside a task are both
  /// safe: a nested call makes progress on the caller's thread even when
  /// every worker is busy.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Enqueue one task and return a future for its result. Unlike
  /// parallel_for this never blocks the caller: it is the fire-and-forget
  /// path (background model training in serve::PredictionService). An
  /// exception thrown by the task is captured in the future and rethrown
  /// by get(). Tasks submitted before destruction are all executed — the
  /// destructor drains the queue before joining.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      core::MutexLock lock(mutex_);
      if (stop_) {
        throw std::runtime_error("ThreadPool::submit on a stopping pool");
      }
      tasks_.push([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

  /// Process-wide pool for library internals.
  static ThreadPool& shared();

 private:
  /// One parallel_for invocation. Queued helper tasks hold a shared_ptr,
  /// so a helper that runs after the batch is exhausted (the caller
  /// already returned) safely no-ops: it reads only `next`/`n`, never the
  /// caller-owned body.
  struct Batch {
    Batch(std::size_t count, const std::function<void(std::size_t)>* fn)
        : n(count), body(fn) {}
    const std::size_t n;
    const std::function<void(std::size_t)>* const body;
    std::atomic<std::size_t> next{0};
    core::Mutex m;
    std::condition_variable cv;
    std::size_t completed GSIGHT_GUARDED_BY(m) = 0;
    std::exception_ptr error GSIGHT_GUARDED_BY(m);
  };

  static void run_batch(Batch& batch);
  void worker_loop();

  /// Written only by the constructor (before any worker can observe the
  /// pool) and joined/cleared by the destructor after stop_ is set, so
  /// the vector itself is never mutated concurrently.
  std::vector<std::thread> workers_;  // gsight-analyze: allow(unguarded-member)
  core::Mutex mutex_;
  std::condition_variable wake_;
  std::queue<std::function<void()>> tasks_ GSIGHT_GUARDED_BY(mutex_);
  bool stop_ GSIGHT_GUARDED_BY(mutex_) = false;
};

}  // namespace gsight::ml
