#include "ml/forest_io.hpp"

#include <fstream>
#include <iomanip>
#include <stdexcept>

namespace gsight::ml {

namespace {

void expect(std::istream& in, const std::string& tag) {
  std::string token;
  if (!(in >> token) || token != tag) {
    throw std::runtime_error("forest_io parse error: expected '" + tag +
                             "', got '" + token + "'");
  }
}

}  // namespace

void write_dataset(std::ostream& out, const Dataset& data) {
  out << std::setprecision(17);
  out << "dataset " << data.size() << ' ' << data.feature_count() << '\n';
  for (std::size_t i = 0; i < data.size(); ++i) {
    out << data.y(i);
    for (double v : data.x(i)) out << ' ' << v;
    out << '\n';
  }
  if (!out) throw std::runtime_error("dataset write failed");
}

Dataset read_dataset(std::istream& in) {
  expect(in, "dataset");
  std::size_t rows = 0, cols = 0;
  if (!(in >> rows >> cols)) {
    throw std::runtime_error("forest_io parse error: dataset header");
  }
  Dataset data(cols);
  std::vector<double> x(cols);
  for (std::size_t i = 0; i < rows; ++i) {
    double y = 0.0;
    if (!(in >> y)) throw std::runtime_error("dataset parse error: target");
    for (double& v : x) {
      if (!(in >> v)) throw std::runtime_error("dataset parse error: row");
    }
    data.add(x, y);
  }
  return data;
}

void write_forest(std::ostream& out, const RandomForestRegressor& forest) {
  forest.save(out);
}

RandomForestRegressor read_forest(std::istream& in) {
  RandomForestRegressor forest;
  forest.load(in);
  return forest;
}

void save_incremental_forest(const IncrementalForest& model,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  const auto& cfg = model.config();
  out << std::setprecision(17);
  out << "gsight-irfr-v1 " << cfg.refresh_fraction << ' '
      << cfg.max_refit_rows << '\n';
  model.forest().save(out);
  write_dataset(out, model.buffer());
  if (!out) throw std::runtime_error("model write failed: " + path);
}

IncrementalForest load_incremental_forest(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  std::string magic;
  IncrementalForestConfig cfg;
  if (!(in >> magic >> cfg.refresh_fraction >> cfg.max_refit_rows) ||
      magic != "gsight-irfr-v1") {
    throw std::runtime_error("bad model header in " + path);
  }
  RandomForestRegressor forest;
  forest.load(in);
  cfg.forest = forest.config();
  IncrementalForest model(cfg);
  Dataset buffer = read_dataset(in);
  model.restore(std::move(forest), std::move(buffer));
  return model;
}

}  // namespace gsight::ml
