#include "ml/forest_io.hpp"

#include <fstream>
#include <iomanip>
#include <stdexcept>

namespace gsight::ml {

namespace {

void expect(std::istream& in, const std::string& tag) {
  std::string token;
  if (!(in >> token) || token != tag) {
    throw std::runtime_error("forest_io parse error: expected '" + tag +
                             "', got '" + token + "'");
  }
}

}  // namespace

void write_dataset(std::ostream& out, const Dataset& data) {
  out << std::setprecision(17);
  out << "dataset " << data.size() << ' ' << data.feature_count() << '\n';
  for (std::size_t i = 0; i < data.size(); ++i) {
    out << data.y(i);
    for (double v : data.x(i)) out << ' ' << v;
    out << '\n';
  }
  if (!out) throw std::runtime_error("dataset write failed");
}

Dataset read_dataset(std::istream& in) {
  expect(in, "dataset");
  std::size_t rows = 0, cols = 0;
  if (!(in >> rows >> cols)) {
    throw std::runtime_error("forest_io parse error: dataset header");
  }
  Dataset data(cols);
  std::vector<double> x(cols);
  for (std::size_t i = 0; i < rows; ++i) {
    double y = 0.0;
    if (!(in >> y)) throw std::runtime_error("dataset parse error: target");
    for (double& v : x) {
      if (!(in >> v)) throw std::runtime_error("dataset parse error: row");
    }
    data.add(x, y);
  }
  return data;
}

void write_forest(std::ostream& out, const RandomForestRegressor& forest) {
  forest.save(out);
}

RandomForestRegressor read_forest(std::istream& in) {
  RandomForestRegressor forest;
  forest.load(in);
  return forest;
}

void save_incremental_forest(const IncrementalForest& model,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_incremental_forest(model, out);
  if (!out) throw std::runtime_error("model write failed: " + path);
}

void save_incremental_forest(const IncrementalForest& model,
                             std::ostream& out) {
  const auto& cfg = model.config();
  out << std::setprecision(17);
  out << "gsight-irfr-v2 " << model.version() << ' ' << cfg.refresh_fraction
      << ' ' << cfg.max_refit_rows << '\n';
  const auto rng = model.rng_state();
  out << "rng " << rng.s[0] << ' ' << rng.s[1] << ' ' << rng.s[2] << ' '
      << rng.s[3] << ' ' << (rng.have_spare_normal ? 1 : 0) << ' '
      << rng.spare_normal << '\n';
  model.forest().save(out);
  write_dataset(out, model.buffer());
  if (!out) throw std::runtime_error("incremental forest write failed");
}

IncrementalForest load_incremental_forest(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  try {
    return load_incremental_forest(in);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " in " + path);
  }
}

IncrementalForest load_incremental_forest(std::istream& in) {
  std::string magic;
  IncrementalForestConfig cfg;
  std::uint64_t version = 0;
  bool have_rng = false;
  stats::Rng::State rng;
  if (!(in >> magic)) throw std::runtime_error("bad model header");
  if (magic == "gsight-irfr-v2") {
    int spare_flag = 0;
    if (!(in >> version >> cfg.refresh_fraction >> cfg.max_refit_rows)) {
      throw std::runtime_error("bad model header");
    }
    expect(in, "rng");
    if (!(in >> rng.s[0] >> rng.s[1] >> rng.s[2] >> rng.s[3] >> spare_flag >>
          rng.spare_normal)) {
      throw std::runtime_error("bad rng state");
    }
    // An all-zero xoshiro state is degenerate (the stream sticks at 0);
    // it can only come from a corrupt or hand-edited file.
    if ((rng.s[0] | rng.s[1] | rng.s[2] | rng.s[3]) == 0) {
      throw std::runtime_error("bad rng state");
    }
    rng.have_spare_normal = spare_flag != 0;
    have_rng = true;
  } else if (magic == "gsight-irfr-v1") {
    // Pre-versioning format: no version stamp, no updater stream. The
    // model resumes at version 0 with a freshly seeded stream (further
    // updates are valid but not bit-identical to the uninterrupted run).
    if (!(in >> cfg.refresh_fraction >> cfg.max_refit_rows)) {
      throw std::runtime_error("bad model header");
    }
  } else {
    throw std::runtime_error("bad model header");
  }
  RandomForestRegressor forest;
  forest.load(in);
  cfg.forest = forest.config();
  IncrementalForest model(cfg);
  Dataset buffer = read_dataset(in);
  model.restore(std::move(forest), std::move(buffer), version);
  if (have_rng) model.set_rng_state(rng);
  return model;
}

}  // namespace gsight::ml
