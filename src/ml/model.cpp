#include "ml/model.hpp"

#include <cassert>

namespace gsight::ml {

void IncrementalRegressor::predict_batch(const Matrix& xs,
                                         std::vector<double>& out) const {
  out.resize(xs.rows());
  for (std::size_t i = 0; i < xs.rows(); ++i) out[i] = predict(xs.row(i));
}

std::vector<double> IncrementalRegressor::predict_batch(const Matrix& xs) const {
  std::vector<double> out;
  predict_batch(xs, out);
  return out;
}

std::vector<double> IncrementalRegressor::predict_all(const Dataset& data) const {
  return predict_batch(data.features());
}

void BufferedRegressor::partial_fit(const Dataset& batch) {
  if (batch.empty()) return;
  buffer_.append(batch);
  x_scaler_.partial_fit(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) y_stats_.add(batch.y(i));
  refit(batch);
}

double BufferedRegressor::scale_y(double y) const {
  const double sd = std::max(y_stats_.stddev(), 1e-12);
  return (y - y_stats_.mean()) / sd;
}

double BufferedRegressor::unscale_y(double y_scaled) const {
  const double sd = std::max(y_stats_.stddev(), 1e-12);
  return y_scaled * sd + y_stats_.mean();
}

Dataset BufferedRegressor::scaled_buffer() const {
  Dataset out(buffer_.feature_count());
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    out.add(x_scaler_.transform(buffer_.x(i)), scale_y(buffer_.y(i)));
  }
  return out;
}

Dataset BufferedRegressor::scaled_sample(std::size_t n) {
  if (buffer_.size() <= n) return scaled_buffer();
  const auto rows = rng_.sample_without_replacement(buffer_.size(), n);
  Dataset out(buffer_.feature_count());
  for (std::size_t r : rows) {
    out.add(x_scaler_.transform(buffer_.x(r)), scale_y(buffer_.y(r)));
  }
  return out;
}

}  // namespace gsight::ml
