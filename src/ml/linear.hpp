// ILR — incremental linear regression trained by mini-batch SGD with L2
// regularisation on standardised features/target. Each online batch runs a
// few SGD epochs over the new samples plus a replay subsample of the buffer
// (replay prevents catastrophic forgetting of earlier colocation regimes).
#pragma once

#include "ml/model.hpp"

namespace gsight::ml {

struct LinearConfig {
  double learning_rate = 0.02;
  double l2 = 1e-4;
  std::size_t epochs_per_batch = 5;
  std::size_t replay_rows = 1024;
};

class IncrementalLinear final : public BufferedRegressor {
 public:
  explicit IncrementalLinear(LinearConfig config = {}, std::uint64_t seed = 1)
      : BufferedRegressor(seed), config_(config) {}

  double predict(std::span<const double> x) const override;
  std::string name() const override { return "ILR"; }

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }

 protected:
  void refit(const Dataset& new_batch) override;

 private:
  void sgd_pass(const Dataset& scaled);

  LinearConfig config_;
  std::vector<double> w_;
  double b_ = 0.0;
};

/// Batch ridge regression solved in closed form (normal equations +
/// Cholesky). Only suitable for low-dimensional feature spaces (the ESP
/// and Pythia baselines use a few dozen features); Gsight's own
/// high-dimensional encodings go through the SGD/forest learners instead.
class RidgeClosedForm {
 public:
  explicit RidgeClosedForm(double l2 = 1e-3) : l2_(l2) {}

  /// Fit on the dataset (refits from scratch; callers keep their own
  /// sample buffers for incrementality).
  void fit(const Dataset& data);
  double predict(std::span<const double> x) const;
  bool fitted() const { return !w_.empty(); }

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }

 private:
  double l2_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace gsight::ml
