// ISVR — incremental linear support-vector regression: SGD on the
// ε-insensitive hinge loss with L2 regularisation (Pegasos-style), over
// standardised features/target, with history replay like ILR.
#pragma once

#include "ml/model.hpp"

namespace gsight::ml {

struct SvrConfig {
  double epsilon = 0.02;  // insensitivity tube half-width (in scaled-y units)
  double learning_rate = 0.05;
  double l2 = 1e-4;
  std::size_t epochs_per_batch = 5;
  std::size_t replay_rows = 1024;
};

class IncrementalSvr final : public BufferedRegressor {
 public:
  explicit IncrementalSvr(SvrConfig config = {}, std::uint64_t seed = 1)
      : BufferedRegressor(seed), config_(config) {}

  double predict(std::span<const double> x) const override;
  std::string name() const override { return "ISVR"; }

 protected:
  void refit(const Dataset& new_batch) override;

 private:
  SvrConfig config_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace gsight::ml
