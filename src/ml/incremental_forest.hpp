// IRFR — Incremental Random Forest Regression, the learning model Gsight
// deploys (§3.4). Incrementality is obtained by keeping the full sample
// buffer and, on each online batch, retraining a random fraction of the
// trees on fresh bootstraps of the extended buffer. Early batches therefore
// behave like batch retraining (fast convergence), later batches amortise
// to a constant per-update cost, matching the ~25 ms update figure in §6.4.
#pragma once

#include "ml/model.hpp"
#include "ml/random_forest.hpp"

namespace gsight::ml {

struct IncrementalForestConfig {
  ForestConfig forest;
  /// Fraction of trees retrained per online batch.
  double refresh_fraction = 0.25;
  /// Buffer size beyond which refits use a random subsample of this many
  /// rows (bounds per-update latency on long runs). 0 = unlimited.
  std::size_t max_refit_rows = 20000;
};

class IncrementalForest final : public IncrementalRegressor {
 public:
  explicit IncrementalForest(IncrementalForestConfig config = {},
                             std::uint64_t seed = 1);

  void partial_fit(const Dataset& batch) override;
  double predict(std::span<const double> x) const override;
  using IncrementalRegressor::predict_batch;
  void predict_batch(const Matrix& xs, std::vector<double>& out) const override;
  std::string name() const override { return "IRFR"; }
  std::size_t samples_seen() const override { return buffer_.size(); }

  /// Normalised impurity importance of each input feature.
  std::vector<double> importance() const { return forest_.importance(); }
  const RandomForestRegressor& forest() const { return forest_; }
  const Dataset& buffer() const { return buffer_; }
  const IncrementalForestConfig& config() const { return config_; }

  /// Monotonic model version: 0 until the first partial_fit, then bumped
  /// once per absorbed batch. Serving snapshots (serve::SnapshotSlot) use
  /// it to order hot-swaps and reject stale publishes; forest_io persists
  /// it so a reloaded model keeps counting where it left off.
  std::uint64_t version() const { return version_; }

  /// Restore persisted state (see ml/forest_io.hpp).
  void restore(RandomForestRegressor forest, Dataset buffer,
               std::uint64_t version = 0) {
    forest_ = std::move(forest);
    buffer_ = std::move(buffer);
    version_ = version;
  }

  /// Updater-stream state, persisted alongside the forest so a reloaded
  /// model continues its refresh schedule bit-identically to an
  /// uninterrupted run (ForestIo.MidStreamRoundTrip).
  stats::Rng::State rng_state() const { return rng_.state(); }
  void set_rng_state(const stats::Rng::State& st) { rng_.set_state(st); }

 private:
  /// The rows the next refresh trains on. Returns buffer_ itself (no
  /// copy) unless the max_refit_rows cap forces a subsample, which is
  /// materialised into subsample_. Training straight off buffer_ is what
  /// lets its feature-major ColumnStore persist across refreshes: each
  /// partial_fit only transposes the new batch in, never the whole
  /// buffer.
  const Dataset& refit_view();

  IncrementalForestConfig config_;
  RandomForestRegressor forest_;
  Dataset buffer_;
  Dataset subsample_;  ///< scratch for the capped-refit path
  stats::Rng rng_;
  std::uint64_t version_ = 0;
};

}  // namespace gsight::ml
