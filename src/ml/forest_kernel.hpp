// Blocked forest-inference kernels. The flattened per-tree node arrays of
// RandomForestRegressor are re-laid into one breadth-first, structure-of-
// arrays buffer (BlockedForest) so several independent tree walks advance
// per step instead of one: the serial bottleneck of tree inference is the
// load-to-branch dependency chain (gather x[feature], compare, pick a
// child, repeat), and K interleaved walks give the core K independent
// chains to overlap. Two blockings cover the two query shapes:
//
//   tree-lane  — one query row, kLaneWidth trees advance together. The
//                shape of predict() and of narrow batches: the (wide) row
//                stays cache-resident while every tree visits it.
//   row-lane   — one tree, kLaneWidth query rows advance together, trees
//                outer ("leaf-index gather"). The shape of wide batches:
//                a tree's breadth-first node block stays cache-resident
//                while the whole batch streams through it.
//
// Each blocking has a portable scalar kernel (interleaved independent
// walks, plain control flow) and an AVX2 kernel (node indices in integer
// lanes, node fields and feature values fetched with hardware gathers).
// The AVX2 kernels are compiled only when the GSIGHT_SIMD CMake option is
// ON and the compiler supports -mavx2; otherwise they forward to the
// scalar-blocked kernels, so call sites never branch on the build flavor.
//
// Bit-identity contract: a tree walk performs no arithmetic — only
// `x[feature] <= threshold` comparisons — so every kernel reaches exactly
// the leaf the reference walk reaches, and all of them accumulate the
// per-tree leaf values in ascending tree order with one final divide.
// Every result is therefore bit-identical to the reference kernel; the
// golden/checksum suite in tests/ml/test_forest_equivalence.cpp enforces
// this for every compiled variant.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/matrix.hpp"

namespace gsight::ml {

/// Breadth-first, node-blocked mirror of a fitted forest. Everything a
/// traversal step reads — threshold, feature, left-child index — packs
/// into one 16-byte record, so a node visit touches exactly one cache
/// line instead of one per field-array; leaf values live in a separate
/// array read once per finished walk. Children are global indices (no
/// per-tree base to add back), each tree's nodes are contiguous in BFS
/// order so the first levels — the hottest — share cache lines, and BFS
/// emits siblings adjacently, which makes `right == left + 1` a layout
/// invariant: kernels never store or fetch a right link, they add the
/// comparison result to `left`.
struct BlockedForest {
  /// Split feature per node; kLeaf marks a leaf. Stored as int32 so the
  /// SIMD kernels can gather it directly into integer lanes.
  static constexpr std::int32_t kLeaf = -1;

  /// One traversal step's working set. 16 bytes so a node index doubles
  /// as a scaled gather index (see the AVX2 kernels) and four hot nodes
  /// fit per cache line. Leaves carry feature == kLeaf and left == own
  /// index (self-loop), letting kernels step parked lanes harmlessly.
  struct PackedNode {
    double threshold = 0.0;
    std::int32_t feature = kLeaf;
    std::int32_t left = 0;  ///< global left child; right is left + 1
  };
  static_assert(sizeof(PackedNode) == 16, "gather indexing relies on this");

  std::vector<PackedNode> nodes;
  std::vector<double> value;        ///< leaf prediction (0 for splits)
  std::vector<std::int32_t> root;   ///< per-tree root (== tree base)
  std::vector<std::int32_t> depth;  ///< per-tree max root->leaf edge count

  std::size_t tree_count() const { return root.size(); }
  std::size_t node_count() const { return nodes.size(); }
  bool empty() const { return root.empty(); }

  /// Rebuild from the concatenated flat node arrays (tree t occupies
  /// [offsets[t], offsets[t+1]) with tree-local child links, root first).
  void build(std::span<const DecisionTreeRegressor::Node> flat_nodes,
             std::span<const std::size_t> offsets);
};

namespace forest_kernel {

/// Independent tree walks interleaved per step. A step's critical path
/// is two dependent loads (node fields, then x[feature]), so one walk
/// leaves the core mostly idle; 8 interleaved walks — two AVX2 vectors'
/// worth, or 8 scalar chains — keep enough independent load chains in
/// flight to hide that latency without spilling lane state. The kernels
/// are branchless inside a block: every lane steps exactly
/// max(depth[t]) times (leaves self-loop, so parked lanes are no-ops),
/// trading a few wasted lane-steps for zero unpredictable branches.
inline constexpr std::size_t kLaneWidth = 8;

/// Row count at or above which predict_batch dispatches to the row-lane
/// gather kernels instead of per-row tree-lane blocks.
inline constexpr std::size_t kGatherMinRows = 8;

/// True when the AVX2 kernels were compiled in (GSIGHT_SIMD=ON and the
/// compiler supported -mavx2); the *_simd entry points forward to the
/// scalar-blocked kernels otherwise.
bool simd_available();

/// Which kernel family the leaves()/gather() entry points run. All
/// families are bit-identical, so this only moves time around: the
/// scalar-blocked kernels win on parts whose gather instructions
/// microcode-serialize (most current x86), the AVX2 kernels on parts
/// with fast hardware gathers. Resolved once per process from the
/// GSIGHT_FOREST_KERNEL environment variable ("scalar" | "simd");
/// unset or unrecognised picks scalar-blocked, and "simd" silently
/// degrades to scalar-blocked when AVX2 was not compiled in.
enum class KernelChoice { kScalarBlocked, kSimd };
KernelChoice dispatch_choice();

/// Dispatching entry points — what RandomForestRegressor's hot paths
/// call. Same contracts as the *_scalar/*_simd variants below.
void leaves(const BlockedForest& forest, std::span<const double> x,
            std::span<double> leaves);
void gather(const BlockedForest& forest, const Matrix& xs,
            std::span<double> out);

/// Tree-lane blocked: leaf value of every tree for one query row, written
/// to leaves[t] (leaves.size() == forest.tree_count()).
void leaves_scalar(const BlockedForest& forest, std::span<const double> x,
                   std::span<double> leaves);
void leaves_simd(const BlockedForest& forest, std::span<const double> x,
                 std::span<double> leaves);

/// Row-lane gather: full batched prediction, trees outer, kLaneWidth rows
/// advancing per step. out.size() == xs.rows(); accumulates per-tree leaf
/// values in ascending tree order, then divides once — the reference
/// summation order.
void gather_scalar(const BlockedForest& forest, const Matrix& xs,
                   std::span<double> out);
void gather_simd(const BlockedForest& forest, const Matrix& xs,
                 std::span<double> out);

/// Mean of `leaves` accumulated in ascending tree order (the exact
/// reduction the reference kernel performs).
double reduce_mean(std::span<const double> leaves);

}  // namespace forest_kernel

}  // namespace gsight::ml
