// Supervised-regression dataset: a feature matrix plus a target vector.
// Supports the operations the incremental learners need: append, subset,
// shuffle/split, and growing sample buffers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/matrix.hpp"
#include "stats/rng.hpp"

namespace gsight::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t feature_count) : features_(0, feature_count) {}

  void add(std::span<const double> x, double y);
  void append(const Dataset& other);

  std::size_t size() const { return targets_.size(); }
  bool empty() const { return targets_.empty(); }
  std::size_t feature_count() const { return features_.cols(); }

  std::span<const double> x(std::size_t i) const { return features_.row(i); }
  double y(std::size_t i) const { return targets_[i]; }
  const Matrix& features() const { return features_; }
  const std::vector<double>& targets() const { return targets_; }

  /// Rows selected by index (bootstrap resamples, CV folds, ...).
  Dataset subset(std::span<const std::size_t> indices) const;
  /// First `n` rows (for learning curves).
  Dataset head(std::size_t n) const;
  /// Random (train, test) split with the given training fraction.
  std::pair<Dataset, Dataset> split(double train_fraction,
                                    stats::Rng& rng) const;
  /// Deterministic shuffle of rows.
  void shuffle(stats::Rng& rng);

 private:
  Matrix features_;
  std::vector<double> targets_;
};

}  // namespace gsight::ml
