// Supervised-regression dataset: a feature matrix plus a target vector.
// Supports the operations the incremental learners need: append, subset,
// shuffle/split, and growing sample buffers. A lazily built feature-major
// mirror (ColumnStore) backs the columnar tree-training fast path.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/matrix.hpp"
#include "stats/rng.hpp"

namespace gsight::ml {

/// Feature-major mirror of a row-major feature matrix: all columns in one
/// contiguous buffer at a fixed stride, so split scans in tree training
/// stride unit-length instead of `cols()` and `column(f)` is a pure
/// pointer offset (no per-column vector metadata between the scan and the
/// data). Syncs are incremental — rows appended to the source matrix
/// since the last sync are transposed in place; the row capacity grows
/// geometrically, so full re-transposes amortise away. That is what makes
/// IncrementalForest refreshes cheap: each partial_fit only pays for the
/// new batch, not the whole buffer.
class ColumnStore {
 public:
  std::size_t rows() const { return rows_synced_; }
  std::size_t feature_count() const { return features_; }
  std::span<const double> column(std::size_t f) const {
    return {flat_.data() + f * stride_, rows_synced_};
  }

  /// Mirror `features` exactly: appends rows [rows(), features.rows());
  /// rebuilds from scratch only if the source shrank or changed width.
  void sync(const Matrix& features);

 private:
  std::vector<double> flat_;      // features_ columns, each stride_ long
  std::size_t features_ = 0;
  std::size_t stride_ = 0;        // per-column row capacity
  std::size_t rows_synced_ = 0;
};

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t feature_count) : features_(0, feature_count) {}

  void add(std::span<const double> x, double y);
  void append(const Dataset& other);

  std::size_t size() const { return targets_.size(); }
  bool empty() const { return targets_.empty(); }
  std::size_t feature_count() const { return features_.cols(); }

  std::span<const double> x(std::size_t i) const { return features_.row(i); }
  double y(std::size_t i) const { return targets_[i]; }
  const Matrix& features() const { return features_; }
  const std::vector<double>& targets() const { return targets_; }

  /// Rows selected by index (bootstrap resamples, CV folds, ...).
  Dataset subset(std::span<const std::size_t> indices) const;
  /// First `n` rows (for learning curves).
  Dataset head(std::size_t n) const;
  /// Random (train, test) split with the given training fraction.
  std::pair<Dataset, Dataset> split(double train_fraction,
                                    stats::Rng& rng) const;
  /// Deterministic shuffle of rows.
  void shuffle(stats::Rng& rng);

  /// Feature-major view of features(), built lazily and extended
  /// incrementally as rows are added. NOT thread-safe while it (re)builds:
  /// callers that share one Dataset across threads (forest training) must
  /// prime it with a single call before fanning out; afterwards concurrent
  /// use is read-only and safe.
  const ColumnStore& columns() const;

 private:
  Matrix features_;
  std::vector<double> targets_;
  mutable ColumnStore columns_;  // lazy cache; see columns()
};

}  // namespace gsight::ml
