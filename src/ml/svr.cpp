#include "ml/svr.hpp"

#include <cmath>

namespace gsight::ml {

void IncrementalSvr::refit(const Dataset& new_batch) {
  if (w_.empty()) w_.assign(new_batch.feature_count(), 0.0);
  Dataset train = scaled_sample(config_.replay_rows);
  const double lr = config_.learning_rate;
  for (std::size_t e = 0; e < config_.epochs_per_batch; ++e) {
    const auto order = rng_.permutation(train.size());
    for (std::size_t idx : order) {
      const auto x = train.x(idx);
      const double resid = (dot(w_, x) + b_) - train.y(idx);
      // Subgradient of the epsilon-insensitive loss, with the step
      // normalised by ||x||^2 for stability in high dimensions.
      double g = 0.0;
      if (resid > config_.epsilon) {
        g = 1.0;
      } else if (resid < -config_.epsilon) {
        g = -1.0;
      }
      const double step = lr * g / (1.0 + std::sqrt(dot(x, x)));
      for (std::size_t j = 0; j < w_.size(); ++j) {
        w_[j] -= step * x[j] + lr * config_.l2 * w_[j];
      }
      b_ -= step;
    }
  }
}

double IncrementalSvr::predict(std::span<const double> x) const {
  if (w_.empty()) return 0.0;
  const auto xs = scale_x(x);
  return unscale_y(dot(w_, xs) + b_);
}

}  // namespace gsight::ml
