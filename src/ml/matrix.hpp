// Minimal dense row-major matrix for the ML library. Deliberately small:
// the learners below need row access, matvec, and transpose-matvec — not a
// full BLAS. Rows are contiguous so tree training can scan features with
// stride `cols()`.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gsight::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// Append one row; the row length must equal cols() (or define cols()
  /// when the matrix is still empty).
  void push_row(std::span<const double> values);
  /// Append one zero-filled row and return it for in-place writing — the
  /// zero-copy encode path (core::FeatureEncoder::encode_into targets the
  /// returned span directly). cols() must already be set.
  std::span<double> append_row();
  /// Preallocate storage for `rows` total rows (batch builders).
  void reserve_rows(std::size_t rows) { data_.reserve(rows * cols_); }
  /// Drop all rows but keep cols() and the allocation — scratch matrices
  /// on hot paths reset with this instead of reallocating.
  void clear_rows() {
    rows_ = 0;
    data_.clear();
  }

  /// y = M x  (x has cols() entries, result has rows()).
  std::vector<double> matvec(std::span<const double> x) const;
  /// y = M^T x  (x has rows() entries, result has cols()).
  std::vector<double> matvec_transposed(std::span<const double> x) const;

  const std::vector<double>& flat() const { return data_; }
  std::vector<double>& flat() { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product of equally sized spans.
double dot(std::span<const double> a, std::span<const double> b);
/// Squared Euclidean distance between equally sized spans.
double squared_distance(std::span<const double> a, std::span<const double> b);

}  // namespace gsight::ml
