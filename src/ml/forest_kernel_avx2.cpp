// gsight-analyze: hot-path
// AVX2 variants of the blocked forest kernels. Compiled only when the
// GSIGHT_SIMD CMake option is ON (this translation unit gets -mavx2 and
// GSIGHT_SIMD_AVX2 from src/CMakeLists.txt); forest_kernel.cpp provides
// scalar-forwarding definitions otherwise.
//
// Eight walks advance per round as two __m128i index vectors (4 x int32
// each). A 16-byte PackedNode lets a node index double as a gather
// index (idx * 2 at scale 8), so one round needs three gathers per
// vector — threshold and feature+left from the same node line, plus the
// feature value:
//
//   thr     = gather_pd(nodes, 2*idx)        the node's first 8 bytes
//   f, left = gather_epi64(nodes + 8, 2*idx) second 8 bytes, split into
//                                            dword lanes by permute
//   active  = f >= 0                         leaves carry feature == -1
//   xv      = gather_pd(x, f & active)       clamp leaf lanes to x[0]
//   go_left = xv <= thr                      _CMP_LE_OQ: NaN -> false,
//                                            exactly the scalar ternary
//   idx     = left + (!go_left & active)     BFS layout: right == left+1
//
// There is no per-round termination test: blocks run exactly
// max(depth[t]) rounds and leaf nodes self-loop (left == own index and
// active == 0, arranged by BlockedForest::build), so lanes that reach a
// leaf early park there. The only floating-point operations are the
// comparisons and, in the gather kernel, per-lane leaf-value additions
// in ascending tree order — the reference summation — so results are
// bit-identical to the scalar walk by construction.
#include "ml/forest_kernel.hpp"

#if defined(GSIGHT_SIMD_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cassert>

namespace gsight::ml::forest_kernel {

namespace {

/// Pick the dword lanes selected by `perm` out of a 256-bit vector into
/// the low 128 bits (used to split the 64-bit {feature, left} gather
/// into two int32 vectors and to narrow 64-bit compare masks).
inline __m128i pick_dwords(__m256i wide, __m256i perm) {
  return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(wide, perm));
}

/// One branchless traversal round for four lanes; `xidx` maps the
/// clamped feature lanes to gather indices into `xbase` (identity for
/// the tree-lane kernel, +row offsets for the row-lane kernel).
template <typename XIndex>
inline __m128i step(const BlockedForest& forest, const double* xbase,
                    __m128i idx, XIndex&& xidx) {
  const __m256i even = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m256i odd = _mm256_setr_epi32(1, 3, 5, 7, 1, 3, 5, 7);
  // PackedNode is 16 bytes and gathers scale by at most 8, so index by
  // 2*idx: the threshold sits at the node's first 8 bytes, the packed
  // {feature, left} dwords at the second.
  const __m128i idx2 = _mm_slli_epi32(idx, 1);
  const auto* node_base = reinterpret_cast<const double*>(forest.nodes.data());
  const auto* fl_base = reinterpret_cast<const long long*>(
      reinterpret_cast<const char*>(forest.nodes.data()) + 8);
  const __m256d thr = _mm256_i32gather_pd(node_base, idx2, 8);
  const __m256i fl = _mm256_i32gather_epi64(fl_base, idx2, 8);
  const __m128i f = pick_dwords(fl, even);
  const __m128i lft = pick_dwords(fl, odd);
  const __m128i active = _mm_cmpgt_epi32(f, _mm_set1_epi32(-1));
  const __m128i f_clamped = _mm_and_si128(f, active);
  const __m256d xv = _mm256_i32gather_pd(xbase, xidx(f_clamped), 8);
  const __m256d go_left = _mm256_cmp_pd(xv, thr, _CMP_LE_OQ);
  const __m128i gl = pick_dwords(_mm256_castpd_si256(go_left), even);
  const __m128i go_right_one =
      _mm_and_si128(_mm_andnot_si128(gl, _mm_set1_epi32(1)), active);
  return _mm_add_epi32(lft, go_right_one);
}

}  // namespace

bool simd_available() { return true; }

void leaves_simd(const BlockedForest& forest, std::span<const double> x,
                 std::span<double> leaves) {
  static_assert(kLaneWidth == 8, "kernel advances two 4-lane vectors");
  assert(leaves.size() == forest.tree_count());
  const std::size_t trees = forest.tree_count();
  const auto identity = [](__m128i f) { return f; };
  for (std::size_t t0 = 0; t0 < trees; t0 += kLaneWidth) {
    const std::size_t width = std::min(kLaneWidth, trees - t0);
    // Tail blocks pad with lane 0's root; the duplicate walks are
    // cache-warm and their results are simply not stored.
    alignas(16) std::int32_t lanes[kLaneWidth];
    std::int32_t rounds = 0;
    for (std::size_t k = 0; k < kLaneWidth; ++k) {
      const std::size_t t = t0 + (k < width ? k : 0);
      lanes[k] = forest.root[t];
      rounds = std::max(rounds, forest.depth[t]);
    }
    __m128i idx_a = _mm_load_si128(reinterpret_cast<const __m128i*>(lanes));
    __m128i idx_b = _mm_load_si128(reinterpret_cast<const __m128i*>(lanes + 4));
    for (std::int32_t s = 0; s < rounds; ++s) {
      idx_a = step(forest, x.data(), idx_a, identity);
      idx_b = step(forest, x.data(), idx_b, identity);
    }
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), idx_a);
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes + 4), idx_b);
    for (std::size_t k = 0; k < width; ++k) {
      leaves[t0 + k] = forest.value[static_cast<std::size_t>(lanes[k])];
    }
  }
}

void gather_simd(const BlockedForest& forest, const Matrix& xs,
                 std::span<double> out) {
  static_assert(kLaneWidth == 8, "kernel advances two 4-lane vectors");
  assert(out.size() == xs.rows());
  const std::size_t rows = xs.rows();
  const std::size_t cols = xs.cols();
  const std::size_t trees = forest.tree_count();
  // Feature gathers index lane k's row as k*cols + f, which must fit an
  // int32. Paper-scale rows are ~2580 doubles, nowhere close; fall back
  // to the scalar kernel rather than overflow on absurd widths.
  if (cols >= (static_cast<std::size_t>(1) << 28) / kLaneWidth) {
    gather_scalar(forest, xs, out);
    return;
  }
  const auto c = static_cast<std::int32_t>(cols);
  for (std::size_t r0 = 0; r0 < rows; r0 += kLaneWidth) {
    const std::size_t width = std::min(kLaneWidth, rows - r0);
    const double* base = xs.row(r0).data();
    // Tail blocks alias every extra lane onto row r0 (offset 0); their
    // results are not stored.
    alignas(16) std::int32_t offsets[kLaneWidth];
    for (std::size_t k = 0; k < kLaneWidth; ++k) {
      offsets[k] = k < width ? static_cast<std::int32_t>(k) * c : 0;
    }
    const __m128i off_a =
        _mm_load_si128(reinterpret_cast<const __m128i*>(offsets));
    const __m128i off_b =
        _mm_load_si128(reinterpret_cast<const __m128i*>(offsets + 4));
    const auto rows_a = [off_a](__m128i f) { return _mm_add_epi32(off_a, f); };
    const auto rows_b = [off_b](__m128i f) { return _mm_add_epi32(off_b, f); };
    __m256d acc_a = _mm256_setzero_pd();
    __m256d acc_b = _mm256_setzero_pd();
    for (std::size_t t = 0; t < trees; ++t) {
      __m128i idx_a = _mm_set1_epi32(forest.root[t]);
      __m128i idx_b = idx_a;
      const std::int32_t rounds = forest.depth[t];
      for (std::int32_t s = 0; s < rounds; ++s) {
        idx_a = step(forest, base, idx_a, rows_a);
        idx_b = step(forest, base, idx_b, rows_b);
      }
      acc_a =
          _mm256_add_pd(acc_a, _mm256_i32gather_pd(forest.value.data(), idx_a, 8));
      acc_b =
          _mm256_add_pd(acc_b, _mm256_i32gather_pd(forest.value.data(), idx_b, 8));
    }
    alignas(32) double sums[kLaneWidth];
    _mm256_store_pd(sums, acc_a);
    _mm256_store_pd(sums + 4, acc_b);
    for (std::size_t k = 0; k < width; ++k) {
      out[r0 + k] = sums[k] / static_cast<double>(trees);
    }
  }
}

}  // namespace gsight::ml::forest_kernel

#endif  // GSIGHT_SIMD_AVX2
