// Common interface for the incremental regression models compared in the
// paper (Figure 9): IRFR, IKNN, ILR, ISVR and IMLP. All models learn from
// an initial offline batch and are then updated online with
// (features, observed QoS) pairs as workloads execute — the "incremental
// learning" loop of Gsight's design (Figure 6).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/scaler.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace gsight::ml {

class IncrementalRegressor {
 public:
  virtual ~IncrementalRegressor() = default;

  /// Absorb a batch of labelled samples and update the model. The first
  /// call plays the role of offline training; later calls are the online
  /// incremental updates.
  virtual void partial_fit(const Dataset& batch) = 0;

  /// Predict the target for one feature vector. Must be callable before
  /// any training (returns 0 in that case) so schedulers can run cold.
  virtual double predict(std::span<const double> x) const = 0;

  /// One prediction per row of `xs`. Bit-identical to calling predict()
  /// row by row (the default does exactly that); the forest overrides it
  /// with the blocked batch kernels.
  std::vector<double> predict_batch(const Matrix& xs) const;
  /// Allocation-free variant and the actual override point: resizes
  /// `out` to xs.rows() (reusing its capacity) and writes predictions in
  /// place. The value-returning overload delegates here.
  virtual void predict_batch(const Matrix& xs, std::vector<double>& out) const;

  virtual std::string name() const = 0;

  /// Number of samples absorbed so far.
  virtual std::size_t samples_seen() const = 0;

  std::vector<double> predict_all(const Dataset& data) const;
};

/// Shared plumbing for learners that keep a replay buffer of all absorbed
/// samples plus standardisation statistics for features and target.
/// Subclasses implement `refit`, called after each partial_fit with the
/// buffer already extended and scalers updated.
class BufferedRegressor : public IncrementalRegressor {
 public:
  explicit BufferedRegressor(std::uint64_t seed) : rng_(seed) {}

  void partial_fit(const Dataset& batch) final;
  std::size_t samples_seen() const final { return buffer_.size(); }

 protected:
  virtual void refit(const Dataset& new_batch) = 0;

  /// Standardised feature vector under the current scaler.
  std::vector<double> scale_x(std::span<const double> x) const {
    return x_scaler_.transform(x);
  }
  /// Map target to / from standardised space.
  double scale_y(double y) const;
  double unscale_y(double y_scaled) const;

  const Dataset& buffer() const { return buffer_; }
  /// The whole buffer with standardised features and targets.
  Dataset scaled_buffer() const;
  /// A standardised random subsample of at most `n` buffered rows.
  Dataset scaled_sample(std::size_t n);

  stats::Rng rng_;

 private:
  Dataset buffer_;
  StandardScaler x_scaler_;
  stats::Running y_stats_;
};

}  // namespace gsight::ml
