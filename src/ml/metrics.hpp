// Regression error metrics. The paper reports errors as |p_hat - p| / p
// (mean absolute percentage error), which is `mape` here; MAE/RMSE/R² are
// provided for the ablation benches.
#pragma once

#include <vector>

namespace gsight::ml {

/// Mean absolute percentage error, in percent. Targets with |y| < eps are
/// skipped to avoid division blow-ups (matches the paper's error metric).
double mape(const std::vector<double>& truth, const std::vector<double>& pred,
            double eps = 1e-9);
/// Per-sample absolute percentage errors in percent (for distributions).
std::vector<double> ape(const std::vector<double>& truth,
                        const std::vector<double>& pred, double eps = 1e-9);
double mae(const std::vector<double>& truth, const std::vector<double>& pred);
double rmse(const std::vector<double>& truth, const std::vector<double>& pred);
double r2(const std::vector<double>& truth, const std::vector<double>& pred);

}  // namespace gsight::ml
