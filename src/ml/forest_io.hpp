// Persistence for trained forests and datasets. A production Gsight
// controller trains incrementally for hours (§6.2: ~9k samples to reach
// ~1% error); losing the model on restart would mean re-converging from
// the offline dataset, so both the forest and its sample buffer round-trip
// through a line-oriented text format (same conventions as profile_io).
#pragma once

#include <iosfwd>
#include <string>

#include "ml/dataset.hpp"
#include "ml/incremental_forest.hpp"
#include "ml/random_forest.hpp"

namespace gsight::ml {

void write_dataset(std::ostream& out, const Dataset& data);
Dataset read_dataset(std::istream& in);

void write_forest(std::ostream& out, const RandomForestRegressor& forest);
RandomForestRegressor read_forest(std::istream& in);

/// Full incremental state: forest + sample buffer + configuration knobs
/// + the monotonic model version stamp + the updater's RNG stream, i.e.
/// everything needed to keep updating after reload *bit-identically* to
/// an uninterrupted run (format `gsight-irfr-v2`; the stamp-less v1
/// format is still readable and resumes at version 0 with a fresh
/// stream). The version stamp is what serve::SnapshotSlot orders model
/// hot-swaps by.
void save_incremental_forest(const IncrementalForest& model,
                             const std::string& path);
void save_incremental_forest(const IncrementalForest& model,
                             std::ostream& out);
IncrementalForest load_incremental_forest(const std::string& path);
IncrementalForest load_incremental_forest(std::istream& in);

}  // namespace gsight::ml
