#include "ml/metrics.hpp"

#include <cassert>
#include <cmath>

namespace gsight::ml {

std::vector<double> ape(const std::vector<double>& truth,
                        const std::vector<double>& pred, double eps) {
  assert(truth.size() == pred.size());
  std::vector<double> out;
  out.reserve(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (std::abs(truth[i]) < eps) continue;
    out.push_back(100.0 * std::abs(pred[i] - truth[i]) / std::abs(truth[i]));
  }
  return out;
}

double mape(const std::vector<double>& truth, const std::vector<double>& pred,
            double eps) {
  const auto errs = ape(truth, pred, eps);
  if (errs.empty()) return 0.0;
  double s = 0.0;
  for (double e : errs) s += e;
  return s / static_cast<double>(errs.size());
}

double mae(const std::vector<double>& truth, const std::vector<double>& pred) {
  assert(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) s += std::abs(pred[i] - truth[i]);
  return s / static_cast<double>(truth.size());
}

double rmse(const std::vector<double>& truth, const std::vector<double>& pred) {
  assert(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = pred[i] - truth[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(truth.size()));
}

double r2(const std::vector<double>& truth, const std::vector<double>& pred) {
  assert(truth.size() == pred.size());
  if (truth.size() < 2) return 0.0;
  double mean = 0.0;
  for (double t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace gsight::ml
