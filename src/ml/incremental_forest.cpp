#include "ml/incremental_forest.hpp"

#include <cassert>
#include <cmath>

namespace gsight::ml {

IncrementalForest::IncrementalForest(IncrementalForestConfig config,
                                     std::uint64_t seed)
    : config_(config), forest_(config.forest), rng_(seed) {}

const Dataset& IncrementalForest::refit_view() {
  if (config_.max_refit_rows == 0 || buffer_.size() <= config_.max_refit_rows) {
    return buffer_;
  }
  const auto rows =
      rng_.sample_without_replacement(buffer_.size(), config_.max_refit_rows);
  subsample_ = buffer_.subset(rows);
  return subsample_;
}

void IncrementalForest::partial_fit(const Dataset& batch) {
  if (batch.empty()) return;
  buffer_.append(batch);
  if (!forest_.fitted()) {
    forest_.fit(refit_view(), rng_);
    ++version_;
    return;
  }
  const auto count = static_cast<std::size_t>(std::ceil(
      config_.refresh_fraction * static_cast<double>(config_.forest.n_trees)));
  forest_.refresh_trees(refit_view(), std::max<std::size_t>(1, count), rng_);
  ++version_;
}

double IncrementalForest::predict(std::span<const double> x) const {
  return forest_.predict(x);
}

void IncrementalForest::predict_batch(const Matrix& xs,
                                      std::vector<double>& out) const {
  forest_.predict_batch(xs, out);
}

}  // namespace gsight::ml
