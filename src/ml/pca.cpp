#include "ml/pca.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "ml/matrix.hpp"
#include "stats/rng.hpp"

namespace gsight::ml {

namespace {

// y = X^T (X v) computed row-wise over the centred data (X is n x d,
// stored implicitly as data rows minus mean).
std::vector<double> cov_matvec(const Dataset& data,
                               const std::vector<double>& mean,
                               const std::vector<double>& v) {
  const std::size_t d = mean.size();
  std::vector<double> y(d, 0.0);
  std::vector<double> centered(d);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.x(i);
    double proj = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      centered[j] = row[j] - mean[j];
      proj += centered[j] * v[j];
    }
    for (std::size_t j = 0; j < d; ++j) y[j] += proj * centered[j];
  }
  const double n = static_cast<double>(data.size() - 1);
  for (auto& val : y) val /= n;
  return y;
}

double norm(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

}  // namespace

void Pca::fit(const Dataset& data) {
  if (data.size() < 2) {
    throw std::invalid_argument("Pca::fit: need at least 2 rows");
  }
  const std::size_t d = data.feature_count();
  const std::size_t k = std::min(config_.components, std::min(d, data.size()));

  mean_.assign(d, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.x(i);
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (auto& m : mean_) m /= static_cast<double>(data.size());

  total_variance_ = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.x(i);
    for (std::size_t j = 0; j < d; ++j) {
      const double c = row[j] - mean_[j];
      total_variance_ += c * c;
    }
  }
  total_variance_ /= static_cast<double>(data.size() - 1);

  stats::Rng rng(config_.seed);
  components_.clear();
  explained_variance_.clear();
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<double> v(d);
    for (auto& x : v) x = rng.normal();
    double eigenvalue = 0.0;
    for (std::size_t it = 0; it < config_.power_iterations; ++it) {
      // Deflate previously found components (Gram-Schmidt).
      for (const auto& prev : components_) {
        const double p = dot(v, prev);
        for (std::size_t j = 0; j < d; ++j) v[j] -= p * prev[j];
      }
      auto y = cov_matvec(data, mean_, v);
      eigenvalue = norm(y);
      if (eigenvalue < 1e-14) break;  // rank exhausted
      for (auto& x : y) x /= eigenvalue;
      v = std::move(y);
    }
    if (eigenvalue < 1e-14) break;
    // Final re-orthogonalisation: power iteration leaves O(1/iters)
    // residue against earlier components when eigenvalues are close.
    for (const auto& prev : components_) {
      const double p = dot(v, prev);
      for (std::size_t j = 0; j < d; ++j) v[j] -= p * prev[j];
    }
    const double len = norm(v);
    if (len < 1e-14) break;
    for (auto& x : v) x /= len;
    components_.push_back(std::move(v));
    explained_variance_.push_back(eigenvalue);
  }
}

std::vector<double> Pca::transform(std::span<const double> x) const {
  assert(fitted() && x.size() == mean_.size());
  std::vector<double> z(components_.size(), 0.0);
  for (std::size_t c = 0; c < components_.size(); ++c) {
    double proj = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      proj += (x[j] - mean_[j]) * components_[c][j];
    }
    z[c] = proj;
  }
  return z;
}

Dataset Pca::transform(const Dataset& data) const {
  Dataset out(components_.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.add(transform(data.x(i)), data.y(i));
  }
  return out;
}

std::vector<double> Pca::inverse_transform(std::span<const double> z) const {
  assert(fitted() && z.size() == components_.size());
  std::vector<double> x = mean_;
  for (std::size_t c = 0; c < components_.size(); ++c) {
    for (std::size_t j = 0; j < x.size(); ++j) {
      x[j] += z[c] * components_[c][j];
    }
  }
  return x;
}

double Pca::explained_variance_ratio() const {
  if (total_variance_ <= 0.0) return 0.0;
  double sum = 0.0;
  for (double v : explained_variance_) sum += v;
  return sum / total_variance_;
}

}  // namespace gsight::ml
