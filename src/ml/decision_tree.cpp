#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace gsight::ml {

namespace {

struct SplitCandidate {
  std::size_t feature = 0;
  double threshold = 0.0;
  double gain = -1.0;  // variance reduction * node weight
};

// Best threshold for one feature over rows[begin, end): sort by feature
// value, scan prefix sums of y and y^2, maximise variance reduction.
SplitCandidate best_split_for_feature(const Dataset& data,
                                      std::span<const std::size_t> rows,
                                      std::size_t feature,
                                      std::size_t min_leaf) {
  const std::size_t n = rows.size();
  thread_local std::vector<std::pair<double, double>> vy;  // (x_f, y)
  vy.clear();
  vy.reserve(n);
  for (std::size_t r : rows) vy.emplace_back(data.x(r)[feature], data.y(r));
  std::sort(vy.begin(), vy.end());
  if (vy.front().first == vy.back().first) return {};  // constant feature

  double total_sum = 0.0, total_sq = 0.0;
  for (const auto& [x, y] : vy) {
    total_sum += y;
    total_sq += y * y;
  }
  const double dn = static_cast<double>(n);
  const double parent_sse = total_sq - total_sum * total_sum / dn;

  SplitCandidate best;
  best.feature = feature;
  double left_sum = 0.0, left_sq = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    left_sum += vy[i].second;
    left_sq += vy[i].second * vy[i].second;
    if (vy[i].first == vy[i + 1].first) continue;  // can't split inside ties
    const std::size_t nl = i + 1;
    const std::size_t nr = n - nl;
    if (nl < min_leaf || nr < min_leaf) continue;
    const double right_sum = total_sum - left_sum;
    const double right_sq = total_sq - left_sq;
    const double sse = (left_sq - left_sum * left_sum / static_cast<double>(nl)) +
                       (right_sq - right_sum * right_sum / static_cast<double>(nr));
    const double gain = parent_sse - sse;
    if (gain > best.gain) {
      best.gain = gain;
      best.threshold = 0.5 * (vy[i].first + vy[i + 1].first);
    }
  }
  return best;
}

// Extra-Trees style: draw one uniform threshold in (min, max) of the
// feature over this node's rows and evaluate its gain in a single pass.
SplitCandidate random_split_for_feature(const Dataset& data,
                                        std::span<const std::size_t> rows,
                                        std::size_t feature,
                                        std::size_t min_leaf,
                                        stats::Rng& rng) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double total_sum = 0.0, total_sq = 0.0;
  for (std::size_t r : rows) {
    const double v = data.x(r)[feature];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    const double y = data.y(r);
    total_sum += y;
    total_sq += y * y;
  }
  if (lo == hi) return {};
  const double threshold = rng.uniform(lo, hi);

  double left_sum = 0.0, left_sq = 0.0;
  std::size_t nl = 0;
  for (std::size_t r : rows) {
    if (data.x(r)[feature] <= threshold) {
      const double y = data.y(r);
      left_sum += y;
      left_sq += y * y;
      ++nl;
    }
  }
  const std::size_t n = rows.size();
  const std::size_t nr = n - nl;
  if (nl < min_leaf || nr < min_leaf) return {};
  const double parent_sse =
      total_sq - total_sum * total_sum / static_cast<double>(n);
  const double right_sum = total_sum - left_sum;
  const double right_sq = total_sq - left_sq;
  const double sse =
      (left_sq - left_sum * left_sum / static_cast<double>(nl)) +
      (right_sq - right_sum * right_sum / static_cast<double>(nr));
  SplitCandidate cand;
  cand.feature = feature;
  cand.threshold = threshold;
  cand.gain = parent_sse - sse;
  return cand;
}

// ---------------------------------------------------------------------------
// Columnar fast-path builder (TreeKernel::kColumnar).
//
// Bit-identical to the legacy kernel by construction:
//  * node statistics accumulate over the same std::partition-ordered
//    permutation of the bootstrap sample;
//  * kBest split scans visit (x, y) pairs in exactly the order the legacy
//    kernel's per-node sort produces — each feature's index list is sorted
//    once per tree by (x, y) and then stable-partitioned down the
//    recursion, so its restriction to any node is that node's sorted
//    sequence (ties in x carry the same ascending-y order the legacy
//    pair-sort yields, which matters because float accumulation is order
//    sensitive);
//  * the RNG call sequence (per-node feature sampling, kRandom
//    thresholds) is unchanged.
// What changes is purely mechanical: feature values are read from the
// dataset's feature-major ColumnStore with unit stride, and kBest's
// per-node gather+sort is replaced by the presorted lists. Above
// kPresortMaxFeatures the lists would dominate memory (d·n indices), so
// wide-feature kBest trees fall back to a per-node columnar gather+sort —
// same values, same comparator, still column-strided reads.
class ColumnarBuilder {
 public:
  using Node = DecisionTreeRegressor::Node;

  /// Presorted index lists are kept only up to this feature count; the
  /// paper-scale 2 580-dim overlap codes train with kRandom, which never
  /// sorts at all.
  static constexpr std::size_t kPresortMaxFeatures = 512;

  ColumnarBuilder(const Dataset& data, const TreeConfig& config,
                  std::vector<Node>& nodes, std::vector<double>& importance,
                  stats::Rng& rng)
      : data_(data),
        cols_(data.columns()),
        config_(config),
        nodes_(nodes),
        importance_(importance),
        rng_(rng) {}

  void run(std::span<const std::size_t> rows) {
    const std::size_t n = rows.size();
    sample_row_.assign(rows.begin(), rows.end());
    ys_.resize(n);
    for (std::size_t p = 0; p < n; ++p) ys_[p] = data_.y(rows[p]);
    pos_.resize(n);
    std::iota(pos_.begin(), pos_.end(), std::uint32_t{0});
    left_mask_.assign(n, 0);
    random_mode_ = config_.split_mode == SplitMode::kRandom;
    if (random_mode_) {
      node_ys_.resize(n);
      node_rows_.resize(n);
      vals_.resize(n);
      sel_.resize(n);
    }
    presorted_ = config_.split_mode == SplitMode::kBest &&
                 data_.feature_count() <= kPresortMaxFeatures;
    if (presorted_) presort();
    build(0, n, 0);
  }

 private:
  double xval(std::size_t feature, std::uint32_t p) const {
    return cols_.column(feature)[sample_row_[p]];
  }

  // Sort each feature's index list once for the whole tree, by (x, y) —
  // the same lexicographic order the legacy kernel's std::sort of
  // (x, y) pairs produces at every node.
  void presort() {
    const std::size_t d = data_.feature_count();
    const std::size_t n = pos_.size();
    sorted_.resize(d * n);
    scratch_.resize(n);
    for (std::size_t f = 0; f < d; ++f) {
      std::uint32_t* seg = sorted_.data() + f * n;
      std::iota(seg, seg + n, std::uint32_t{0});
      const auto col = cols_.column(f);
      std::sort(seg, seg + n, [&](std::uint32_t a, std::uint32_t b) {
        const double xa = col[sample_row_[a]];
        const double xb = col[sample_row_[b]];
        if (xa != xb) return xa < xb;
        return ys_[a] < ys_[b];
      });
    }
  }

  // kBest over a presorted segment: the legacy scan with the sort already
  // done. Totals accumulate in sorted order, exactly as the legacy kernel
  // sums its sorted pair vector.
  SplitCandidate best_split_presorted(std::size_t begin, std::size_t end,
                                      std::size_t feature,
                                      std::size_t min_leaf) const {
    const std::uint32_t* seg = sorted_.data() + feature * pos_.size() + begin;
    const std::size_t n = end - begin;
    const auto col = cols_.column(feature);
    const auto x_at = [&](std::size_t i) { return col[sample_row_[seg[i]]]; };
    if (x_at(0) == x_at(n - 1)) return {};  // constant feature

    double total_sum = 0.0, total_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double y = ys_[seg[i]];
      total_sum += y;
      total_sq += y * y;
    }
    const double dn = static_cast<double>(n);
    const double parent_sse = total_sq - total_sum * total_sum / dn;

    SplitCandidate best;
    best.feature = feature;
    double left_sum = 0.0, left_sq = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double y = ys_[seg[i]];
      left_sum += y;
      left_sq += y * y;
      if (x_at(i) == x_at(i + 1)) continue;  // can't split inside ties
      const std::size_t nl = i + 1;
      const std::size_t nr = n - nl;
      if (nl < min_leaf || nr < min_leaf) continue;
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse =
          (left_sq - left_sum * left_sum / static_cast<double>(nl)) +
          (right_sq - right_sum * right_sum / static_cast<double>(nr));
      const double gain = parent_sse - sse;
      if (gain > best.gain) {
        best.gain = gain;
        best.threshold = 0.5 * (x_at(i) + x_at(i + 1));
      }
    }
    return best;
  }

  // kBest fallback for wide feature spaces: per-node gather+sort like the
  // legacy kernel, but gathering from the feature column instead of
  // striding across rows.
  SplitCandidate best_split_gathered(std::size_t begin, std::size_t end,
                                     std::size_t feature,
                                     std::size_t min_leaf) const {
    const std::size_t n = end - begin;
    const auto col = cols_.column(feature);
    thread_local std::vector<std::pair<double, double>> vy;  // (x_f, y)
    vy.clear();
    vy.reserve(n);
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t p = pos_[i];
      vy.emplace_back(col[sample_row_[p]], ys_[p]);
    }
    std::sort(vy.begin(), vy.end());
    if (vy.front().first == vy.back().first) return {};  // constant feature

    double total_sum = 0.0, total_sq = 0.0;
    for (const auto& [x, y] : vy) {
      total_sum += y;
      total_sq += y * y;
    }
    const double dn = static_cast<double>(n);
    const double parent_sse = total_sq - total_sum * total_sum / dn;

    SplitCandidate best;
    best.feature = feature;
    double left_sum = 0.0, left_sq = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_sum += vy[i].second;
      left_sq += vy[i].second * vy[i].second;
      if (vy[i].first == vy[i + 1].first) continue;
      const std::size_t nl = i + 1;
      const std::size_t nr = n - nl;
      if (nl < min_leaf || nr < min_leaf) continue;
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse =
          (left_sq - left_sum * left_sum / static_cast<double>(nl)) +
          (right_sq - right_sum * right_sum / static_cast<double>(nr));
      const double gain = parent_sse - sse;
      if (gain > best.gain) {
        best.gain = gain;
        best.threshold = 0.5 * (vy[i].first + vy[i + 1].first);
      }
    }
    return best;
  }

  // Extra-Trees split. Same draws, same accumulation orders, same gain
  // bits as the legacy loop — restructured around what actually bounds
  // it (FP dependency chains and a ~50% mispredicted branch, not reads):
  //  * node totals are hoisted: the legacy kernel re-accumulates
  //    total_sum/total_sq identically for every candidate feature, so the
  //    once-per-node values from build() are the same bits;
  //  * column values gather into a contiguous scratch while min/max runs
  //    over four independent lanes — min/max are associative, and a ±0.0
  //    representative difference is invisible through lo == hi and
  //    rng.uniform(lo, hi), so the lane split cannot change the tree;
  //  * the left-side ys compact branchlessly in node order and are then
  //    summed sequentially: the same adds in the same order as the legacy
  //    guarded loop, minus its unpredictable branch.
  SplitCandidate random_split(std::size_t begin, std::size_t end,
                              std::size_t feature, std::size_t min_leaf,
                              double total_sum, double total_sq,
                              double parent_sse, const double* next_col) {
    const double* __restrict col = cols_.column(feature).data();
    const std::uint32_t* __restrict rows = node_rows_.data() + begin;
    const std::size_t n = end - begin;
    double* __restrict vals = vals_.data();
    // One fused pass: gather this feature's values, track min/max over
    // four independent lanes, and request the next candidate feature's
    // lines — at deep nodes the scan is latency-bound on cold column
    // reads, not on arithmetic.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    double lo0 = kInf, lo1 = kInf, lo2 = kInf, lo3 = kInf;
    double hi0 = -kInf, hi1 = -kInf, hi2 = -kInf, hi3 = -kInf;
    std::size_t i = 0;
    if (next_col != nullptr) {
      for (; i + 4 <= n; i += 4) {
        __builtin_prefetch(next_col + rows[i]);
        __builtin_prefetch(next_col + rows[i + 1]);
        __builtin_prefetch(next_col + rows[i + 2]);
        __builtin_prefetch(next_col + rows[i + 3]);
        const double v0 = col[rows[i]];
        const double v1 = col[rows[i + 1]];
        const double v2 = col[rows[i + 2]];
        const double v3 = col[rows[i + 3]];
        vals[i] = v0;
        vals[i + 1] = v1;
        vals[i + 2] = v2;
        vals[i + 3] = v3;
        lo0 = std::min(lo0, v0);
        lo1 = std::min(lo1, v1);
        lo2 = std::min(lo2, v2);
        lo3 = std::min(lo3, v3);
        hi0 = std::max(hi0, v0);
        hi1 = std::max(hi1, v1);
        hi2 = std::max(hi2, v2);
        hi3 = std::max(hi3, v3);
      }
    } else {
      for (; i + 4 <= n; i += 4) {
        const double v0 = col[rows[i]];
        const double v1 = col[rows[i + 1]];
        const double v2 = col[rows[i + 2]];
        const double v3 = col[rows[i + 3]];
        vals[i] = v0;
        vals[i + 1] = v1;
        vals[i + 2] = v2;
        vals[i + 3] = v3;
        lo0 = std::min(lo0, v0);
        lo1 = std::min(lo1, v1);
        lo2 = std::min(lo2, v2);
        lo3 = std::min(lo3, v3);
        hi0 = std::max(hi0, v0);
        hi1 = std::max(hi1, v1);
        hi2 = std::max(hi2, v2);
        hi3 = std::max(hi3, v3);
      }
    }
    for (; i < n; ++i) {
      const double v = col[rows[i]];
      if (next_col != nullptr) __builtin_prefetch(next_col + rows[i]);
      vals[i] = v;
      lo0 = std::min(lo0, v);
      hi0 = std::max(hi0, v);
    }
    const double lo = std::min(std::min(lo0, lo1), std::min(lo2, lo3));
    const double hi = std::max(std::max(hi0, hi1), std::max(hi2, hi3));
    if (lo == hi) return {};
    const double threshold = rng_.uniform(lo, hi);

    const double* __restrict ys_node = node_ys_.data() + begin;
    double* __restrict sel = sel_.data();
    std::size_t nl = 0;
    for (std::size_t j = 0; j < n; ++j) {
      sel[nl] = ys_node[j];
      nl += vals[j] <= threshold ? 1u : 0u;
    }
    const std::size_t nr = n - nl;
    if (nl < min_leaf || nr < min_leaf) return {};
    double left_sum = 0.0, left_sq = 0.0;
    for (std::size_t j = 0; j < nl; ++j) {
      const double y = sel[j];
      left_sum += y;
      left_sq += y * y;
    }
    const double right_sum = total_sum - left_sum;
    const double right_sq = total_sq - left_sq;
    const double sse =
        (left_sq - left_sum * left_sum / static_cast<double>(nl)) +
        (right_sq - right_sum * right_sum / static_cast<double>(nr));
    SplitCandidate cand;
    cand.feature = feature;
    cand.threshold = threshold;
    cand.gain = parent_sse - sse;
    return cand;
  }

  std::uint32_t build(std::size_t begin, std::size_t end, std::size_t depth) {
    const std::size_t n = end - begin;
    double sum = 0.0, sq = 0.0;
    if (random_mode_) {
      // Also stage the node's ys and dataset rows contiguously for
      // random_split (one indirection instead of two per scanned value);
      // children overwrite their subrange only after this node's splits
      // are done.
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t p = pos_[i];
        const double y = ys_[p];
        node_ys_[i] = y;
        node_rows_[i] = static_cast<std::uint32_t>(sample_row_[p]);
        sum += y;
        sq += y * y;
      }
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        const double y = ys_[pos_[i]];
        sum += y;
        sq += y * y;
      }
    }
    const double mean = sum / static_cast<double>(n);
    const double sse = sq - sum * mean;

    const auto make_leaf = [&] {
      Node leaf;
      leaf.value = mean;
      nodes_.push_back(leaf);
      return static_cast<std::uint32_t>(nodes_.size() - 1);
    };

    if (depth >= config_.max_depth || n < config_.min_samples_split ||
        sse <= 1e-12) {
      return make_leaf();
    }

    const std::size_t d = data_.feature_count();
    std::size_t k = config_.max_features == 0
                        ? static_cast<std::size_t>(std::llround(std::sqrt(
                              static_cast<double>(d))))
                        : config_.max_features;
    k = std::clamp<std::size_t>(k, 1, d);

    // Feature-independent node totals: every legacy per-feature pass
    // accumulates them over the same ys in the same order, so computing
    // them once reproduces the per-feature values bit for bit. The
    // parent SSE keeps the legacy expression (sum·sum/n, not sum·mean —
    // they round differently).
    const double parent_sse = sq - sum * sum / static_cast<double>(n);

    SplitCandidate best;
    rng_.sample_without_replacement(d, k, feature_sample_);
    for (std::size_t c = 0; c < feature_sample_.size(); ++c) {
      const std::size_t f = feature_sample_[c];
      SplitCandidate cand;
      if (config_.split_mode == SplitMode::kBest) {
        cand = presorted_
                   ? best_split_presorted(begin, end, f,
                                          config_.min_samples_leaf)
                   : best_split_gathered(begin, end, f,
                                         config_.min_samples_leaf);
      } else {
        const double* next_col =
            c + 1 < feature_sample_.size()
                ? cols_.column(feature_sample_[c + 1]).data()
                : nullptr;
        cand = random_split(begin, end, f, config_.min_samples_leaf, sum, sq,
                            parent_sse, next_col);
      }
      if (cand.gain > best.gain) best = cand;
    }
    if (best.gain <= 0.0) return make_leaf();

    importance_[best.feature] += best.gain;

    // Mark each sample's side once, then partition the position array with
    // the same std::partition the legacy kernel applies to its row array —
    // identical predicate sequence, identical permutation, so child node
    // statistics accumulate in the same order.
    const auto col = cols_.column(best.feature);
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t p = pos_[i];
      left_mask_[p] =
          col[sample_row_[p]] <= best.threshold ? char{1} : char{0};
    }
    const auto mid_it =
        std::partition(pos_.begin() + static_cast<std::ptrdiff_t>(begin),
                       pos_.begin() + static_cast<std::ptrdiff_t>(end),
                       [&](std::uint32_t p) { return left_mask_[p] != 0; });
    const auto mid = static_cast<std::size_t>(mid_it - pos_.begin());
    assert(mid > begin && mid < end);

    // Stable-partition every presorted list's segment so each child keeps
    // its (x, y)-sorted order.
    if (presorted_) {
      const std::size_t total = pos_.size();
      for (std::size_t f = 0; f < d; ++f) {
        std::uint32_t* seg = sorted_.data() + f * total;
        std::size_t write = begin;
        std::size_t spill = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint32_t p = seg[i];
          if (left_mask_[p] != 0) {
            seg[write++] = p;
          } else {
            scratch_[spill++] = p;
          }
        }
        std::copy(scratch_.begin(),
                  scratch_.begin() + static_cast<std::ptrdiff_t>(spill),
                  seg + write);
      }
    }

    Node node;
    node.feature = static_cast<std::uint32_t>(best.feature);
    node.threshold = best.threshold;
    nodes_.push_back(node);
    const auto self = static_cast<std::uint32_t>(nodes_.size() - 1);
    const std::uint32_t left = build(begin, mid, depth + 1);
    const std::uint32_t right = build(mid, end, depth + 1);
    nodes_[self].left = left;
    nodes_[self].right = right;
    return self;
  }

  const Dataset& data_;
  const ColumnStore& cols_;
  const TreeConfig& config_;
  std::vector<Node>& nodes_;
  std::vector<double>& importance_;
  stats::Rng& rng_;

  std::vector<std::size_t> sample_row_;  // position -> dataset row (fixed)
  std::vector<double> ys_;               // position -> target
  std::vector<std::uint32_t> pos_;       // partitioned like legacy `rows`
  std::vector<char> left_mask_;          // position -> goes left at split
  bool random_mode_ = false;
  std::vector<double> node_ys_;          // current node's ys, contiguous
  std::vector<std::uint32_t> node_rows_; // current node's dataset rows
  std::vector<double> vals_;             // scratch: node's column values
  std::vector<double> sel_;              // scratch: compacted left-side ys
  std::vector<std::size_t> feature_sample_;  // per-node candidate features
  bool presorted_ = false;
  std::vector<std::uint32_t> sorted_;    // d segments of n positions each
  std::vector<std::uint32_t> scratch_;   // spill side of stable partitions
};

}  // namespace

void DecisionTreeRegressor::fit(const Dataset& data,
                                std::span<const std::size_t> rows,
                                stats::Rng& rng) {
  assert(!rows.empty());
  nodes_.clear();
  importance_.assign(data.feature_count(), 0.0);
  nodes_.reserve(2 * rows.size());
  if (config_.kernel == TreeKernel::kColumnar) {
    ColumnarBuilder builder(data, config_, nodes_, importance_, rng);
    builder.run(rows);
    return;
  }
  std::vector<std::size_t> work(rows.begin(), rows.end());
  build(data, work, 0, work.size(), 0, rng);
}

void DecisionTreeRegressor::fit(const Dataset& data, stats::Rng& rng) {
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  fit(data, rows, rng);
}

std::uint32_t DecisionTreeRegressor::build(const Dataset& data,
                                           std::vector<std::size_t>& rows,
                                           std::size_t begin, std::size_t end,
                                           std::size_t depth, stats::Rng& rng) {
  const std::size_t n = end - begin;
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double y = data.y(rows[i]);
    sum += y;
    sq += y * y;
  }
  const double mean = sum / static_cast<double>(n);
  const double sse = sq - sum * mean;

  const auto make_leaf = [&] {
    Node leaf;
    leaf.value = mean;
    nodes_.push_back(leaf);
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  };

  if (depth >= config_.max_depth || n < config_.min_samples_split ||
      sse <= 1e-12) {
    return make_leaf();
  }

  const std::size_t d = data.feature_count();
  std::size_t k = config_.max_features == 0
                      ? static_cast<std::size_t>(std::llround(std::sqrt(
                            static_cast<double>(d))))
                      : config_.max_features;
  k = std::clamp<std::size_t>(k, 1, d);

  const std::span<const std::size_t> node_rows(rows.data() + begin, n);
  SplitCandidate best;
  const auto features = rng.sample_without_replacement(d, k);
  for (std::size_t f : features) {
    const auto cand =
        config_.split_mode == SplitMode::kBest
            ? best_split_for_feature(data, node_rows, f,
                                     config_.min_samples_leaf)
            : random_split_for_feature(data, node_rows, f,
                                       config_.min_samples_leaf, rng);
    if (cand.gain > best.gain) best = cand;
  }
  if (best.gain <= 0.0) return make_leaf();

  importance_[best.feature] += best.gain;

  // Partition rows[begin, end) around the threshold.
  const auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t r) {
        return data.x(r)[best.feature] <= best.threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - rows.begin());
  assert(mid > begin && mid < end);

  Node node;
  node.feature = static_cast<std::uint32_t>(best.feature);
  node.threshold = best.threshold;
  nodes_.push_back(node);
  const auto self = static_cast<std::uint32_t>(nodes_.size() - 1);
  const std::uint32_t left = build(data, rows, begin, mid, depth + 1, rng);
  const std::uint32_t right = build(data, rows, mid, end, depth + 1, rng);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

double DecisionTreeRegressor::predict(std::span<const double> x) const {
  assert(fitted());
  std::uint32_t i = 0;
  for (;;) {
    const Node& node = nodes_[i];
    if (node.feature == Node::kLeaf) return node.value;
    assert(node.feature < x.size());
    i = x[node.feature] <= node.threshold ? node.left : node.right;
  }
}

std::size_t DecisionTreeRegressor::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree.
  std::vector<std::pair<std::uint32_t, std::size_t>> stack{{0, 1}};
  std::size_t best = 0;
  while (!stack.empty()) {
    const auto [i, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& node = nodes_[i];
    if (node.feature != Node::kLeaf) {
      stack.emplace_back(node.left, d + 1);
      stack.emplace_back(node.right, d + 1);
    }
  }
  return best;
}


void DecisionTreeRegressor::save(std::ostream& out) const {
  out << std::setprecision(17);
  out << "tree " << nodes_.size() << ' ' << importance_.size() << '\n';
  for (const Node& n : nodes_) {
    out << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right
        << ' ' << n.value << '\n';
  }
  for (double v : importance_) out << v << ' ';
  out << '\n';
  if (!out) throw std::runtime_error("tree write failed");
}

void DecisionTreeRegressor::load(std::istream& in) {
  std::string tag;
  std::size_t node_count = 0, feature_count = 0;
  if (!(in >> tag >> node_count >> feature_count) || tag != "tree") {
    throw std::runtime_error("tree parse error: header");
  }
  nodes_.assign(node_count, Node{});
  for (Node& n : nodes_) {
    if (!(in >> n.feature >> n.threshold >> n.left >> n.right >> n.value)) {
      throw std::runtime_error("tree parse error: node");
    }
  }
  importance_.assign(feature_count, 0.0);
  for (double& v : importance_) {
    if (!(in >> v)) throw std::runtime_error("tree parse error: importance");
  }
}

}  // namespace gsight::ml
