#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace gsight::ml {

namespace {

struct SplitCandidate {
  std::size_t feature = 0;
  double threshold = 0.0;
  double gain = -1.0;  // variance reduction * node weight
};

// Best threshold for one feature over rows[begin, end): sort by feature
// value, scan prefix sums of y and y^2, maximise variance reduction.
SplitCandidate best_split_for_feature(const Dataset& data,
                                      std::span<const std::size_t> rows,
                                      std::size_t feature,
                                      std::size_t min_leaf) {
  const std::size_t n = rows.size();
  thread_local std::vector<std::pair<double, double>> vy;  // (x_f, y)
  vy.clear();
  vy.reserve(n);
  for (std::size_t r : rows) vy.emplace_back(data.x(r)[feature], data.y(r));
  std::sort(vy.begin(), vy.end());
  if (vy.front().first == vy.back().first) return {};  // constant feature

  double total_sum = 0.0, total_sq = 0.0;
  for (const auto& [x, y] : vy) {
    total_sum += y;
    total_sq += y * y;
  }
  const double dn = static_cast<double>(n);
  const double parent_sse = total_sq - total_sum * total_sum / dn;

  SplitCandidate best;
  best.feature = feature;
  double left_sum = 0.0, left_sq = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    left_sum += vy[i].second;
    left_sq += vy[i].second * vy[i].second;
    if (vy[i].first == vy[i + 1].first) continue;  // can't split inside ties
    const std::size_t nl = i + 1;
    const std::size_t nr = n - nl;
    if (nl < min_leaf || nr < min_leaf) continue;
    const double right_sum = total_sum - left_sum;
    const double right_sq = total_sq - left_sq;
    const double sse = (left_sq - left_sum * left_sum / static_cast<double>(nl)) +
                       (right_sq - right_sum * right_sum / static_cast<double>(nr));
    const double gain = parent_sse - sse;
    if (gain > best.gain) {
      best.gain = gain;
      best.threshold = 0.5 * (vy[i].first + vy[i + 1].first);
    }
  }
  return best;
}

// Extra-Trees style: draw one uniform threshold in (min, max) of the
// feature over this node's rows and evaluate its gain in a single pass.
SplitCandidate random_split_for_feature(const Dataset& data,
                                        std::span<const std::size_t> rows,
                                        std::size_t feature,
                                        std::size_t min_leaf,
                                        stats::Rng& rng) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double total_sum = 0.0, total_sq = 0.0;
  for (std::size_t r : rows) {
    const double v = data.x(r)[feature];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    const double y = data.y(r);
    total_sum += y;
    total_sq += y * y;
  }
  if (lo == hi) return {};
  const double threshold = rng.uniform(lo, hi);

  double left_sum = 0.0, left_sq = 0.0;
  std::size_t nl = 0;
  for (std::size_t r : rows) {
    if (data.x(r)[feature] <= threshold) {
      const double y = data.y(r);
      left_sum += y;
      left_sq += y * y;
      ++nl;
    }
  }
  const std::size_t n = rows.size();
  const std::size_t nr = n - nl;
  if (nl < min_leaf || nr < min_leaf) return {};
  const double parent_sse =
      total_sq - total_sum * total_sum / static_cast<double>(n);
  const double right_sum = total_sum - left_sum;
  const double right_sq = total_sq - left_sq;
  const double sse =
      (left_sq - left_sum * left_sum / static_cast<double>(nl)) +
      (right_sq - right_sum * right_sum / static_cast<double>(nr));
  SplitCandidate cand;
  cand.feature = feature;
  cand.threshold = threshold;
  cand.gain = parent_sse - sse;
  return cand;
}

}  // namespace

void DecisionTreeRegressor::fit(const Dataset& data,
                                std::span<const std::size_t> rows,
                                stats::Rng& rng) {
  assert(!rows.empty());
  nodes_.clear();
  importance_.assign(data.feature_count(), 0.0);
  nodes_.reserve(2 * rows.size());
  std::vector<std::size_t> work(rows.begin(), rows.end());
  build(data, work, 0, work.size(), 0, rng);
}

void DecisionTreeRegressor::fit(const Dataset& data, stats::Rng& rng) {
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  fit(data, rows, rng);
}

std::uint32_t DecisionTreeRegressor::build(const Dataset& data,
                                           std::vector<std::size_t>& rows,
                                           std::size_t begin, std::size_t end,
                                           std::size_t depth, stats::Rng& rng) {
  const std::size_t n = end - begin;
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double y = data.y(rows[i]);
    sum += y;
    sq += y * y;
  }
  const double mean = sum / static_cast<double>(n);
  const double sse = sq - sum * mean;

  const auto make_leaf = [&] {
    Node leaf;
    leaf.value = mean;
    nodes_.push_back(leaf);
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  };

  if (depth >= config_.max_depth || n < config_.min_samples_split ||
      sse <= 1e-12) {
    return make_leaf();
  }

  const std::size_t d = data.feature_count();
  std::size_t k = config_.max_features == 0
                      ? static_cast<std::size_t>(std::llround(std::sqrt(
                            static_cast<double>(d))))
                      : config_.max_features;
  k = std::clamp<std::size_t>(k, 1, d);

  const std::span<const std::size_t> node_rows(rows.data() + begin, n);
  SplitCandidate best;
  const auto features = rng.sample_without_replacement(d, k);
  for (std::size_t f : features) {
    const auto cand =
        config_.split_mode == SplitMode::kBest
            ? best_split_for_feature(data, node_rows, f,
                                     config_.min_samples_leaf)
            : random_split_for_feature(data, node_rows, f,
                                       config_.min_samples_leaf, rng);
    if (cand.gain > best.gain) best = cand;
  }
  if (best.gain <= 0.0) return make_leaf();

  importance_[best.feature] += best.gain;

  // Partition rows[begin, end) around the threshold.
  const auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t r) {
        return data.x(r)[best.feature] <= best.threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - rows.begin());
  assert(mid > begin && mid < end);

  Node node;
  node.feature = static_cast<std::uint32_t>(best.feature);
  node.threshold = best.threshold;
  nodes_.push_back(node);
  const auto self = static_cast<std::uint32_t>(nodes_.size() - 1);
  const std::uint32_t left = build(data, rows, begin, mid, depth + 1, rng);
  const std::uint32_t right = build(data, rows, mid, end, depth + 1, rng);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

double DecisionTreeRegressor::predict(std::span<const double> x) const {
  assert(fitted());
  std::uint32_t i = 0;
  for (;;) {
    const Node& node = nodes_[i];
    if (node.feature == Node::kLeaf) return node.value;
    assert(node.feature < x.size());
    i = x[node.feature] <= node.threshold ? node.left : node.right;
  }
}

std::size_t DecisionTreeRegressor::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree.
  std::vector<std::pair<std::uint32_t, std::size_t>> stack{{0, 1}};
  std::size_t best = 0;
  while (!stack.empty()) {
    const auto [i, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& node = nodes_[i];
    if (node.feature != Node::kLeaf) {
      stack.emplace_back(node.left, d + 1);
      stack.emplace_back(node.right, d + 1);
    }
  }
  return best;
}


void DecisionTreeRegressor::save(std::ostream& out) const {
  out << std::setprecision(17);
  out << "tree " << nodes_.size() << ' ' << importance_.size() << '\n';
  for (const Node& n : nodes_) {
    out << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right
        << ' ' << n.value << '\n';
  }
  for (double v : importance_) out << v << ' ';
  out << '\n';
  if (!out) throw std::runtime_error("tree write failed");
}

void DecisionTreeRegressor::load(std::istream& in) {
  std::string tag;
  std::size_t node_count = 0, feature_count = 0;
  if (!(in >> tag >> node_count >> feature_count) || tag != "tree") {
    throw std::runtime_error("tree parse error: header");
  }
  nodes_.assign(node_count, Node{});
  for (Node& n : nodes_) {
    if (!(in >> n.feature >> n.threshold >> n.left >> n.right >> n.value)) {
      throw std::runtime_error("tree parse error: node");
    }
  }
  importance_.assign(feature_count, 0.0);
  for (double& v : importance_) {
    if (!(in >> v)) throw std::runtime_error("tree parse error: importance");
  }
}

}  // namespace gsight::ml
