#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace gsight::ml {

void IncrementalKnn::refit(const Dataset& /*new_batch*/) {
  // Nothing to do: the buffer *is* the model.
}

double IncrementalKnn::predict(std::span<const double> x) const {
  const Dataset& data = buffer();
  if (data.empty()) return 0.0;
  const auto q = scale_x(x);
  // Max-heap of (distance, index) keeps the k nearest seen so far.
  std::priority_queue<std::pair<double, std::size_t>> heap;
  const std::size_t k = std::max<std::size_t>(1, config_.k);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto r = scale_x(data.x(i));
    const double d2 = squared_distance(q, r);
    if (heap.size() < k) {
      heap.emplace(d2, i);
    } else if (d2 < heap.top().first) {
      heap.pop();
      heap.emplace(d2, i);
    }
  }
  double wsum = 0.0, ysum = 0.0;
  while (!heap.empty()) {
    const auto [d2, i] = heap.top();
    heap.pop();
    const double w = config_.weighted ? 1.0 / (std::sqrt(d2) + 1e-9) : 1.0;
    wsum += w;
    ysum += w * data.y(i);
  }
  return wsum > 0.0 ? ysum / wsum : 0.0;
}

}  // namespace gsight::ml
