// CART regression tree: variance-reduction splits, depth / leaf-size
// stopping rules, and per-feature random subsampling at each split (the
// randomness that, together with bagging, makes the forest robust to the
// high-dimensional overlap-coded feature vectors — §3.4 of the paper).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "stats/rng.hpp"

namespace gsight::ml {

/// How candidate thresholds are chosen at a split.
///   kBest   — exhaustive scan over sorted feature values (classic CART);
///             most accurate, O(n log n) per feature per node.
///   kRandom — one uniform-random threshold per candidate feature
///             (Extra-Trees style); O(n) per feature per node. Used for the
///             2 580-dimensional overlap-coded vectors where exhaustive
///             scanning would dominate training time.
enum class SplitMode { kBest, kRandom };

/// Which training kernel builds the tree. Both produce bit-identical
/// trees (same splits, thresholds, node order, importances, RNG stream);
/// they differ only in memory access pattern:
///   kColumnar — feature-major scans over the dataset's ColumnStore, with
///               per-tree presorted index lists (sklearn/LightGBM style)
///               replacing kBest's per-node gather+sort. The default.
///   kLegacy   — the original row-major gather kernel, kept for one
///               release as the golden reference (see
///               tests/ml/test_forest_equivalence.cpp).
enum class TreeKernel { kColumnar, kLegacy };

struct TreeConfig {
  std::size_t max_depth = 24;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// Features examined per split; 0 means sqrt(feature_count).
  std::size_t max_features = 0;
  SplitMode split_mode = SplitMode::kBest;
  /// Training kernel; runtime knob, not persisted by save()/load().
  TreeKernel kernel = TreeKernel::kColumnar;
};

class DecisionTreeRegressor {
 public:
  /// Flat tree node. Public so RandomForestRegressor can concatenate the
  /// node arrays of all trees into one cache-friendly inference buffer.
  struct Node {
    // Leaf when feature == kLeaf; then `value` is the prediction.
    static constexpr std::uint32_t kLeaf = 0xFFFFFFFFu;
    std::uint32_t feature = kLeaf;
    double threshold = 0.0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    double value = 0.0;
  };

  explicit DecisionTreeRegressor(TreeConfig config = {}) : config_(config) {}

  /// Train on the rows of `data` selected by `rows` (with repetition
  /// allowed, so bootstrap samples pass their index multisets directly).
  void fit(const Dataset& data, std::span<const std::size_t> rows,
           stats::Rng& rng);
  /// Train on all rows.
  void fit(const Dataset& data, stats::Rng& rng);

  double predict(std::span<const double> x) const;
  bool fitted() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;
  /// The flat node array (root at index 0).
  std::span<const Node> nodes() const { return nodes_; }

  /// Sum of weighted variance reductions contributed by each feature
  /// (unnormalised impurity importance).
  const std::vector<double>& importance() const { return importance_; }

  /// Serialise / restore the fitted tree (line-oriented text; see
  /// ml/forest_io.hpp). Throws std::runtime_error on malformed input.
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  std::uint32_t build(const Dataset& data, std::vector<std::size_t>& rows,
                      std::size_t begin, std::size_t end, std::size_t depth,
                      stats::Rng& rng);

  TreeConfig config_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

}  // namespace gsight::ml
