// Principal-component analysis for feature reduction — the §6.4 future-
// work item ("policies like dimensionality reduction (e.g., PCA) ... can
// be explored"): the overlap code grows as 32·n·S + 2·n, so clusters much
// larger than the paper's 8 nodes need the encoder output compressed
// before the learner sees it.
//
// Implementation: covariance PCA via orthogonal power iteration on the
// centred data — no external linear-algebra dependency, adequate for the
// few-thousand-dimensional, few-thousand-sample regime this library
// operates in.
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace gsight::ml {

struct PcaConfig {
  std::size_t components = 64;
  std::size_t power_iterations = 30;
  std::uint64_t seed = 17;
};

class Pca {
 public:
  explicit Pca(PcaConfig config = {}) : config_(config) {}

  /// Fit components on the rows of `data`. Requires at least 2 rows.
  void fit(const Dataset& data);
  bool fitted() const { return !components_.empty(); }
  std::size_t components() const { return components_.size(); }
  std::size_t input_dim() const { return mean_.size(); }

  /// Project one vector onto the fitted components.
  std::vector<double> transform(std::span<const double> x) const;
  /// Project a whole dataset (targets carried through).
  Dataset transform(const Dataset& data) const;
  /// Reconstruct an input-space vector from its projection (lossy).
  std::vector<double> inverse_transform(std::span<const double> z) const;

  /// Variance captured by each component (descending).
  const std::vector<double>& explained_variance() const {
    return explained_variance_;
  }
  /// Fraction of total variance captured by the fitted components.
  double explained_variance_ratio() const;

 private:
  PcaConfig config_;
  std::vector<double> mean_;
  std::vector<std::vector<double>> components_;  // row = component
  std::vector<double> explained_variance_;
  double total_variance_ = 0.0;
};

}  // namespace gsight::ml
