// IMLP — incremental multi-layer perceptron regressor: fully connected
// ReLU hidden layers, linear output, mini-batch SGD with momentum, trained
// on standardised features/target with history replay.
#pragma once

#include "ml/model.hpp"

namespace gsight::ml {

struct MlpConfig {
  std::vector<std::size_t> hidden = {48};
  double learning_rate = 0.002;
  double momentum = 0.5;
  double l2 = 1e-5;
  std::size_t epochs_per_batch = 6;
  std::size_t replay_rows = 1024;
};

class IncrementalMlp final : public BufferedRegressor {
 public:
  explicit IncrementalMlp(MlpConfig config = {}, std::uint64_t seed = 1)
      : BufferedRegressor(seed), config_(config) {}

  double predict(std::span<const double> x) const override;
  std::string name() const override { return "IMLP"; }

 protected:
  void refit(const Dataset& new_batch) override;

 private:
  struct Layer {
    Matrix w;                 // out x in
    std::vector<double> b;    // out
    Matrix vw;                // momentum buffers
    std::vector<double> vb;
  };

  void init(std::size_t input_dim);
  /// Forward pass storing activations; returns scaled-space output.
  double forward(std::span<const double> x,
                 std::vector<std::vector<double>>& activations) const;
  void backward(const std::vector<std::vector<double>>& activations,
                double grad_out);

  MlpConfig config_;
  std::vector<Layer> layers_;
};

}  // namespace gsight::ml
