// Feature standardisation. The distance- and gradient-based learners (KNN,
// SVR, MLP, linear) are scale-sensitive; trees are not, but the predictor
// applies one scaler uniformly so models are swappable. The scaler supports
// incremental refitting from streaming data (Welford per feature) so the
// online-learning path never sees stale normalisation.
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace gsight::ml {

class StandardScaler {
 public:
  /// Accumulate statistics from additional rows (incremental).
  void partial_fit(const Dataset& data);
  void partial_fit(std::span<const double> x);

  bool fitted() const { return count_ > 0; }
  std::size_t feature_count() const { return mean_.size(); }

  /// (x - mean) / stddev, with stddev floored at 1e-12 for constant features.
  std::vector<double> transform(std::span<const double> x) const;
  Dataset transform(const Dataset& data) const;

  const std::vector<double>& mean() const { return mean_; }
  std::vector<double> stddev() const;

 private:
  std::size_t count_ = 0;
  std::vector<double> mean_;
  std::vector<double> m2_;
};

}  // namespace gsight::ml
