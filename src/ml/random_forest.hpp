// Bagged random-forest regressor (Breiman) with impurity-based feature
// importance (Figure 8) and thread-pool-parallel training. This is the
// batch core reused by the incremental wrapper (IRFR) that Gsight deploys.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"

namespace gsight::ml {

struct ForestConfig {
  std::size_t n_trees = 100;
  TreeConfig tree;
  /// Bootstrap-sample size as a fraction of the training set.
  double bootstrap_fraction = 1.0;
  /// Threads for fitting; 0 = shared pool default.
  std::size_t threads = 0;
};

class RandomForestRegressor {
 public:
  explicit RandomForestRegressor(ForestConfig config = {}) : config_(config) {}

  void fit(const Dataset& data, stats::Rng& rng);
  double predict(std::span<const double> x) const;
  bool fitted() const { return !trees_.empty(); }
  std::size_t tree_count() const { return trees_.size(); }

  /// Impurity importance, normalised to sum to 1 (zeros if unfitted).
  std::vector<double> importance() const;

  /// Retrain `count` randomly chosen trees on fresh bootstraps of `data`
  /// (the incremental-update primitive; no-op count==0). If the forest is
  /// unfitted this behaves like fit().
  void refresh_trees(const Dataset& data, std::size_t count, stats::Rng& rng);

  const ForestConfig& config() const { return config_; }
  /// Serialise / restore the fitted forest (trees + config).
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  void fit_one(const Dataset& data, std::size_t slot, std::uint64_t seed);

  ForestConfig config_;
  std::vector<DecisionTreeRegressor> trees_;
  std::size_t feature_count_ = 0;
};

}  // namespace gsight::ml
