// Bagged random-forest regressor (Breiman) with impurity-based feature
// importance (Figure 8) and thread-pool-parallel training. This is the
// batch core reused by the incremental wrapper (IRFR) that Gsight deploys.
// Inference runs over the blocked breadth-first layout of
// ml/forest_kernel.hpp: predict() advances kLaneWidth trees per step over
// one query row, predict_batch() dispatches wide batches to the row-lane
// gather kernel (the access pattern GsightScheduler::sla_ok generates
// thousands of times per placement). Every kernel is bit-identical to the
// reference walk kept in predict_reference() — enforced by
// tests/ml/test_forest_equivalence.cpp.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/forest_kernel.hpp"

namespace gsight::ml {

struct ForestConfig {
  std::size_t n_trees = 100;
  TreeConfig tree;
  /// Bootstrap-sample size as a fraction of the training set.
  double bootstrap_fraction = 1.0;
  /// Threads for fitting; 0 = shared pool default.
  std::size_t threads = 0;
};

class RandomForestRegressor {
 public:
  explicit RandomForestRegressor(ForestConfig config = {}) : config_(config) {}

  void fit(const Dataset& data, stats::Rng& rng);
  double predict(std::span<const double> x) const;
  /// One prediction per row of `xs`, bit-identical to calling predict()
  /// on each row. Narrow batches run the tree-lane blocked kernel per
  /// row; batches of forest_kernel::kGatherMinRows rows or more take the
  /// row-lane gather path, where each tree's node block stays
  /// cache-resident while the batch streams through it.
  std::vector<double> predict_batch(const Matrix& xs) const;
  /// Allocation-free variant: resizes `out` to xs.rows() (reusing its
  /// capacity) and writes predictions in place — the serve hot path.
  void predict_batch(const Matrix& xs, std::vector<double>& out) const;

  /// Reference kernel: the plain one-node-at-a-time walk over the
  /// flattened arrays. The golden implementation every blocked/SIMD
  /// kernel must match bit for bit; not used on hot paths.
  double predict_reference(std::span<const double> x) const;
  std::vector<double> predict_batch_reference(const Matrix& xs) const;
  bool fitted() const { return !trees_.empty(); }
  std::size_t tree_count() const { return trees_.size(); }
  /// The fitted trees (read-only; benchmarks compare per-tree walks
  /// against the flattened traversal).
  std::span<const DecisionTreeRegressor> trees() const { return trees_; }
  /// The blocked breadth-first inference layout (rebuilt after every
  /// fit/refresh/load; benchmarks and equivalence tests drive the
  /// forest_kernel entry points on it directly).
  const BlockedForest& blocked() const { return blocked_; }

  /// Impurity importance, normalised to sum to 1 (zeros if unfitted).
  std::vector<double> importance() const;

  /// Retrain `count` randomly chosen trees on fresh bootstraps of `data`
  /// (the incremental-update primitive; no-op count==0). If the forest is
  /// unfitted this behaves like fit().
  void refresh_trees(const Dataset& data, std::size_t count, stats::Rng& rng);

  const ForestConfig& config() const { return config_; }
  /// Serialise / restore the fitted forest (trees + config).
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  void fit_one(const Dataset& data, std::size_t slot, std::uint64_t seed);
  /// Rebuild the flattened inference buffer from trees_ (after any
  /// training or load).
  void rebuild_flat();
  double traverse(std::size_t tree, std::span<const double> x) const;

  ForestConfig config_;
  std::vector<DecisionTreeRegressor> trees_;
  std::size_t feature_count_ = 0;
  /// All trees' node arrays back to back; tree t occupies
  /// [flat_offsets_[t], flat_offsets_[t + 1]) with tree-local child links.
  std::vector<DecisionTreeRegressor::Node> flat_nodes_;
  std::vector<std::size_t> flat_offsets_;
  /// Breadth-first SoA mirror of flat_nodes_ for the blocked kernels.
  BlockedForest blocked_;
};

}  // namespace gsight::ml
