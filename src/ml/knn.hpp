// IKNN — incremental K-nearest-neighbour regression. Inherently
// incremental: partial_fit appends samples; predictions average the k
// nearest stored targets with inverse-distance weights computed in
// standardised feature space (the scaler updates with the stream, and
// stored points are re-standardised lazily at query time).
#pragma once

#include "ml/model.hpp"

namespace gsight::ml {

struct KnnConfig {
  std::size_t k = 8;
  /// Inverse-distance weighting; uniform averaging when false.
  bool weighted = true;
};

class IncrementalKnn final : public BufferedRegressor {
 public:
  explicit IncrementalKnn(KnnConfig config = {}, std::uint64_t seed = 1)
      : BufferedRegressor(seed), config_(config) {}

  double predict(std::span<const double> x) const override;
  std::string name() const override { return "IKNN"; }

 protected:
  void refit(const Dataset& new_batch) override;

 private:
  KnnConfig config_;
};

}  // namespace gsight::ml
