#include "ml/scaler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gsight::ml {

void StandardScaler::partial_fit(std::span<const double> x) {
  if (count_ == 0 && mean_.empty()) {
    mean_.assign(x.size(), 0.0);
    m2_.assign(x.size(), 0.0);
  }
  assert(x.size() == mean_.size());
  ++count_;
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double delta = x[j] - mean_[j];
    mean_[j] += delta / static_cast<double>(count_);
    m2_[j] += delta * (x[j] - mean_[j]);
  }
}

void StandardScaler::partial_fit(const Dataset& data) {
  for (std::size_t i = 0; i < data.size(); ++i) partial_fit(data.x(i));
}

std::vector<double> StandardScaler::stddev() const {
  std::vector<double> sd(mean_.size(), 1.0);
  if (count_ < 2) return sd;
  for (std::size_t j = 0; j < mean_.size(); ++j) {
    sd[j] = std::sqrt(m2_[j] / static_cast<double>(count_ - 1));
  }
  return sd;
}

std::vector<double> StandardScaler::transform(std::span<const double> x) const {
  assert(fitted() && x.size() == mean_.size());
  const auto sd = stddev();
  std::vector<double> out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    // Features that are (nearly) constant in the data seen so far carry no
    // signal; map them to 0 instead of exploding by a microscopic sd. The
    // clip guards gradient-based learners against rare extreme values in
    // sparse dimensions (e.g. start-delay slots that are almost always 0).
    const double s = sd[j];
    out[j] = s < 1e-8 ? 0.0 : std::clamp((x[j] - mean_[j]) / s, -20.0, 20.0);
  }
  return out;
}

Dataset StandardScaler::transform(const Dataset& data) const {
  Dataset out(data.feature_count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.add(transform(data.x(i)), data.y(i));
  }
  return out;
}

}  // namespace gsight::ml
