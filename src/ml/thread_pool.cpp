#include "ml/thread_pool.hpp"

#include <algorithm>

namespace gsight::ml {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    core::MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      core::MutexUniqueLock lock(mutex_);
      while (!stop_ && tasks_.empty()) wake_.wait(lock.raw());
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::run_batch(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) return;
    std::exception_ptr err;
    try {
      (*batch.body)(i);
    } catch (...) {
      err = std::current_exception();
    }
    core::MutexLock lock(batch.m);
    if (err && !batch.error) batch.error = err;
    // Notify under the lock: the waiter owns the batch via shared_ptr, so
    // it cannot be destroyed between our unlock and notify.
    if (++batch.completed == batch.n) batch.cv.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto batch = std::make_shared<Batch>(n, &body);
  // The caller drains too, so at most n-1 helpers can ever find work.
  const std::size_t helpers = std::min(n - 1, workers_.size());
  {
    core::MutexLock lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) {
      tasks_.push([batch] { run_batch(*batch); });
    }
  }
  wake_.notify_all();
  // Caller participates in its own batch: a nested parallel_for issued
  // from inside a worker task therefore always makes progress, and
  // concurrent callers never wait on each other's work.
  run_batch(*batch);
  std::exception_ptr error;
  {
    core::MutexUniqueLock lock(batch->m);
    while (batch->completed != batch->n) batch->cv.wait(lock.raw());
    error = batch->error;  // read under the lock that guards it
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gsight::ml
