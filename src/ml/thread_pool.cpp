#include "ml/thread_pool.hpp"

#include <atomic>

namespace gsight::ml {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t chunks = std::min(n, workers_.size());
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  {
    std::lock_guard lock(mutex_);
    for (std::size_t c = 0; c < chunks; ++c) tasks_.push(drain);
  }
  wake_.notify_all();
  {
    std::unique_lock lock(mutex_);
    done_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gsight::ml
