#include "core/overlap_coding.hpp"

#include <stdexcept>

namespace gsight::core {

void Scenario::validate() const {
  if (workloads.empty()) {
    throw std::invalid_argument("Scenario: no workloads");
  }
  if (servers == 0) throw std::invalid_argument("Scenario: zero servers");
  for (const auto& w : workloads) {
    if (w.profile == nullptr) {
      throw std::invalid_argument("Scenario: missing profile");
    }
    if (w.fn_to_server.size() != w.profile->functions.size()) {
      throw std::invalid_argument(
          "Scenario: placement size mismatch for " + w.profile->app_name);
    }
    for (std::size_t s : w.fn_to_server) {
      if (s >= servers) {
        throw std::invalid_argument("Scenario: server index out of range");
      }
    }
  }
}

void utilization_code_into(const WorkloadDeployment& w, std::size_t servers,
                           std::vector<double>& code,
                           std::vector<std::size_t>& count) {
  code.assign(servers * kCodeWidth, 0.0);
  count.assign(servers, 0);
  for (std::size_t fn = 0; fn < w.fn_to_server.size(); ++fn) {
    const std::size_t srv = w.fn_to_server[fn];
    const auto sel = prof::select(w.profile->functions[fn].metrics);
    for (std::size_t k = 0; k < kCodeWidth; ++k) {
      code[srv * kCodeWidth + k] += sel[k];
    }
    ++count[srv];
  }
  // "Virtual larger function": per-metric mean of colocated functions.
  for (std::size_t srv = 0; srv < servers; ++srv) {
    if (count[srv] > 1) {
      const double inv = 1.0 / static_cast<double>(count[srv]);
      for (std::size_t k = 0; k < kCodeWidth; ++k) {
        code[srv * kCodeWidth + k] *= inv;
      }
    }
  }
}

std::vector<double> utilization_code(const WorkloadDeployment& w,
                                     std::size_t servers) {
  std::vector<double> code;
  std::vector<std::size_t> count;
  utilization_code_into(w, servers, code, count);
  return code;
}

namespace {

std::array<double, kCodeWidth> allocation_row(const prof::FunctionProfile& p) {
  std::array<double, kCodeWidth> row{};
  row[0] = p.demand.cores;
  row[1] = p.demand.llc_mb;
  row[2] = p.demand.membw_gbps;
  row[3] = p.demand.disk_mbps;
  row[4] = p.demand.net_mbps;
  row[5] = p.mem_alloc_gb;
  row[6] = p.demand.frac_cpu;
  row[7] = p.demand.frac_disk;
  row[8] = p.demand.frac_net;
  row[9] = p.solo_duration_s;
  row[10] = p.solo_ipc;
  row[11] = p.solo_p99_latency_s;
  // Entries 12-15 reserved (zero) so R rows share U's 16-wide geometry.
  return row;
}

}  // namespace

void allocation_code_into(const WorkloadDeployment& w, std::size_t servers,
                          std::vector<double>& code,
                          std::vector<std::size_t>& count) {
  code.assign(servers * kCodeWidth, 0.0);
  count.assign(servers, 0);
  for (std::size_t fn = 0; fn < w.fn_to_server.size(); ++fn) {
    const std::size_t srv = w.fn_to_server[fn];
    const auto row = allocation_row(w.profile->functions[fn]);
    for (std::size_t k = 0; k < kCodeWidth; ++k) {
      code[srv * kCodeWidth + k] += row[k];
    }
    ++count[srv];
  }
  for (std::size_t srv = 0; srv < servers; ++srv) {
    if (count[srv] > 1) {
      const double inv = 1.0 / static_cast<double>(count[srv]);
      for (std::size_t k = 0; k < kCodeWidth; ++k) {
        code[srv * kCodeWidth + k] *= inv;
      }
    }
  }
}

std::vector<double> allocation_code(const WorkloadDeployment& w,
                                    std::size_t servers) {
  std::vector<double> code;
  std::vector<std::size_t> count;
  allocation_code_into(w, servers, code, count);
  return code;
}

}  // namespace gsight::core
