#include "core/campaign.hpp"

namespace gsight::core {

prof::ProfileStore profile_all(const prof::SoloProfilerConfig& config,
                               const std::vector<prof::ProfileRequest>& apps,
                               const CampaignOptions& options) {
  CampaignRunner runner(options);
  auto profiles = runner.map<prof::AppProfile>(
      apps.size(), config.seed,
      [&](std::size_t i, std::uint64_t seed) {
        prof::SoloProfilerConfig task_config = config;
        task_config.seed = seed;
        task_config.use_default_trace_sink = false;
        return prof::SoloProfiler(task_config).profile(apps[i]);
      });
  prof::ProfileStore store;
  for (auto& profile : profiles) store.put(std::move(profile));
  return store;
}

}  // namespace gsight::core
