#include "core/predictor.hpp"

#include <stdexcept>

namespace gsight::core {

const char* to_string(QosKind kind) {
  switch (kind) {
    case QosKind::kIpc: return "IPC";
    case QosKind::kTailLatency: return "tail-latency";
    case QosKind::kJct: return "JCT";
  }
  return "?";
}

const char* to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kIRFR: return "IRFR";
    case ModelKind::kIKNN: return "IKNN";
    case ModelKind::kILR: return "ILR";
    case ModelKind::kISVR: return "ISVR";
    case ModelKind::kIMLP: return "IMLP";
  }
  return "?";
}

std::vector<double> ScenarioPredictor::predict_batch(
    std::span<const Scenario> scenarios) const {
  std::vector<double> out;
  out.reserve(scenarios.size());
  for (const auto& s : scenarios) out.push_back(predict(s));
  return out;
}

ml::IncrementalForestConfig deployed_irfr_config(ml::TreeKernel forest_kernel) {
  ml::IncrementalForestConfig cfg;
  cfg.forest.n_trees = 80;
  // The overlap-coded feature space is wide (hundreds to thousands of
  // dims); Extra-Trees-style random thresholds keep fitting cheap with
  // no measurable accuracy loss at this dimensionality. The feature
  // subsample per split is raised above sqrt(d) because informative
  // dimensions (occupied server rows) are a small fraction of the code.
  cfg.forest.tree.split_mode = ml::SplitMode::kRandom;
  cfg.forest.tree.max_depth = 22;
  cfg.forest.tree.min_samples_leaf = 2;
  cfg.forest.tree.max_features = 128;
  cfg.forest.tree.kernel = forest_kernel;
  return cfg;
}

std::unique_ptr<ml::IncrementalRegressor> make_model(
    ModelKind kind, std::uint64_t seed, ml::TreeKernel forest_kernel) {
  switch (kind) {
    case ModelKind::kIRFR:
      return std::make_unique<ml::IncrementalForest>(
          deployed_irfr_config(forest_kernel), seed);
    case ModelKind::kIKNN:
      return std::make_unique<ml::IncrementalKnn>(ml::KnnConfig{}, seed);
    case ModelKind::kILR:
      return std::make_unique<ml::IncrementalLinear>(ml::LinearConfig{}, seed);
    case ModelKind::kISVR:
      return std::make_unique<ml::IncrementalSvr>(ml::SvrConfig{}, seed);
    case ModelKind::kIMLP:
      return std::make_unique<ml::IncrementalMlp>(ml::MlpConfig{}, seed);
  }
  throw std::invalid_argument("unknown model kind");
}

GsightPredictor::GsightPredictor(PredictorConfig config)
    : GsightPredictor(config, make_model(config.model, config.seed,
                                         config.forest_kernel)) {}

GsightPredictor::GsightPredictor(PredictorConfig config,
                                 std::unique_ptr<ml::IncrementalRegressor> model)
    : config_(config),
      encoder_(config.encoder),
      model_(std::move(model)),
      pending_(encoder_.dimension()),
      batch_xs_(0, encoder_.dimension()) {}

double GsightPredictor::predict(const Scenario& scenario) const {
  return model_->predict(encoder_.encode(scenario));
}

std::vector<double> GsightPredictor::predict_batch(
    std::span<const Scenario> scenarios) const {
  // Zero-copy encode: each scenario's code is written directly into a
  // row of the reused scratch Matrix, so a steady-state batch performs
  // no per-call allocation beyond the returned vector.
  batch_xs_.clear_rows();
  batch_xs_.reserve_rows(scenarios.size());
  for (const auto& s : scenarios) {
    encoder_.encode_into(s, encode_scratch_, batch_xs_.append_row());
  }
  std::vector<double> out;
  model_->predict_batch(batch_xs_, out);
  return out;
}

void GsightPredictor::observe(const Scenario& scenario, double actual_qos) {
  pending_.add(encoder_.encode(scenario), actual_qos);
  if (pending_.size() >= config_.update_batch) flush();
}

void GsightPredictor::flush() {
  if (pending_.empty()) return;
  model_->partial_fit(pending_);
  pending_ = ml::Dataset(encoder_.dimension());
}

void GsightPredictor::train(const ml::Dataset& dataset) {
  if (dataset.feature_count() != encoder_.dimension()) {
    throw std::invalid_argument(
        "GsightPredictor::train: dataset dimension mismatch");
  }
  model_->partial_fit(dataset);
}

}  // namespace gsight::core
