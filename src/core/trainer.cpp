#include "core/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "stats/summary.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/sparkapps.hpp"
#include "workloads/suite.hpp"

namespace gsight::core {

std::string profile_key(const std::string& app_name, double qps) {
  if (qps <= 0.0) return app_name;
  return app_name + "@" + std::to_string(static_cast<int>(std::lround(qps)));
}

std::string ensure_profile(prof::ProfileStore& store, const wl::App& app,
                           double qps, const prof::SoloProfilerConfig& cfg) {
  const bool ls = app.cls == wl::WorkloadClass::kLatencySensitive;
  const std::string key = ls ? profile_key(app.name, qps) : app.name;
  if (store.contains(key)) return key;
  prof::SoloProfiler profiler(cfg);
  prof::ProfileRequest request;
  request.app = app;
  if (ls && qps > 0.0) request.qps = qps;
  prof::AppProfile profile = profiler.profile(request);
  profile.app_name = key;  // stored under the composite key
  store.put(std::move(profile));
  return key;
}

ScenarioRunner::ScenarioRunner(const prof::ProfileStore* profiles,
                               RunnerConfig config)
    : profiles_(profiles), config_(config), rng_(config.seed) {
  assert(profiles_ != nullptr);
}

Scenario ScenarioRunner::describe(const ScenarioSpec& spec) const {
  Scenario scenario;
  scenario.servers = config_.servers;
  for (const auto& m : spec.members) {
    WorkloadDeployment w;
    const bool ls = m.app.cls == wl::WorkloadClass::kLatencySensitive;
    const std::string key = ls ? profile_key(m.app.name, m.qps) : m.app.name;
    w.profile = &profiles_->get(key);
    w.fn_to_server = m.fn_to_server;
    w.start_delay_s = ls ? 0.0 : m.start_delay_s;
    w.lifetime_s = ls ? 0.0 : w.profile->solo_jct_s;
    scenario.workloads.push_back(std::move(w));
  }
  scenario.validate();
  return scenario;
}

RunOutcome ScenarioRunner::run(const ScenarioSpec& spec) {
  if (spec.members.empty()) {
    throw std::invalid_argument("ScenarioRunner: empty spec");
  }
  RunOutcome out;
  out.scenario = describe(spec);

  sim::PlatformConfig pc;
  // Copy the whole cluster slice (shape, interference, trace-sink policy)
  // so campaign workers inherit use_default_trace_sink = false.
  static_cast<sim::ClusterSpec&>(pc) = config_;
  pc.seed = rng_.next();
  // Scenario measurement assumes warm instances (cold-start interference is
  // studied separately through profiles that include the startup phase).
  pc.instance.startup_cores = 0.0;
  pc.instance.startup_disk_mbps = 0.0;
  sim::Platform platform(pc);

  const auto& target = spec.members[0];
  const bool target_ls =
      target.app.cls == wl::WorkloadClass::kLatencySensitive;

  // Deploy everyone, start LS loads immediately, delay SC/BG jobs.
  // Scenario labels are steady-state QoS: cold starts are stripped (the
  // paper treats startup separately through profiles, §5.2) so the short
  // warmup window suffices.
  std::vector<std::size_t> ids;
  double max_sc_solo = 0.0;
  std::vector<char> job_done(spec.members.size(), 1);
  for (std::size_t i = 0; i < spec.members.size(); ++i) {
    const auto& m = spec.members[i];
    wl::App warm = m.app;
    for (auto& fn : warm.functions) fn.cold_start_s = 0.0;
    const std::size_t id = platform.deploy(warm, m.fn_to_server);
    ids.push_back(id);
    if (m.app.cls == wl::WorkloadClass::kLatencySensitive) {
      const double qps = m.qps > 0.0 ? m.qps : m.app.default_qps;
      platform.set_open_loop(id, qps);
    } else {
      job_done[i] = 0;
      char* done = &job_done[i];
      platform.engine().after(m.start_delay_s, [&platform, id, done] {
        platform.submit_job(id, [done](double) { *done = 1; });
      });
      max_sc_solo = std::max(max_sc_solo, m.app.total_solo_s());
    }
  }

  const double t0 = platform.now();
  double measure_begin = t0 + config_.warmup_s;
  double measure_end = measure_begin + config_.ls_measure_s;

  if (target_ls) {
    // If SC corunners exist, measure while they overlap the LS workload.
    platform.run_until(measure_end);
    for (std::size_t id : ids) platform.set_open_loop(id, 0.0);
    platform.run_until(platform.now() + 2.0);
  } else {
    const double horizon = t0 + config_.sc_horizon_factor * max_sc_solo +
                           300.0;
    // Run until the target's job completes (or the horizon).
    while (platform.now() < horizon && !job_done[0]) {
      platform.run_until(std::min(horizon, platform.now() + 10.0));
      if (platform.engine().pending() == 0) break;
    }
    for (std::size_t id : ids) platform.set_open_loop(id, 0.0);
    measure_begin = t0;
    measure_end = platform.now();
  }

  // --- Labels for the target ------------------------------------------------
  const std::size_t tid = ids[0];
  const auto& st = platform.stats(tid);
  if (target_ls) {
    // Window-bucketed IPC from the recorder (dt-weighted across functions)
    // and p99 from e2e latencies in the same buckets.
    const double w = config_.label_window_s;
    const auto first_bucket =
        static_cast<std::int64_t>(std::floor(measure_begin / w));
    const auto last_bucket =
        static_cast<std::int64_t>(std::floor(measure_end / w));
    std::map<std::int64_t, sim::MetricAccum> per_bucket;
    for (std::size_t fn = 0; fn < target.app.function_count(); ++fn) {
      for (const auto& [win, acc] : platform.recorder().windows(tid, fn)) {
        const auto bucket = static_cast<std::int64_t>(
            std::floor(static_cast<double>(win) *
                       platform.recorder().window_s() / w));
        // Re-accumulate raw (un-finalized equivalents): windows() returns
        // finalized means, so weight them back by dt when merging.
        sim::MetricAccum raw;
        raw.dt = acc.dt;
        raw.ipc = acc.ipc * acc.dt;
        per_bucket[bucket].dt += raw.dt;
        per_bucket[bucket].ipc += raw.ipc;
      }
    }
    std::map<std::int64_t, std::vector<double>> lat_bucket;
    for (const auto& [t, l] : st.e2e) {
      if (t < measure_begin || t >= measure_end) continue;
      lat_bucket[static_cast<std::int64_t>(std::floor(t / w))].push_back(l);
    }
    stats::Running ipc_all;
    std::vector<double> all_lat;
    for (auto bucket = first_bucket; bucket <= last_bucket; ++bucket) {
      const auto mit = per_bucket.find(bucket);
      const auto lit = lat_bucket.find(bucket);
      if (mit == per_bucket.end() || mit->second.dt <= 0.0) continue;
      const double ipc = mit->second.ipc / mit->second.dt;
      out.window_ipc.push_back(ipc);
      ipc_all.add(ipc);
      if (lit != lat_bucket.end() && lit->second.size() >= 10) {
        const double p99 = stats::percentile(lit->second, 99.0);
        out.window_p99.push_back(p99);
        out.window_ipc_p99.emplace_back(ipc, p99);
        all_lat.insert(all_lat.end(), lit->second.begin(), lit->second.end());
      }
    }
    out.mean_ipc = ipc_all.mean();
    if (!all_lat.empty()) {
      out.p99_latency_s = stats::percentile(std::move(all_lat), 99.0);
    }
  } else {
    out.completed = job_done[0] != 0;
    if (!st.jct.empty()) out.jct_s = st.jct.back().second;
    // Mean IPC over the job's functions.
    stats::Running ipc_all;
    for (std::size_t fn = 0; fn < target.app.function_count(); ++fn) {
      const auto total = platform.recorder().total(tid, fn);
      if (total.dt > 0.0) ipc_all.add(total.ipc);
    }
    out.mean_ipc = ipc_all.mean();
  }
  return out;
}

const char* to_string(ColocationClass c) {
  switch (c) {
    case ColocationClass::kLsLs: return "LS+LS";
    case ColocationClass::kLsScBg: return "LS+SC/BG";
    case ColocationClass::kScScBg: return "SC+SC/BG";
  }
  return "?";
}

DatasetBuilder::DatasetBuilder(prof::ProfileStore* store, BuilderConfig config,
                               std::uint64_t seed)
    : store_(store), config_(config), encoder_(config.encoder), rng_(seed) {
  assert(store_ != nullptr);
  assert(config_.encoder.servers == config_.runner.servers);
  ls_pool_ = wl::ls_suite();
  const double s = config_.sc_scale;
  // Targets for SC scenarios are genuine SC jobs; the BG apps only ever
  // appear as corunners (their QoS is never predicted, §3.3).
  sc_target_pool_ = {wl::matmul(3.0 * s), wl::dd(3.0 * s), wl::iperf(3.0 * s),
                     wl::video_processing(4.0 * s)};
  sc_pool_ = sc_target_pool_;
  sc_pool_.push_back(wl::iot_collector());
  sc_pool_.push_back(wl::monitoring_probe());
}

const wl::App& DatasetBuilder::random_ls() {
  return ls_pool_[rng_.uniform_index(ls_pool_.size())];
}

wl::App DatasetBuilder::random_sc_bg() {
  return sc_pool_[rng_.uniform_index(sc_pool_.size())];
}

wl::App DatasetBuilder::random_sc_target() {
  return sc_target_pool_[rng_.uniform_index(sc_target_pool_.size())];
}

std::vector<std::size_t> DatasetBuilder::random_placement(
    const wl::App& app, const std::vector<bool>& hot) {
  std::vector<std::size_t> hot_servers;
  for (std::size_t s = 0; s < hot.size(); ++s) {
    if (hot[s]) hot_servers.push_back(s);
  }
  std::vector<std::size_t> placement(app.function_count());
  for (auto& srv : placement) {
    if (!hot_servers.empty() && rng_.chance(config_.colocate_bias)) {
      srv = hot_servers[rng_.uniform_index(hot_servers.size())];
    } else {
      srv = rng_.uniform_index(config_.runner.servers);
    }
  }
  return placement;
}

ScenarioSpec DatasetBuilder::sample_spec(ColocationClass cls) {
  const std::size_t total = config_.min_workloads +
                            rng_.uniform_index(config_.max_workloads -
                                               config_.min_workloads + 1);
  ScenarioSpec spec;
  std::vector<bool> hot(config_.runner.servers, false);

  auto add_member = [&](const wl::App& app, bool is_target) {
    ScenarioSpec::Member m;
    m.app = app;
    m.fn_to_server = random_placement(app, hot);
    if (app.cls == wl::WorkloadClass::kLatencySensitive) {
      m.qps = config_.ls_qps_levels[rng_.uniform_index(
          config_.ls_qps_levels.size())];
      // Cap the offered load below the app's own bottleneck capacity
      // (slowest function's service rate): a single-replica deployment
      // that saturates at *solo* load would label every window with
      // unbounded queueing rather than interference.
      double slowest = 0.0;
      for (const auto& fn : app.functions) {
        slowest = std::max(slowest, fn.solo_duration_s());
      }
      if (slowest > 0.0) m.qps = std::min(m.qps, 0.8 / slowest);
    } else if (!is_target) {
      // Corunner jobs start within the early window of the target.
      m.start_delay_s = rng_.uniform(0.0, 20.0);
    }
    for (std::size_t srv : m.fn_to_server) hot[srv] = true;
    spec.members.push_back(std::move(m));
    // Profiles must exist before the runner describes the scenario.
    ensure_profile(*store_, spec.members.back().app, spec.members.back().qps,
                   config_.profiler);
  };

  switch (cls) {
    case ColocationClass::kLsLs:
      add_member(random_ls(), true);
      for (std::size_t i = 1; i < total; ++i) add_member(random_ls(), false);
      break;
    case ColocationClass::kLsScBg:
      add_member(random_ls(), true);
      for (std::size_t i = 1; i < total; ++i) {
        add_member(random_sc_bg(), false);
      }
      break;
    case ColocationClass::kScScBg:
      add_member(random_sc_target(), true);
      for (std::size_t i = 1; i < total; ++i) {
        add_member(random_sc_bg(), false);
      }
      break;
  }
  return spec;
}

std::vector<ScenarioSamples> DatasetBuilder::build(const BuildRequest& request) {
  // Phase 1 (serial): sample the specs. This draws from the builder's own
  // stream and profiles unseen apps into the store, so it must not fan
  // out — and it is cheap next to the simulation runs.
  std::vector<ScenarioSpec> specs;
  specs.reserve(request.count);
  for (std::size_t i = 0; i < request.count; ++i) {
    specs.push_back(sample_spec(request.cls));
  }
  // One root per build() call keeps successive builds on one builder
  // independent; deriving per-scenario seeds from it (instead of a shared
  // runner Rng advanced run-to-run) is what decouples the tasks.
  const std::uint64_t root = request.campaign.root_seed != 0
                                 ? request.campaign.root_seed
                                 : rng_.next();

  // Phase 2 (parallel): execute + encode. Each task reads the shared
  // profile store and encoder (both const here) and touches nothing else.
  CampaignRunner campaign(request.campaign);
  const QosKind qos = request.qos;
  auto runs = campaign.map<ScenarioSamples>(
      specs.size(), root, [&](std::size_t i, std::uint64_t seed) {
        RunnerConfig rc = config_.runner;
        rc.seed = seed;
        rc.use_default_trace_sink = false;
        ScenarioRunner runner(store_, rc);
        RunOutcome outcome = runner.run(specs[i]);
        ScenarioSamples s;
        s.features = encoder_.encode(outcome.scenario);
        switch (qos) {
          case QosKind::kIpc:
            if (!outcome.window_ipc.empty()) {
              s.labels = outcome.window_ipc;
            } else if (outcome.mean_ipc > 0.0) {
              s.labels.push_back(outcome.mean_ipc);
            }
            break;
          case QosKind::kTailLatency:
            s.labels = outcome.window_p99;
            break;
          case QosKind::kJct:
            if (outcome.jct_s > 0.0) s.labels.push_back(outcome.jct_s);
            break;
        }
        s.outcome = std::move(outcome);
        return s;
      });

  // Phase 3 (serial): drop label-less scenarios, preserving index order.
  std::vector<ScenarioSamples> out;
  out.reserve(runs.size());
  for (auto& s : runs) {
    if (!s.labels.empty()) out.push_back(std::move(s));
  }
  return out;
}

ml::Dataset DatasetBuilder::flatten(const std::vector<ScenarioSamples>& samples,
                                    std::size_t feature_dim) {
  ml::Dataset data(feature_dim);
  for (const auto& s : samples) {
    for (double label : s.labels) data.add(s.features, label);
  }
  return data;
}

}  // namespace gsight::core
