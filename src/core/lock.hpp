// Capability-annotated locking primitives — the repo's lock discipline in
// type form. gsight::core::Mutex wraps std::mutex with Clang
// thread-safety capability attributes so that a clang build with
// -DGSIGHT_THREAD_SAFETY=ON (check.sh stage 2c) statically proves that
// every GSIGHT_GUARDED_BY member is only touched with its mutex held.
// Under other compilers the attributes vanish and the wrappers compile
// down to exactly std::mutex / std::lock_guard / std::unique_lock.
//
// Why wrappers instead of annotating call sites: libstdc++'s std::mutex
// and std::lock_guard carry no capability attributes, so clang's
// analysis cannot see their acquisitions. The annotated Mutex plus the
// two scoped guards below are the standard fix (the same shape as
// Chromium's base::Lock or the mutex.h example in the Clang docs).
//
// Discipline (enforced lexically by tools/gsight_analyze, and by clang
// where available):
//   * concurrent classes declare `mutable core::Mutex mutex_;` members,
//     never bare std::mutex;
//   * plain critical sections use MutexLock;
//   * condition-variable waits use MutexUniqueLock and pass raw() to
//     std::condition_variable::wait*, with the predicate written as an
//     explicit while-loop in the waiting function (a predicate lambda
//     would be analysed as a separate, lock-less function and flagged).
#pragma once

#include <mutex>

#include "core/contracts.hpp"

namespace gsight::core {

/// std::mutex with capability attributes. Satisfies *Lockable* (lock,
/// unlock, try_lock), so it also works with std::scoped_lock and
/// std::condition_variable_any if ever needed.
class GSIGHT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GSIGHT_ACQUIRE() { m_.lock(); }
  void unlock() GSIGHT_RELEASE() { m_.unlock(); }
  bool try_lock() GSIGHT_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped native handle — for std::condition_variable interop
  /// (via MutexUniqueLock) only; never lock it directly.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// RAII critical section (std::lock_guard shape).
class GSIGHT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) GSIGHT_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() GSIGHT_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII lock whose underlying std::unique_lock can be handed to
/// std::condition_variable::wait* via raw(). The wait's internal
/// unlock/relock round-trip is invisible to the analysis, which stays
/// truthful: the lock is held again by the time wait returns, and the
/// guard releases exactly once on destruction.
class GSIGHT_SCOPED_CAPABILITY MutexUniqueLock {
 public:
  explicit MutexUniqueLock(Mutex& mutex) GSIGHT_ACQUIRE(mutex)
      : lock_(mutex.native()) {}
  ~MutexUniqueLock() GSIGHT_RELEASE() {}

  MutexUniqueLock(const MutexUniqueLock&) = delete;
  MutexUniqueLock& operator=(const MutexUniqueLock&) = delete;

  std::unique_lock<std::mutex>& raw() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace gsight::core
