// CampaignRunner — the fan-out layer behind every aggregate result in the
// repo. A Gsight "campaign" is N independent seeded simulations (dataset
// scenarios, solo profiles, multi-seed scheduling replications) whose
// outputs are consumed as an ordered stream. The runner executes the
// tasks across ml::ThreadPool and guarantees the parallel output is
// bit-identical to serial execution:
//
//   * every task i receives its own seed stats::SeedStream::derive(root, i)
//     — no task ever draws from another task's stream, so execution order
//     cannot leak into the results;
//   * results land in slot i of the output vector regardless of which
//     worker finishes first;
//   * tasks must not touch shared mutable state (the compiler cannot check
//     this; the twin-run ctest and the check.sh campaign-equivalence stage
//     do).
//
// Campaign workers run their platforms with use_default_trace_sink off:
// per-request span traces from concurrent simulations would interleave
// nondeterministically in the process-wide sink. Campaigns are traced at
// task granularity (progress callback) instead.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/lock.hpp"
#include "ml/thread_pool.hpp"
#include "profiling/profile.hpp"
#include "profiling/solo_profiler.hpp"
#include "stats/seed_stream.hpp"

namespace gsight::core {

/// How a campaign executes — shared by every request struct that fans out
/// (core::BuildRequest, sched::CampaignConfig, the gsight CLI).
struct CampaignOptions {
  /// Worker threads: 0 = one per hardware thread, 1 = serial (inline on
  /// the calling thread). Any value yields bit-identical results; threads
  /// only trade wall-clock. Benches default this from $GSIGHT_THREADS.
  std::size_t threads = 0;
  /// Root seed for per-task derivation where the owning API does not
  /// supply one. 0 means "let the owner pick" (e.g. DatasetBuilder draws
  /// the root from its own stream so successive builds stay independent).
  std::uint64_t root_seed = 0;
  /// Invoked after each task completes, serialised under a mutex, with
  /// (tasks done, tasks total). Completion order is nondeterministic —
  /// treat this as progress telemetry, never as data.
  std::function<void(std::size_t, std::size_t)> progress;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {})
      : options_(std::move(options)) {}

  const CampaignOptions& options() const { return options_; }

  /// Run task(i, derive(root, i)) for i in [0, n) and collect the results
  /// by index. R must be default-constructible and movable. The first
  /// exception thrown by any task is rethrown after the fan-out drains.
  template <typename R>
  std::vector<R> map(
      std::size_t n, std::uint64_t root,
      const std::function<R(std::size_t, std::uint64_t)>& task) {
    std::vector<R> results(n);
    const stats::SeedStream seeds(root);
    std::size_t done = 0;
    Mutex progress_mutex;
    auto body = [&](std::size_t i) {
      results[i] = task(i, seeds.derive(i));
      if (options_.progress) {
        const MutexLock lock(progress_mutex);
        options_.progress(++done, n);
      }
    };
    if (options_.threads == 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) body(i);
    } else {
      ml::ThreadPool pool(options_.threads);
      pool.parallel_for(n, body);
    }
    return results;
  }

 private:
  CampaignOptions options_;
};

/// Solo-profile every request across the pool. Bit-identical to
/// prof::SoloProfiler::profile_all (both honour the per-index seed
/// contract: request i runs under derive(config.seed, i)); this is the
/// entry point the benches use so M+N profiling runs cost max(solo) wall-
/// clock instead of sum(solo). Lives here rather than in prof:: because
/// the campaign layer sits above profiling in the dependency order.
prof::ProfileStore profile_all(const prof::SoloProfilerConfig& config,
                               const std::vector<prof::ProfileRequest>& apps,
                               const CampaignOptions& options = {});

}  // namespace gsight::core
