// GsightPredictor — the deployable predictor of Figure 6: solo-run
// profiles + spatial-temporal overlap codes in, QoS out, with an
// incremental model updated online from observed performance. One
// predictor instance targets one QoS metric (IPC, tail latency or JCT);
// the scheduler owns one per metric it cares about.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/encoder.hpp"
#include "ml/incremental_forest.hpp"
#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/mlp.hpp"
#include "ml/svr.hpp"

namespace gsight::core {

/// Which QoS value the predictor's output represents.
enum class QosKind { kIpc, kTailLatency, kJct };

const char* to_string(QosKind kind);

/// The five incremental learners compared in Figure 9.
enum class ModelKind { kIRFR, kIKNN, kILR, kISVR, kIMLP };

const char* to_string(ModelKind kind);

/// The IRFR configuration Gsight deploys (80 extra-trees with random
/// thresholds over the wide overlap-coded feature space). Single source
/// of truth shared by make_model and the online serving stack, so the
/// model served by `gsight serve-bench` is the model the experiments
/// evaluate.
ml::IncrementalForestConfig deployed_irfr_config(
    ml::TreeKernel forest_kernel = ml::TreeKernel::kColumnar);

std::unique_ptr<ml::IncrementalRegressor> make_model(
    ModelKind kind, std::uint64_t seed = 1,
    ml::TreeKernel forest_kernel = ml::TreeKernel::kColumnar);

/// Common interface for everything that predicts a target workload's QoS
/// from a colocation scenario — Gsight itself and the ESP / Pythia
/// baselines it is compared against (Figure 9).
class ScenarioPredictor {
 public:
  virtual ~ScenarioPredictor() = default;
  virtual double predict(const Scenario& scenario) const = 0;
  /// One QoS value per scenario, bit-identical to calling predict() on
  /// each. The default is that loop; Gsight overrides it to encode the
  /// whole batch and issue one tree-major forest traversal, which is how
  /// the scheduler's SLA sweep turns N model calls into one.
  virtual std::vector<double> predict_batch(
      std::span<const Scenario> scenarios) const;
  virtual void observe(const Scenario& scenario, double actual_qos) = 0;
  virtual void flush() = 0;
  virtual std::string name() const = 0;
};

struct PredictorConfig {
  EncoderConfig encoder;
  ModelKind model = ModelKind::kIRFR;
  QosKind qos = QosKind::kIpc;
  /// Observations are buffered and folded into the model once this many
  /// have accumulated (amortises incremental updates).
  std::size_t update_batch = 32;
  std::uint64_t seed = 1;
  /// Forest training kernel (IRFR only). kColumnar is the fast path;
  /// kLegacy keeps the original row-major kernel, retained one release
  /// for equivalence checking (the two produce bit-identical models).
  ml::TreeKernel forest_kernel = ml::TreeKernel::kColumnar;
};

class GsightPredictor final : public ScenarioPredictor {
 public:
  explicit GsightPredictor(PredictorConfig config = {});
  /// Take ownership of a custom model (e.g. specially configured IRFR).
  GsightPredictor(PredictorConfig config,
                  std::unique_ptr<ml::IncrementalRegressor> model);

  /// Predict the target workload's QoS under the scenario.
  double predict(const Scenario& scenario) const override;
  /// Batched predict: encode every scenario, then one batched model call.
  std::vector<double> predict_batch(
      std::span<const Scenario> scenarios) const override;

  /// Record an observed (scenario, actual QoS) pair; the model updates
  /// once `update_batch` observations accumulate (or on flush()).
  void observe(const Scenario& scenario, double actual_qos) override;
  /// Fold any buffered observations into the model immediately.
  void flush() override;
  std::string name() const override {
    return std::string("Gsight-") + to_string(config_.model);
  }

  /// Bulk offline training (initial dataset of Figure 6 step 3).
  void train(const ml::Dataset& dataset);

  const Encoder& encoder() const { return encoder_; }
  const ml::IncrementalRegressor& model() const { return *model_; }
  std::size_t samples_seen() const { return model_->samples_seen(); }
  const PredictorConfig& config() const { return config_; }

 private:
  PredictorConfig config_;
  Encoder encoder_;
  std::unique_ptr<ml::IncrementalRegressor> model_;
  ml::Dataset pending_;
  /// predict_batch scratch: scenario codes are written straight into
  /// rows of this reused Matrix (zero-copy encode). mutable because
  /// batched prediction is logically const; a predictor instance is not
  /// safe for concurrent use — the serving stack (serve::) hands each
  /// worker its own snapshot instead of sharing one predictor.
  mutable ml::Matrix batch_xs_;
  mutable EncodeScratch encode_scratch_;
};

}  // namespace gsight::core
