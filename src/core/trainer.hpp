// Training-data machinery (Figure 6, steps 1-5): ScenarioRunner realises a
// colocation scenario on the simulator and measures the target workload's
// actual QoS (the labels); DatasetBuilder samples random scenarios of a
// given colocation class (LS+LS, LS+SC/BG, SC+SC/BG) and turns them into
// encoder feature rows with per-window labels, exactly like the paper's
// once-per-second collection.
#pragma once

#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/encoder.hpp"
#include "core/predictor.hpp"
#include "ml/dataset.hpp"
#include "profiling/solo_profiler.hpp"
#include "sim/platform.hpp"

namespace gsight::core {

/// Cluster shape and root seed live in the embedded sim::ClusterSpec;
/// the fields below are measurement-protocol knobs.
struct RunnerConfig : sim::ClusterSpec {
  RunnerConfig() { seed = 2024; }

  double warmup_s = 5.0;        ///< LS: discard this prefix
  double ls_measure_s = 30.0;   ///< LS: measurement span after warmup
  double label_window_s = 5.0;  ///< bucket width for per-window labels
  /// SC horizon cap as a multiple of the solo JCT (plus slack).
  double sc_horizon_factor = 6.0;
};

/// A scenario to *execute* (concrete apps + load), as opposed to
/// core::Scenario which is the profile-level description the encoder sees.
struct ScenarioSpec {
  struct Member {
    wl::App app;
    std::vector<std::size_t> fn_to_server;
    double start_delay_s = 0.0;  ///< SC/BG submission delay
    double qps = 0.0;            ///< LS rate; 0 = app default
  };
  std::vector<Member> members;  ///< members[0] is the prediction target
};

struct RunOutcome {
  Scenario scenario;        ///< encoder-ready description
  double mean_ipc = 0.0;    ///< target's measured mean IPC
  double p99_latency_s = 0.0;  ///< target's measured p99 (LS)
  double jct_s = 0.0;          ///< target's measured JCT (SC/BG)
  /// Per-label-window samples (LS only).
  std::vector<double> window_ipc;
  std::vector<double> window_p99;
  /// Per-window (ipc, p99) pairs for the Figure 7 knee curve.
  std::vector<std::pair<double, double>> window_ipc_p99;
  bool completed = true;  ///< SC job finished within the horizon
};

/// Composite profile-store key for QPS-specific LS profiles.
std::string profile_key(const std::string& app_name, double qps);

/// Profile `app` (at `qps` if LS) into the store under the composite key,
/// unless already present. Returns the key.
std::string ensure_profile(prof::ProfileStore& store, const wl::App& app,
                           double qps, const prof::SoloProfilerConfig& cfg);

class ScenarioRunner {
 public:
  ScenarioRunner(const prof::ProfileStore* profiles, RunnerConfig config);

  /// Execute the spec and measure the target's QoS. Profiles for every
  /// member must already be in the store (see ensure_profile).
  RunOutcome run(const ScenarioSpec& spec);

  const RunnerConfig& config() const { return config_; }

 private:
  Scenario describe(const ScenarioSpec& spec) const;

  const prof::ProfileStore* profiles_;
  RunnerConfig config_;
  stats::Rng rng_;
};

/// Colocation classes of Figure 9 / §3.3.
enum class ColocationClass { kLsLs, kLsScBg, kScScBg };
const char* to_string(ColocationClass c);

struct BuilderConfig {
  RunnerConfig runner;
  EncoderConfig encoder;
  /// QPS levels LS workloads are profiled and driven at.
  std::vector<double> ls_qps_levels = {20.0, 40.0, 60.0};
  /// Workloads per scenario (including the target), sampled uniformly.
  std::size_t min_workloads = 2;
  std::size_t max_workloads = 3;
  /// Probability that a corunner function lands on a server the target
  /// already occupies (drives partial-overlap density).
  double colocate_bias = 0.7;
  /// Time scale of SC corunner jobs (1.0 = the paper's minutes-long jobs;
  /// smaller keeps dataset generation fast while preserving phases).
  double sc_scale = 0.15;
  prof::SoloProfilerConfig profiler;
};

/// Feature rows + labels produced from one executed scenario (all rows
/// share the feature vector; labels are the per-window measurements).
struct ScenarioSamples {
  std::vector<double> features;
  std::vector<double> labels;
  RunOutcome outcome;
};

/// What to build: the entry-point request struct that replaced the old
/// positional build(cls, qos, count) signature. `campaign` controls the
/// fan-out (threads, progress); thread count never changes the returned
/// stream, only the wall-clock.
struct BuildRequest {
  ColocationClass cls = ColocationClass::kLsScBg;
  QosKind qos = QosKind::kIpc;
  std::size_t count = 0;
  CampaignOptions campaign;
};

class DatasetBuilder {
 public:
  DatasetBuilder(prof::ProfileStore* store, BuilderConfig config,
                 std::uint64_t seed = 7);

  /// Sample and execute `request.count` random scenarios of the class and
  /// return per-scenario samples labelled with `request.qos`, in sampling
  /// order. Scenario sampling and on-demand profiling stay serial (they
  /// advance the builder's own stream and mutate the store); the
  /// simulation runs fan out across `request.campaign.threads` with
  /// per-scenario seeds derived from one root, so the stream is
  /// bit-identical whatever the thread count. The root is drawn from the
  /// builder's stream unless `request.campaign.root_seed` pins it.
  std::vector<ScenarioSamples> build(const BuildRequest& request);

  /// Draw a random executable spec of the class (exposed for benches that
  /// need matched train/deploy distributions).
  ScenarioSpec sample_spec(ColocationClass cls);

  /// Flatten per-scenario samples into one ml::Dataset.
  static ml::Dataset flatten(const std::vector<ScenarioSamples>& samples,
                             std::size_t feature_dim);

  const Encoder& encoder() const { return encoder_; }
  prof::ProfileStore& store() { return *store_; }
  const BuilderConfig& config() const { return config_; }

 private:
  const wl::App& random_ls();
  wl::App random_sc_bg();
  wl::App random_sc_target();
  std::vector<std::size_t> random_placement(const wl::App& app,
                                            const std::vector<bool>& hot);

  prof::ProfileStore* store_;
  BuilderConfig config_;
  Encoder encoder_;
  stats::Rng rng_;
  std::vector<wl::App> ls_pool_;
  std::vector<wl::App> sc_pool_;
  std::vector<wl::App> sc_target_pool_;
};

}  // namespace gsight::core
