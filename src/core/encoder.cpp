#include "core/encoder.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace gsight::core {

std::size_t Encoder::dimension() const {
  const std::size_t n = config_.max_workloads;
  const std::size_t s = config_.servers;
  return 2 * n * s * kCodeWidth + 2 * n;  // == 32*n*S + 2*n for width 16
}

namespace {

// Monolithic-ablation helper: average non-empty rows into row 0.
void collapse_rows(std::vector<double>& m, std::size_t servers) {
  std::vector<double> agg(kCodeWidth, 0.0);
  std::size_t nonzero = 0;
  for (std::size_t srv = 0; srv < servers; ++srv) {
    bool any = false;
    for (std::size_t k = 0; k < kCodeWidth; ++k) {
      if (m[srv * kCodeWidth + k] != 0.0) any = true;
    }
    if (any) {
      ++nonzero;
      for (std::size_t k = 0; k < kCodeWidth; ++k) {
        agg[k] += m[srv * kCodeWidth + k];
      }
    }
  }
  std::fill(m.begin(), m.end(), 0.0);
  if (nonzero > 0) {
    for (std::size_t k = 0; k < kCodeWidth; ++k) {
      m[k] = agg[k] / static_cast<double>(nonzero);
    }
  }
}

// Sum of one server row across a matrix (row "mass").
double row_mass(const std::vector<double>& m, std::size_t srv) {
  double mass = 0.0;
  for (std::size_t k = 0; k < kCodeWidth; ++k) mass += m[srv * kCodeWidth + k];
  return mass;
}

}  // namespace

std::vector<double> Encoder::encode(const Scenario& scenario) const {
  scenario.validate();
  if (scenario.workloads.size() > config_.max_workloads) {
    throw std::invalid_argument("Encoder: scenario exceeds workload slots");
  }
  if (scenario.servers != config_.servers) {
    throw std::invalid_argument("Encoder: scenario server count mismatch");
  }
  const std::size_t n = config_.max_workloads;
  const std::size_t s = config_.servers;
  const std::size_t live = scenario.workloads.size();

  // Precompute every live workload's R and U matrices.
  std::vector<std::vector<double>> r_codes(live), u_codes(live);
  for (std::size_t w = 0; w < live; ++w) {
    r_codes[w] = allocation_code(scenario.workloads[w], s);
    u_codes[w] = utilization_code(scenario.workloads[w], s);
  }

  // Canonical server order: rows the target occupies first (heaviest
  // first), then rows only corunners occupy (heaviest first), then empty
  // rows. Applied consistently to every matrix so colocation structure
  // ("same row" relations) is preserved exactly.
  std::vector<std::size_t> order(s);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (config_.canonical_server_order && live > 0) {
    std::vector<double> target_mass(s, 0.0), total_mass(s, 0.0);
    for (std::size_t srv = 0; srv < s; ++srv) {
      target_mass[srv] = row_mass(u_codes[0], srv);
      for (std::size_t w = 0; w < live; ++w) {
        total_mass[srv] += row_mass(u_codes[w], srv);
      }
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const bool ta = target_mass[a] > 0.0;
                       const bool tb = target_mass[b] > 0.0;
                       if (ta != tb) return ta;
                       if (target_mass[a] != target_mass[b]) {
                         return target_mass[a] > target_mass[b];
                       }
                       return total_mass[a] > total_mass[b];
                     });
  }
  auto permuted = [&](const std::vector<double>& m) {
    std::vector<double> out(s * kCodeWidth, 0.0);
    for (std::size_t row = 0; row < s; ++row) {
      const std::size_t src = order[row];
      std::copy_n(m.begin() + static_cast<std::ptrdiff_t>(src * kCodeWidth),
                  kCodeWidth,
                  out.begin() + static_cast<std::ptrdiff_t>(row * kCodeWidth));
    }
    return out;
  };

  std::vector<double> out;
  out.reserve(dimension());
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (slot < live) {
      auto r = permuted(r_codes[slot]);
      auto u = permuted(u_codes[slot]);
      if (!config_.spatial_coding) {
        collapse_rows(r, s);
        collapse_rows(u, s);
      }
      out.insert(out.end(), r.begin(), r.end());
      out.insert(out.end(), u.begin(), u.end());
    } else {
      out.insert(out.end(), 2 * s * kCodeWidth, 0.0);
    }
  }
  // Temporal overlap codes: D then T, one entry per slot.
  for (std::size_t slot = 0; slot < n; ++slot) {
    out.push_back(slot < live && config_.temporal_coding
                      ? scenario.workloads[slot].start_delay_s
                      : 0.0);
  }
  for (std::size_t slot = 0; slot < n; ++slot) {
    out.push_back(slot < live && config_.temporal_coding
                      ? scenario.workloads[slot].lifetime_s
                      : 0.0);
  }
  assert(out.size() == dimension());
  return out;
}

}  // namespace gsight::core
