#include "core/encoder.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>

namespace gsight::core {

std::size_t Encoder::dimension() const {
  const std::size_t n = config_.max_workloads;
  const std::size_t s = config_.servers;
  return 2 * n * s * kCodeWidth + 2 * n;  // == 32*n*S + 2*n for width 16
}

namespace {

// Monolithic-ablation helper: average non-empty rows into row 0,
// operating in place on a matrix slice of the output row. The kCodeWidth
// accumulator lives on the stack, keeping the ablation allocation-free
// too.
void collapse_rows(std::span<double> m, std::size_t servers) {
  std::array<double, kCodeWidth> agg{};
  std::size_t nonzero = 0;
  for (std::size_t srv = 0; srv < servers; ++srv) {
    bool any = false;
    for (std::size_t k = 0; k < kCodeWidth; ++k) {
      if (m[srv * kCodeWidth + k] != 0.0) any = true;
    }
    if (any) {
      ++nonzero;
      for (std::size_t k = 0; k < kCodeWidth; ++k) {
        agg[k] += m[srv * kCodeWidth + k];
      }
    }
  }
  std::fill(m.begin(), m.end(), 0.0);
  if (nonzero > 0) {
    for (std::size_t k = 0; k < kCodeWidth; ++k) {
      m[k] = agg[k] / static_cast<double>(nonzero);
    }
  }
}

// Sum of one server row across a matrix (row "mass").
double row_mass(const std::vector<double>& m, std::size_t srv) {
  double mass = 0.0;
  for (std::size_t k = 0; k < kCodeWidth; ++k) mass += m[srv * kCodeWidth + k];
  return mass;
}

}  // namespace

void Encoder::encode_into(const Scenario& scenario, EncodeScratch& scratch,
                          std::span<double> out) const {
  scenario.validate();
  if (scenario.workloads.size() > config_.max_workloads) {
    throw std::invalid_argument("Encoder: scenario exceeds workload slots");
  }
  if (scenario.servers != config_.servers) {
    throw std::invalid_argument("Encoder: scenario server count mismatch");
  }
  if (out.size() != dimension()) {
    throw std::invalid_argument("Encoder: output span size mismatch");
  }
  const std::size_t n = config_.max_workloads;
  const std::size_t s = config_.servers;
  const std::size_t live = scenario.workloads.size();

  // Precompute every live workload's R and U matrices into the scratch
  // buffers (shrinking resizes keep dead slots' capacity around).
  scratch.r_codes.resize(live);
  scratch.u_codes.resize(live);
  for (std::size_t w = 0; w < live; ++w) {
    allocation_code_into(scenario.workloads[w], s, scratch.r_codes[w],
                         scratch.fn_count);
    utilization_code_into(scenario.workloads[w], s, scratch.u_codes[w],
                          scratch.fn_count);
  }

  // Canonical server order: rows the target occupies first (heaviest
  // first), then rows only corunners occupy (heaviest first), then empty
  // rows. Applied consistently to every matrix so colocation structure
  // ("same row" relations) is preserved exactly.
  scratch.order.resize(s);
  std::iota(scratch.order.begin(), scratch.order.end(), std::size_t{0});
  if (config_.canonical_server_order && live > 0) {
    scratch.target_mass.assign(s, 0.0);
    scratch.total_mass.assign(s, 0.0);
    for (std::size_t srv = 0; srv < s; ++srv) {
      scratch.target_mass[srv] = row_mass(scratch.u_codes[0], srv);
      for (std::size_t w = 0; w < live; ++w) {
        scratch.total_mass[srv] += row_mass(scratch.u_codes[w], srv);
      }
    }
    const auto& target_mass = scratch.target_mass;
    const auto& total_mass = scratch.total_mass;
    std::stable_sort(scratch.order.begin(), scratch.order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const bool ta = target_mass[a] > 0.0;
                       const bool tb = target_mass[b] > 0.0;
                       if (ta != tb) return ta;
                       if (target_mass[a] != target_mass[b]) {
                         return target_mass[a] > target_mass[b];
                       }
                       return total_mass[a] > total_mass[b];
                     });
  }

  // Permute each live matrix directly into its slice of the output row
  // — no intermediate per-matrix buffers.
  std::fill(out.begin(), out.end(), 0.0);
  const std::size_t matrix_len = s * kCodeWidth;
  auto permute_into = [&](const std::vector<double>& m, std::span<double> dst) {
    for (std::size_t row = 0; row < s; ++row) {
      const std::size_t src = scratch.order[row];
      std::copy_n(m.begin() + static_cast<std::ptrdiff_t>(src * kCodeWidth),
                  kCodeWidth, dst.begin() + static_cast<std::ptrdiff_t>(
                                  row * kCodeWidth));
    }
  };
  for (std::size_t slot = 0; slot < live; ++slot) {
    const auto r_dst = out.subspan(slot * 2 * matrix_len, matrix_len);
    const auto u_dst = out.subspan(slot * 2 * matrix_len + matrix_len,
                                   matrix_len);
    permute_into(scratch.r_codes[slot], r_dst);
    permute_into(scratch.u_codes[slot], u_dst);
    if (!config_.spatial_coding) {
      collapse_rows(r_dst, s);
      collapse_rows(u_dst, s);
    }
  }
  // Temporal overlap codes: D then T, one entry per slot (already zeroed
  // for dead slots and the temporal ablation).
  if (config_.temporal_coding) {
    const std::size_t temporal = 2 * n * matrix_len;
    for (std::size_t slot = 0; slot < live; ++slot) {
      out[temporal + slot] = scenario.workloads[slot].start_delay_s;
      out[temporal + n + slot] = scenario.workloads[slot].lifetime_s;
    }
  }
}

std::vector<double> Encoder::encode(const Scenario& scenario) const {
  EncodeScratch scratch;
  std::vector<double> out(dimension(), 0.0);
  encode_into(scenario, scratch, out);
  return out;
}

}  // namespace gsight::core
