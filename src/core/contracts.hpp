// Runtime contracts — lightweight, compile-time selectable assertions for
// simulation invariants. Unlike <cassert>, contracts (a) survive NDEBUG
// builds unless explicitly compiled out, (b) report through a swappable
// handler so tests can observe violations without death tests, and (c)
// distinguish cheap precondition checks (GSIGHT_ASSERT) from heavier
// structural invariants (GSIGHT_INVARIANT) that can be compiled out
// independently.
//
// Levels (set GSIGHT_CONTRACT_LEVEL, normally via the CMake cache variable
// of the same name):
//   0 — all contracts compiled out (shipping / benchmark builds)
//   1 — GSIGHT_ASSERT only (cheap pre/postconditions)
//   2 — GSIGHT_ASSERT + GSIGHT_INVARIANT (default; full checking)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#ifndef GSIGHT_CONTRACT_LEVEL
#define GSIGHT_CONTRACT_LEVEL 2
#endif

namespace gsight::core {

/// Thrown by `throwing_contract_handler` — the handler tests install to
/// observe violations as exceptions instead of process aborts.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

/// kind is "assertion" or "invariant"; msg may be empty.
using ContractHandler = void (*)(const char* kind, const char* expr,
                                 const char* file, int line, const char* msg);

namespace detail {

inline std::string format_violation(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const char* msg) {
  std::string out = std::string(file) + ":" + std::to_string(line) +
                    ": contract " + kind + " failed: " + expr;
  if (msg != nullptr && msg[0] != '\0') {
    out += " (";
    out += msg;
    out += ")";
  }
  return out;
}

[[noreturn]] inline void aborting_contract_handler(const char* kind,
                                                   const char* expr,
                                                   const char* file, int line,
                                                   const char* msg) {
  std::fputs(format_violation(kind, expr, file, line, msg).c_str(), stderr);
  std::fputc('\n', stderr);
  std::abort();
}

inline ContractHandler& handler_slot() {
  static ContractHandler handler = &aborting_contract_handler;
  return handler;
}

[[noreturn]] inline void contract_failed(const char* kind, const char* expr,
                                         const char* file, int line,
                                         const char* msg) {
  handler_slot()(kind, expr, file, line, msg);
  // A custom handler must not return normally (it should throw or abort);
  // guarantee [[noreturn]] regardless.
  std::abort();
}

}  // namespace detail

/// Install a new violation handler; returns the previous one. The handler
/// must not return normally — throw (tests) or abort (production).
inline ContractHandler set_contract_handler(ContractHandler handler) {
  ContractHandler previous = detail::handler_slot();
  detail::handler_slot() = handler;
  return previous;
}

/// Handler that throws ContractViolation — install in tests to assert that
/// a contract fires (EXPECT_THROW) without killing the process.
[[noreturn]] inline void throwing_contract_handler(const char* kind,
                                                   const char* expr,
                                                   const char* file, int line,
                                                   const char* msg) {
  throw ContractViolation(
      detail::format_violation(kind, expr, file, line, msg));
}

/// RAII: installs `handler` (default: throwing) for the enclosing scope.
class ScopedContractHandler {
 public:
  explicit ScopedContractHandler(
      ContractHandler handler = &throwing_contract_handler)
      : previous_(set_contract_handler(handler)) {}
  ~ScopedContractHandler() { set_contract_handler(previous_); }
  ScopedContractHandler(const ScopedContractHandler&) = delete;
  ScopedContractHandler& operator=(const ScopedContractHandler&) = delete;

 private:
  ContractHandler previous_;
};

}  // namespace gsight::core

// Message argument is optional: GSIGHT_ASSERT(cond) or
// GSIGHT_ASSERT(cond, "context"). Messages are only materialised on the
// failure path.
#if GSIGHT_CONTRACT_LEVEL >= 1
#define GSIGHT_ASSERT(cond, ...)                                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::gsight::core::detail::contract_failed(                         \
          "assertion", #cond, __FILE__, __LINE__,                      \
          ::std::string{__VA_ARGS__}.c_str());                         \
    }                                                                  \
  } while (false)
#else
#define GSIGHT_ASSERT(cond, ...) ((void)0)
#endif

#if GSIGHT_CONTRACT_LEVEL >= 2
#define GSIGHT_INVARIANT(cond, ...)                                    \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::gsight::core::detail::contract_failed(                         \
          "invariant", #cond, __FILE__, __LINE__,                      \
          ::std::string{__VA_ARGS__}.c_str());                         \
    }                                                                  \
  } while (false)
#else
#define GSIGHT_INVARIANT(cond, ...) ((void)0)
#endif
