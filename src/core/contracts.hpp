// Runtime contracts — lightweight, compile-time selectable assertions for
// simulation invariants. Unlike <cassert>, contracts (a) survive NDEBUG
// builds unless explicitly compiled out, (b) report through a swappable
// handler so tests can observe violations without death tests, and (c)
// distinguish cheap precondition checks (GSIGHT_ASSERT) from heavier
// structural invariants (GSIGHT_INVARIANT) that can be compiled out
// independently.
//
// Levels (set GSIGHT_CONTRACT_LEVEL, normally via the CMake cache variable
// of the same name):
//   0 — all contracts compiled out (shipping / benchmark builds)
//   1 — GSIGHT_ASSERT only (cheap pre/postconditions)
//   2 — GSIGHT_ASSERT + GSIGHT_INVARIANT (default; full checking)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#ifndef GSIGHT_CONTRACT_LEVEL
#define GSIGHT_CONTRACT_LEVEL 2
#endif

namespace gsight::core {

/// Thrown by `throwing_contract_handler` — the handler tests install to
/// observe violations as exceptions instead of process aborts.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

/// kind is "assertion" or "invariant"; msg may be empty.
using ContractHandler = void (*)(const char* kind, const char* expr,
                                 const char* file, int line, const char* msg);

namespace detail {

inline std::string format_violation(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const char* msg) {
  std::string out = std::string(file) + ":" + std::to_string(line) +
                    ": contract " + kind + " failed: " + expr;
  if (msg != nullptr && msg[0] != '\0') {
    out += " (";
    out += msg;
    out += ")";
  }
  return out;
}

[[noreturn]] inline void aborting_contract_handler(const char* kind,
                                                   const char* expr,
                                                   const char* file, int line,
                                                   const char* msg) {
  std::fputs(format_violation(kind, expr, file, line, msg).c_str(), stderr);
  std::fputc('\n', stderr);
  std::abort();
}

inline ContractHandler& handler_slot() {
  static ContractHandler handler = &aborting_contract_handler;
  return handler;
}

[[noreturn]] inline void contract_failed(const char* kind, const char* expr,
                                         const char* file, int line,
                                         const char* msg) {
  handler_slot()(kind, expr, file, line, msg);
  // A custom handler must not return normally (it should throw or abort);
  // guarantee [[noreturn]] regardless.
  std::abort();
}

}  // namespace detail

/// Install a new violation handler; returns the previous one. The handler
/// must not return normally — throw (tests) or abort (production).
inline ContractHandler set_contract_handler(ContractHandler handler) {
  ContractHandler previous = detail::handler_slot();
  detail::handler_slot() = handler;
  return previous;
}

/// Handler that throws ContractViolation — install in tests to assert that
/// a contract fires (EXPECT_THROW) without killing the process.
[[noreturn]] inline void throwing_contract_handler(const char* kind,
                                                   const char* expr,
                                                   const char* file, int line,
                                                   const char* msg) {
  throw ContractViolation(
      detail::format_violation(kind, expr, file, line, msg));
}

/// RAII: installs `handler` (default: throwing) for the enclosing scope.
class ScopedContractHandler {
 public:
  explicit ScopedContractHandler(
      ContractHandler handler = &throwing_contract_handler)
      : previous_(set_contract_handler(handler)) {}
  ~ScopedContractHandler() { set_contract_handler(previous_); }
  ScopedContractHandler(const ScopedContractHandler&) = delete;
  ScopedContractHandler& operator=(const ScopedContractHandler&) = delete;

 private:
  ContractHandler previous_;
};

}  // namespace gsight::core

// Message argument is optional: GSIGHT_ASSERT(cond) or
// GSIGHT_ASSERT(cond, "context"). Messages are only materialised on the
// failure path.
#if GSIGHT_CONTRACT_LEVEL >= 1
#define GSIGHT_ASSERT(cond, ...)                                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::gsight::core::detail::contract_failed(                         \
          "assertion", #cond, __FILE__, __LINE__,                      \
          ::std::string{__VA_ARGS__}.c_str());                         \
    }                                                                  \
  } while (false)
#else
#define GSIGHT_ASSERT(cond, ...) ((void)0)
#endif

#if GSIGHT_CONTRACT_LEVEL >= 2
#define GSIGHT_INVARIANT(cond, ...)                                    \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::gsight::core::detail::contract_failed(                         \
          "invariant", #cond, __FILE__, __LINE__,                      \
          ::std::string{__VA_ARGS__}.c_str());                         \
    }                                                                  \
  } while (false)
#else
#define GSIGHT_INVARIANT(cond, ...) ((void)0)
#endif

// ---------------------------------------------------------------------------
// Thread-safety annotations (compile-time lock discipline).
//
// Wrappers over Clang's thread-safety attributes: under clang every
// annotation is a real attribute checked by -Wthread-safety (enable the
// build with -DGSIGHT_THREAD_SAFETY=ON; clang-only, a no-op elsewhere),
// under any other compiler they expand to nothing. Two tools consume
// them:
//   * clang -Wthread-safety proves lock/unlock pairing and guarded
//     access along every path (check.sh stage 2c);
//   * tools/gsight_analyze's lock-discipline pass enforces the weaker —
//     but compiler-independent — rule that any class owning a mutex
//     annotates (or explicitly waives) every mutable member.
//
// Conventions (see DESIGN.md §12):
//   * mutex-owning classes use gsight::core::Mutex (core/lock.hpp), the
//     capability-annotated wrapper, never bare std::mutex members;
//   * every member protected by that mutex carries
//     GSIGHT_GUARDED_BY(mutex_) (GSIGHT_PT_GUARDED_BY for the pointee
//     of an owned pointer);
//   * private helpers called with the lock held are GSIGHT_REQUIRES(m);
//     public entry points that take the lock are GSIGHT_EXCLUDES(m);
//   * members that are deliberately unguarded (atomics aside, which are
//     exempt) carry a `// gsight-analyze: allow(unguarded-member)`
//     waiver stating why.

#if defined(__clang__) && !defined(SWIG)
#define GSIGHT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GSIGHT_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a class to *be* a lock (capability); GSIGHT_SCOPED_CAPABILITY
/// marks RAII guards that acquire on construction and release on
/// destruction.
#define GSIGHT_CAPABILITY(x) GSIGHT_THREAD_ANNOTATION(capability(x))
#define GSIGHT_SCOPED_CAPABILITY GSIGHT_THREAD_ANNOTATION(scoped_lockable)

/// Member annotations: the data is protected by the named mutex (the
/// _PT_ form protects what an owned pointer points at).
#define GSIGHT_GUARDED_BY(x) GSIGHT_THREAD_ANNOTATION(guarded_by(x))
#define GSIGHT_PT_GUARDED_BY(x) GSIGHT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function annotations: caller must hold / must not hold the lock.
#define GSIGHT_REQUIRES(...) \
  GSIGHT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GSIGHT_EXCLUDES(...) \
  GSIGHT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock-implementation annotations (used by core::Mutex and its guards).
#define GSIGHT_ACQUIRE(...) \
  GSIGHT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GSIGHT_RELEASE(...) \
  GSIGHT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GSIGHT_TRY_ACQUIRE(...) \
  GSIGHT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GSIGHT_RETURN_CAPABILITY(x) GSIGHT_THREAD_ANNOTATION(lock_returned(x))

/// Last resort: suppress the analysis for one function (document why).
#define GSIGHT_NO_THREAD_SAFETY_ANALYSIS \
  GSIGHT_THREAD_ANNOTATION(no_thread_safety_analysis)
