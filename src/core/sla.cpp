#include "core/sla.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/correlation.hpp"
#include "stats/summary.hpp"

namespace gsight::core {

LatencyIpcCurve::LatencyIpcCurve(std::vector<LatencyIpcPoint> points)
    : points_(std::move(points)) {
  if (points_.size() < 8) {
    throw std::invalid_argument("LatencyIpcCurve: need at least 8 points");
  }
  std::sort(points_.begin(), points_.end(),
            [](const LatencyIpcPoint& a, const LatencyIpcPoint& b) {
              return a.ipc < b.ipc;
            });
  fit(/*min_correlation=*/0.8);
}

void LatencyIpcCurve::fit(double min_correlation) {
  const std::size_t n = points_.size();
  // Sweep knee candidates from low IPC upward; accept the smallest
  // threshold above which latency is *predictable from IPC* — either a
  // strong linear correlation (steep regime) or a tight residual around
  // the fitted line (flat regime: latency pinned near solo). Always keep
  // at least half the points above the knee.
  const std::size_t max_cut = n / 2;
  constexpr double kMaxResidualSd = 0.6;  // log-latency units (~ +/-80%)

  auto evaluate_cut = [&](std::size_t cut) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    std::vector<double> x, y;
    x.reserve(n - cut);
    y.reserve(n - cut);
    for (std::size_t i = cut; i < n; ++i) {
      const double xi = points_[i].ipc;
      const double yi = std::log(std::max(points_[i].p99_latency_s, 1e-9));
      x.push_back(xi);
      y.push_back(yi);
      sx += xi;
      sy += yi;
      sxx += xi * xi;
      sxy += xi * yi;
    }
    const double dm = static_cast<double>(x.size());
    const double denom = dm * sxx - sx * sx;
    const double slope = denom != 0.0 ? (dm * sxy - sx * sy) / denom : 0.0;
    const double intercept = (sy - slope * sx) / dm;
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double r = y[i] - (intercept + slope * x[i]);
      ss_res += r * r;
    }
    struct Fit {
      double corr, resid_sd, slope, intercept;
    };
    return Fit{stats::pearson(x, y), std::sqrt(ss_res / dm), slope,
               intercept};
  };

  std::size_t chosen_cut = 0;
  for (std::size_t cut = 0; cut <= max_cut;
       cut += std::max<std::size_t>(1, n / 64)) {
    const auto fit = evaluate_cut(cut);
    chosen_cut = cut;
    corr_above_ = fit.corr;
    slope_ = fit.slope;
    intercept_ = fit.intercept;
    if (std::abs(fit.corr) >= min_correlation ||
        fit.resid_sd <= kMaxResidualSd) {
      break;
    }
  }
  knee_ipc_ = points_[chosen_cut].ipc;
}

double LatencyIpcCurve::fraction_below_knee() const {
  std::size_t below = 0;
  for (const auto& p : points_) {
    if (p.ipc < knee_ipc_) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(points_.size());
}

double LatencyIpcCurve::latency_for_ipc(double ipc) const {
  return std::exp(intercept_ + slope_ * ipc);
}

double LatencyIpcCurve::ipc_for_latency(double latency_s) const {
  if (slope_ == 0.0) return knee_ipc_;
  const double ipc = (std::log(std::max(latency_s, 1e-9)) - intercept_) / slope_;
  // Never hand the scheduler a floor below the knee: latency is not
  // predictable from IPC there.
  return std::max(ipc, knee_ipc_);
}

double LatencyIpcCurve::ipc_for_latency_quantile(double latency_s,
                                                 double quantile) const {
  // points_ are sorted by IPC ascending; scan thresholds from high IPC
  // down, tracking the latency multiset above the threshold.
  std::vector<double> tail;
  tail.reserve(points_.size());
  double best = points_.back().ipc;
  bool feasible = false;
  for (std::size_t i = points_.size(); i-- > 0;) {
    tail.push_back(points_[i].p99_latency_s);
    if (tail.size() < 8) continue;  // need mass for a stable quantile
    std::vector<double> copy = tail;
    const double q = stats::percentile_inplace(copy, quantile * 100.0);
    if (q <= latency_s) {
      best = points_[i].ipc;
      feasible = true;
    } else if (feasible) {
      break;  // lowering the threshold further only admits worse windows
    }
  }
  return feasible ? std::max(best, knee_ipc_) : knee_ipc_;
}

Sla make_sla(double solo_p99_s, const LatencyIpcCurve& curve) {
  Sla sla;
  sla.p99_latency_s = solo_p99_s;
  sla.ipc_floor = curve.ipc_for_latency(solo_p99_s);
  return sla;
}

}  // namespace gsight::core
