// SLA handling (§6.3) and the latency-IPC knee correlation (Figure 7).
// The paper defines an LS workload's SLA as the solo p99 under peak
// sustainable load, then schedules against the *IPC* model by transforming
// the latency SLA into an IPC floor through the empirical latency-IPC
// curve: above the knee the two correlate strongly; below it tail latency
// decouples, which is why ~4% of samples admit weaker guarantees.
#pragma once

#include <vector>

namespace gsight::core {

struct Sla {
  double p99_latency_s = 0.0;  ///< the latency target (solo p99)
  double ipc_floor = 0.0;      ///< derived IPC the scheduler enforces
};

/// One observed (IPC, p99 latency) point from a colocation run.
struct LatencyIpcPoint {
  double ipc = 0.0;
  double p99_latency_s = 0.0;
};

/// Empirical latency-IPC curve with knee detection.
class LatencyIpcCurve {
 public:
  explicit LatencyIpcCurve(std::vector<LatencyIpcPoint> points);

  /// IPC below which latency decouples from IPC (the "knee"). Chosen as
  /// the smallest IPC threshold above which |Pearson(ipc, log latency)|
  /// stays >= `min_correlation`.
  double knee_ipc() const { return knee_ipc_; }
  /// Correlation of ipc vs log-latency above the knee.
  double correlation_above_knee() const { return corr_above_; }
  /// Fraction of points below the knee (paper: ~4.1%).
  double fraction_below_knee() const;

  /// Latency predicted from IPC by the above-knee linear fit (log-latency
  /// on ipc). Extrapolates below the knee (callers should treat those
  /// values as unreliable).
  double latency_for_ipc(double ipc) const;
  /// Inverse transform: the IPC needed to meet a latency target — this is
  /// how a latency SLA becomes an IPC floor for the scheduler.
  double ipc_for_latency(double latency_s) const;

  /// Risk-aware inverse transform: the smallest IPC threshold such that,
  /// among observed points at or above it, the `quantile` of latency meets
  /// the target. Unlike the median fit this prices the *scatter* — the
  /// windows where latency spikes despite healthy IPC — which is what an
  /// SLA floor must guard against. Falls back to the knee when even the
  /// full above-knee set misses the target.
  double ipc_for_latency_quantile(double latency_s, double quantile) const;

  const std::vector<LatencyIpcPoint>& points() const { return points_; }

 private:
  void fit(double min_correlation);

  std::vector<LatencyIpcPoint> points_;
  double knee_ipc_ = 0.0;
  double corr_above_ = 0.0;
  double slope_ = 0.0;      // d(log latency)/d(ipc)
  double intercept_ = 0.0;  // log latency at ipc = 0
};

/// Build the SLA for an LS workload from its solo profile and curve.
Sla make_sla(double solo_p99_s, const LatencyIpcCurve& curve);

}  // namespace gsight::core
