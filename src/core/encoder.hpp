// Feature Encoder (§3.3 / §6.4): concatenates, for each of n workload
// slots, the flattened R and U matrices (S×16 each), followed by the start-
// delay vector D and the lifetime vector T — 32·n·S + 2·n dimensions
// total (2 580 for the paper's n=10, S=8). Scenarios with fewer than n
// workloads are zero-padded; the target workload always occupies slot 0.
//
// Ablation switches let the benches quantify the value of each code:
// disabling spatial coding collapses every R/U matrix to a single
// aggregate row replicated nowhere (monolithic view), disabling temporal
// coding zeroes D and T.
#pragma once

#include <span>

#include "core/overlap_coding.hpp"

namespace gsight::core {

/// Reusable buffers for Encoder::encode_into. After the first few calls
/// every vector has reached its steady-state capacity and encoding a
/// scenario allocates nothing. One scratch per caller (not shared across
/// threads); callers that only use encode() never see it.
struct EncodeScratch {
  std::vector<std::vector<double>> r_codes, u_codes;
  std::vector<std::size_t> fn_count;
  std::vector<std::size_t> order;
  std::vector<double> target_mass, total_mass;
};

struct EncoderConfig {
  std::size_t max_workloads = 10;  ///< n — slots, zero-padded
  std::size_t servers = 8;         ///< S — rows per matrix
  bool spatial_coding = true;      ///< ablation: keep per-server rows
  bool temporal_coding = true;     ///< ablation: keep D and T
  /// Relabel server rows into a canonical order (rows the target occupies
  /// first, heaviest first, then corunner-only rows by weight). Physical
  /// server identity is a nuisance variable — what matters is *who shares
  /// a row with whom* — so canonicalisation preserves the full overlap
  /// structure while making permuted placements map to the same code,
  /// which dramatically improves sample efficiency.
  bool canonical_server_order = true;
};

class Encoder {
 public:
  explicit Encoder(EncoderConfig config = {}) : config_(config) {}

  /// 32·n·S + 2·n.
  std::size_t dimension() const;
  /// Encode a validated scenario (throws std::invalid_argument if it has
  /// more workloads than slots or fails validation).
  std::vector<double> encode(const Scenario& scenario) const;
  /// Zero-copy variant: write the code straight into `out` (which must
  /// be exactly dimension() long — typically a row of a reused scratch
  /// Matrix), recycling `scratch` buffers. Bit-identical to encode(),
  /// which delegates here.
  void encode_into(const Scenario& scenario, EncodeScratch& scratch,
                   std::span<double> out) const;

  const EncoderConfig& config() const { return config_; }

 private:
  EncoderConfig config_;
};

}  // namespace gsight::core
