// Feature Encoder (§3.3 / §6.4): concatenates, for each of n workload
// slots, the flattened R and U matrices (S×16 each), followed by the start-
// delay vector D and the lifetime vector T — 32·n·S + 2·n dimensions
// total (2 580 for the paper's n=10, S=8). Scenarios with fewer than n
// workloads are zero-padded; the target workload always occupies slot 0.
//
// Ablation switches let the benches quantify the value of each code:
// disabling spatial coding collapses every R/U matrix to a single
// aggregate row replicated nowhere (monolithic view), disabling temporal
// coding zeroes D and T.
#pragma once

#include "core/overlap_coding.hpp"

namespace gsight::core {

struct EncoderConfig {
  std::size_t max_workloads = 10;  ///< n — slots, zero-padded
  std::size_t servers = 8;         ///< S — rows per matrix
  bool spatial_coding = true;      ///< ablation: keep per-server rows
  bool temporal_coding = true;     ///< ablation: keep D and T
  /// Relabel server rows into a canonical order (rows the target occupies
  /// first, heaviest first, then corunner-only rows by weight). Physical
  /// server identity is a nuisance variable — what matters is *who shares
  /// a row with whom* — so canonicalisation preserves the full overlap
  /// structure while making permuted placements map to the same code,
  /// which dramatically improves sample efficiency.
  bool canonical_server_order = true;
};

class Encoder {
 public:
  explicit Encoder(EncoderConfig config = {}) : config_(config) {}

  /// 32·n·S + 2·n.
  std::size_t dimension() const;
  /// Encode a validated scenario (throws std::invalid_argument if it has
  /// more workloads than slots or fails validation).
  std::vector<double> encode(const Scenario& scenario) const;

  const EncoderConfig& config() const { return config_; }

 private:
  EncoderConfig config_;
};

}  // namespace gsight::core
