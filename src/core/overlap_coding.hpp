// Spatial-temporal overlap coding (§3.3). A colocation Scenario lists the
// deployed workloads — the prediction target first — each with its
// function→server placement (spatial overlap), start delay D_i (temporal
// overlap) and solo lifetime T_i. The coder turns one workload into its
// R (allocation) and U (utilisation) matrices of shape S×16: row ℓ holds
// the aggregated solo-run profile of the workload's functions deployed on
// server ℓ ("virtual larger function": per-metric mean), zero rows where
// the workload has no function (matrices 3-5 in the paper).
#pragma once

#include <string>
#include <vector>

#include "profiling/profile.hpp"

namespace gsight::core {

struct WorkloadDeployment {
  /// Profile of the workload (owned by the ProfileStore; must outlive the
  /// scenario).
  const prof::AppProfile* profile = nullptr;
  /// Server index for each function of the workload.
  std::vector<std::size_t> fn_to_server;
  /// Start delay relative to the first workload (D_i, seconds). The
  /// target and all LS workloads use 0 (§3.3 case analysis).
  double start_delay_s = 0.0;
  /// Solo lifetime (T_i) for SC/BG workloads; 0 for LS.
  double lifetime_s = 0.0;
};

struct Scenario {
  /// Number of servers S in the system (rows of every R/U matrix).
  std::size_t servers = 8;
  /// Deployed workloads; index 0 is the prediction target A.
  std::vector<WorkloadDeployment> workloads;

  /// Throws std::invalid_argument on malformed scenarios (placement size
  /// mismatch, server index out of range, missing profile, empty).
  void validate() const;
};

/// Width of one coded row: the 16 selected metrics.
inline constexpr std::size_t kCodeWidth = prof::kSelectedCount;

/// U matrix: S rows × 16 selected solo-run metrics, functions on the same
/// server aggregated by mean. Returned row-major (S * 16 values).
std::vector<double> utilization_code(const WorkloadDeployment& w,
                                     std::size_t servers);

/// R matrix: S rows × 16 allocation entries. Allocation rows pack the
/// demand vector (cores, llc, membw, disk, net, mem alloc, time fractions,
/// solo duration/ipc), zero-padded to 16 so R and U share geometry, as the
/// paper's dimension count (16nS each) requires.
std::vector<double> allocation_code(const WorkloadDeployment& w,
                                    std::size_t servers);

/// In-place variants for the zero-copy encode path: overwrite `code`
/// with the S*16 matrix, reusing its capacity and `count` as per-server
/// function-count scratch. Identical arithmetic to the value-returning
/// versions (which delegate here), so results are bit-identical.
void utilization_code_into(const WorkloadDeployment& w, std::size_t servers,
                           std::vector<double>& code,
                           std::vector<std::size_t>& count);
void allocation_code_into(const WorkloadDeployment& w, std::size_t servers,
                          std::vector<double>& code,
                          std::vector<std::size_t>& count);

}  // namespace gsight::core
