#include "sched/experiment.hpp"

#include <cassert>
#include <cmath>

#include "stats/seed_stream.hpp"
#include "stats/summary.hpp"
#include "workloads/ecommerce.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/socialnetwork.hpp"
#include "workloads/sparkapps.hpp"

namespace gsight::sched {

namespace {
/// Named sub-streams of the experiment seed (DESIGN.md §9). The Azure
/// trace generators take kTraceStreamBase + app index.
constexpr std::uint64_t kPolicyRngStream = 1;
constexpr std::uint64_t kTraceStreamBase = 16;
}  // namespace

double ExperimentReport::mean_density() const {
  return stats::mean(density_samples);
}
double ExperimentReport::mean_cpu_util() const {
  return stats::mean(cpu_util_samples);
}
double ExperimentReport::mean_mem_util() const {
  return stats::mean(mem_util_samples);
}

SchedulingExperiment::SchedulingExperiment(const prof::ProfileStore* store,
                                           ExperimentConfig config)
    : store_(store), config_(config) {
  assert(store_ != nullptr);
}

ExperimentReport SchedulingExperiment::run(Scheduler& scheduler,
                                           core::ScenarioPredictor* online) {
  ExperimentReport report;
  report.scheduler = scheduler.name();

  sim::PlatformConfig pc;
  // Copy the whole cluster slice (shape, seed, trace-sink policy) so
  // campaign replications inherit use_default_trace_sink = false.
  static_cast<sim::ClusterSpec&>(pc) = config_;
  pc.gateway = config_.gateway;
  pc.instance.idle_expiry_s = 60.0;  // Azure-style keep-alive (compressed)
  sim::Platform platform(pc);
  stats::Rng rng(stats::SeedStream::derive(config_.seed, kPolicyRngStream));
  (void)rng;  // reserved for stochastic policies

  // --- Deployment state shared between scheduler and autoscaler hooks ----
  DeploymentState state;
  state.servers = config_.servers;

  const std::vector<wl::App> ls_apps = {wl::social_network(),
                                        wl::e_commerce()};
  std::vector<std::size_t> ls_ids;

  std::vector<std::size_t> state_ls_ids;  // platform ids of LS workloads
  std::vector<std::size_t> app_to_state;  // platform app id -> state index
  auto refresh_load = [&] {
    state.load = snapshot_load(platform);
    // Live SLA check over the most recent window (the reactive signal
    // Worst Fit freezes on).
    state.violation_observed = false;
    const double now = platform.now();
    for (std::size_t i = 0; i < state_ls_ids.size(); ++i) {
      const std::size_t w = app_to_state[i];
      const double target = state.workloads[w].sla.p99_latency_s;
      if (target <= 0.0) continue;
      auto lat = platform.stats(state_ls_ids[i])
                     .e2e_values_between(std::max(0.0, now - 10.0), now);
      if (lat.size() >= 20 &&
          stats::percentile(std::move(lat), 99.0) > target) {
        state.violation_observed = true;
        break;
      }
    }
  };

  auto deploy_with_scheduler = [&](const wl::App& app,
                                   const prof::AppProfile& profile,
                                   const core::Sla& sla) -> std::size_t {
    refresh_load();
    auto placement = scheduler.place_workload(profile, state, sla);
    for (auto& s : placement) {
      if (s != kRefuse) continue;
      // The workload must run somewhere even when the scheduler refuses
      // (e.g. a function whose core demand exceeds any single socket):
      // fall back to the least-committed server to minimise the damage.
      std::size_t best = 0;
      double best_free = -1e18;
      for (std::size_t srv = 0; srv < config_.servers; ++srv) {
        const double free =
            state.load[srv].cores_capacity - state.load[srv].cores_committed;
        if (free > best_free) {
          best_free = free;
          best = srv;
        }
      }
      s = best;
    }
    const std::size_t id = platform.deploy(app, placement);
    DeployedWorkload dw;
    dw.profile = &profile;
    dw.profile_key = profile.app_name;
    dw.fn_to_server = placement;
    dw.cls = app.cls;
    dw.sla = sla;
    state.workloads.push_back(std::move(dw));
    app_to_state.push_back(state.workloads.size() - 1);
    return id;
  };

  // --- LS apps with Azure-trace load --------------------------------------
  const auto weights = wl::zipf_weights(ls_apps.size());
  std::vector<wl::AzureTraceGenerator> traces;
  traces.reserve(ls_apps.size());  // pointers into `traces` are captured
  for (std::size_t i = 0; i < ls_apps.size(); ++i) {
    const auto& profile = store_->get(ls_apps[i].name);
    core::Sla sla;
    sla.p99_latency_s = config_.sla_budget * profile.solo_e2e_p99_s;
    if (curve_ != nullptr) {
      // Relative curve: latency budget (x solo) -> relative IPC floor,
      // priced at the 75th latency percentile so the floor guards against
      // the scatter, not just the median trend.
      sla.ipc_floor =
          curve_->ipc_for_latency_quantile(config_.sla_budget, 0.75) *
          profile.solo_mean_ipc;
    } else {
      // No latency-IPC curve supplied: fall back to an IPC-degradation
      // floor (at most 20% IPC loss) so predictive schedulers still have
      // something to enforce.
      sla.ipc_floor = 0.8 * profile.solo_mean_ipc;
    }
    const std::size_t id = deploy_with_scheduler(ls_apps[i], profile, sla);
    ls_ids.push_back(id);
    state_ls_ids.push_back(id);

    wl::AzureTraceConfig tc = config_.trace;
    tc.base_qps = config_.trace.base_qps * weights[i] *
                  static_cast<double>(ls_apps.size());
    tc.phase_shift = 0.7 * static_cast<double>(i);
    traces.emplace_back(
        tc, stats::SeedStream::derive(config_.seed, kTraceStreamBase + i));
    const wl::AzureTraceGenerator* gen = &traces.back();
    const double peak = tc.base_qps * (1.0 + tc.diurnal_amplitude) *
                        (1.0 + tc.weekly_amplitude);
    platform.set_rate_function(
        id, [gen](double t) { return gen->rate_at(t); }, peak);
  }

  // --- Autoscaler wired to the scheduler ----------------------------------
  sim::Autoscaler autoscaler(
      &platform, config_.autoscaler,
      [&](std::size_t app, std::size_t fn) -> std::size_t {
        refresh_load();
        const std::size_t w = app_to_state.at(app);
        const std::size_t server = scheduler.place_replica(w, fn, state);
        if (server != kRefuse) {
          // Track the newest replica's server as the function's primary
          // location for prediction purposes.
          state.workloads[w].fn_to_server[fn] = server;
        }
        return server;
      });
  autoscaler.start();

  // --- Periodic SC/BG jobs --------------------------------------------------
  std::vector<wl::App> sc_pool = {
      wl::matmul(3.0 * config_.sc_scale), wl::dd(3.0 * config_.sc_scale),
      wl::video_processing(4.0 * config_.sc_scale), wl::iot_collector()};
  std::vector<std::size_t> sc_ids;
  if (config_.sc_job_period_s > 0.0) {
    for (const auto& app : sc_pool) {
      const auto& profile = store_->get(app.name);
      sc_ids.push_back(deploy_with_scheduler(app, profile, {}));
    }
    // Self-rescheduling submission loop, round-robin over the pool. Each
    // scheduled event holds a strong reference to the closure while the
    // closure itself only holds a weak self-reference: the chain of events
    // keeps it alive exactly as long as it keeps rescheduling, and nothing
    // cycles (a strong self-capture would leak — ASan stage of check.sh).
    auto next = std::make_shared<std::size_t>(0);
    auto submit = std::make_shared<std::function<void()>>();
    const std::weak_ptr<std::function<void()>> weak_submit = submit;
    const double period = config_.sc_job_period_s;
    const double stop_at = config_.duration_s;
    ExperimentReport* rep = &report;
    sim::Platform* plat = &platform;
    *submit = [plat, rep, sc_ids, next, period, stop_at, weak_submit] {
      if (plat->now() >= stop_at) return;
      const std::size_t id = sc_ids[*next % sc_ids.size()];
      ++*next;
      plat->submit_job(id, [rep](double) { ++rep->jobs_completed; });
      if (const auto self = weak_submit.lock()) {
        plat->engine().after(period, [self] { (*self)(); });
      }
    };
    platform.engine().after(period, [submit] { (*submit)(); });
  }

  // --- Sampling loop ---------------------------------------------------------
  const double horizon = config_.duration_s;
  double next_observe = config_.sla_window_s;
  std::int64_t observed_until_window = 0;
  for (double t = config_.sample_period_s; t <= horizon;
       t += config_.sample_period_s) {
    platform.run_until(t);
    report.density_samples.push_back(platform.function_density());
    report.cpu_util_samples.push_back(platform.cluster().cpu_utilization());
    report.mem_util_samples.push_back(platform.cluster().memory_utilization());

    // Online incremental updates: feed the predictor the measured mean IPC
    // of each LS workload over the windows completed since the last visit,
    // described by the *current* deployment scenario.
    if (online != nullptr && platform.now() >= next_observe) {
      next_observe += config_.sla_window_s;
      const auto window_end = static_cast<std::int64_t>(
          std::floor(platform.now() / platform.recorder().window_s()));
      for (std::size_t i = 0; i < state_ls_ids.size(); ++i) {
        const std::size_t w = app_to_state[i];
        sim::MetricAccum acc;
        for (std::size_t fn = 0;
             fn < state.workloads[w].profile->functions.size(); ++fn) {
          for (const auto& [win, m] :
               platform.recorder().windows(state_ls_ids[i], fn)) {
            if (win < observed_until_window || win >= window_end) continue;
            sim::MetricAccum raw;
            raw.dt = m.dt;
            raw.ipc = m.ipc * m.dt;
            acc.dt += raw.dt;
            acc.ipc += raw.ipc;
          }
        }
        if (acc.dt <= 0.0) continue;
        const auto scenario = scenario_for(state, w, nullptr, 10);
        online->observe(scenario, acc.ipc / acc.dt);
      }
      observed_until_window = window_end;
      online->flush();
    }
  }
  // Stop load and drain briefly.
  for (std::size_t id : ls_ids) platform.set_open_loop(id, 0.0);
  platform.run_until(horizon + 5.0);

  // --- SLA accounting ---------------------------------------------------------
  for (std::size_t i = 0; i < ls_ids.size(); ++i) {
    const auto& st = platform.stats(ls_ids[i]);
    const std::size_t w = app_to_state[i];
    AppSlaReport app_report;
    app_report.app = ls_apps[i].name;
    app_report.sla_p99_s = state.workloads[w].sla.p99_latency_s;
    std::size_t windows = 0, satisfied = 0;
    std::vector<double> all;
    for (double t0 = 0.0; t0 < horizon; t0 += config_.sla_window_s) {
      auto lat = st.e2e_values_between(t0, t0 + config_.sla_window_s);
      if (lat.size() < 10) continue;
      all.insert(all.end(), lat.begin(), lat.end());
      const double p99 = stats::percentile(std::move(lat), 99.0);
      ++windows;
      if (p99 <= app_report.sla_p99_s) ++satisfied;
    }
    app_report.satisfied_fraction =
        windows > 0 ? static_cast<double>(satisfied) /
                          static_cast<double>(windows)
                    : 0.0;
    if (!all.empty()) {
      app_report.overall_p99_s = stats::percentile(std::move(all), 99.0);
    }
    report.sla.push_back(std::move(app_report));
    report.requests_completed += st.e2e.size();
    report.requests_failed += st.failed;
  }
  report.scale_outs = autoscaler.scale_out_events();
  report.scale_ins = autoscaler.scale_in_events();
  for (const auto* inst : platform.cluster().instances()) {
    report.cold_starts += inst->cold_starts();
  }
  platform.metrics()
      .gauge("cluster.cold_starts")
      .set(static_cast<double>(report.cold_starts));
  platform.refresh_metrics();
  report.metrics_json = platform.metrics().to_json().dump_string(0);
  return report;
}

}  // namespace gsight::sched
