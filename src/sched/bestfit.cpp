#include "sched/bestfit.hpp"

#include <algorithm>

namespace gsight::sched {

BestFitScheduler::BestFitScheduler(core::ScenarioPredictor* ipc,
                                   BestFitConfig config)
    : ipc_(ipc), config_(config) {}

bool BestFitScheduler::sla_ok(const DeploymentState& plus,
                              std::size_t target_index) {
  if (ipc_ == nullptr) return true;
  for (std::size_t w = 0; w < plus.workloads.size(); ++w) {
    const auto& dw = plus.workloads[w];
    if (dw.cls != wl::WorkloadClass::kLatencySensitive) continue;
    if (dw.sla.ipc_floor <= 0.0) continue;
    if (w != target_index) continue;  // Pythia checks only the new workload
    const auto scenario =
        scenario_for(plus, w, nullptr, config_.max_scenario_slots);
    if (ipc_->predict(scenario) < dw.sla.ipc_floor * config_.sla_margin) {
      return false;
    }
  }
  return true;
}

std::size_t BestFitScheduler::pick(const prof::FunctionProfile& fn,
                                   const DeploymentState& state,
                                   const std::vector<double>& extra_cores) const {
  // Smallest positive headroom that still fits the function.
  std::size_t best = kRefuse;
  double best_headroom = 1e18;
  for (std::size_t s = 0; s < state.servers; ++s) {
    const double free_cores = state.load[s].cores_capacity -
                              state.load[s].cores_committed - extra_cores[s];
    const double free_mem =
        state.load[s].mem_capacity - state.load[s].mem_committed;
    if (free_cores < fn.demand.cores || free_mem < fn.mem_alloc_gb) continue;
    const double headroom = free_cores / state.load[s].cores_capacity;
    if (headroom < best_headroom) {
      best_headroom = headroom;
      best = s;
    }
  }
  return best;
}

std::vector<std::size_t> BestFitScheduler::place_workload(
    const prof::AppProfile& profile, const DeploymentState& state,
    const core::Sla& sla) {
  std::vector<double> extra(state.servers, 0.0);
  std::vector<std::size_t> placement(profile.functions.size(), kRefuse);
  for (std::size_t fn = 0; fn < profile.functions.size(); ++fn) {
    const std::size_t s = pick(profile.functions[fn], state, extra);
    if (s == kRefuse) return placement;
    placement[fn] = s;
    extra[s] += profile.functions[fn].demand.cores;
  }
  DeploymentState plus = state;
  DeployedWorkload dw;
  dw.profile = &profile;
  dw.profile_key = profile.app_name;
  dw.fn_to_server = placement;
  dw.cls = profile.cls;
  dw.sla = sla;
  plus.workloads.push_back(std::move(dw));
  if (!sla_ok(plus, plus.workloads.size() - 1)) {
    std::fill(placement.begin(), placement.end(), kRefuse);
  }
  return placement;
}

std::size_t BestFitScheduler::place_replica(std::size_t w, std::size_t fn,
                                            const DeploymentState& state) {
  const std::vector<double> extra(state.servers, 0.0);
  const auto& profile = *state.workloads[w].profile;
  const std::size_t s = pick(profile.functions[fn], state, extra);
  if (s == kRefuse) return kRefuse;
  DeploymentState plus = state;
  plus.workloads[w].fn_to_server[fn] = s;
  // For scale-outs Pythia checks the workloads already in place, not the
  // one being relieved (whose QoS the replica is meant to restore).
  if (ipc_ != nullptr) {
    for (std::size_t other = 0; other < plus.workloads.size(); ++other) {
      if (other == w) continue;
      const auto& dw = plus.workloads[other];
      if (dw.cls != wl::WorkloadClass::kLatencySensitive) continue;
      if (dw.sla.ipc_floor <= 0.0) continue;
      bool shares = false;
      for (std::size_t srv : dw.fn_to_server) {
        if (srv == s) shares = true;
      }
      if (!shares) continue;
      const auto scenario =
          scenario_for(plus, other, nullptr, config_.max_scenario_slots);
      if (ipc_->predict(scenario) < dw.sla.ipc_floor * config_.sla_margin) {
        return kRefuse;
      }
    }
  }
  return s;
}

}  // namespace gsight::sched
