// Rescheduler — the §4 optional optimisation: "when the invocation load
// varies but does not yet cause scaling-out operations, it is also
// possible to further optimize resource efficiency by rescheduling the
// existing instances." This pass proposes single-function migrations that
// the predictor scores as strict improvements: either consolidation
// (vacating a nearly-empty server without violating any floor) or relief
// (moving a function off a server whose LS workloads are predicted below
// floor).
#pragma once

#include "core/predictor.hpp"
#include "sched/scheduler.hpp"

namespace gsight::sched {

struct Migration {
  std::size_t workload = 0;
  std::size_t fn = 0;
  std::size_t from = 0;
  std::size_t to = 0;
  /// Predicted IPC of the moved workload after the migration.
  double predicted_ipc = 0.0;
};

struct ReschedulerConfig {
  /// Only propose moves that keep every affected LS workload above
  /// floor * margin.
  double sla_margin = 1.0;
  /// Maximum migrations proposed per pass (migrations are disruptive:
  /// each one implies a cold start on the target server).
  std::size_t max_moves = 2;
  std::size_t max_scenario_slots = 10;
};

class Rescheduler {
 public:
  Rescheduler(core::ScenarioPredictor* ipc, ReschedulerConfig config = {});

  /// Propose migrations for the current state. The returned moves are
  /// compatible with each other (each is validated against the state with
  /// the previous moves applied).
  std::vector<Migration> propose(const DeploymentState& state);

 private:
  /// All LS floors hold in `state` (margin applied)?
  bool floors_hold(const DeploymentState& state);
  /// Least-occupied active server, by instance count (consolidation
  /// source). Returns kRefuse when fewer than two servers are active.
  std::size_t consolidation_source(const DeploymentState& state) const;

  core::ScenarioPredictor* ipc_;
  ReschedulerConfig config_;
};

}  // namespace gsight::sched
