// Cloning frontier — does gateway-level request cloning help or backfire
// under partial interference? Sweeps clone factor × interference
// intensity × service discipline over independent replications and
// condenses each cell into tail-latency summaries (mean ± ci95). The
// qualitative result this reproduces: cloning lowers p99 when servers are
// quiet (min-of-d samples trims the jitter tail) and *worsens* it once
// clones colocate with heavy antagonists — the extra load the clones
// themselves inject pushes the contended servers past saturation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "obs/run_report.hpp"
#include "sched/campaign.hpp"
#include "sim/gateway.hpp"
#include "sim/resources.hpp"

namespace gsight::sched {

struct CloningFrontierConfig {
  /// Gateway fan-out values to sweep (1 = no cloning baseline).
  std::vector<std::size_t> clone_factors{1, 2, 3};
  /// Interference intensities: background antagonist jobs pinned to EACH
  /// server for the whole horizon.
  std::vector<std::size_t> interference_levels{0, 3};
  std::vector<sim::ServiceDiscipline> disciplines{
      sim::ServiceDiscipline::kSerial,
      sim::ServiceDiscipline::kProcessorSharing};
  sim::CloneConfig::Policy policy = sim::CloneConfig::Policy::kIndependent;
  std::size_t replications = 3;
  std::size_t servers = 4;  ///< socket-sized nodes, one LS replica each
  double qps = 28.0;        ///< open-loop arrival rate toward the LS app
  double duration_s = 30.0; ///< arrival window; then drain
  double drain_s = 10.0;
  /// Duration jitter of the LS function — the tail that cloning trims.
  double jitter_sigma = 0.6;
  std::uint64_t seed = 20210914;
  core::CampaignOptions campaign;
};

/// One (clone factor, interference level, discipline) cell of the sweep.
struct FrontierCell {
  std::size_t clone_factor = 1;
  std::size_t antagonists = 0;
  sim::ServiceDiscipline discipline = sim::ServiceDiscipline::kSerial;
  /// Report row prefix, e.g. "clone2.bg3.ps.".
  std::string prefix;
  MetricSummary mean_latency;
  MetricSummary p50;
  MetricSummary p99;
  MetricSummary p999;
  MetricSummary p9999;
  MetricSummary completed;
  MetricSummary clones_cancelled;
};

struct CloningFrontierResult {
  std::vector<FrontierCell> cells;

  const FrontierCell* find(std::size_t clone_factor, std::size_t antagonists,
                           sim::ServiceDiscipline discipline) const;
  /// Emit "<prefix><metric>.mean"/".ci95" result rows plus a per-cell
  /// "<prefix>replications" series with the raw per-replication values.
  void write_into(obs::RunReport& report) const;
};

/// Short row label for a discipline ("serial" / "ps").
std::string discipline_label(sim::ServiceDiscipline d);

/// Run the sweep. Cells execute in order; replications within a cell fan
/// out across config.campaign.threads with per-replication derived seeds,
/// so the result is bit-identical at any thread count.
CloningFrontierResult run_cloning_frontier(const CloningFrontierConfig& config);

}  // namespace gsight::sched
