#include "sched/kube_spread.hpp"

#include <cmath>

namespace gsight::sched {

std::size_t KubeSpreadScheduler::pick(const prof::FunctionProfile& fn,
                                      const DeploymentState& state,
                                      const std::vector<double>& extra_cores,
                                      const std::vector<double>& extra_mem) const {
  std::size_t best = kRefuse;
  double best_score = -1e18;
  for (std::size_t s = 0; s < state.servers; ++s) {
    const auto& l = state.load[s];
    const double cpu_after =
        (l.cores_committed + extra_cores[s] + fn.demand.cores) /
        l.cores_capacity;
    const double mem_after =
        (l.mem_committed + extra_mem[s] + fn.mem_alloc_gb) / l.mem_capacity;
    if (cpu_after > 1.0 || mem_after > 1.0) continue;
    // balancedResourceAllocation: favour balance, then low utilisation.
    const double balance = 1.0 - std::abs(cpu_after - mem_after);
    const double least = 1.0 - (cpu_after + mem_after) / 2.0;
    const double score = balance + least;
    if (score > best_score) {
      best_score = score;
      best = s;
    }
  }
  return best;
}

std::vector<std::size_t> KubeSpreadScheduler::place_workload(
    const prof::AppProfile& profile, const DeploymentState& state,
    const core::Sla& /*sla*/) {
  std::vector<double> extra_cores(state.servers, 0.0);
  std::vector<double> extra_mem(state.servers, 0.0);
  std::vector<std::size_t> placement(profile.functions.size(), kRefuse);
  for (std::size_t fn = 0; fn < profile.functions.size(); ++fn) {
    const std::size_t s =
        pick(profile.functions[fn], state, extra_cores, extra_mem);
    if (s == kRefuse) return placement;
    placement[fn] = s;
    extra_cores[s] += profile.functions[fn].demand.cores;
    extra_mem[s] += profile.functions[fn].mem_alloc_gb;
  }
  return placement;
}

std::size_t KubeSpreadScheduler::place_replica(std::size_t w, std::size_t fn,
                                               const DeploymentState& state) {
  const std::vector<double> zero(state.servers, 0.0);
  return pick(state.workloads[w].profile->functions[fn], state, zero, zero);
}

}  // namespace gsight::sched
