// Worst Fit — the paper's second scheduling competitor (§6.1): always
// schedules the function with the maximum resource requirement to the
// server with the maximum available resources, *until an SLA violation
// occurs* — it is reactive, not predictive: once any LS workload's
// observed p99 breaches its SLA, further placements are refused until the
// violation clears.
#pragma once

#include <functional>

#include "sched/scheduler.hpp"

namespace gsight::sched {

class WorstFitScheduler final : public Scheduler {
 public:
  /// `violation_observed` returns true while any LS SLA is currently
  /// breached (wired to live platform measurements by the experiment).
  explicit WorstFitScheduler(std::function<bool()> violation_observed = {});

  std::vector<std::size_t> place_workload(const prof::AppProfile& profile,
                                          const DeploymentState& state,
                                          const core::Sla& sla = {}) override;
  std::size_t place_replica(std::size_t w, std::size_t fn,
                            const DeploymentState& state) override;
  std::string name() const override { return "WorstFit"; }

 private:
  std::size_t pick(const prof::FunctionProfile& fn,
                   const DeploymentState& state,
                   const std::vector<double>& extra_cores) const;

  std::function<bool()> violation_observed_;
};

}  // namespace gsight::sched
