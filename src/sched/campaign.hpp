// sched::Campaign — multi-replication SchedulingExperiment driver. The
// paper's §6.3 cluster numbers are means over repeated runs; a Campaign
// executes R independent replications of one experiment (per-replication
// seeds derived from the experiment seed, fanned out across a
// core::CampaignRunner) and condenses them into mean ± 95% CI summaries
// merged into a single obs::RunReport. The merged report is bit-identical
// whatever the thread count.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "obs/run_report.hpp"
#include "sched/experiment.hpp"

namespace gsight::sched {

/// One replication's scheduler under test. Built fresh per replication by
/// the factory: schedulers and online predictors carry mutable state
/// (incremental learning), so replications must not share them.
struct Replicate {
  std::unique_ptr<Scheduler> scheduler;
  /// Optional online predictor fed by the experiment's feedback loop; must
  /// be the predictor the scheduler consults. Owned via `keepalive`.
  core::ScenarioPredictor* online = nullptr;
  /// Owns whatever `scheduler`/`online` point into (predictor, model…);
  /// released when the replication finishes.
  std::shared_ptr<void> keepalive;
};

/// Factory invoked once per replication with the replication index and its
/// derived seed (stats::SeedStream::derive(experiment.seed, rep)).
using ReplicateFactory =
    std::function<Replicate(std::size_t rep, std::uint64_t seed)>;

struct CampaignConfig {
  /// Template for every replication; `experiment.seed` is the campaign
  /// root from which per-replication seeds are derived.
  ExperimentConfig experiment;
  std::size_t replications = 3;
  /// Fan-out control (threads, progress). Thread count never changes the
  /// merged report, only the wall-clock.
  core::CampaignOptions campaign;
};

/// Mean ± CI of one scalar metric over the replications.
struct MetricSummary {
  std::string name;
  std::string unit;
  double mean = 0.0;
  double stddev = 0.0;          ///< sample stddev (n-1); 0 for R < 2
  double ci95 = 0.0;            ///< 1.96 * stddev / sqrt(R) half-width
  std::vector<double> values;   ///< per-replication values, in rep order
};

/// Condense one metric's per-replication values into mean ± ci95. Shared
/// by Campaign::run and the cloning-frontier experiment.
MetricSummary summarize_metric(std::string name, std::string unit,
                               std::vector<double> values);

struct CampaignResult {
  std::string scheduler;
  std::size_t replications = 0;
  std::vector<ExperimentReport> reports;  ///< per replication, in order
  std::vector<MetricSummary> metrics;

  /// Lookup by metric name; nullptr when absent.
  const MetricSummary* find(const std::string& name) const;
  /// Merge into a RunReport: "<prefix><name>.mean" / ".ci95" result rows
  /// plus a "<prefix>replications" series with the per-rep values.
  void write_into(obs::RunReport& report, const std::string& prefix = "") const;
};

class Campaign {
 public:
  /// Same store contract as SchedulingExperiment; the store must outlive
  /// the campaign.
  Campaign(const prof::ProfileStore* store, CampaignConfig config);

  /// Run `config.replications` independent replications, each on a fresh
  /// scheduler from `make`, and summarise. Campaign workers never fall
  /// back to the process-default trace sink (an explicit
  /// experiment.trace_sink is still honoured).
  CampaignResult run(const ReplicateFactory& make) const;

  /// Forwarded to every replication's experiment (see
  /// SchedulingExperiment::set_sla_curve).
  void set_sla_curve(const core::LatencyIpcCurve* curve) { curve_ = curve; }

  const CampaignConfig& config() const { return config_; }

 private:
  const prof::ProfileStore* store_;
  CampaignConfig config_;
  const core::LatencyIpcCurve* curve_ = nullptr;
};

}  // namespace gsight::sched
