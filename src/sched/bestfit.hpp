// Best Fit — Pythia's scheduling policy (§6.1): each function goes to the
// server with the *smallest* headroom that its predictor still deems SLA-
// safe. With the Pythia predictor attached this is the paper's "Pythia"
// scheduling competitor; with a perfect predictor it degenerates to
// classic best-fit bin packing.
#pragma once

#include "core/predictor.hpp"
#include "sched/scheduler.hpp"

namespace gsight::sched {

struct BestFitConfig {
  double sla_margin = 1.0;
  std::size_t max_scenario_slots = 10;
};

class BestFitScheduler final : public Scheduler {
 public:
  /// `ipc` may be null: then Best Fit only enforces capacity limits.
  explicit BestFitScheduler(core::ScenarioPredictor* ipc = nullptr,
                            BestFitConfig config = {});

  std::vector<std::size_t> place_workload(const prof::AppProfile& profile,
                                          const DeploymentState& state,
                                          const core::Sla& sla = {}) override;
  std::size_t place_replica(std::size_t w, std::size_t fn,
                            const DeploymentState& state) override;
  std::string name() const override {
    return ipc_ != nullptr ? "Pythia-BestFit" : "BestFit";
  }

 private:
  bool sla_ok(const DeploymentState& plus, std::size_t target_index);
  std::size_t pick(const prof::FunctionProfile& fn,
                   const DeploymentState& state,
                   const std::vector<double>& extra_cores) const;

  core::ScenarioPredictor* ipc_;
  BestFitConfig config_;
};

}  // namespace gsight::sched
