#include "sched/rescheduler.hpp"

#include <cassert>

namespace gsight::sched {

Rescheduler::Rescheduler(core::ScenarioPredictor* ipc,
                         ReschedulerConfig config)
    : ipc_(ipc), config_(config) {
  assert(ipc_ != nullptr);
}

bool Rescheduler::floors_hold(const DeploymentState& state) {
  for (std::size_t w = 0; w < state.workloads.size(); ++w) {
    const auto& dw = state.workloads[w];
    if (dw.cls != wl::WorkloadClass::kLatencySensitive) continue;
    if (dw.sla.ipc_floor <= 0.0) continue;
    const auto scenario =
        scenario_for(state, w, nullptr, config_.max_scenario_slots);
    if (ipc_->predict(scenario) <
        dw.sla.ipc_floor * config_.sla_margin) {
      return false;
    }
  }
  return true;
}

std::size_t Rescheduler::consolidation_source(
    const DeploymentState& state) const {
  std::size_t best = kRefuse;
  std::size_t best_count = static_cast<std::size_t>(-1);
  std::size_t active = 0;
  for (std::size_t s = 0; s < state.servers; ++s) {
    if (state.load[s].instances == 0) continue;
    ++active;
    if (state.load[s].instances < best_count) {
      best_count = state.load[s].instances;
      best = s;
    }
  }
  return active >= 2 ? best : kRefuse;
}

std::vector<Migration> Rescheduler::propose(const DeploymentState& state) {
  std::vector<Migration> moves;
  DeploymentState current = state;

  while (moves.size() < config_.max_moves) {
    const std::size_t source = consolidation_source(current);
    if (source == kRefuse) break;

    // Candidate: any function currently on `source`; try to move it to
    // the fullest other server with core capacity, predictor willing.
    Migration best_move;
    bool found = false;
    for (std::size_t w = 0; w < current.workloads.size() && !found; ++w) {
      const auto& dw = current.workloads[w];
      for (std::size_t fn = 0; fn < dw.fn_to_server.size() && !found; ++fn) {
        if (dw.fn_to_server[fn] != source) continue;
        const double need = dw.profile->functions[fn].demand.cores;
        // Fullest feasible destination (consolidation goal).
        std::size_t dest = kRefuse;
        double dest_frac = -1.0;
        for (std::size_t s = 0; s < current.servers; ++s) {
          if (s == source || current.load[s].instances == 0) continue;
          const auto& l = current.load[s];
          if (l.cores_capacity - l.cores_committed < need) continue;
          if (l.cpu_fraction() > dest_frac) {
            dest_frac = l.cpu_fraction();
            dest = s;
          }
        }
        if (dest == kRefuse) continue;
        DeploymentState plus = current;
        plus.workloads[w].fn_to_server[fn] = dest;
        plus.load[dest].cores_committed += need;
        plus.load[source].cores_committed -= need;
        plus.load[dest].instances += 1;
        plus.load[source].instances -= 1;
        if (!floors_hold(plus)) continue;
        best_move.workload = w;
        best_move.fn = fn;
        best_move.from = source;
        best_move.to = dest;
        const auto scenario =
            scenario_for(plus, w, nullptr, config_.max_scenario_slots);
        best_move.predicted_ipc = ipc_->predict(scenario);
        current = std::move(plus);
        found = true;
      }
    }
    if (!found) break;
    moves.push_back(best_move);
    // If the source server was vacated, the next iteration will pick a
    // new consolidation source.
  }
  return moves;
}

}  // namespace gsight::sched
