// SchedulingExperiment — the end-to-end cluster study of §6.3 / Figures
// 11-12: LS apps driven by an Azure-style diurnal trace with autoscaling,
// periodic SC/BG job arrivals, and the scheduler-under-test deciding every
// placement. The driver records function density, CPU and memory
// utilisation time series and per-window SLA satisfaction.
#pragma once

#include <memory>

#include "core/predictor.hpp"
#include "core/sla.hpp"
#include "profiling/profile.hpp"
#include "sched/scheduler.hpp"
#include "sim/autoscaler.hpp"
#include "sim/cluster_spec.hpp"
#include "workloads/azure_trace.hpp"

namespace gsight::sched {

/// Cluster shape, root seed and trace sink live in the embedded
/// sim::ClusterSpec; the fields below are study-protocol knobs.
struct ExperimentConfig : sim::ClusterSpec {
  ExperimentConfig() { seed = 31337; }

  sim::GatewayConfig gateway;
  sim::AutoscalerConfig autoscaler;
  wl::AzureTraceConfig trace;
  double duration_s = 600.0;
  double sample_period_s = 2.0;   ///< density / utilisation samples
  double sla_window_s = 10.0;     ///< SLA-satisfaction windows
  /// Period between SC/BG job submissions (0 disables).
  double sc_job_period_s = 45.0;
  /// LS SLA target as a multiple of the solo p99 at default load (the
  /// paper defines SLAs at the *maximum allowable* load, which sits well
  /// above the default-load p99 — e.g. 267 ms vs ~70 ms solo for the
  /// social network).
  double sla_budget = 4.0;
  /// Time scale of the SC job pool.
  double sc_scale = 0.08;
};

struct AppSlaReport {
  std::string app;
  double sla_p99_s = 0.0;
  double satisfied_fraction = 0.0;  ///< windows meeting the SLA
  double overall_p99_s = 0.0;
};

struct ExperimentReport {
  std::string scheduler;
  std::vector<double> density_samples;   ///< instances per core over time
  std::vector<double> cpu_util_samples;  ///< cluster CPU utilisation
  std::vector<double> mem_util_samples;  ///< cluster memory utilisation
  std::vector<AppSlaReport> sla;
  std::uint64_t scale_outs = 0;
  std::uint64_t scale_ins = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_failed = 0;
  std::uint64_t jobs_completed = 0;
  /// Compact JSON dump of the platform's metrics registry at end of run
  /// (counters, gauges, histograms) — machine-readable companion to the
  /// scalar fields above.
  std::string metrics_json;

  double mean_density() const;
  double mean_cpu_util() const;
  double mean_mem_util() const;
};

class SchedulingExperiment {
 public:
  /// LS apps and their SLAs must be profiled in `store` under their plain
  /// names (default QPS). The store must outlive the experiment.
  SchedulingExperiment(const prof::ProfileStore* store,
                       ExperimentConfig config);

  /// Run the full study under `scheduler`. A fresh platform is built per
  /// call, so one experiment object can compare several schedulers.
  /// `online` (optional) receives incremental (scenario, measured IPC)
  /// observations every SLA window — the paper's Figure 6 feedback loop
  /// that keeps the predictor honest about dense colocations it has not
  /// seen offline. Pass the same predictor the scheduler consults.
  ExperimentReport run(Scheduler& scheduler,
                       core::ScenarioPredictor* online = nullptr);

  /// Latency-IPC curve on *solo-normalised* axes (x = IPC / solo IPC,
  /// y = p99 / solo p99). Used to turn each LS app's latency budget into
  /// an absolute IPC floor: floor = curve.ipc_for_latency(budget) x solo
  /// IPC. Without a curve a 20%-IPC-degradation floor is used.
  void set_sla_curve(const core::LatencyIpcCurve* curve) { curve_ = curve; }

 private:
  const prof::ProfileStore* store_;
  ExperimentConfig config_;
  const core::LatencyIpcCurve* curve_ = nullptr;
};

}  // namespace gsight::sched
