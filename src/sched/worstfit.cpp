#include "sched/worstfit.hpp"

#include <algorithm>
#include <numeric>

namespace gsight::sched {

WorstFitScheduler::WorstFitScheduler(std::function<bool()> violation_observed)
    : violation_observed_(std::move(violation_observed)) {}

std::size_t WorstFitScheduler::pick(const prof::FunctionProfile& fn,
                                    const DeploymentState& state,
                                    const std::vector<double>& extra) const {
  std::size_t best = kRefuse;
  double best_free = -1e18;
  for (std::size_t s = 0; s < state.servers; ++s) {
    const double free_mem =
        state.load[s].mem_capacity - state.load[s].mem_committed;
    if (free_mem < fn.mem_alloc_gb) continue;
    const double free_cores = state.load[s].cores_capacity -
                              state.load[s].cores_committed - extra[s];
    if (free_cores > best_free) {
      best_free = free_cores;
      best = s;
    }
  }
  return best;
}

std::vector<std::size_t> WorstFitScheduler::place_workload(
    const prof::AppProfile& profile, const DeploymentState& state,
    const core::Sla& /*sla*/) {
  std::vector<std::size_t> placement(profile.functions.size(), kRefuse);
  if (state.violation_observed) return placement;
  if (violation_observed_ && violation_observed_()) return placement;
  // Maximum-requirement function first.
  std::vector<std::size_t> order(profile.functions.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return profile.functions[a].demand.cores >
           profile.functions[b].demand.cores;
  });
  std::vector<double> extra(state.servers, 0.0);
  for (std::size_t fn : order) {
    const std::size_t s = pick(profile.functions[fn], state, extra);
    if (s == kRefuse) {
      std::fill(placement.begin(), placement.end(), kRefuse);
      return placement;
    }
    placement[fn] = s;
    extra[s] += profile.functions[fn].demand.cores;
  }
  return placement;
}

std::size_t WorstFitScheduler::place_replica(std::size_t w, std::size_t fn,
                                             const DeploymentState& state) {
  // The freeze gates *new workloads*; replica scale-outs of an already
  // deployed app are capacity relief and remain allowed.
  const std::vector<double> extra(state.servers, 0.0);
  return pick(state.workloads[w].profile->functions[fn], state, extra);
}

}  // namespace gsight::sched
