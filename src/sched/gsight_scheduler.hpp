// GsightScheduler — the §4 binary-search scheduling algorithm. Goal:
// maximise density (fewest active servers) under predicted-SLA guarantees.
// Attempt 1 packs all M functions on the single fullest active server
// ("full overlap"); each failed SLA check doubles the number of candidate
// servers ("half overlap"), so only O(log S) attempts run, each checking a
// single greedy configuration (largest function → server with most
// available resources). Complexity O(M · P · log S) vs O(P · S^M) brute
// force. The SLA check asks the IPC predictor for the QoS of the new
// workload and every already-deployed LS workload that shares a server.
#pragma once

#include <memory>

#include "core/predictor.hpp"
#include "sched/scheduler.hpp"

namespace gsight::sched {

struct GsightSchedulerConfig {
  /// Predicted IPC must exceed floor * margin to pass.
  double sla_margin = 1.0;
  /// Encoder slot budget when building check scenarios.
  std::size_t max_scenario_slots = 10;
};

class GsightScheduler final : public Scheduler {
 public:
  /// `ipc` predicts workload mean IPC from a scenario; not owned.
  GsightScheduler(core::ScenarioPredictor* ipc,
                  GsightSchedulerConfig config = {});

  std::vector<std::size_t> place_workload(const prof::AppProfile& profile,
                                          const DeploymentState& state,
                                          const core::Sla& sla = {}) override;
  std::size_t place_replica(std::size_t w, std::size_t fn,
                            const DeploymentState& state) override;
  std::string name() const override { return "Gsight"; }

  std::uint64_t sla_checks() const { return sla_checks_; }
  std::uint64_t refusals() const { return refusals_; }

 private:
  /// All LS workloads pass their predicted-IPC floors under `candidate`
  /// placed as described by `state_plus` (state with the candidate merged).
  /// `exclude_target` skips the target's own floor — used for replica
  /// scale-outs, where adding capacity is the remedy for the target's own
  /// degradation and must not be vetoed by it.
  bool sla_ok(const DeploymentState& state_plus, std::size_t target_index,
              bool exclude_target = false);
  /// Greedy assignment of profile's functions to `k` chosen servers.
  std::vector<std::size_t> greedy_assign(const prof::AppProfile& profile,
                                         const std::vector<std::size_t>& servers,
                                         const DeploymentState& state) const;

  core::ScenarioPredictor* ipc_;
  GsightSchedulerConfig config_;
  std::uint64_t sla_checks_ = 0;
  std::uint64_t refusals_ = 0;
};

}  // namespace gsight::sched
