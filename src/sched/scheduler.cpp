#include "sched/scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace gsight::sched {

std::vector<ServerLoad> snapshot_load(sim::Platform& platform) {
  auto& cluster = platform.cluster();
  std::vector<ServerLoad> load(cluster.size());
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    const auto& server = cluster.server(s);
    load[s].cores_capacity = server.config().cores;
    load[s].mem_capacity = server.config().mem_gb;
    load[s].mem_committed = server.resident_mem_gb();
    load[s].instances = server.resident_count();
  }
  for (const auto* inst : cluster.instances()) {
    load[inst->server().id()].cores_committed +=
        inst->spec().average_demand().cores;
  }
  return load;
}

core::Scenario scenario_for(const DeploymentState& state, std::size_t target,
                            const std::vector<std::size_t>* override_placement,
                            std::size_t max_slots) {
  assert(target < state.workloads.size());
  core::Scenario scenario;
  scenario.servers = state.servers;

  auto deployment_of = [&](std::size_t w) {
    core::WorkloadDeployment d;
    d.profile = state.workloads[w].profile;
    d.fn_to_server = (w == target && override_placement != nullptr)
                         ? *override_placement
                         : state.workloads[w].fn_to_server;
    d.lifetime_s = state.workloads[w].cls == wl::WorkloadClass::kLatencySensitive
                       ? 0.0
                       : state.workloads[w].profile->solo_jct_s;
    return d;
  };

  const auto target_dep = deployment_of(target);
  std::vector<bool> target_servers(state.servers, false);
  for (std::size_t s : target_dep.fn_to_server) target_servers[s] = true;

  // Rank corunners by how many of their functions share a server with the
  // target; keep the closest ones within the slot budget.
  std::vector<std::pair<std::size_t, std::size_t>> ranked;  // (overlap, idx)
  for (std::size_t w = 0; w < state.workloads.size(); ++w) {
    if (w == target) continue;
    std::size_t overlap = 0;
    for (std::size_t s : state.workloads[w].fn_to_server) {
      if (target_servers[s]) ++overlap;
    }
    ranked.emplace_back(overlap, w);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  scenario.workloads.push_back(target_dep);
  for (const auto& [overlap, w] : ranked) {
    if (scenario.workloads.size() >= max_slots) break;
    scenario.workloads.push_back(deployment_of(w));
  }
  return scenario;
}

}  // namespace gsight::sched
