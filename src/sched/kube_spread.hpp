// Kubernetes balancedResourceAllocation baseline (§1): score each feasible
// server by how balanced its CPU and memory fractions would be after the
// placement, ties broken toward least allocated. This is the default-
// scheduler behaviour that spreads an app's n functions across up to n
// servers, maximising exposure to partial interference — included so the
// benches can demonstrate the phenomenon the paper motivates with.
#pragma once

#include "sched/scheduler.hpp"

namespace gsight::sched {

class KubeSpreadScheduler final : public Scheduler {
 public:
  std::vector<std::size_t> place_workload(const prof::AppProfile& profile,
                                          const DeploymentState& state,
                                          const core::Sla& sla = {}) override;
  std::size_t place_replica(std::size_t w, std::size_t fn,
                            const DeploymentState& state) override;
  std::string name() const override { return "K8s-BalancedAlloc"; }

 private:
  std::size_t pick(const prof::FunctionProfile& fn,
                   const DeploymentState& state,
                   const std::vector<double>& extra_cores,
                   const std::vector<double>& extra_mem) const;
};

}  // namespace gsight::sched
