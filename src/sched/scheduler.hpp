// Scheduler interface for the §4 case study. Schedulers place whole
// workloads at submission and single replicas at autoscale-out, seeing a
// DeploymentState snapshot: per-server committed resources plus the
// profile-level description of everything currently deployed (enough to
// build prediction Scenarios).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/overlap_coding.hpp"
#include "core/sla.hpp"
#include "sim/platform.hpp"

namespace gsight::sched {

/// Sentinel: the scheduler refuses the placement (SLA cannot be met).
inline constexpr std::size_t kRefuse = static_cast<std::size_t>(-1);

struct ServerLoad {
  double cores_committed = 0.0;  ///< sum of avg core demand of residents
  double mem_committed = 0.0;    ///< resident memory (GB)
  double cores_capacity = 0.0;
  double mem_capacity = 0.0;
  std::size_t instances = 0;

  double cpu_fraction() const {
    return cores_capacity > 0.0 ? cores_committed / cores_capacity : 0.0;
  }
  double mem_fraction() const {
    return mem_capacity > 0.0 ? mem_committed / mem_capacity : 0.0;
  }
  /// Headroom score: min of free CPU and memory fractions.
  double headroom() const {
    return std::min(1.0 - cpu_fraction(), 1.0 - mem_fraction());
  }
};

/// One deployed workload as the schedulers and predictors see it.
struct DeployedWorkload {
  std::string profile_key;            ///< into the ProfileStore
  const prof::AppProfile* profile = nullptr;
  std::vector<std::size_t> fn_to_server;  ///< primary replica per function
  wl::WorkloadClass cls = wl::WorkloadClass::kLatencySensitive;
  core::Sla sla;                      ///< LS only
};

struct DeploymentState {
  std::size_t servers = 0;
  std::vector<ServerLoad> load;
  std::vector<DeployedWorkload> workloads;
  /// True while any LS workload's *observed* p99 currently breaches its
  /// SLA (filled from live measurements by the experiment driver; the
  /// reactive Worst Fit scheduler freezes admissions on it).
  bool violation_observed = false;
};

/// Snapshot the platform's per-server committed resources.
std::vector<ServerLoad> snapshot_load(sim::Platform& platform);

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Placement for all functions of a newly submitted workload. Entries
  /// may be kRefuse if no feasible server exists. `sla` carries the new
  /// workload's own guarantee (ignored by non-predictive schedulers).
  virtual std::vector<std::size_t> place_workload(
      const prof::AppProfile& profile, const DeploymentState& state,
      const core::Sla& sla = {}) = 0;

  /// Server for one additional replica of state.workloads[w], function fn;
  /// kRefuse if none is acceptable.
  virtual std::size_t place_replica(std::size_t w, std::size_t fn,
                                    const DeploymentState& state) = 0;

  virtual std::string name() const = 0;
};

/// Scenario describing `state` with workload `target` moved to slot 0 and
/// (optionally) its placement overridden. Workloads beyond `max_slots - 1`
/// corunners are dropped farthest-first (least shared servers with the
/// target), keeping the encoder's n-slot budget for the relevant ones.
core::Scenario scenario_for(const DeploymentState& state, std::size_t target,
                            const std::vector<std::size_t>* override_placement,
                            std::size_t max_slots);

}  // namespace gsight::sched
