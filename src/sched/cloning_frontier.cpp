#include "sched/cloning_frontier.hpp"

#include <utility>

#include "sim/platform.hpp"
#include "stats/seed_stream.hpp"
#include "stats/summary.hpp"
#include "workloads/phase.hpp"

namespace gsight::sched {

namespace {

/// Named sub-stream tag for per-cell root seeds (DESIGN.md §9).
constexpr std::uint64_t kFrontierCellTag = 0x46524F4E54434C4EULL;  // FRONTCLN

/// The latency-sensitive service under study: one short memory-leaning
/// phase with heavy duration jitter — the paper's C(n,d) setting, where
/// cloning pays exactly when service times are variable.
wl::App frontier_request_app(double jitter_sigma) {
  wl::FunctionSpec fn;
  fn.name = "serve";
  fn.mem_alloc_gb = 0.25;
  fn.cold_start_s = 0.25;
  fn.jitter_sigma = jitter_sigma;
  fn.phases.push_back(wl::memory_phase("serve", /*duration_s=*/0.02,
                                       /*cores=*/1.0, /*llc_mb=*/4.0,
                                       /*membw_gbps=*/4.0));
  wl::App app;
  app.name = "frontier-ls";
  app.cls = wl::WorkloadClass::kLatencySensitive;
  app.functions.push_back(std::move(fn));
  app.graph = wl::CallGraph(1);
  app.graph.set_root(0);
  return app;
}

/// One pinned background antagonist: a memory/bandwidth-heavy job whose
/// single phase outlives the whole horizon, so its pressure is constant.
wl::App antagonist_app(std::size_t idx, double duration_s) {
  wl::FunctionSpec fn;
  fn.name = "churn";
  fn.mem_alloc_gb = 1.0;
  fn.cold_start_s = 0.0;
  fn.jitter_sigma = 0.0;
  fn.phases.push_back(wl::memory_phase("churn", duration_s, /*cores=*/3.0,
                                       /*llc_mb=*/12.0, /*membw_gbps=*/8.0));
  wl::App app;
  app.name = "antagonist-" + std::to_string(idx);
  app.cls = wl::WorkloadClass::kBackground;
  app.functions.push_back(std::move(fn));
  app.graph = wl::CallGraph(1);
  app.graph.set_root(0);
  return app;
}

struct RepOutcome {
  stats::TailSummary tails;
  double completed = 0.0;
  double clones_cancelled = 0.0;
};

RepOutcome run_cell_rep(const CloningFrontierConfig& cfg, std::size_t factor,
                        std::size_t level, sim::ServiceDiscipline discipline,
                        std::uint64_t seed) {
  sim::PlatformConfig pc;
  pc.servers = cfg.servers;
  pc.server = sim::ServerConfig::socket();
  pc.server.discipline = discipline;
  pc.seed = seed;
  pc.use_default_trace_sink = false;
  pc.gateway.clone.factor = factor;
  pc.gateway.clone.policy = cfg.policy;
  sim::Platform platform(pc);

  // One LS root replica per server, so every clone of a request can reach
  // a distinct server (the route_clone exclusion rule).
  const wl::App request_app = frontier_request_app(cfg.jitter_sigma);
  const std::size_t app =
      platform.deploy(request_app, std::vector<std::size_t>{0});
  for (std::size_t s = 1; s < cfg.servers; ++s) {
    platform.add_replica(app, 0, s);
  }

  // `level` antagonists pinned to each server for the whole horizon.
  const double horizon = cfg.duration_s + cfg.drain_s;
  for (std::size_t s = 0; s < cfg.servers; ++s) {
    for (std::size_t j = 0; j < level; ++j) {
      const wl::App bg = antagonist_app(s * level + j, horizon + 5.0);
      const std::size_t bg_id =
          platform.deploy(bg, std::vector<std::size_t>{s});
      platform.submit_job(bg_id);
    }
  }

  platform.set_open_loop(app, cfg.qps);
  platform.run_until(cfg.duration_s);
  platform.set_open_loop(app, 0.0);
  platform.run_until(horizon);

  RepOutcome out;
  std::vector<double> e2e = platform.stats(app).e2e_values();
  out.completed = static_cast<double>(e2e.size());
  out.clones_cancelled =
      static_cast<double>(platform.stats(app).clones_cancelled);
  out.tails = stats::tail_summary_inplace(e2e);
  return out;
}

}  // namespace

std::string discipline_label(sim::ServiceDiscipline d) {
  return d == sim::ServiceDiscipline::kProcessorSharing ? "ps" : "serial";
}

const FrontierCell* CloningFrontierResult::find(
    std::size_t clone_factor, std::size_t antagonists,
    sim::ServiceDiscipline discipline) const {
  for (const auto& c : cells) {
    if (c.clone_factor == clone_factor && c.antagonists == antagonists &&
        c.discipline == discipline) {
      return &c;
    }
  }
  return nullptr;
}

void CloningFrontierResult::write_into(obs::RunReport& report) const {
  for (const auto& c : cells) {
    const MetricSummary* const metrics[] = {
        &c.mean_latency, &c.p50,       &c.p99,
        &c.p999,         &c.p9999,     &c.completed,
        &c.clones_cancelled};
    for (const MetricSummary* m : metrics) {
      report.add_result(c.prefix + m->name + ".mean", m->mean, m->unit);
      report.add_result(c.prefix + m->name + ".ci95", m->ci95, m->unit);
    }
    obs::Json reps = obs::Json::object();
    obs::Json per_metric = obs::Json::object();
    for (const MetricSummary* m : metrics) {
      obs::Json values = obs::Json::array();
      for (double v : m->values) values.push_back(v);
      per_metric.set(m->name, std::move(values));
    }
    reps.set("values", std::move(per_metric));
    report.add_series(c.prefix + "replications", std::move(reps));
  }
}

CloningFrontierResult run_cloning_frontier(
    const CloningFrontierConfig& config) {
  CloningFrontierResult result;
  core::CampaignRunner runner(config.campaign);
  std::size_t cell_index = 0;
  for (const sim::ServiceDiscipline discipline : config.disciplines) {
    for (const std::size_t level : config.interference_levels) {
      for (const std::size_t factor : config.clone_factors) {
        const std::uint64_t cell_root = stats::SeedStream::derive(
            config.seed, kFrontierCellTag, cell_index++);
        const std::function<RepOutcome(std::size_t, std::uint64_t)> task =
            [&](std::size_t, std::uint64_t seed) {
              return run_cell_rep(config, factor, level, discipline, seed);
            };
        const auto outcomes =
            runner.map<RepOutcome>(config.replications, cell_root, task);

        FrontierCell cell;
        cell.clone_factor = factor;
        cell.antagonists = level;
        cell.discipline = discipline;
        cell.prefix = "clone" + std::to_string(factor) + ".bg" +
                      std::to_string(level) + "." +
                      discipline_label(discipline) + ".";
        std::vector<double> mean_v, p50_v, p99_v, p999_v, p9999_v, done_v,
            cancel_v;
        for (const RepOutcome& o : outcomes) {
          mean_v.push_back(o.tails.mean);
          p50_v.push_back(o.tails.p50);
          p99_v.push_back(o.tails.p99);
          p999_v.push_back(o.tails.p999);
          p9999_v.push_back(o.tails.p9999);
          done_v.push_back(o.completed);
          cancel_v.push_back(o.clones_cancelled);
        }
        cell.mean_latency =
            summarize_metric("mean_latency", "s", std::move(mean_v));
        cell.p50 = summarize_metric("p50", "s", std::move(p50_v));
        cell.p99 = summarize_metric("p99", "s", std::move(p99_v));
        cell.p999 = summarize_metric("p999", "s", std::move(p999_v));
        cell.p9999 = summarize_metric("p9999", "s", std::move(p9999_v));
        cell.completed =
            summarize_metric("completed", "count", std::move(done_v));
        cell.clones_cancelled =
            summarize_metric("clones_cancelled", "count", std::move(cancel_v));
        result.cells.push_back(std::move(cell));
      }
    }
  }
  return result;
}

}  // namespace gsight::sched
