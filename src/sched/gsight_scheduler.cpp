#include "sched/gsight_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace gsight::sched {

GsightScheduler::GsightScheduler(core::ScenarioPredictor* ipc,
                                 GsightSchedulerConfig config)
    : ipc_(ipc), config_(config) {
  assert(ipc_ != nullptr);
}

bool GsightScheduler::sla_ok(const DeploymentState& state_plus,
                             std::size_t target_index, bool exclude_target) {
  // Check the target (if LS) and every deployed LS workload that shares a
  // server with it. All affected workloads' scenarios are gathered first
  // and submitted as ONE batched predictor call: the forest then walks
  // each tree across the whole batch while its nodes are cache-hot,
  // instead of re-faulting the model in per workload.
  std::vector<bool> touched(state_plus.servers, false);
  for (std::size_t s : state_plus.workloads[target_index].fn_to_server) {
    touched[s] = true;
  }
  std::vector<core::Scenario> scenarios;
  std::vector<double> floors;
  for (std::size_t w = 0; w < state_plus.workloads.size(); ++w) {
    const auto& dw = state_plus.workloads[w];
    if (dw.cls != wl::WorkloadClass::kLatencySensitive) continue;
    if (dw.sla.ipc_floor <= 0.0) continue;
    if (exclude_target && w == target_index) continue;
    bool affected = w == target_index;
    if (!affected) {
      for (std::size_t s : dw.fn_to_server) {
        if (touched[s]) {
          affected = true;
          break;
        }
      }
    }
    if (!affected) continue;
    scenarios.push_back(
        scenario_for(state_plus, w, nullptr, config_.max_scenario_slots));
    floors.push_back(dw.sla.ipc_floor);
  }
  if (scenarios.empty()) return true;
  sla_checks_ += scenarios.size();
  const auto predicted = ipc_->predict_batch(scenarios);
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] < floors[i] * config_.sla_margin) return false;
  }
  return true;
}

std::vector<std::size_t> GsightScheduler::greedy_assign(
    const prof::AppProfile& profile, const std::vector<std::size_t>& servers,
    const DeploymentState& state) const {
  // Largest-demand function first onto the candidate server with the most
  // remaining headroom (§4: "check only one configuration").
  std::vector<std::size_t> order(profile.functions.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return profile.functions[a].demand.cores >
           profile.functions[b].demand.cores;
  });
  std::vector<double> extra_cores(state.servers, 0.0);
  std::vector<std::size_t> placement(profile.functions.size(), kRefuse);
  for (std::size_t fn : order) {
    std::size_t best = kRefuse;
    double best_headroom = -1e18;
    for (std::size_t s : servers) {
      const double headroom =
          (state.load[s].cores_capacity - state.load[s].cores_committed -
           extra_cores[s]);
      // Capacity gate: a server whose committed cores would overflow is
      // not a candidate — the predictor arbitrates interference, not
      // outright overcommit.
      if (headroom < profile.functions[fn].demand.cores) continue;
      if (headroom > best_headroom) {
        best_headroom = headroom;
        best = s;
      }
    }
    if (best == kRefuse) return placement;  // this k cannot fit; widen
    placement[fn] = best;
    extra_cores[best] += profile.functions[fn].demand.cores;
  }
  return placement;
}

std::vector<std::size_t> GsightScheduler::place_workload(
    const prof::AppProfile& profile, const DeploymentState& state,
    const core::Sla& sla) {
  // Candidate servers ranked: active (occupied) servers by fullness first
  // — density wants the fewest active servers — then idle ones.
  std::vector<std::size_t> ranked(state.servers);
  std::iota(ranked.begin(), ranked.end(), std::size_t{0});
  std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
    const bool active_a = state.load[a].instances > 0;
    const bool active_b = state.load[b].instances > 0;
    if (active_a != active_b) return active_a;
    return state.load[a].cpu_fraction() > state.load[b].cpu_fraction();
  });

  // One state copy per placement attempt, not per widening step: the
  // candidate workload is appended once and only its fn_to_server is
  // rewritten as the candidate set widens.
  DeploymentState plus = state;
  {
    DeployedWorkload dw;
    dw.profile = &profile;
    dw.profile_key = profile.app_name;
    dw.cls = profile.cls;
    dw.sla = sla;
    plus.workloads.push_back(std::move(dw));
  }
  const std::size_t target = plus.workloads.size() - 1;
  for (std::size_t k = 1; k <= state.servers; k *= 2) {
    const std::vector<std::size_t> candidates(
        ranked.begin(),
        ranked.begin() + static_cast<std::ptrdiff_t>(std::min(k, state.servers)));
    auto placement = greedy_assign(profile, candidates, state);
    if (std::find(placement.begin(), placement.end(), kRefuse) !=
        placement.end()) {
      if (k >= state.servers) break;  // even the full cluster cannot fit
      continue;                       // widen the candidate set
    }
    plus.workloads[target].fn_to_server = placement;
    if (sla_ok(plus, target)) return placement;
    if (k >= state.servers) break;
  }
  ++refusals_;
  return std::vector<std::size_t>(profile.functions.size(), kRefuse);
}

std::size_t GsightScheduler::place_replica(std::size_t w, std::size_t fn,
                                           const DeploymentState& state) {
  // Binary-search widening over fullness-ranked servers, single greedy
  // choice per attempt (most headroom among candidates).
  std::vector<std::size_t> ranked(state.servers);
  std::iota(ranked.begin(), ranked.end(), std::size_t{0});
  std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
    const bool active_a = state.load[a].instances > 0;
    const bool active_b = state.load[b].instances > 0;
    if (active_a != active_b) return active_a;
    return state.load[a].cpu_fraction() > state.load[b].cpu_fraction();
  });
  const double need =
      state.workloads[w].profile->functions[fn].demand.cores;
  // One state copy per scale-out attempt; each widening step only swaps
  // the replica's server in and restores it if the SLA check vetoes.
  DeploymentState plus = state;
  auto& target_placement = plus.workloads[w].fn_to_server;
  const std::size_t original_server = target_placement[fn];
  for (std::size_t k = 1; k <= state.servers; k *= 2) {
    // Most headroom among the first k ranked candidates with capacity.
    std::size_t best = kRefuse;
    double best_headroom = -1e18;
    for (std::size_t i = 0; i < std::min(k, state.servers); ++i) {
      const auto& l = state.load[ranked[i]];
      if (l.cores_capacity - l.cores_committed < need) continue;
      const double h = l.headroom();
      if (h > best_headroom) {
        best_headroom = h;
        best = ranked[i];
      }
    }
    if (best == kRefuse) {
      if (k >= state.servers) break;
      continue;
    }
    target_placement[fn] = best;  // the new replica's server becomes primary
    // Scale-outs are never vetoed by the scaled workload's own floor:
    // adding a replica is how its degradation gets fixed.
    if (sla_ok(plus, w, /*exclude_target=*/true)) return best;
    target_placement[fn] = original_server;
    if (k >= state.servers) break;
  }
  ++refusals_;
  return kRefuse;
}

}  // namespace gsight::sched
