#include "sched/campaign.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "stats/summary.hpp"

namespace gsight::sched {

MetricSummary summarize_metric(std::string name, std::string unit,
                               std::vector<double> values) {
  MetricSummary s;
  s.name = std::move(name);
  s.unit = std::move(unit);
  s.mean = stats::mean(values);
  s.stddev = stats::stddev(values);
  const auto n = static_cast<double>(values.size());
  s.ci95 = n > 0.0 ? 1.96 * s.stddev / std::sqrt(n) : 0.0;
  s.values = std::move(values);
  return s;
}

namespace {

/// Collect `get(report)` across all replications into one summary.
template <typename Fn>
MetricSummary collect(const std::vector<ExperimentReport>& reports,
                      std::string name, std::string unit, Fn get) {
  std::vector<double> values;
  values.reserve(reports.size());
  for (const auto& r : reports) values.push_back(get(r));
  return summarize_metric(std::move(name), std::move(unit),
                          std::move(values));
}

}  // namespace

const MetricSummary* CampaignResult::find(const std::string& name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void CampaignResult::write_into(obs::RunReport& report,
                                const std::string& prefix) const {
  for (const auto& m : metrics) {
    report.add_result(prefix + m.name + ".mean", m.mean, m.unit);
    report.add_result(prefix + m.name + ".ci95", m.ci95, m.unit);
  }
  obs::Json reps = obs::Json::object();
  reps.set("scheduler", scheduler);
  reps.set("replications", static_cast<std::uint64_t>(replications));
  obs::Json per_metric = obs::Json::object();
  for (const auto& m : metrics) {
    obs::Json values = obs::Json::array();
    for (double v : m.values) values.push_back(v);
    per_metric.set(m.name, std::move(values));
  }
  reps.set("values", std::move(per_metric));
  report.add_series(prefix + "replications", std::move(reps));
}

Campaign::Campaign(const prof::ProfileStore* store, CampaignConfig config)
    : store_(store), config_(std::move(config)) {
  assert(store_ != nullptr);
}

CampaignResult Campaign::run(const ReplicateFactory& make) const {
  if (!make) {
    throw std::invalid_argument("Campaign: null replicate factory");
  }
  const std::size_t reps = config_.replications > 0 ? config_.replications : 1;

  core::CampaignRunner runner(config_.campaign);
  auto reports = runner.map<ExperimentReport>(
      reps, config_.experiment.seed,
      [&](std::size_t rep, std::uint64_t seed) {
        ExperimentConfig ec = config_.experiment;
        ec.seed = seed;
        // Campaign workers must not race on the process-default sink; an
        // explicitly configured ec.trace_sink still applies.
        ec.use_default_trace_sink = false;
        Replicate r = make(rep, seed);
        if (r.scheduler == nullptr) {
          throw std::invalid_argument("Campaign: factory returned no scheduler");
        }
        SchedulingExperiment experiment(store_, ec);
        if (curve_ != nullptr) experiment.set_sla_curve(curve_);
        return experiment.run(*r.scheduler, r.online);
      });

  CampaignResult result;
  result.replications = reports.size();
  result.reports = std::move(reports);
  if (!result.reports.empty()) {
    result.scheduler = result.reports.front().scheduler;
  }
  const auto& rs = result.reports;
  result.metrics.push_back(collect(rs, "mean_density", "inst/core",
                                   [](const ExperimentReport& r) {
                                     return r.mean_density();
                                   }));
  result.metrics.push_back(collect(rs, "cpu_utilization", "frac",
                                   [](const ExperimentReport& r) {
                                     return r.mean_cpu_util();
                                   }));
  result.metrics.push_back(collect(rs, "mem_utilization", "frac",
                                   [](const ExperimentReport& r) {
                                     return r.mean_mem_util();
                                   }));
  result.metrics.push_back(collect(
      rs, "requests_completed", "count", [](const ExperimentReport& r) {
        return static_cast<double>(r.requests_completed);
      }));
  result.metrics.push_back(collect(
      rs, "requests_failed", "count", [](const ExperimentReport& r) {
        return static_cast<double>(r.requests_failed);
      }));
  result.metrics.push_back(collect(
      rs, "jobs_completed", "count", [](const ExperimentReport& r) {
        return static_cast<double>(r.jobs_completed);
      }));
  result.metrics.push_back(collect(
      rs, "cold_starts", "count", [](const ExperimentReport& r) {
        return static_cast<double>(r.cold_starts);
      }));
  // Per-app SLA satisfaction: every replication runs the same app list, so
  // index i names the same app in each report.
  if (!rs.empty()) {
    for (std::size_t i = 0; i < rs.front().sla.size(); ++i) {
      result.metrics.push_back(collect(
          rs, "sla_satisfied." + rs.front().sla[i].app, "frac",
          [i](const ExperimentReport& r) {
            return r.sla.at(i).satisfied_fraction;
          }));
      result.metrics.push_back(collect(
          rs, "p99_latency." + rs.front().sla[i].app, "s",
          [i](const ExperimentReport& r) {
            return r.sla.at(i).overall_p99_s;
          }));
    }
  }
  return result;
}

}  // namespace gsight::sched
