// LiveStreamSink — the in-flight introspection surface (schema
// `gsight-live/v1`). While BENCH_*.json reports a run post-mortem, this
// sink streams newline-delimited JSON records as the run happens, so a
// `gsight tail` (or any `tail -f | jq`) can watch a serve fleet live:
//
//   {"schema":"gsight-live/v1","type":"hello","seq":0,"source":...}
//   {"type":"metric","seq":1,"ts_s":...,"kind":"counter","name":...,
//    "labels":"","value":...,"delta":...}
//   {"type":"span","seq":2,"ts_s":...,"ph":"X","name":...,"dur_s":...}
//   {"type":"mark","seq":3,"ts_s":...,"name":"fleet.drain","args":{...}}
//
// Determinism rules (shared with the tracer, trace.hpp): timestamps are
// *simulation/virtual* seconds, never wall clock, and every record is
// serialised through obs::Json (ordered keys, %.17g numbers) — so twin
// same-seed runs produce byte-identical streams, which check.sh's fleet
// twin-run stage compares directly.
//
// Metric records are *deltas*: metric_deltas() diffs a registry snapshot
// against the last emission and writes only the instances whose value
// changed, keeping the stream proportional to activity, not cardinality.
//
// The sink is internally synchronized (threaded fleet replicas emit
// concurrently); `seq` is assigned under the same lock as the write, so
// it is strictly sequential in file order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/lock.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gsight::obs {

inline constexpr const char* kLiveSchema = "gsight-live/v1";

class LiveStreamSink final : public TraceSink {
 public:
  /// Streams onto `os` (not owned; must outlive the sink). Nothing is
  /// written until hello().
  explicit LiveStreamSink(std::ostream& os);

  LiveStreamSink(const LiveStreamSink&) = delete;
  LiveStreamSink& operator=(const LiveStreamSink&) = delete;

  /// First record of every stream: schema + source tag + free-form meta
  /// (insertion order preserved). Call exactly once, before anything else.
  void hello(const std::string& source,
             const std::vector<std::pair<std::string, std::string>>& meta = {})
      GSIGHT_EXCLUDES(mutex_);

  /// Emit one "metric" record per instance whose (value, sum) changed
  /// since the previous call, in the registry's deterministic sample
  /// order. `ts_s` is the caller's simulation/virtual time.
  void metric_deltas(double ts_s, const MetricsRegistry& registry)
      GSIGHT_EXCLUDES(mutex_);

  /// Point annotation ("fleet.drain", "fleet.publish", ...) with string
  /// args; numbers should be preformatted with json_number.
  void mark(double ts_s, const std::string& name,
            const std::vector<std::pair<std::string, std::string>>& args = {})
      GSIGHT_EXCLUDES(mutex_);

  /// TraceSink: spans/instants/counters stream as "span" records, so a
  /// Tracer can point straight at a live stream.
  void on_event(const TraceEvent& event) override GSIGHT_EXCLUDES(mutex_);

  /// Records written so far (including hello).
  std::uint64_t records() const GSIGHT_EXCLUDES(mutex_);

 private:
  void write_record(Json record) GSIGHT_REQUIRES(mutex_);

  mutable core::Mutex mutex_;
  std::ostream* os_ GSIGHT_GUARDED_BY(mutex_);
  std::uint64_t seq_ GSIGHT_GUARDED_BY(mutex_) = 0;
  /// Last emitted (value, sum) per "kind|name|labels" key.
  std::map<std::string, std::pair<double, double>> last_
      GSIGHT_GUARDED_BY(mutex_);
};

/// Parse one NDJSON line back into an obs::Json tree — the *read* side of
/// the live stream, used by `gsight tail` and the round-trip tests.
/// Deliberately lives here, not in obs/json.hpp: the Json builder stays
/// writer-only for the simulator; this reader exists only for the live
/// introspection surface (full artifact validation stays in
/// tools/bench_schema_check, which carries its own parser).
/// Returns std::nullopt and sets `*error` on malformed input.
std::optional<Json> parse_live_line(const std::string& line,
                                    std::string* error = nullptr);

}  // namespace gsight::obs
