// RunReport — machine-readable benchmark results. Every bench binary
// builds one of these and writes BENCH_<name>.json on exit, which is what
// populates the repo's perf trajectory. The schema (validated by
// tools/bench_schema_check, see DESIGN.md §8) is:
//
//   {
//     "schema": "gsight-bench-report/v1",
//     "bench": "<name>",
//     "wall_time_s": <number >= 0>,
//     "results": [ {"name": "...", "value": <finite>, "unit": "..."} ],
//     "series": { ... free-form arrays ... },          // optional
//     "metrics": [ ... MetricsRegistry export ... ],   // optional
//     "meta": { ... free-form strings ... }            // optional
//   }
//
// The report never reads clocks itself (src/ is wall-clock free by lint
// rule); the bench harness supplies elapsed time via set_wall_time_s.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace gsight::obs {

class RunReport {
 public:
  explicit RunReport(std::string bench_name);

  const std::string& bench_name() const { return bench_name_; }

  /// Append one scalar result row.
  void add_result(const std::string& name, double value,
                  const std::string& unit = "");
  /// Attach a free-form JSON value under "series"/<key> (tables, CDFs…).
  void add_series(const std::string& key, Json value);
  /// Attach a string under "meta"/<key> (config digests, notes).
  void set_meta(const std::string& key, const std::string& value);
  /// Snapshot a registry into the "metrics" section (overwrites).
  void attach_metrics(const MetricsRegistry& registry);
  void set_wall_time_s(double seconds) { wall_time_s_ = seconds; }

  std::size_t result_count() const { return results_.size(); }

  /// Assemble the full document.
  Json to_json() const;

  /// Write to an explicit path. Returns false (and leaves a best-effort
  /// partial file) on I/O failure.
  bool write_file(const std::string& path) const;
  /// Write BENCH_<name>.json into `dir` (default "."); the bench harness
  /// passes $GSIGHT_BENCH_DIR here. Returns the path written, empty on
  /// failure.
  std::string write(const std::string& dir = ".") const;

 private:
  std::string bench_name_;
  double wall_time_s_ = 0.0;
  Json results_ = Json::array();
  Json series_ = Json::object();
  Json meta_ = Json::object();
  Json metrics_;
};

}  // namespace gsight::obs
