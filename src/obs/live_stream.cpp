#include "obs/live_stream.hpp"

#include <cctype>
#include <cstdlib>
#include <ostream>

namespace gsight::obs {

namespace {

const char* kind_name(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
  }
  return "counter";
}

const char* phase_of(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kComplete: return "X";
    case TraceEvent::Kind::kInstant: return "i";
    case TraceEvent::Kind::kCounter: return "C";
    case TraceEvent::Kind::kAsyncBegin: return "b";
    case TraceEvent::Kind::kAsyncEnd: return "e";
  }
  return "i";
}

}  // namespace

LiveStreamSink::LiveStreamSink(std::ostream& os) : os_(&os) {}

void LiveStreamSink::write_record(Json record) {
  record.dump(*os_, 0);
  *os_ << '\n';
  os_->flush();  // a live tail should never sit behind a buffer
  ++seq_;
}

void LiveStreamSink::hello(
    const std::string& source,
    const std::vector<std::pair<std::string, std::string>>& meta) {
  core::MutexLock lock(mutex_);
  Json rec = Json::object();
  rec.set("schema", kLiveSchema);
  rec.set("type", "hello");
  rec.set("seq", seq_);
  rec.set("source", source);
  if (!meta.empty()) {
    Json m = Json::object();
    for (const auto& [k, v] : meta) m.set(k, v);
    rec.set("meta", std::move(m));
  }
  write_record(std::move(rec));
}

void LiveStreamSink::metric_deltas(double ts_s,
                                   const MetricsRegistry& registry) {
  core::MutexLock lock(mutex_);
  for (const auto& sample : registry.samples()) {
    std::string key = kind_name(sample.kind);
    key += '|';
    key += sample.name;
    key += '|';
    key += sample.labels;
    const auto it = last_.find(key);
    const double prev = it == last_.end() ? 0.0 : it->second.first;
    const double prev_sum = it == last_.end() ? 0.0 : it->second.second;
    if (it != last_.end() && sample.value == prev && sample.sum == prev_sum) {
      continue;  // unchanged since the last emission
    }
    Json rec = Json::object();
    rec.set("type", "metric");
    rec.set("seq", seq_);
    rec.set("ts_s", ts_s);
    rec.set("kind", kind_name(sample.kind));
    rec.set("name", sample.name);
    rec.set("labels", sample.labels);
    rec.set("value", sample.value);
    rec.set("delta", sample.value - prev);
    if (sample.kind == MetricSample::Kind::kHistogram) {
      rec.set("sum", sample.sum);
    }
    last_[key] = {sample.value, sample.sum};
    write_record(std::move(rec));
  }
}

void LiveStreamSink::mark(
    double ts_s, const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& args) {
  core::MutexLock lock(mutex_);
  Json rec = Json::object();
  rec.set("type", "mark");
  rec.set("seq", seq_);
  rec.set("ts_s", ts_s);
  rec.set("name", name);
  if (!args.empty()) {
    Json a = Json::object();
    for (const auto& [k, v] : args) a.set(k, v);
    rec.set("args", std::move(a));
  }
  write_record(std::move(rec));
}

void LiveStreamSink::on_event(const TraceEvent& event) {
  core::MutexLock lock(mutex_);
  Json rec = Json::object();
  rec.set("type", "span");
  rec.set("seq", seq_);
  rec.set("ts_s", event.ts_s);
  rec.set("ph", phase_of(event.kind));
  rec.set("name", event.name);
  rec.set("cat", event.cat);
  if (event.kind == TraceEvent::Kind::kComplete) rec.set("dur_s", event.dur_s);
  if (event.kind == TraceEvent::Kind::kAsyncBegin ||
      event.kind == TraceEvent::Kind::kAsyncEnd) {
    rec.set("id", event.id);
  }
  if (!event.args.empty()) {
    Json a = Json::object();
    for (const auto& [k, v] : event.args) a.set(k, v);
    rec.set("args", std::move(a));
  }
  write_record(std::move(rec));
}

std::uint64_t LiveStreamSink::records() const {
  core::MutexLock lock(mutex_);
  return seq_;
}

// ---------------------------------------------------------------------------
// parse_live_line — a compact recursive-descent JSON reader for one NDJSON
// record. Accepts exactly what Json::dump(0) emits (plus whitespace);
// rejects trailing garbage.

namespace {

class LineParser {
 public:
  explicit LineParser(const std::string& text) : text_(text) {}

  std::optional<Json> parse(std::string* error) {
    auto value = parse_value();
    if (!value) {
      if (error) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error) *error = "trailing characters after JSON value";
      return std::nullopt;
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool fail(const std::string& what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4U;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape digit");
            }
            // The writer only escapes control characters; decode the
            // single-byte range and pass anything else through raw.
            out->push_back(static_cast<char>(code & 0xFFU));
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return fail("unterminated string");
  }

  std::optional<Json> parse_value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return std::nullopt;
      return Json(std::move(s));
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Json(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Json(false);
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Json();
    }
    return parse_number();
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
      return std::nullopt;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("malformed number: " + token);
      return std::nullopt;
    }
    return Json(v);
  }

  std::optional<Json> parse_object() {  // NOLINT(misc-no-recursion)
    if (!consume('{')) return std::nullopt;
    Json obj = Json::object();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      std::string key;
      skip_ws();
      if (!parse_string(&key)) return std::nullopt;
      if (!consume(':')) return std::nullopt;
      auto value = parse_value();
      if (!value) return std::nullopt;
      obj.set(key, std::move(*value));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated object");
        return std::nullopt;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  std::optional<Json> parse_array() {  // NOLINT(misc-no-recursion)
    if (!consume('[')) return std::nullopt;
    Json arr = Json::array();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      auto value = parse_value();
      if (!value) return std::nullopt;
      arr.push_back(std::move(*value));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated array");
        return std::nullopt;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Json> parse_live_line(const std::string& line,
                                    std::string* error) {
  LineParser parser(line);
  return parser.parse(error);
}

}  // namespace gsight::obs
