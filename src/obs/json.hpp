// Minimal ordered JSON document builder used by the observability layer
// (metrics export, run reports). Writer-only by design: the simulator
// emits machine-readable artifacts but never parses them (validation
// lives in tools/bench_schema_check). Object keys keep insertion order so
// exports are byte-stable across identical runs — the determinism harness
// compares them as strings.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace gsight::obs {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}           // NOLINT
  Json(double v) : kind_(Kind::kNumber), number_(v) {}     // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}            // NOLINT
  Json(unsigned v) : Json(static_cast<double>(v)) {}       // NOLINT
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}   // NOLINT
  // Covers std::size_t on LP64 — do not add a separate size_t overload.
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}  // NOLINT
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}            // NOLINT

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Array append. Converts a null value into an array first.
  Json& push_back(Json v);
  /// Object insert-or-overwrite, preserving first-insertion order.
  /// Converts a null value into an object first.
  Json& set(const std::string& key, Json v);
  /// Lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  std::size_t size() const;
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  bool boolean() const { return bool_; }

  /// Serialise. `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits compact single-line JSON. Number formatting uses
  /// shortest-roundtrip semantics via %.17g, so equal doubles always
  /// serialise identically (byte-stable exports). Non-finite numbers are
  /// emitted as null, as JSON requires.
  void dump(std::ostream& os, int indent = 2) const;
  std::string dump_string(int indent = 2) const;

 private:
  void dump_impl(std::ostream& os, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                             // kArray
  std::vector<std::pair<std::string, Json>> members_;   // kObject
};

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes). Control characters become \u00XX sequences.
std::string json_escape(const std::string& s);

/// Format a double exactly as Json::dump does (shared with the streaming
/// trace exporter so all emitters agree byte-for-byte).
std::string json_number(double v);

}  // namespace gsight::obs
