#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace gsight::obs {

HistogramMetric::HistogramMetric(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  GSIGHT_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be ascending");
  for (const double b : bounds_) {
    GSIGHT_ASSERT(std::isfinite(b), "histogram bounds must be finite");
  }
}

void HistogramMetric::observe(double x) {
  if (!std::isfinite(x)) {
    ++nonfinite_;
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

std::vector<double> HistogramMetric::default_bounds() {
  // 100 µs .. 100 s, half-decade steps.
  return {1e-4,    3.16e-4, 1e-3,    3.16e-3, 1e-2, 3.16e-2, 1e-1,
          3.16e-1, 1.0,     3.16,    10.0,    31.6, 100.0};
}

std::string canonical_labels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  auto& slot = counters_[name][canonical_labels(labels)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  auto& slot = gauges_[name][canonical_labels(labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            const Labels& labels,
                                            std::vector<double> bounds) {
  auto& slot = histograms_[name][canonical_labels(labels)];
  if (!slot) {
    if (bounds.empty()) bounds = HistogramMetric::default_bounds();
    slot = std::make_unique<HistogramMetric>(std::move(bounds));
  }
  return *slot;
}

std::size_t MetricsRegistry::size() const {
  std::size_t n = 0;
  for (const auto& [name, family] : counters_) n += family.size();
  for (const auto& [name, family] : gauges_) n += family.size();
  for (const auto& [name, family] : histograms_) n += family.size();
  return n;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

template <typename T, typename ValueFn>
Json family_json(const char* type,
                 const std::map<std::string,
                                std::map<std::string, std::unique_ptr<T>>>& fam,
                 ValueFn value) {
  Json out = Json::array();
  for (const auto& [name, instances] : fam) {
    Json metric = Json::object();
    metric.set("name", name);
    metric.set("type", type);
    Json series = Json::array();
    for (const auto& [labels, instance] : instances) {
      Json point = Json::object();
      point.set("labels", labels);
      value(point, *instance);
      series.push_back(std::move(point));
    }
    metric.set("series", std::move(series));
    out.push_back(std::move(metric));
  }
  return out;
}

}  // namespace

Json MetricsRegistry::to_json() const {
  Json out = Json::array();
  auto append = [&out](Json family) {
    for (auto& m : family.items()) out.push_back(m);
  };
  append(family_json<Counter>("counter", counters_,
                              [](Json& p, const Counter& c) {
                                p.set("value", c.value());
                              }));
  append(family_json<Gauge>("gauge", gauges_, [](Json& p, const Gauge& g) {
    p.set("value", g.value());
  }));
  append(family_json<HistogramMetric>(
      "histogram", histograms_, [](Json& p, const HistogramMetric& h) {
        p.set("count", h.count());
        p.set("sum", h.sum());
        p.set("nonfinite", h.nonfinite_count());
        Json bounds = Json::array();
        for (const double b : h.bounds()) bounds.push_back(b);
        p.set("bounds", std::move(bounds));
        Json counts = Json::array();
        for (const auto c : h.bucket_counts()) counts.push_back(c);
        p.set("counts", std::move(counts));
      }));
  return out;
}

std::string MetricsRegistry::to_json_string(int indent) const {
  return to_json().dump_string(indent);
}

std::vector<MetricSample> MetricsRegistry::samples() const {
  std::vector<MetricSample> out;
  out.reserve(size());
  for (const auto& [name, instances] : counters_) {
    for (const auto& [labels, c] : instances) {
      out.push_back({MetricSample::Kind::kCounter, name, labels, c->value(), 0.0});
    }
  }
  for (const auto& [name, instances] : gauges_) {
    for (const auto& [labels, g] : instances) {
      out.push_back({MetricSample::Kind::kGauge, name, labels, g->value(), 0.0});
    }
  }
  for (const auto& [name, instances] : histograms_) {
    for (const auto& [labels, h] : instances) {
      out.push_back({MetricSample::Kind::kHistogram, name, labels,
                     static_cast<double>(h->count()), h->sum()});
    }
  }
  return out;
}

}  // namespace gsight::obs
