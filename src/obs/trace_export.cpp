// Chrome trace-event JSON export (the "JSON Array Format with metadata"
// flavour: {"traceEvents": [...], "displayTimeUnit": "ms"}). Load the
// output in chrome://tracing or https://ui.perfetto.dev.
#include "obs/trace.hpp"

#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace gsight::obs {

namespace {

char phase_char(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kComplete:
      return 'X';
    case TraceEvent::Kind::kInstant:
      return 'i';
    case TraceEvent::Kind::kCounter:
      return 'C';
    case TraceEvent::Kind::kAsyncBegin:
      return 'b';
    case TraceEvent::Kind::kAsyncEnd:
      return 'e';
  }
  return 'i';
}

}  // namespace

std::string chrome_trace_event_json(const TraceEvent& event) {
  std::string out = "{\"name\":\"";
  out += json_escape(event.name);
  out += "\",\"cat\":\"";
  out += json_escape(event.cat);
  out += "\",\"ph\":\"";
  out += phase_char(event.kind);
  // Sim seconds → trace microseconds.
  out += "\",\"ts\":";
  out += json_number(event.ts_s * 1e6);
  if (event.kind == TraceEvent::Kind::kComplete) {
    out += ",\"dur\":";
    out += json_number(event.dur_s * 1e6);
  }
  out += ",\"pid\":";
  out += json_number(static_cast<double>(event.pid));
  out += ",\"tid\":";
  out += json_number(static_cast<double>(event.tid));
  if (event.kind == TraceEvent::Kind::kAsyncBegin ||
      event.kind == TraceEvent::Kind::kAsyncEnd) {
    out += ",\"id\":";
    out += json_number(static_cast<double>(event.id));
  }
  if (event.kind == TraceEvent::Kind::kInstant) {
    out += ",\"s\":\"t\"";  // thread-scoped instant
  }
  if (!event.args.empty()) {
    out += ",\"args\":{";
    for (std::size_t i = 0; i < event.args.size(); ++i) {
      if (i != 0) out += ',';
      out += '"';
      out += json_escape(event.args[i].first);
      out += "\":\"";
      out += json_escape(event.args[i].second);
      out += '"';
    }
    out += '}';
  }
  out += '}';
  return out;
}

void MemoryTraceSink::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    os << chrome_trace_event_json(events_[i]);
    if (i + 1 < events_.size()) os << ',';
    os << '\n';
  }
  os << "]}\n";
}

std::string MemoryTraceSink::chrome_trace_string() const {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

StreamTraceSink::StreamTraceSink(std::ostream& os) : os_(&os) {
  *os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
}

StreamTraceSink::~StreamTraceSink() { close(); }

void StreamTraceSink::on_event(const TraceEvent& event) {
  if (closed_) return;
  if (any_) *os_ << ",\n";
  *os_ << chrome_trace_event_json(event);
  any_ = true;
}

void StreamTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  if (any_) *os_ << '\n';
  *os_ << "]}\n";
  os_->flush();
}

namespace {

TraceSink*& default_trace_sink_slot() {
  static TraceSink* sink = nullptr;
  return sink;
}

}  // namespace

TraceSink* default_trace_sink() { return default_trace_sink_slot(); }

void set_default_trace_sink(TraceSink* sink) {
  default_trace_sink_slot() = sink;
}

}  // namespace gsight::obs
