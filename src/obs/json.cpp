#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace gsight::obs {

Json& Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  items_.push_back(std::move(v));
  return items_.back();
}

Json& Json::set(const std::string& key, Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray:
      return items_.size();
    case Kind::kObject:
      return members_.size();
    default:
      return 0;
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integers up to 2^53 print without an exponent or decimal point; other
  // values round-trip through %.17g.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void Json::dump_impl(std::ostream& os, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)),
                               ' ')
                 : std::string();
  const std::string closing_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      os << json_number(number_);
      break;
    case Kind::kString:
      os << '"' << json_escape(string_) << '"';
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        os << "[]";
        break;
      }
      os << '[' << nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        os << pad;
        items_[i].dump_impl(os, indent, depth + 1);
        if (i + 1 < items_.size()) os << ',';
        os << nl;
      }
      os << closing_pad << ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        os << "{}";
        break;
      }
      os << '{' << nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        os << pad << '"' << json_escape(members_[i].first) << '"' << colon;
        members_[i].second.dump_impl(os, indent, depth + 1);
        if (i + 1 < members_.size()) os << ',';
        os << nl;
      }
      os << closing_pad << '}';
      break;
    }
  }
}

void Json::dump(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
}

std::string Json::dump_string(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

}  // namespace gsight::obs
