#include "obs/run_report.hpp"

#include <fstream>

namespace gsight::obs {

RunReport::RunReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void RunReport::add_result(const std::string& name, double value,
                           const std::string& unit) {
  Json row = Json::object();
  row.set("name", name);
  row.set("value", value);
  if (!unit.empty()) row.set("unit", unit);
  results_.push_back(std::move(row));
}

void RunReport::add_series(const std::string& key, Json value) {
  series_.set(key, std::move(value));
}

void RunReport::set_meta(const std::string& key, const std::string& value) {
  meta_.set(key, value);
}

void RunReport::attach_metrics(const MetricsRegistry& registry) {
  metrics_ = registry.to_json();
}

Json RunReport::to_json() const {
  Json doc = Json::object();
  doc.set("schema", "gsight-bench-report/v1");
  doc.set("bench", bench_name_);
  doc.set("wall_time_s", wall_time_s_);
  doc.set("results", results_);
  if (series_.size() > 0) doc.set("series", series_);
  if (metrics_.is_array()) doc.set("metrics", metrics_);
  if (meta_.size() > 0) doc.set("meta", meta_);
  return doc;
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  to_json().dump(out, 2);
  out << '\n';
  return static_cast<bool>(out.flush());
}

std::string RunReport::write(const std::string& dir) const {
  std::string path = dir.empty() ? std::string(".") : dir;
  if (path.back() != '/') path += '/';
  path += "BENCH_" + bench_name_ + ".json";
  return write_file(path) ? path : std::string();
}

}  // namespace gsight::obs
