// Span tracing for the simulator — every request's lifecycle (gateway
// enqueue → forward → dispatch → cold start → execute → complete/drop)
// is emitted as events consumable by chrome://tracing / Perfetto.
//
// Design rules that keep tracing replay-safe and free when off:
//  * Timestamps are *simulation* time (seconds, converted to µs at
//    export), never wall clock — twin same-seed runs emit bit-identical
//    traces.
//  * The tracer never schedules engine events or draws randomness, so an
//    enabled tracer cannot perturb the simulation it observes.
//  * Every emit helper starts with an inlined null-sink check; when
//    GSIGHT_OBS_ENABLED is 0 the helpers compile to nothing at all.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#ifndef GSIGHT_OBS_ENABLED
#define GSIGHT_OBS_ENABLED 1
#endif

namespace gsight::obs {

/// One trace event, modelled on the Chrome trace-event format. `ts_s` and
/// `dur_s` are simulation seconds.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kComplete,     ///< 'X' — span with explicit duration
    kInstant,      ///< 'i' — point event
    kCounter,      ///< 'C' — time series sample
    kAsyncBegin,   ///< 'b' — start of an id-correlated async span
    kAsyncEnd,     ///< 'e' — end of an id-correlated async span
  };

  Kind kind = Kind::kInstant;
  const char* name = "";   ///< static string (span taxonomy, DESIGN.md)
  const char* cat = "";    ///< static category string
  double ts_s = 0.0;
  double dur_s = 0.0;      ///< kComplete only
  std::uint64_t pid = 0;   ///< lane group (see Lanes below)
  std::uint64_t tid = 0;   ///< lane within the group
  std::uint64_t id = 0;    ///< async correlation id (request id)
  /// Small key→value payload ("app"→"social", "cold"→"1"). Values are
  /// preformatted strings; numbers should be formatted deterministically
  /// by the caller (json_number).
  std::vector<std::pair<const char*, std::string>> args;
};

/// Well-known pid lanes used by the simulator's emitters.
struct Lanes {
  static constexpr std::uint64_t kPlatform = 1;  ///< gateway, servers, scaler
  static constexpr std::uint64_t kRequests = 2;  ///< per-request span lanes
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Dispatch front-end held by every instrumented component. Disabled
/// (null sink) by default; `enabled()` is the only cost on the hot path.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TraceSink* sink) : sink_(sink) {}

  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

#if GSIGHT_OBS_ENABLED
  bool enabled() const { return sink_ != nullptr; }
#else
  static constexpr bool enabled() { return false; }
#endif

  void emit(const TraceEvent& event) {
#if GSIGHT_OBS_ENABLED
    if (sink_ != nullptr) sink_->on_event(event);
#else
    (void)event;
#endif
  }

  void complete(double ts_s, double dur_s, const char* name, const char* cat,
                std::uint64_t pid, std::uint64_t tid,
                std::vector<std::pair<const char*, std::string>> args = {}) {
    if (!enabled()) return;
    TraceEvent e;
    e.kind = TraceEvent::Kind::kComplete;
    e.name = name;
    e.cat = cat;
    e.ts_s = ts_s;
    e.dur_s = dur_s;
    e.pid = pid;
    e.tid = tid;
    e.args = std::move(args);
    emit(e);
  }

  void instant(double ts_s, const char* name, const char* cat,
               std::uint64_t pid, std::uint64_t tid,
               std::vector<std::pair<const char*, std::string>> args = {}) {
    if (!enabled()) return;
    TraceEvent e;
    e.kind = TraceEvent::Kind::kInstant;
    e.name = name;
    e.cat = cat;
    e.ts_s = ts_s;
    e.pid = pid;
    e.tid = tid;
    e.args = std::move(args);
    emit(e);
  }

  void counter(double ts_s, const char* name, std::uint64_t pid,
               std::vector<std::pair<const char*, std::string>> values) {
    if (!enabled()) return;
    TraceEvent e;
    e.kind = TraceEvent::Kind::kCounter;
    e.name = name;
    e.cat = "counter";
    e.ts_s = ts_s;
    e.pid = pid;
    e.args = std::move(values);
    emit(e);
  }

  void async_begin(double ts_s, const char* name, const char* cat,
                   std::uint64_t id,
                   std::vector<std::pair<const char*, std::string>> args = {}) {
    if (!enabled()) return;
    TraceEvent e;
    e.kind = TraceEvent::Kind::kAsyncBegin;
    e.name = name;
    e.cat = cat;
    e.ts_s = ts_s;
    e.pid = Lanes::kRequests;
    e.id = id;
    e.args = std::move(args);
    emit(e);
  }

  void async_end(double ts_s, const char* name, const char* cat,
                 std::uint64_t id,
                 std::vector<std::pair<const char*, std::string>> args = {}) {
    if (!enabled()) return;
    TraceEvent e;
    e.kind = TraceEvent::Kind::kAsyncEnd;
    e.name = name;
    e.cat = cat;
    e.ts_s = ts_s;
    e.pid = Lanes::kRequests;
    e.id = id;
    e.args = std::move(args);
    emit(e);
  }

 private:
  TraceSink* sink_ = nullptr;
};

/// In-memory sink: buffers events for tests and post-run export.
class MemoryTraceSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Chrome trace-event JSON ({"traceEvents": [...]}). Deterministic:
  /// events in emission order, doubles via json_number.
  void write_chrome_trace(std::ostream& os) const;
  std::string chrome_trace_string() const;

 private:
  std::vector<TraceEvent> events_;
};

/// Streaming sink: writes each event to `os` as it arrives, so traces of
/// long runs never reside in memory. `close()` (or the destructor)
/// finalises the JSON document.
class StreamTraceSink final : public TraceSink {
 public:
  explicit StreamTraceSink(std::ostream& os);
  ~StreamTraceSink() override;

  StreamTraceSink(const StreamTraceSink&) = delete;
  StreamTraceSink& operator=(const StreamTraceSink&) = delete;

  void on_event(const TraceEvent& event) override;
  void close();

 private:
  std::ostream* os_;
  bool any_ = false;
  bool closed_ = false;
};

/// Serialise one event as a Chrome trace-event JSON object (no trailing
/// comma/newline). Shared by both sinks.
std::string chrome_trace_event_json(const TraceEvent& event);

/// Process-wide default sink, consulted by sim::Platform at construction
/// when its config does not name one. Benches point this at a file sink
/// when GSIGHT_TRACE is set, which is how any bench binary can dump a
/// Chrome trace without per-bench plumbing. Null by default.
TraceSink* default_trace_sink();
void set_default_trace_sink(TraceSink* sink);

}  // namespace gsight::obs
