// MetricsRegistry — named counters, gauges and histograms with label
// support, the simulator's equivalent of the paper's 19-metric sampling
// substrate. Metric objects are created once (name + label set) and then
// updated through plain pointers, so the hot path never touches the
// registry map. Export is a deterministic JSON document: metrics are
// keyed by (name, sorted labels), so two identical runs serialise
// byte-identically.
//
// The registry is single-threaded by design, like the simulation engine
// that feeds it; guard it externally if you ever update from ml::ThreadPool
// workers. Deliberately mutex-free: if a mutex is ever added here, every
// member must gain GSIGHT_GUARDED_BY annotations (core/contracts.hpp) —
// the gsight_analyze lock-discipline pass enforces exactly that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace gsight::obs {

/// Label set attached to a metric instance, e.g. {{"app","social"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing value (events, requests, cold starts).
class Counter {
 public:
  void inc(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Point-in-time value (queue depth, replica count, utilisation).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Cumulative histogram over fixed bucket upper bounds (Prometheus
/// style: counts[i] counts samples <= bounds[i]; an implicit +inf bucket
/// catches the rest). Non-finite samples are routed to a dedicated
/// `nonfinite` count instead of being binned — binning a NaN is UB.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> bounds);

  void observe(double x);
  std::uint64_t count() const { return count_; }
  std::uint64_t nonfinite_count() const { return nonfinite_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Default latency-ish buckets (seconds, log-spaced 100 µs .. 100 s).
  static std::vector<double> default_bounds();

 private:
  std::vector<double> bounds_;        // ascending upper bounds
  std::vector<std::uint64_t> counts_; // bounds_.size() + 1 (last = +inf)
  std::uint64_t count_ = 0;
  std::uint64_t nonfinite_ = 0;
  double sum_ = 0.0;
};

/// One flattened metric instance — the unit the live NDJSON stream
/// (obs/live_stream.hpp) diffs between emissions. Histograms flatten to
/// (count, sum); per-bucket counts stay in the full to_json export.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  std::string labels;  ///< canonical "k=v,k=v" form; "" = unlabelled
  double value = 0.0;  ///< counter/gauge value; histogram sample count
  double sum = 0.0;    ///< histogram only
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Returned references stay valid for the registry's
  /// lifetime (instances are heap-allocated behind the map).
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  HistogramMetric& histogram(const std::string& name, const Labels& labels = {},
                             std::vector<double> bounds = {});

  std::size_t size() const;
  void clear();

  /// Deterministic export: one object per metric family, instances
  /// ordered by their sorted label string.
  Json to_json() const;
  std::string to_json_string(int indent = 2) const;

  /// Deterministic flat snapshot: counters, then gauges, then histograms,
  /// each family sorted by name and instances by canonical label string —
  /// the same order to_json uses, so twin runs diff identically.
  std::vector<MetricSample> samples() const;

 private:
  // Key: label set canonicalised to a sorted "k=v,k=v" string.
  template <typename T>
  using Family = std::map<std::string, std::map<std::string, std::unique_ptr<T>>>;

  Family<Counter> counters_;
  Family<Gauge> gauges_;
  Family<HistogramMetric> histograms_;
};

/// Canonical "k=v,k=v" form of a label set (sorted by key).
std::string canonical_labels(const Labels& labels);

}  // namespace gsight::obs
