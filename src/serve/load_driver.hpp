// LoadDriver — synthetic load against a PredictionService, the harness
// behind `gsight serve-bench`. Two loop disciplines (classic load-testing
// shapes):
//
//   open loop   — requests arrive on a Poisson schedule at rate_hz
//                 regardless of completions, the arrival process a
//                 serverless gateway actually sees. Overload therefore
//                 shows up as shedding, not as a silently slowed client.
//   closed loop — `clients` concurrent callers each submit, wait for the
//                 result, and repeat: the scheduler-in-the-loop shape.
//
// Against a synchronous service (worker_threads == 0) the driver runs the
// open loop on a virtual timeline (ManualClock): arrivals, batch-forming
// deadlines and completions all advance deterministically, so two runs
// with the same seed produce byte-identical latency distributions and
// shed/batch counters — the serve-bench determinism gate. Against a
// threaded service both loops run in real time.
//
// A configurable fraction of requests doubles as labelled observations
// (features + synthetic ground truth) so the background trainer publishes
// fresh snapshots *under load* — the hot-swap path the bench certifies.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/service.hpp"
#include "stats/rng.hpp"

namespace gsight::serve {

struct LoadDriverConfig {
  enum class Mode { kOpenLoop, kClosedLoop };
  Mode mode = Mode::kOpenLoop;
  /// Total requests to submit (open loop) / to complete (closed loop).
  std::size_t requests = 10000;
  /// Open-loop Poisson arrival rate.
  double rate_hz = 50'000.0;
  /// Closed-loop concurrent clients.
  std::size_t clients = 4;
  /// Every n-th request also feeds a labelled observation to the
  /// trainer (0 = never): this is what drives hot swaps under load.
  std::size_t observe_every = 8;
  std::uint64_t seed = 1;
};

struct LoadOutcome {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  /// Virtual seconds (deterministic run) or real seconds (threaded run)
  /// from first submission to last completion.
  double duration_s = 0.0;
  double throughput_rps = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_mean_us = 0.0;
  double latency_max_us = 0.0;
};

class LoadDriver {
 public:
  explicit LoadDriver(LoadDriverConfig config);

  /// Deterministic open-loop drive of a synchronous service (requires
  /// worker_threads == 0 and the service's own ManualClock). Virtual
  /// latency measures the batching policy: queueing delay between
  /// arrival and the batch that served it.
  LoadOutcome run_deterministic(PredictionService& service);

  /// Real-time drive of a started, threaded service (either mode).
  LoadOutcome run_threaded(PredictionService& service);

  const LoadDriverConfig& config() const { return config_; }

  /// Synthetic ground truth: a fixed smooth function of the features,
  /// so the model actually converges on something under online updates.
  /// Public so `gsight serve-bench` can warm the model on the same
  /// function the driver labels with.
  static double label_of(const std::vector<double>& features);

 private:
  std::vector<double> make_features(std::size_t dim, stats::Rng& rng) const;
  LoadOutcome finalise(std::vector<double>& latencies_us,
                       std::size_t submitted, std::size_t shed,
                       double duration_s) const;

  LoadDriverConfig config_;
};

}  // namespace gsight::serve
