// LoadDriver — synthetic load against a PredictionService or a whole
// PredictionFleet, the harness behind `gsight serve-bench`. Two loop
// disciplines (classic load-testing shapes):
//
//   open loop   — requests arrive on a Poisson schedule at rate_hz
//                 regardless of completions, the arrival process a
//                 serverless gateway actually sees. Overload therefore
//                 shows up as shedding, not as a silently slowed client.
//   closed loop — `clients` concurrent callers each submit, wait for the
//                 result, and repeat: the scheduler-in-the-loop shape.
//
// Against a synchronous target (worker_threads == 0) the driver runs the
// open loop on a virtual timeline (ManualClock): arrivals, batch-forming
// deadlines and completions all advance deterministically, so two runs
// with the same seed produce byte-identical latency distributions and
// shed/batch counters — the serve-bench determinism gate. Fleet runs add
// per-replica batch deadlines, execute the FleetRequest drain schedule at
// its request indices, and (with live_every set) stream metric deltas to
// the fleet's live sink — all on the same virtual timeline, so even a
// mid-run drain/re-add twin run stays byte-identical. Against a threaded
// target both loops run in real time.
//
// A configurable fraction of requests doubles as labelled observations
// (features + synthetic ground truth) so the trainer publishes fresh
// snapshots *under load* — the hot-swap path the bench certifies.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/fleet.hpp"
#include "serve/service.hpp"
#include "stats/rng.hpp"

namespace gsight::serve {

/// All load-shape knobs in one request struct (the validate() pattern of
/// ClusterSpec/GatewayConfig/FleetRequest); the PR-5 name LoadDriverConfig
/// remains as a deprecated alias for exactly one PR.
struct DriverRequest {
  enum class Mode { kOpenLoop, kClosedLoop };
  Mode mode = Mode::kOpenLoop;
  /// Total requests to submit (open loop) / to complete (closed loop).
  std::size_t requests = 10000;
  /// Open-loop Poisson arrival rate.
  double rate_hz = 50'000.0;
  /// Closed-loop concurrent clients.
  std::size_t clients = 4;
  /// Every n-th request also feeds a labelled observation to the
  /// trainer (0 = never): this is what drives hot swaps under load.
  std::size_t observe_every = 8;
  /// Fleet runs: emit live metric deltas every n-th submission (0 = off;
  /// needs a live sink attached to the fleet).
  std::size_t live_every = 0;
  std::uint64_t seed = 1;

  /// Throws std::invalid_argument naming the first bad field.
  void validate() const;
};

/// Transitional alias for the PR-5 name; call sites should construct
/// DriverRequest. Removed next PR.
using LoadDriverConfig [[deprecated(
    "renamed DriverRequest (validate() request pattern)")]] = DriverRequest;

struct LoadOutcome {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  /// Virtual seconds (deterministic run) or real seconds (threaded run)
  /// from first submission to last completion.
  double duration_s = 0.0;
  double throughput_rps = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_mean_us = 0.0;
  double latency_max_us = 0.0;
};

class LoadDriver {
 public:
  explicit LoadDriver(DriverRequest request);

  /// Deterministic open-loop drive of a synchronous service (requires
  /// worker_threads == 0 and the service's own ManualClock). Virtual
  /// latency measures the batching policy: queueing delay between
  /// arrival and the batch that served it.
  LoadOutcome run_deterministic(PredictionService& service);

  /// Deterministic open-loop drive of a synchronous fleet on its shared
  /// ManualClock. Request i is submitted under key i; the fleet's drain
  /// schedule fires before the submission of its drain_at/readd_at
  /// indices; per-replica batch deadlines fire in global virtual-time
  /// order (earliest deadline first, ties to the lowest replica id).
  LoadOutcome run_deterministic(PredictionFleet& fleet);

  /// Real-time drive of a started, threaded service (either mode).
  LoadOutcome run_threaded(PredictionService& service);

  /// Real-time drive of a threaded fleet (either mode). Drain steps run
  /// inline at their request indices — i.e. genuinely under load.
  LoadOutcome run_threaded(PredictionFleet& fleet);

  const DriverRequest& request() const { return request_; }
  [[deprecated("renamed request()")]] const DriverRequest& config() const {
    return request_;
  }

  /// Synthetic ground truth: a fixed smooth function of the features,
  /// so the model actually converges on something under online updates.
  /// Public so `gsight serve-bench` can warm the model on the same
  /// function the driver labels with.
  static double label_of(const std::vector<double>& features);

 private:
  std::vector<double> make_features(std::size_t dim, stats::Rng& rng) const;
  LoadOutcome finalise(std::vector<double>& latencies_us,
                       std::size_t submitted, std::size_t shed,
                       double duration_s) const;

  DriverRequest request_;
};

}  // namespace gsight::serve
