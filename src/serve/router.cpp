#include "serve/router.hpp"

#include <algorithm>
#include <limits>

#include "core/contracts.hpp"
#include "stats/seed_stream.hpp"

namespace gsight::serve {

namespace {

// Fixed roots for the two hash domains. Ring points and key hashes draw
// from different streams so a key can never collide with "its own" vnode
// placement by construction.
constexpr std::uint64_t kRingRoot = 0x67736967'68747231ULL;  // "gsightr1"
constexpr std::uint64_t kKeyRoot = 0x67736967'68746b31ULL;   // "gsightk1"

}  // namespace

const char* router_policy_name(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kConsistentHash: return "hash";
    case RouterPolicy::kLeastQueued: return "least";
  }
  return "hash";
}

std::optional<RouterPolicy> parse_router_policy(const std::string& name) {
  if (name == "hash") return RouterPolicy::kConsistentHash;
  if (name == "least") return RouterPolicy::kLeastQueued;
  return std::nullopt;
}

Router::Router(RouterPolicy policy, std::size_t replicas,
               std::size_t vnodes_per_replica)
    : policy_(policy), vnodes_(vnodes_per_replica), active_(replicas, true) {
  GSIGHT_ASSERT(replicas > 0, "Router needs at least one replica");
  GSIGHT_ASSERT(vnodes_ > 0, "Router needs at least one vnode per replica");
  rebuild_ring();
}

void Router::set_active(std::size_t replica, bool active) {
  GSIGHT_ASSERT(replica < active_.size(), "Router replica out of range");
  if (active_[replica] == active) return;
  active_[replica] = active;
  rebuild_ring();
}

std::size_t Router::active_count() const {
  return static_cast<std::size_t>(
      std::count(active_.begin(), active_.end(), true));
}

void Router::rebuild_ring() {
  ring_.clear();
  if (policy_ != RouterPolicy::kConsistentHash) return;
  ring_.reserve(active_count() * vnodes_);
  for (std::size_t r = 0; r < active_.size(); ++r) {
    if (!active_[r]) continue;
    // Each (replica, vnode) pair owns a fixed ring point independent of
    // which peers are active — the consistent-hash invariant.
    const std::uint64_t replica_root =
        stats::SeedStream::derive(kRingRoot, static_cast<std::uint64_t>(r));
    for (std::size_t v = 0; v < vnodes_; ++v) {
      ring_.push_back(
          {stats::SeedStream::derive(replica_root, static_cast<std::uint64_t>(v)),
           static_cast<std::uint32_t>(r)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.replica < b.replica;
  });
}

std::optional<std::size_t> Router::route(
    std::uint64_t key, const std::vector<std::size_t>& queue_depths) const {
  if (policy_ == RouterPolicy::kConsistentHash) {
    if (ring_.empty()) return std::nullopt;
    const std::uint64_t h = stats::SeedStream::derive(kKeyRoot, key);
    // First point clockwise of the key's hash, wrapping past the top.
    const auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Point& p, std::uint64_t value) { return p.hash < value; });
    return it != ring_.end() ? it->replica : ring_.front().replica;
  }
  // kLeastQueued: shallowest active queue, ties to the lowest id.
  GSIGHT_ASSERT(queue_depths.size() == active_.size(),
                "least-queued routing needs a depth for every replica");
  std::optional<std::size_t> best;
  std::size_t best_depth = std::numeric_limits<std::size_t>::max();
  for (std::size_t r = 0; r < active_.size(); ++r) {
    if (!active_[r]) continue;
    if (!best || queue_depths[r] < best_depth) {
      best = r;
      best_depth = queue_depths[r];
    }
  }
  return best;
}

}  // namespace gsight::serve
