#include "serve/snapshot.hpp"

namespace gsight::serve {

std::shared_ptr<const ModelSnapshot> ModelSnapshot::freeze(
    const ml::IncrementalForest& model) {
  auto snap = std::make_shared<ModelSnapshot>();
  snap->version = model.version();
  snap->samples_seen = model.samples_seen();
  snap->forest = model.forest();
  return snap;
}

bool SnapshotSlot::publish(std::shared_ptr<const ModelSnapshot> next) {
  if (!next) return false;
  core::MutexLock lock(mutex_);
  if (snap_ && next->version <= snap_->version) return false;
  snap_ = std::move(next);
  ++swaps_;  // same critical section as the swap: info() is never torn
  return true;
}

}  // namespace gsight::serve
