#include "serve/serving_predictor.hpp"

#include "core/contracts.hpp"
#include "ml/matrix.hpp"

namespace gsight::serve {

ServingPredictor::ServingPredictor(core::EncoderConfig encoder_config,
                                   PredictionService* service)
    : encoder_(encoder_config),
      service_(service),
      batch_xs_(0, encoder_.dimension()) {
  GSIGHT_ASSERT(service != nullptr, "ServingPredictor needs a service");
  GSIGHT_ASSERT(service->config().feature_dim == encoder_.dimension(),
                "service feature_dim must match encoder dimension");
}

double ServingPredictor::predict(const core::Scenario& scenario) const {
  const auto snap = service_->snapshot();
  if (!snap) return 0.0;  // cold model contract
  return snap->forest.predict(encoder_.encode(scenario));
}

std::vector<double> ServingPredictor::predict_batch(
    std::span<const core::Scenario> scenarios) const {
  const auto snap = service_->snapshot();
  if (!snap) return std::vector<double>(scenarios.size(), 0.0);
  batch_xs_.clear_rows();
  batch_xs_.reserve_rows(scenarios.size());
  for (const auto& s : scenarios) {
    encoder_.encode_into(s, encode_scratch_, batch_xs_.append_row());
  }
  // One snapshot for the whole sweep: every row of this batch is
  // answered by the same model version even if the trainer publishes
  // mid-call.
  return snap->forest.predict_batch(batch_xs_);
}

void ServingPredictor::observe(const core::Scenario& scenario,
                               double actual_qos) {
  service_->observe(encoder_.encode(scenario), actual_qos);
}

void ServingPredictor::flush() { service_->train_now(); }

}  // namespace gsight::serve
