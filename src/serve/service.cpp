// gsight-analyze: hot-path
#include "serve/service.hpp"

#include <stdexcept>
#include <utility>

#include "core/contracts.hpp"
#include "core/lock.hpp"
#include "ml/matrix.hpp"

namespace gsight::serve {

namespace {

/// Validate-then-return, so member initialisers never see a bad config.
ServiceConfig validated(ServiceConfig config) {
  config.validate();
  return config;
}

}  // namespace

void ServiceConfig::validate() const {
  if (feature_dim == 0) {
    throw std::invalid_argument("ServiceConfig: feature_dim is required");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument(
        "ServiceConfig: queue_capacity must be non-zero");
  }
  if (max_batch == 0) {
    throw std::invalid_argument("ServiceConfig: max_batch must be non-zero");
  }
  if (batch_linger.count() < 0) {
    throw std::invalid_argument(
        "ServiceConfig: batch_linger must be non-negative");
  }
  if (observe_capacity == 0) {
    throw std::invalid_argument(
        "ServiceConfig: observe_capacity must be non-zero");
  }
  if (train_batch == 0) {
    throw std::invalid_argument("ServiceConfig: train_batch must be non-zero");
  }
  if (max_train_drain == 0) {
    throw std::invalid_argument(
        "ServiceConfig: max_train_drain must be non-zero");
  }
}

PredictionService::PredictionService(ServiceConfig config,
                                     ml::IncrementalForest model)
    : config_(validated(config)),
      requests_(config.queue_capacity),
      observations_(config.observe_capacity),
      model_(std::move(model)),
      sync_scratch_(config.feature_dim),
      batch_size_counts_(config.max_batch) {
  if (config_.clock != nullptr) {
    clock_ = config_.clock;
  } else if (config_.worker_threads == 0) {
    own_clock_ = std::make_unique<ManualClock>();
    clock_ = own_clock_.get();
  } else {
    clock_ = &SteadyClock::instance();
  }
  // A pre-trained model goes live immediately; a cold one serves zeros
  // until the first training round publishes version 1.
  if (model_.version() > 0) {
    slot_.publish(ModelSnapshot::freeze(model_));
  }
}

PredictionService::~PredictionService() { stop(); }

void PredictionService::start() {
  core::MutexLock lock(lifecycle_mutex_);
  if (started_ || stopped_) return;
  started_ = true;
  if (config_.worker_threads == 0) return;  // synchronous mode: poll-driven
  trainer_pool_ = std::make_unique<ml::ThreadPool>(1);
  workers_.reserve(config_.worker_threads);
  for (std::size_t i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void PredictionService::stop() {
  {
    core::MutexLock lock(lifecycle_mutex_);
    if (stopped_) return;
    stopped_ = true;
    accepting_.store(false, std::memory_order_release);
  }
  // Closing wakes blocked workers; they drain what is already queued
  // (every accepted request gets its callback) and exit.
  requests_.close();
  for (auto& w : workers_) w.join();
  workers_.clear();
  observations_.close();
  // The trainer pool destructor runs any still-queued training task
  // before joining, so accepted observations are folded; accepting_ is
  // already false, so those tasks cannot schedule successors.
  trainer_pool_.reset();
}

bool PredictionService::submit(std::vector<double> features, Callback done) {
  if (features.size() != config_.feature_dim) {
    throw std::invalid_argument(
        "PredictionService::submit: feature dimension mismatch");
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Request req;
  req.features = std::move(features);
  req.submit_ns = clock_->now_ns();
  req.done = std::move(done);
  if (!requests_.try_push(std::move(req))) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::optional<PredictResult> PredictionService::predict_wait(
    std::vector<double> features) {
  GSIGHT_ASSERT(config_.worker_threads > 0,
                "predict_wait needs worker threads (synchronous mode would "
                "deadlock; use submit + poll)");
  // One allocation per *waiting* caller is inherent to the blocking
  // convenience API (the promise must outlive this frame if the batch
  // completes on another worker); the queue-and-callback path is the
  // allocation-free one.
  auto state = std::make_shared<std::promise<PredictResult>>();  // gsight-analyze: allow(hot-alloc)
  auto result = state->get_future();
  if (!submit(std::move(features),
              [state](const PredictResult& r) { state->set_value(r); })) {
    return std::nullopt;
  }
  return result.get();
}

bool PredictionService::observe(std::vector<double> features, double label) {
  if (features.size() != config_.feature_dim) {
    throw std::invalid_argument(
        "PredictionService::observe: feature dimension mismatch");
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    observed_shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Observation obs;
  obs.features = std::move(features);
  obs.label = label;
  if (!observations_.try_push(std::move(obs))) {
    observed_shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  observed_.fetch_add(1, std::memory_order_relaxed);
  if (config_.worker_threads > 0) maybe_schedule_train();
  return true;
}

std::size_t PredictionService::poll() {
  GSIGHT_ASSERT(config_.worker_threads == 0,
                "poll drives synchronous mode only; threaded services "
                "batch on their own workers");
  std::vector<Request> batch;
  requests_.try_pop_batch(batch, config_.max_batch);
  const std::size_t served =
      batch.empty() ? 0 : process_batch(batch, sync_scratch_);
  if (observations_.size() >= config_.train_batch) train_round();
  return served;
}

bool PredictionService::train_now() { return train_round(); }

void PredictionService::worker_loop() {
  std::vector<Request> batch;
  BatchScratch scratch(config_.feature_dim);  // worker-local: no sharing
  for (;;) {
    batch.clear();
    const std::size_t n =
        requests_.pop_batch(batch, config_.max_batch, config_.batch_linger);
    if (n == 0) return;  // closed and drained
    process_batch(batch, scratch);
  }
}

std::size_t PredictionService::process_batch(std::vector<Request>& batch,
                                             BatchScratch& scratch) {
  const auto snap = slot_.load();
  ml::Matrix& xs = scratch.xs;
  xs.clear_rows();
  xs.reserve_rows(batch.size());
  for (const auto& req : batch) xs.push_row(req.features);
  std::vector<double>& values = scratch.values;
  if (snap) {
    snap->forest.predict_batch(xs, values);
  } else {
    values.assign(batch.size(), 0.0);  // cold model: IncrementalRegressor
                                       // contract is predict() == 0
  }
  const std::uint64_t done_ns = clock_->now_ns();
  const auto size = static_cast<std::uint32_t>(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    PredictResult result;
    result.value = values[i];
    result.model_version = snap ? snap->version : 0;
    result.latency_ns = done_ns >= batch[i].submit_ns
                            ? done_ns - batch[i].submit_ns
                            : 0;
    result.batch_size = size;
    if (batch[i].done) batch[i].done(result);
  }
  predicted_.fetch_add(batch.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_size_counts_[batch.size() - 1].fetch_add(1,
                                                 std::memory_order_relaxed);
  return batch.size();
}

bool PredictionService::train_round() {
  core::MutexLock lock(train_mutex_);
  std::vector<Observation> drained;
  observations_.try_pop_batch(drained, config_.max_train_drain);
  if (drained.empty()) return false;
  ml::Dataset batch(config_.feature_dim);
  for (const auto& obs : drained) batch.add(obs.features, obs.label);
  model_.partial_fit(batch);
  train_rounds_.fetch_add(1, std::memory_order_relaxed);
  // Freeze under the training lock (the model cannot advance mid-copy),
  // publish outside no later than here: the slot rejects stale versions,
  // so even a delayed publish can never roll the serving model back.
  return slot_.publish(ModelSnapshot::freeze(model_));
}

void PredictionService::maybe_schedule_train() {
  if (observations_.size() < config_.train_batch) return;
  if (train_pending_.exchange(true, std::memory_order_acq_rel)) return;
  core::MutexLock lock(lifecycle_mutex_);
  if (!accepting_.load(std::memory_order_acquire) || !trainer_pool_) {
    train_pending_.store(false, std::memory_order_release);
    return;
  }
  // Fire-and-forget: the future is intentionally dropped; failures
  // cannot occur past this point (train_round swallows nothing but also
  // throws nothing in normal operation), and sequencing is enforced by
  // train_mutex_ plus the single-threaded pool.
  trainer_pool_->submit([this] {
    train_round();
    train_pending_.store(false, std::memory_order_release);
    // Re-check: observations may have crossed the threshold again while
    // this round was running and submissions stopped arriving.
    maybe_schedule_train();
  });
}

ServiceStats PredictionService::stats() const {
  ServiceStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.predicted = predicted_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.observations = observed_.load(std::memory_order_relaxed);
  s.observations_shed = observed_shed_.load(std::memory_order_relaxed);
  s.train_rounds = train_rounds_.load(std::memory_order_relaxed);
  // One critical section for (version, swaps): a mid-run stats reader
  // must never see a freshly swapped version next to the old swap count.
  const SnapshotSlot::SlotInfo slot = slot_.info();
  s.snapshot_swaps = slot.swaps;
  s.model_version = slot.version;
  s.batch_size_counts.reserve(batch_size_counts_.size());
  for (const auto& c : batch_size_counts_) {
    s.batch_size_counts.push_back(c.load(std::memory_order_relaxed));
  }
  return s;
}

void PredictionService::export_metrics(obs::MetricsRegistry& registry) const {
  const ServiceStats s = stats();
  registry.counter("serve.requests_accepted").inc(static_cast<double>(s.accepted));
  registry.counter("serve.requests_shed").inc(static_cast<double>(s.shed));
  registry.counter("serve.predictions").inc(static_cast<double>(s.predicted));
  registry.counter("serve.batches").inc(static_cast<double>(s.batches));
  registry.counter("serve.observations").inc(static_cast<double>(s.observations));
  registry.counter("serve.observations_shed")
      .inc(static_cast<double>(s.observations_shed));
  registry.counter("serve.train_rounds").inc(static_cast<double>(s.train_rounds));
  registry.counter("serve.snapshot_swaps")
      .inc(static_cast<double>(s.snapshot_swaps));
  registry.gauge("serve.model_version").set(static_cast<double>(s.model_version));
  // Batch-size histogram: bucket upper bounds 1..max_batch, one sample
  // per served micro-batch.
  std::vector<double> bounds;
  bounds.reserve(s.batch_size_counts.size());
  for (std::size_t i = 0; i < s.batch_size_counts.size(); ++i) {
    bounds.push_back(static_cast<double>(i + 1));
  }
  auto& hist = registry.histogram("serve.batch_size", {}, std::move(bounds));
  for (std::size_t i = 0; i < s.batch_size_counts.size(); ++i) {
    for (std::uint64_t k = 0; k < s.batch_size_counts[i]; ++k) {
      hist.observe(static_cast<double>(i + 1));
    }
  }
}

}  // namespace gsight::serve
