// PredictionFleet — N PredictionService replicas behind a routed serve
// API, the production shape of Gsight inference for heavy traffic: one
// logical predictor, many processes' worth of queues and workers.
//
//   * Routing — a pluggable Router (serve/router.hpp): consistent-hash on
//     the request key (stable per-key replica affinity, minimal-movement
//     re-shard) or least-queued (load balancing on live queue depth).
//
//   * Central training, fan-out publishing — the fleet owns the single
//     training model; observations feed one fleet-level queue and each
//     training round freezes one snapshot that is pushed into every
//     *active* replica's SnapshotSlot. The fleet-wide version watermark
//     is the minimum snapshot version across active replicas: a publish
//     is only "fleet-visible" once the watermark reaches it. Replicas
//     lagging the latest published version are tracked as stale.
//
//   * Drain / re-shard — drain(r) removes a replica from the router (its
//     hash range lands on the survivors), lets it finish everything
//     in-flight, and stops publishing to it; readd(r) republishes the
//     latest snapshot *before* the replica rejoins the ring, so the
//     watermark never regresses. Conservation invariant, checked by the
//     fleet twin-run gate: submitted == completed + shed at all times —
//     no request is dropped or double-counted across a re-shard.
//
// Like PredictionService, the fleet runs in two regimes sharing all of
// this code: threaded (service.worker_threads > 0; real clocks, each
// replica's own workers, a fleet trainer thread) and synchronous
// (worker_threads == 0; the caller drives every replica through
// poll()/poll_replica() on one fleet-wide ManualClock — fully
// deterministic, which is what makes fleet twin runs byte-identical).
//
// Live introspection: point set_live_sink at an obs::LiveStreamSink and
// the fleet marks publish/drain/readd transitions and, on demand
// (emit_live_metrics), streams metric deltas — the `gsight tail` surface.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/lock.hpp"
#include "ml/incremental_forest.hpp"
#include "ml/thread_pool.hpp"
#include "obs/live_stream.hpp"
#include "obs/metrics.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"

namespace gsight::serve {

/// One scheduled drain/re-add, keyed to load-driver request indices so a
/// re-shard lands mid-run deterministically (see LoadDriver).
struct DrainStep {
  std::size_t replica = 0;
  std::size_t drain_at = 0;  ///< drain before submitting this request index
  std::size_t readd_at = 0;  ///< re-add before this index (0 = never)
};

/// The one way to ask for a fleet (no positional ServiceConfig anywhere):
/// shape + router policy + the per-replica ServiceConfig every replica
/// inherits + an optional drain schedule.
struct FleetRequest {
  std::size_t replicas = 2;
  RouterPolicy router = RouterPolicy::kConsistentHash;
  std::size_t vnodes_per_replica = 64;
  /// Inherited by every replica. worker_threads selects the regime for
  /// the whole fleet; clock == nullptr in synchronous mode gives the
  /// fleet one shared ManualClock.
  ServiceConfig service;
  /// Executed by the LoadDriver at the scheduled request indices.
  std::vector<DrainStep> drains;

  /// Throws std::invalid_argument naming the first bad field (also
  /// validates the embedded ServiceConfig and every DrainStep).
  void validate() const;
};

/// Point-in-time fleet counters (see export_metrics for registry form).
struct FleetStats {
  std::uint64_t submitted = 0;   ///< accepted by some replica
  std::uint64_t completed = 0;   ///< callbacks delivered
  std::uint64_t shed = 0;        ///< no active replica / target queue full
  std::uint64_t observations = 0;
  std::uint64_t observations_shed = 0;
  std::uint64_t train_rounds = 0;
  std::uint64_t publishes = 0;   ///< successful per-replica slot swaps
  std::uint64_t drains = 0;
  std::uint64_t readds = 0;
  std::uint64_t latest_version = 0;  ///< newest frozen snapshot
  std::uint64_t watermark = 0;       ///< min version over active replicas
  std::size_t active_replicas = 0;
  std::size_t stale_replicas = 0;  ///< active but behind latest_version
  std::vector<std::uint64_t> routed;            ///< per-replica accepts
  std::vector<std::uint64_t> replica_versions;  ///< per-replica slot version
};

class PredictionFleet {
 public:
  using Callback = PredictionService::Callback;

  /// Takes ownership of the (possibly pre-trained) central model. A warm
  /// model is frozen once and the one snapshot is published to every
  /// replica, so all replicas start at the same version.
  PredictionFleet(FleetRequest request, ml::IncrementalForest model);
  ~PredictionFleet();

  PredictionFleet(const PredictionFleet&) = delete;
  PredictionFleet& operator=(const PredictionFleet&) = delete;

  /// Start every replica (and the fleet trainer in threaded mode).
  void start();
  /// Stop intake, drain replicas, join everything. Idempotent.
  void stop();

  /// Route `key` and submit. Returns the replica that accepted the
  /// request, or nullopt on shed (no active replica, or the routed
  /// replica's queue was full — consistent hashing does not fail over, a
  /// hot shard sheds like a real one). The callback fires exactly once
  /// iff a replica was returned.
  std::optional<std::size_t> submit(std::uint64_t key,
                                    std::vector<double> features,
                                    Callback done);

  /// Feed one labelled observation toward the fleet trainer.
  bool observe(std::vector<double> features, double label);

  /// Synchronous mode: serve one micro-batch on every replica (active or
  /// draining — drained queues must still empty), then run a training
  /// round if due. Returns predictions served.
  std::size_t poll();
  /// Synchronous mode: one micro-batch on one replica + the train check.
  std::size_t poll_replica(std::size_t replica);

  /// Fold queued observations now and fan the snapshot out. True if a
  /// new version was published.
  bool train_now();

  /// Remove a replica from the router and (threaded mode) wait for its
  /// in-flight requests to finish. Refuses to drain the last active
  /// replica. In synchronous mode the caller's subsequent polls drain
  /// the queue — poll() serves draining replicas too.
  void drain(std::size_t replica);
  /// Re-add a drained replica: it is caught up to the latest snapshot
  /// *before* rejoining the ring, so the watermark never moves backwards.
  void readd(std::size_t replica);
  bool active(std::size_t replica) const;

  /// Min snapshot version across active replicas (0 with none active):
  /// the version every live request is guaranteed to see at least.
  std::uint64_t watermark() const;

  FleetStats stats() const;
  /// Fleet counters plus per-replica series under a {"replica","<i>"}
  /// label, prefixed "fleet.". Single-threaded registry: call from one
  /// thread, normally between poll cycles or after the run.
  void export_metrics(obs::MetricsRegistry& registry) const;

  /// Attach/detach the live NDJSON sink (not owned; may be null).
  void set_live_sink(obs::LiveStreamSink* sink) {
    live_.store(sink, std::memory_order_release);
  }
  /// Export into a scratch registry and stream the deltas (no-op without
  /// a sink). The LoadDriver calls this on its live_every cadence.
  void emit_live_metrics();

  const FleetRequest& request() const { return request_; }
  /// Seconds on the fleet clock since construction (virtual in
  /// synchronous mode) — the timestamp domain of the live stream.
  double now_s() const;
  /// The shared manual clock (synchronous mode, no explicit clock);
  /// nullptr otherwise.
  ManualClock* manual_clock() { return own_clock_.get(); }
  PredictionService& replica(std::size_t r) { return *replicas_[r]; }

 private:
  struct Sample {
    std::vector<double> features;
    double label = 0.0;
  };

  bool train_round() GSIGHT_EXCLUDES(train_mutex_, route_mutex_);
  void maybe_schedule_train() GSIGHT_EXCLUDES(lifecycle_mutex_);
  /// Push a frozen snapshot to every active replica and refresh
  /// latest_snap_. Returns the post-publish watermark.
  std::uint64_t fan_out(std::shared_ptr<const ModelSnapshot> snap)
      GSIGHT_EXCLUDES(route_mutex_);
  std::uint64_t watermark_locked() const GSIGHT_REQUIRES(route_mutex_);
  void mark(const char* name,
            std::vector<std::pair<std::string, std::string>> args);

  const FleetRequest request_;
  /// Clock members are set once in the constructor and immutable after.
  std::unique_ptr<ManualClock> own_clock_;  // gsight-analyze: allow(unguarded-member)
  const Clock* clock_ = nullptr;  // gsight-analyze: allow(unguarded-member)
  std::uint64_t start_ns_ = 0;  // gsight-analyze: allow(unguarded-member)

  /// Fixed at construction; the services are internally synchronized.
  std::vector<std::unique_ptr<PredictionService>> replicas_;  // gsight-analyze: allow(unguarded-member)

  /// Routing state: activation flips, route lookups and snapshot fan-out
  /// serialise here, which is what keeps the watermark monotonic across
  /// concurrent publishes and re-adds.
  mutable core::Mutex route_mutex_;
  Router router_ GSIGHT_GUARDED_BY(route_mutex_);
  std::shared_ptr<const ModelSnapshot> latest_snap_
      GSIGHT_GUARDED_BY(route_mutex_);

  /// The central training model.
  core::Mutex train_mutex_;
  ml::IncrementalForest model_ GSIGHT_GUARDED_BY(train_mutex_);

  /// Internally synchronized (owns its own core::Mutex).
  BoundedQueue<Sample> observations_;  // gsight-analyze: allow(unguarded-member)

  /// Lifecycle, mirroring PredictionService: fences trainer-pool
  /// submission so stop() can drain the pool race-free.
  core::Mutex lifecycle_mutex_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> train_pending_{false};
  bool started_ GSIGHT_GUARDED_BY(lifecycle_mutex_) = false;
  bool stopped_ GSIGHT_GUARDED_BY(lifecycle_mutex_) = false;
  /// Created by start() under lifecycle_mutex_, reset by the single
  /// stop() that wins the stopped_ flip (outside the lock, like the
  /// service's worker join — see service.hpp).
  std::unique_ptr<ml::ThreadPool> trainer_pool_;  // gsight-analyze: allow(unguarded-member)

  std::atomic<obs::LiveStreamSink*> live_{nullptr};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> observed_{0};
  std::atomic<std::uint64_t> observed_shed_{0};
  std::atomic<std::uint64_t> train_rounds_{0};
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> drains_{0};
  std::atomic<std::uint64_t> readds_{0};
  std::vector<std::atomic<std::uint64_t>> routed_;
};

}  // namespace gsight::serve
