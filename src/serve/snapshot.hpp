// Versioned, atomically hot-swappable model snapshots. A ModelSnapshot is
// an immutable copy of the trained forest taken at publish time; readers
// on the prediction path grab a shared_ptr and keep predicting against it
// even while the trainer publishes a successor, so a hot swap never blocks
// an in-flight batch and no prediction can ever observe a half-built
// model: the snapshot is fully constructed before the pointer is swapped,
// and the swap is atomic with respect to every reader.
//
// The slot deliberately uses a mutex around a bare shared_ptr instead of
// std::atomic<shared_ptr>: libstdc++'s lock-free _Sp_atomic guards its
// raw pointer with an embedded spin-lock bit that TSan cannot model, so
// the repo's TSan gate reports races inside the library. The mutex is
// held for a pointer copy only (one refcount bump) — never while a
// prediction runs — so the serving path is unaffected.
//
// Versions are the monotonic stamp maintained by ml::IncrementalForest
// (one bump per absorbed batch, persisted by ml/forest_io). SnapshotSlot
// enforces strict monotonicity: publishing a stale or duplicate version
// is rejected, which is what makes restart-and-republish flows safe — a
// lagging trainer can never roll the serving model backwards.
#pragma once

#include <cstdint>
#include <memory>

#include "core/lock.hpp"
#include "ml/incremental_forest.hpp"
#include "ml/random_forest.hpp"

namespace gsight::serve {

struct ModelSnapshot {
  /// Monotonic model version (ml::IncrementalForest::version()).
  std::uint64_t version = 0;
  /// Samples the model had absorbed when the snapshot was taken.
  std::size_t samples_seen = 0;
  /// The frozen forest. Immutable after publish by convention: nothing
  /// in the serving layer mutates a snapshot once it is in the slot.
  ml::RandomForestRegressor forest;

  /// Freeze the current state of an incremental model.
  static std::shared_ptr<const ModelSnapshot> freeze(
      const ml::IncrementalForest& model);
};

class SnapshotSlot {
 public:
  /// The current snapshot; nullptr before the first publish. The lock
  /// covers only the shared_ptr copy, so readers never wait on a
  /// publish-in-progress beyond that pointer swap.
  std::shared_ptr<const ModelSnapshot> load() const GSIGHT_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    return snap_;
  }

  /// Install `next` iff its version is strictly newer than the current
  /// one (a null slot accepts any version). Returns false — and leaves
  /// the slot untouched — for stale or duplicate versions.
  bool publish(std::shared_ptr<const ModelSnapshot> next)
      GSIGHT_EXCLUDES(mutex_);

  /// Coherent (version, swap count) pair, read in one critical section.
  /// The swap counter used to live outside the lock and was bumped after
  /// the pointer swap, so a concurrent reader (e.g. a bench reporter
  /// polling stats mid-run) could observe the new version paired with the
  /// old swap count — a torn pair, even though each half was atomic.
  struct SlotInfo {
    std::uint64_t version = 0;  ///< 0 when the slot is empty
    std::uint64_t swaps = 0;    ///< successful publishes so far
  };
  SlotInfo info() const GSIGHT_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    return {snap_ ? snap_->version : 0, swaps_};
  }

  /// Version of the current snapshot (0 when empty).
  std::uint64_t version() const { return info().version; }

  /// Successful publishes so far.
  std::uint64_t swap_count() const { return info().swaps; }

 private:
  mutable core::Mutex mutex_;
  std::shared_ptr<const ModelSnapshot> snap_ GSIGHT_GUARDED_BY(mutex_);
  std::uint64_t swaps_ GSIGHT_GUARDED_BY(mutex_) = 0;
};

}  // namespace gsight::serve
