// ServingPredictor — the bridge between the scheduler's ScenarioPredictor
// interface and the online serving layer. A scheduler embedded in the
// same process as the service does not need the request queue: its SLA
// sweeps are already batched (GsightScheduler::sla_ok issues one
// predict_batch per placement attempt), so this adapter encodes the
// scenarios and walks the *current published snapshot* directly — it
// still sees only fully published, versioned models (hot swaps apply
// between calls, never inside one), while observe() feeds the measured
// QoS back through the service's admission-controlled training path.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "core/predictor.hpp"
#include "serve/service.hpp"

namespace gsight::serve {

class ServingPredictor final : public core::ScenarioPredictor {
 public:
  /// `service` must outlive the predictor and must have been configured
  /// with feature_dim == Encoder(encoder_config).dimension().
  ServingPredictor(core::EncoderConfig encoder_config,
                   PredictionService* service);

  double predict(const core::Scenario& scenario) const override;
  std::vector<double> predict_batch(
      std::span<const core::Scenario> scenarios) const override;
  /// Feeds the service's training queue (sheds under overload — a lost
  /// training sample never blocks the scheduling path).
  void observe(const core::Scenario& scenario, double actual_qos) override;
  /// Folds queued observations and publishes synchronously.
  void flush() override;
  std::string name() const override { return "Gsight-Serve"; }

  const core::Encoder& encoder() const { return encoder_; }

 private:
  core::Encoder encoder_;
  PredictionService* service_;
  /// Zero-copy encode scratch for predict_batch (see GsightPredictor):
  /// scenario codes land straight in rows of the reused Matrix. One
  /// predictor instance per scheduler thread — not shared.
  mutable ml::Matrix batch_xs_;
  mutable core::EncodeScratch encode_scratch_;
};

}  // namespace gsight::serve
