// Time source for the serving layer. Everything in src/serve that needs
// "now" takes it through this interface so the same service code runs in
// two regimes:
//
//   * SteadyClock — the host's monotonic clock, used by the threaded
//     service in production shape. This is the single sanctioned
//     wall-clock exception in src/ (the serving layer is a real daemon,
//     not simulation code; see the allow() annotations in clock.cpp).
//   * ManualClock — a virtual clock advanced explicitly by the caller.
//     The synchronous service mode and the deterministic LoadDriver use
//     it, which is what makes single-threaded serve-bench twin runs
//     byte-identical: latencies are derived purely from the virtual
//     timeline, never from the host.
//
// Timestamps are nanoseconds from an arbitrary epoch; only differences
// are meaningful.
#pragma once

#include <atomic>
#include <cstdint>

namespace gsight::serve {

class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t now_ns() const = 0;
};

/// Deterministic, externally advanced clock. Thread-safe: readers load a
/// single atomic, so it can also pace multi-threaded tests that advance
/// time from one thread.
class ManualClock final : public Clock {
 public:
  std::uint64_t now_ns() const override {
    return ns_.load(std::memory_order_acquire);
  }
  void set_ns(std::uint64_t ns) { ns_.store(ns, std::memory_order_release); }
  void advance_ns(std::uint64_t delta) {
    ns_.fetch_add(delta, std::memory_order_acq_rel);
  }

 private:
  std::atomic<std::uint64_t> ns_{0};
};

/// The host's monotonic clock (threaded serving only).
class SteadyClock final : public Clock {
 public:
  std::uint64_t now_ns() const override;
  static const SteadyClock& instance();
};

}  // namespace gsight::serve
