#include "serve/load_driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/contracts.hpp"
#include "core/lock.hpp"
#include "stats/seed_stream.hpp"
#include "stats/summary.hpp"

namespace gsight::serve {

namespace {

constexpr double kNsPerSecond = 1e9;
constexpr double kNsPerMicro = 1e3;

}  // namespace

void DriverRequest::validate() const {
  if (requests == 0) {
    throw std::invalid_argument("DriverRequest: requests must be non-zero");
  }
  if (!(rate_hz > 0.0)) {
    throw std::invalid_argument("DriverRequest: rate_hz must be positive");
  }
  if (clients == 0) {
    throw std::invalid_argument("DriverRequest: clients must be non-zero");
  }
}

LoadDriver::LoadDriver(DriverRequest request) : request_(request) {
  request_.validate();
}

std::vector<double> LoadDriver::make_features(std::size_t dim,
                                              stats::Rng& rng) const {
  std::vector<double> x(dim);
  for (auto& v : x) v = rng.uniform();
  return x;
}

double LoadDriver::label_of(const std::vector<double>& features) {
  // Smooth, deterministic pseudo-QoS: weighted mean plus a mild
  // nonlinearity so the forest has structure to learn.
  double acc = 0.0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    acc += features[i] * (1.0 + static_cast<double>(i % 7) * 0.25);
  }
  const double mean = acc / static_cast<double>(features.size());
  return mean + 0.1 * mean * mean;
}

LoadOutcome LoadDriver::finalise(std::vector<double>& latencies_us,
                                 std::size_t submitted, std::size_t shed,
                                 double duration_s) const {
  LoadOutcome out;
  out.submitted = submitted;
  out.shed = shed;
  out.completed = latencies_us.size();
  out.duration_s = duration_s;
  if (duration_s > 0.0) {
    out.throughput_rps = static_cast<double>(out.completed) / duration_s;
  }
  if (!latencies_us.empty()) {
    out.latency_p50_us = stats::percentile_inplace(latencies_us, 50.0);
    out.latency_p95_us = stats::percentile_inplace(latencies_us, 95.0);
    out.latency_p99_us = stats::percentile_inplace(latencies_us, 99.0);
    out.latency_max_us =
        *std::max_element(latencies_us.begin(), latencies_us.end());
    out.latency_mean_us = stats::mean(latencies_us);
  }
  return out;
}

LoadOutcome LoadDriver::run_deterministic(PredictionService& service) {
  GSIGHT_ASSERT(request_.mode == DriverRequest::Mode::kOpenLoop,
                "deterministic runs are open-loop (closed-loop latency "
                "needs a real clock)");
  GSIGHT_ASSERT(service.config().worker_threads == 0,
                "deterministic runs need a synchronous service");
  ManualClock* clock = service.manual_clock();
  GSIGHT_ASSERT(clock != nullptr,
                "deterministic runs need the service's own ManualClock");

  const std::size_t dim = service.config().feature_dim;
  const auto linger_ns =
      static_cast<std::uint64_t>(service.config().batch_linger.count());
  const std::size_t max_batch = service.config().max_batch;
  stats::Rng rng(stats::SeedStream::derive(request_.seed, 0));

  std::vector<double> latencies_us;
  latencies_us.reserve(request_.requests);
  auto on_done = [&latencies_us](const PredictResult& r) {
    latencies_us.push_back(static_cast<double>(r.latency_ns) / kNsPerMicro);
  };

  // FIFO mirror of queued submit times: the queue serves in submission
  // order, so mirror.front() is always the oldest pending arrival —
  // which is what the batch-forming deadline is measured from.
  std::deque<std::uint64_t> pending;
  auto drain_one = [&] {
    const std::size_t served = service.poll();
    for (std::size_t i = 0; i < served; ++i) pending.pop_front();
    return served;
  };

  std::size_t shed = 0;
  double arrival_s = 0.0;
  std::uint64_t first_ns = 0;
  for (std::size_t i = 0; i < request_.requests; ++i) {
    arrival_s += rng.exponential(request_.rate_hz);
    const auto arrival_ns =
        static_cast<std::uint64_t>(arrival_s * kNsPerSecond);
    if (i == 0) first_ns = arrival_ns;
    // Fire every batch deadline that elapses before this arrival.
    while (!pending.empty() && pending.front() + linger_ns <= arrival_ns) {
      clock->set_ns(pending.front() + linger_ns);
      if (drain_one() == 0) break;
    }
    clock->set_ns(arrival_ns);
    auto features = make_features(dim, rng);
    const bool feed_observation =
        request_.observe_every > 0 && i % request_.observe_every == 0;
    if (feed_observation) {
      // Same vector as the request: prediction and ground truth pair up.
      service.observe(features, label_of(features));
    }
    if (service.submit(std::move(features), on_done)) {
      pending.push_back(arrival_ns);
    } else {
      ++shed;
    }
    // A full batch is served immediately — no reason to linger.
    while (pending.size() >= max_batch) {
      if (drain_one() == 0) break;
    }
  }
  // Tail: serve remaining requests at their deadlines.
  while (!pending.empty()) {
    clock->set_ns(pending.front() + linger_ns);
    if (drain_one() == 0) break;
  }
  service.train_now();  // fold any leftover observations

  const double duration_s =
      static_cast<double>(clock->now_ns() - first_ns) / kNsPerSecond;
  return finalise(latencies_us, request_.requests, shed, duration_s);
}

LoadOutcome LoadDriver::run_deterministic(PredictionFleet& fleet) {
  GSIGHT_ASSERT(request_.mode == DriverRequest::Mode::kOpenLoop,
                "deterministic runs are open-loop (closed-loop latency "
                "needs a real clock)");
  GSIGHT_ASSERT(fleet.request().service.worker_threads == 0,
                "deterministic fleet runs need a synchronous fleet");
  ManualClock* clock = fleet.manual_clock();
  GSIGHT_ASSERT(clock != nullptr,
                "deterministic fleet runs need the fleet's shared "
                "ManualClock");

  const ServiceConfig& sc = fleet.request().service;
  const std::size_t dim = sc.feature_dim;
  const auto linger_ns = static_cast<std::uint64_t>(sc.batch_linger.count());
  const std::size_t max_batch = sc.max_batch;
  const std::size_t replicas = fleet.request().replicas;
  stats::Rng rng(stats::SeedStream::derive(request_.seed, 0));

  std::vector<double> latencies_us;
  latencies_us.reserve(request_.requests);
  auto on_done = [&latencies_us](const PredictResult& r) {
    latencies_us.push_back(static_cast<double>(r.latency_ns) / kNsPerMicro);
  };

  // Per-replica FIFO mirrors of queued submit times: each replica batches
  // independently, so each has its own batch-forming deadline.
  std::vector<std::deque<std::uint64_t>> pending(replicas);
  auto serve_replica = [&](std::size_t r) {
    const std::size_t served = fleet.poll_replica(r);
    for (std::size_t i = 0; i < served; ++i) pending[r].pop_front();
    return served;
  };
  // Earliest pending batch deadline across replicas (ties to the lowest
  // replica id — fully deterministic firing order).
  auto next_deadline = [&]() -> std::optional<std::pair<std::uint64_t, std::size_t>> {
    std::optional<std::pair<std::uint64_t, std::size_t>> best;
    for (std::size_t r = 0; r < replicas; ++r) {
      if (pending[r].empty()) continue;
      const std::uint64_t due = pending[r].front() + linger_ns;
      if (!best || due < best->first) best = {{due, r}};
    }
    return best;
  };

  std::size_t shed = 0;
  double arrival_s = 0.0;
  std::uint64_t first_ns = 0;
  for (std::size_t i = 0; i < request_.requests; ++i) {
    arrival_s += rng.exponential(request_.rate_hz);
    const auto arrival_ns =
        static_cast<std::uint64_t>(arrival_s * kNsPerSecond);
    if (i == 0) first_ns = arrival_ns;
    for (;;) {
      const auto due = next_deadline();
      if (!due || due->first > arrival_ns) break;
      clock->set_ns(due->first);
      if (serve_replica(due->second) == 0) break;
    }
    clock->set_ns(arrival_ns);
    // The drain schedule is keyed to request indices: fire before this
    // submission. A drained replica keeps its pending mirror — its queue
    // still empties through next_deadline/serve_replica (zero lost).
    for (const auto& step : fleet.request().drains) {
      if (step.drain_at == i) fleet.drain(step.replica);
      if (step.readd_at == i && step.readd_at != 0) fleet.readd(step.replica);
    }
    auto features = make_features(dim, rng);
    const bool feed_observation =
        request_.observe_every > 0 && i % request_.observe_every == 0;
    if (feed_observation) {
      fleet.observe(features, label_of(features));
    }
    const auto routed = fleet.submit(i, std::move(features), on_done);
    if (routed) {
      pending[*routed].push_back(arrival_ns);
      while (pending[*routed].size() >= max_batch) {
        if (serve_replica(*routed) == 0) break;
      }
    } else {
      ++shed;
    }
    if (request_.live_every > 0 && i % request_.live_every == 0) {
      fleet.emit_live_metrics();
    }
  }
  // Tail: fire every remaining deadline in global order.
  for (;;) {
    const auto due = next_deadline();
    if (!due) break;
    clock->set_ns(due->first);
    if (serve_replica(due->second) == 0) break;
  }
  fleet.train_now();  // fold any leftover observations
  if (request_.live_every > 0) fleet.emit_live_metrics();

  const double duration_s =
      static_cast<double>(clock->now_ns() - first_ns) / kNsPerSecond;
  return finalise(latencies_us, request_.requests, shed, duration_s);
}

LoadOutcome LoadDriver::run_threaded(PredictionService& service) {
  GSIGHT_ASSERT(service.config().worker_threads > 0,
                "run_threaded needs a threaded service");
  service.start();
  const std::size_t dim = service.config().feature_dim;
  const Clock* clock = service.clock();

  core::Mutex lat_mutex;
  std::vector<double> latencies_us;
  latencies_us.reserve(request_.requests);
  std::atomic<std::size_t> completed{0};
  auto on_done = [&](const PredictResult& r) {
    {
      core::MutexLock lock(lat_mutex);
      latencies_us.push_back(static_cast<double>(r.latency_ns) / kNsPerMicro);
    }
    completed.fetch_add(1, std::memory_order_release);
  };

  const std::uint64_t start_ns = clock->now_ns();
  std::size_t shed = 0;
  std::size_t accepted = 0;

  if (request_.mode == DriverRequest::Mode::kOpenLoop) {
    stats::Rng rng(stats::SeedStream::derive(request_.seed, 0));
    double arrival_s = 0.0;
    for (std::size_t i = 0; i < request_.requests; ++i) {
      arrival_s += rng.exponential(request_.rate_hz);
      const auto due_ns =
          start_ns + static_cast<std::uint64_t>(arrival_s * kNsPerSecond);
      // Open loop: hold the schedule regardless of completions.
      for (;;) {
        const std::uint64_t now = clock->now_ns();
        if (now >= due_ns) break;
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            std::min<std::uint64_t>(due_ns - now, 200'000)));
      }
      auto features = make_features(dim, rng);
      if (request_.observe_every > 0 && i % request_.observe_every == 0) {
        service.observe(features, label_of(features));
      }
      if (service.submit(std::move(features), on_done)) {
        ++accepted;
      } else {
        ++shed;
      }
    }
    // Wait for in-flight work to complete (bounded: the queue is bounded
    // and workers drain it, so this terminates).
    while (completed.load(std::memory_order_acquire) < accepted) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> shed_count{0};
    std::vector<std::thread> clients;
    clients.reserve(request_.clients);
    for (std::size_t c = 0; c < request_.clients; ++c) {
      clients.emplace_back([&, c] {
        stats::Rng rng(stats::SeedStream::derive(request_.seed, c + 1));
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= request_.requests) return;
          auto features = make_features(dim, rng);
          if (request_.observe_every > 0 && i % request_.observe_every == 0) {
            service.observe(features, label_of(features));
          }
          const auto result = service.predict_wait(std::move(features));
          if (!result.has_value()) {
            shed_count.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          on_done(*result);
        }
      });
    }
    for (auto& t : clients) t.join();
    shed = shed_count.load();
    accepted = request_.requests - shed;
  }

  const double duration_s =
      static_cast<double>(clock->now_ns() - start_ns) / kNsPerSecond;
  core::MutexLock lock(lat_mutex);
  return finalise(latencies_us, request_.requests, shed, duration_s);
}

LoadOutcome LoadDriver::run_threaded(PredictionFleet& fleet) {
  GSIGHT_ASSERT(fleet.request().service.worker_threads > 0,
                "run_threaded needs a threaded fleet");
  fleet.start();
  const std::size_t dim = fleet.request().service.feature_dim;
  const Clock* clock = fleet.replica(0).clock();

  core::Mutex lat_mutex;
  std::vector<double> latencies_us;
  latencies_us.reserve(request_.requests);
  std::atomic<std::size_t> completed{0};
  auto on_done = [&](const PredictResult& r) {
    {
      core::MutexLock lock(lat_mutex);
      latencies_us.push_back(static_cast<double>(r.latency_ns) / kNsPerMicro);
    }
    completed.fetch_add(1, std::memory_order_release);
  };

  const std::uint64_t start_ns = clock->now_ns();
  std::size_t shed = 0;
  std::size_t accepted = 0;

  if (request_.mode == DriverRequest::Mode::kOpenLoop) {
    stats::Rng rng(stats::SeedStream::derive(request_.seed, 0));
    double arrival_s = 0.0;
    for (std::size_t i = 0; i < request_.requests; ++i) {
      arrival_s += rng.exponential(request_.rate_hz);
      const auto due_ns =
          start_ns + static_cast<std::uint64_t>(arrival_s * kNsPerSecond);
      for (;;) {
        const std::uint64_t now = clock->now_ns();
        if (now >= due_ns) break;
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            std::min<std::uint64_t>(due_ns - now, 200'000)));
      }
      // Drain/re-add genuinely under load: the drain blocks inline until
      // the replica's in-flight requests finish while peers keep serving.
      for (const auto& step : fleet.request().drains) {
        if (step.drain_at == i) fleet.drain(step.replica);
        if (step.readd_at == i && step.readd_at != 0) {
          fleet.readd(step.replica);
        }
      }
      auto features = make_features(dim, rng);
      if (request_.observe_every > 0 && i % request_.observe_every == 0) {
        fleet.observe(features, label_of(features));
      }
      if (fleet.submit(i, std::move(features), on_done)) {
        ++accepted;
      } else {
        ++shed;
      }
      if (request_.live_every > 0 && i % request_.live_every == 0) {
        fleet.emit_live_metrics();
      }
    }
    while (completed.load(std::memory_order_acquire) < accepted) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> shed_count{0};
    std::vector<std::thread> clients;
    clients.reserve(request_.clients);
    for (std::size_t c = 0; c < request_.clients; ++c) {
      clients.emplace_back([&, c] {
        stats::Rng rng(stats::SeedStream::derive(request_.seed, c + 1));
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= request_.requests) return;
          auto features = make_features(dim, rng);
          if (request_.observe_every > 0 && i % request_.observe_every == 0) {
            fleet.observe(features, label_of(features));
          }
          // Closed-loop fleet clients wait on a promise the routed
          // replica fulfils (the fleet has no predict_wait: routing
          // happens per-submit, so the wait lives here).
          auto state = std::make_shared<std::promise<PredictResult>>();
          auto result = state->get_future();
          if (!fleet.submit(
                  i, std::move(features),
                  [state](const PredictResult& r) { state->set_value(r); })) {
            shed_count.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          on_done(result.get());
        }
      });
    }
    for (auto& t : clients) t.join();
    shed = shed_count.load();
    accepted = request_.requests - shed;
  }

  const double duration_s =
      static_cast<double>(clock->now_ns() - start_ns) / kNsPerSecond;
  core::MutexLock lock(lat_mutex);
  return finalise(latencies_us, request_.requests, shed, duration_s);
}

}  // namespace gsight::serve
