#include "serve/clock.hpp"

#include <chrono>

namespace gsight::serve {

// The serving layer is the one resident, real-time component in src/: it
// measures request latency and paces open-loop load against the host's
// monotonic clock. Simulation code must still take time from
// sim::Engine::now() — the lint waiver is scoped to exactly these lines.
std::uint64_t SteadyClock::now_ns() const {
  const auto t =
      std::chrono::steady_clock::now();  // gsight-lint: allow(wall-clock)
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t.time_since_epoch())
          .count());
}

const SteadyClock& SteadyClock::instance() {
  static const SteadyClock clock;
  return clock;
}

}  // namespace gsight::serve
