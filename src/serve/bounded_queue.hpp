// Bounded MPMC queue — the admission-control primitive of the serving
// layer. Capacity is fixed at construction; try_push never blocks and
// fails when the queue is full, which is where load shedding happens
// (the caller counts the shed and answers the client immediately instead
// of letting queueing delay grow without bound).
//
// Consumers take *batches*: pop_batch blocks until at least one item is
// available, then lingers up to `linger` for the batch to fill to `max`
// — the micro-batch-forming deadline of serve::PredictionService. The
// non-blocking try_pop_batch variant is the synchronous-mode path: it
// takes whatever is queued right now, so a single-threaded driver stays
// deterministic (no timing-dependent batch boundaries).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "core/contracts.hpp"
#include "core/lock.hpp"

namespace gsight::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    GSIGHT_ASSERT(capacity > 0, "BoundedQueue capacity must be positive");
  }

  /// Enqueue unless full or closed. Never blocks; false = shed.
  bool try_push(T&& item) GSIGHT_EXCLUDES(mutex_) {
    {
      core::MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocking batch pop for worker threads. Waits for the first item
  /// (indefinitely, unless the queue closes), then waits up to `linger`
  /// for the batch to reach `max` items. Appends to `out` and returns
  /// the number of items taken; 0 means closed-and-drained, the worker's
  /// signal to exit.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max,
                        std::chrono::nanoseconds linger)
      GSIGHT_EXCLUDES(mutex_) {
    GSIGHT_ASSERT(max > 0, "BoundedQueue::pop_batch needs max > 0");
    core::MutexUniqueLock lock(mutex_);
    // Waits are explicit loops, not predicate lambdas: a lambda is
    // analysed as a separate function that does not hold mutex_, so its
    // guarded reads would (correctly) fail -Wthread-safety.
    while (!closed_ && items_.empty()) ready_.wait(lock.raw());
    if (items_.empty()) return 0;  // closed and drained
    if (items_.size() < max && linger.count() > 0) {
      // Batch-forming deadline: trade a bounded wait for a fuller batch.
      // Host-time deadline is sanctioned here: the queue is the serving
      // layer's real-time primitive (see serve/clock.hpp).
      const auto deadline =
          std::chrono::steady_clock::now() + linger;  // gsight-lint: allow(wall-clock)
      while (!closed_ && items_.size() < max) {
        if (ready_.wait_until(lock.raw(), deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
    }
    return take_locked(out, max);
  }

  /// Non-blocking batch pop (synchronous mode): takes min(size, max)
  /// items immediately.
  std::size_t try_pop_batch(std::vector<T>& out, std::size_t max)
      GSIGHT_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    return take_locked(out, max);
  }

  /// Close the queue: pushes start failing and blocked consumers wake.
  /// Already queued items stay poppable so shutdown drains cleanly.
  void close() GSIGHT_EXCLUDES(mutex_) {
    {
      core::MutexLock lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const GSIGHT_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const GSIGHT_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t take_locked(std::vector<T>& out, std::size_t max)
      GSIGHT_REQUIRES(mutex_) {
    std::size_t taken = 0;
    while (taken < max && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
    }
    return taken;
  }

  const std::size_t capacity_;
  mutable core::Mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_ GSIGHT_GUARDED_BY(mutex_);
  bool closed_ GSIGHT_GUARDED_BY(mutex_) = false;
};

}  // namespace gsight::serve
