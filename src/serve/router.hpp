// Router — the request-routing front-end of serve::PredictionFleet. Two
// pluggable policies:
//
//   kConsistentHash — each active replica owns `vnodes_per_replica`
//     points on a 64-bit hash ring (SplitMix64-derived, so placement is a
//     pure function of (replica, vnode) — same fleet shape, same ring on
//     every run). A key routes to the first ring point at or clockwise of
//     its hash. Draining a replica removes only *its* points: keys owned
//     by the survivors never move, which is what makes drain/re-shard a
//     local disruption instead of a fleet-wide reshuffle.
//
//   kLeastQueued — route to the active replica with the shallowest
//     request queue (ties to the lowest replica id, so the choice is
//     deterministic given the depth vector).
//
// The router is a plain data structure with no internal synchronization:
// PredictionFleet guards it with its routing mutex (activation flips and
// route lookups must be atomic with respect to each other anyway).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gsight::serve {

enum class RouterPolicy {
  kConsistentHash,
  kLeastQueued,
};

/// Stable CLI/report name: "hash" or "least".
const char* router_policy_name(RouterPolicy policy);
/// Inverse of router_policy_name; nullopt for unknown names.
std::optional<RouterPolicy> parse_router_policy(const std::string& name);

class Router {
 public:
  Router(RouterPolicy policy, std::size_t replicas,
         std::size_t vnodes_per_replica);

  RouterPolicy policy() const { return policy_; }
  std::size_t replicas() const { return active_.size(); }

  /// Flip a replica in or out of the eligible set (drain / re-add).
  /// Idempotent; the hash ring is rebuilt from scratch, which keeps it a
  /// pure function of the active set.
  void set_active(std::size_t replica, bool active);
  bool active(std::size_t replica) const { return active_[replica]; }
  std::size_t active_count() const;

  /// Pick a replica for `key`. `queue_depths` is consulted only by
  /// kLeastQueued and must then cover every replica (inactive entries are
  /// ignored); kConsistentHash callers may pass an empty vector.
  /// nullopt when no replica is active.
  std::optional<std::size_t> route(
      std::uint64_t key, const std::vector<std::size_t>& queue_depths) const;

 private:
  void rebuild_ring();

  struct Point {
    std::uint64_t hash = 0;
    std::uint32_t replica = 0;
  };

  RouterPolicy policy_;
  std::size_t vnodes_;
  std::vector<bool> active_;
  std::vector<Point> ring_;  ///< sorted by (hash, replica); hash policy only
};

}  // namespace gsight::serve
