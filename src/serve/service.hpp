// PredictionService — the resident, online serving loop around Gsight's
// incremental forest. Production inference-stack shape: requests enter an
// admission-controlled bounded queue, worker threads coalesce them into
// micro-batches (configurable max size and batch-forming deadline) that
// hit the forest's batched fast path, and a background trainer folds
// observed (features, QoS) samples into the model and atomically
// publishes fresh versioned snapshots — predictions never block on
// training and never observe a half-built model.
//
// Two execution regimes share all of this code:
//
//   worker_threads > 0 — the real daemon. Workers and the background
//     trainer (fire-and-forget ml::ThreadPool::submit tasks) run
//     concurrently; time comes from SteadyClock.
//
//   worker_threads == 0 — synchronous mode. No threads are spawned; the
//     caller drives batching and training explicitly through poll(),
//     and time comes from a ManualClock. Same queue, same admission
//     control, same batch policy — but fully deterministic, which is
//     what makes the serve-bench twin-run determinism gate possible.
//
// Overload degrades gracefully instead of stretching latency: when the
// request queue is full, submit() fails immediately and the shed counter
// ticks (load shedding); the observation queue sheds the same way, since
// losing a training sample is always acceptable.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/lock.hpp"
#include "ml/incremental_forest.hpp"
#include "ml/matrix.hpp"
#include "ml/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/clock.hpp"
#include "serve/snapshot.hpp"

namespace gsight::serve {

struct ServiceConfig {
  /// Width of request feature vectors (required; submissions of any
  /// other width are rejected with std::invalid_argument).
  std::size_t feature_dim = 0;
  /// Request-queue bound: admission control. Full queue = shed.
  std::size_t queue_capacity = 1024;
  /// Micro-batch cap: at most this many requests per forest traversal.
  std::size_t max_batch = 32;
  /// Batch-forming deadline: how long a worker lingers for a batch to
  /// fill once its first request is in hand. 0 = serve immediately.
  std::chrono::nanoseconds batch_linger{50'000};
  /// Prediction workers. 0 selects synchronous mode (poll-driven).
  std::size_t worker_threads = 1;
  /// Observation-queue bound (training samples awaiting folding).
  std::size_t observe_capacity = 4096;
  /// Observations that trigger a background training round.
  std::size_t train_batch = 64;
  /// Cap on rows folded per round (bounds per-round latency).
  std::size_t max_train_drain = 1024;
  /// Time source; nullptr = SteadyClock in threaded mode, an internal
  /// ManualClock in synchronous mode.
  const Clock* clock = nullptr;

  /// Throws std::invalid_argument naming the first bad field (the
  /// ClusterSpec/GatewayConfig convention). The PredictionService ctor
  /// calls this, so a service can never exist with a bad config.
  void validate() const;
};

/// What a completed prediction reports back to its submitter.
struct PredictResult {
  double value = 0.0;
  std::uint64_t model_version = 0;
  std::uint64_t latency_ns = 0;   ///< completion - submission
  std::uint32_t batch_size = 0;   ///< size of the micro-batch it rode in
};

/// Counter snapshot (see export_metrics for the registry form).
struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t predicted = 0;
  std::uint64_t batches = 0;
  std::uint64_t observations = 0;
  std::uint64_t observations_shed = 0;
  std::uint64_t train_rounds = 0;
  std::uint64_t snapshot_swaps = 0;
  std::uint64_t model_version = 0;
  /// batch_size_counts[i] = micro-batches of size i + 1.
  std::vector<std::uint64_t> batch_size_counts;
};

class PredictionService {
 public:
  using Callback = std::function<void(const PredictResult&)>;

  /// Takes ownership of the serving model. If the model has already been
  /// trained (version > 0) its state is frozen and published as the
  /// initial snapshot; a cold model leaves the slot empty and
  /// predictions return 0 until the first training round publishes.
  PredictionService(ServiceConfig config, ml::IncrementalForest model);
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Spawn workers and the trainer (no-op in synchronous mode).
  void start();
  /// Close intake, drain queued work, join everything. Idempotent.
  void stop();

  /// Admission-controlled submit. False = shed (queue full or service
  /// stopping); the callback then never fires. On success the callback
  /// runs exactly once, on whichever thread completes the micro-batch
  /// (the caller's own thread in synchronous mode).
  bool submit(std::vector<double> features, Callback done);

  /// Blocking convenience for closed-loop clients (threaded mode only:
  /// in synchronous mode nothing else can poll while the caller waits).
  std::optional<PredictResult> predict_wait(std::vector<double> features);

  /// Feed one labelled observation toward the background trainer.
  /// False = shed (observation queue full or service stopping).
  bool observe(std::vector<double> features, double label);

  /// Synchronous mode: serve at most one micro-batch from the queue and,
  /// if enough observations have accumulated, fold them and publish.
  /// Returns the number of predictions served.
  std::size_t poll();

  /// Fold any queued observations into the model right now (caller
  /// thread) and publish if the model advanced. Returns true if a new
  /// snapshot was published.
  bool train_now();

  /// Current model snapshot (nullptr before the first publish). The
  /// direct read path for in-process batch consumers (ServingPredictor):
  /// scheduler sweeps are already batched, so they bypass the queue but
  /// still see only fully published, versioned models.
  std::shared_ptr<const ModelSnapshot> snapshot() const {
    return slot_.load();
  }

  /// External snapshot publish — the fleet path: PredictionFleet trains
  /// one central model and pushes frozen snapshots into every replica's
  /// slot. Same strict monotonicity as the internal trainer (stale or
  /// duplicate versions are rejected and reported false).
  bool publish(std::shared_ptr<const ModelSnapshot> next) {
    return slot_.publish(std::move(next));
  }

  /// Version of the serving snapshot (0 before the first publish); one
  /// leg of the fleet watermark.
  std::uint64_t snapshot_version() const { return slot_.version(); }

  /// Requests queued but not yet claimed by a batch — the least-queued
  /// router's load signal.
  std::size_t queue_depth() const { return requests_.size(); }

  /// Requests accepted but not yet answered (queued or mid-batch); the
  /// drain barrier waits for this to hit zero. Monotonic counters make
  /// the difference safe to read without a lock: it can transiently
  /// overshoot but reads exactly zero only when truly idle.
  std::uint64_t in_flight() const {
    const std::uint64_t done = predicted_.load(std::memory_order_acquire);
    const std::uint64_t in = accepted_.load(std::memory_order_acquire);
    return in >= done ? in - done : 0;
  }

  ServiceStats stats() const;
  /// Export counters + the batch-size histogram into a registry
  /// (single-threaded registry: call from one thread, normally after the
  /// run). Metric names are prefixed "serve.".
  void export_metrics(obs::MetricsRegistry& registry) const;

  const ServiceConfig& config() const { return config_; }
  // Not the C clock() call: an accessor for the injected time source.
  const Clock* clock() const { return clock_; }  // gsight-lint: allow(wall-clock)
  /// The internal manual clock (synchronous mode with no explicit clock
  /// configured); nullptr otherwise.
  ManualClock* manual_clock() { return own_clock_.get(); }

 private:
  struct Request {
    std::vector<double> features;
    std::uint64_t submit_ns = 0;
    Callback done;
  };
  struct Observation {
    std::vector<double> features;
    double label = 0.0;
  };
  /// Reused per-batch buffers: feature rows land in `xs`, predictions in
  /// `values`. A steady-state micro-batch allocates nothing — both keep
  /// their high-water capacity across batches.
  struct BatchScratch {
    explicit BatchScratch(std::size_t feature_dim) : xs(0, feature_dim) {}
    ml::Matrix xs;
    std::vector<double> values;
  };

  void worker_loop();
  /// Predict one micro-batch and deliver results. Returns batch size.
  /// `scratch` is worker-local (each worker_loop owns one); synchronous
  /// mode uses sync_scratch_.
  std::size_t process_batch(std::vector<Request>& batch,
                            BatchScratch& scratch);
  /// One training round: drain observations, partial_fit, publish.
  bool train_round() GSIGHT_EXCLUDES(train_mutex_);
  /// Fire-and-forget a training round if the threshold is crossed.
  void maybe_schedule_train() GSIGHT_EXCLUDES(lifecycle_mutex_);

  /// Fixed at construction (the ctor only reads it thereafter).
  const ServiceConfig config_;
  /// Both clock members are set once in the constructor and immutable
  /// for the service's lifetime; readers on any thread are safe.
  std::unique_ptr<ManualClock> own_clock_;  // gsight-analyze: allow(unguarded-member)
  const Clock* clock_ = nullptr;  // gsight-analyze: allow(unguarded-member)

  // Internally synchronized (each owns its own core::Mutex).
  BoundedQueue<Request> requests_;  // gsight-analyze: allow(unguarded-member)
  BoundedQueue<Observation> observations_;  // gsight-analyze: allow(unguarded-member)
  SnapshotSlot slot_;  // gsight-analyze: allow(unguarded-member)

  /// The training copy of the model.
  core::Mutex train_mutex_;
  ml::IncrementalForest model_ GSIGHT_GUARDED_BY(train_mutex_);

  /// Lifecycle: guards accepting_ flips and trainer-pool submission so
  /// stop() can fence out new training tasks before draining the pool.
  core::Mutex lifecycle_mutex_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> train_pending_{false};
  bool started_ GSIGHT_GUARDED_BY(lifecycle_mutex_) = false;
  bool stopped_ GSIGHT_GUARDED_BY(lifecycle_mutex_) = false;

  /// Mutated only by start() (under lifecycle_mutex_) and by the single
  /// stop() call that wins the stopped_ flip — the join loop runs outside
  /// the lock on purpose (joining under it would deadlock workers that
  /// take the lock), so these two cannot carry GSIGHT_GUARDED_BY.
  std::vector<std::thread> workers_;  // gsight-analyze: allow(unguarded-member)
  std::unique_ptr<ml::ThreadPool> trainer_pool_;  // gsight-analyze: allow(unguarded-member)

  /// Batch scratch for synchronous mode only: poll() is documented as
  /// single-caller (no threads exist in sync mode), so this needs no
  /// lock; threaded workers each carry their own scratch on the stack.
  BatchScratch sync_scratch_;  // gsight-analyze: allow(unguarded-member)

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> predicted_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> observed_{0};
  std::atomic<std::uint64_t> observed_shed_{0};
  std::atomic<std::uint64_t> train_rounds_{0};
  std::vector<std::atomic<std::uint64_t>> batch_size_counts_;
};

}  // namespace gsight::serve
