#include "serve/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "core/contracts.hpp"

namespace gsight::serve {

namespace {

constexpr double kNsPerSecond = 1e9;

/// Validate-then-return, so member initialisers never see a bad request.
FleetRequest validated(FleetRequest request) {
  request.validate();
  return request;
}

}  // namespace

void FleetRequest::validate() const {
  if (replicas == 0) {
    throw std::invalid_argument("FleetRequest: replicas must be non-zero");
  }
  if (vnodes_per_replica == 0) {
    throw std::invalid_argument(
        "FleetRequest: vnodes_per_replica must be non-zero");
  }
  service.validate();
  for (const auto& step : drains) {
    if (step.replica >= replicas) {
      throw std::invalid_argument(
          "FleetRequest: drains[].replica out of range");
    }
    if (step.readd_at != 0 && step.readd_at <= step.drain_at) {
      throw std::invalid_argument(
          "FleetRequest: drains[].readd_at must come after drain_at");
    }
  }
}

PredictionFleet::PredictionFleet(FleetRequest request,
                                 ml::IncrementalForest model)
    : request_(validated(std::move(request))),
      router_(request_.router, request_.replicas, request_.vnodes_per_replica),
      model_(std::move(model)),
      observations_(request_.service.observe_capacity),
      routed_(request_.replicas) {
  ServiceConfig sc = request_.service;
  if (sc.clock == nullptr && sc.worker_threads == 0) {
    // One ManualClock shared by every replica: the whole fleet lives on a
    // single virtual timeline, which is what twin-run identity needs.
    own_clock_ = std::make_unique<ManualClock>();
    sc.clock = own_clock_.get();
  }
  clock_ = sc.clock != nullptr ? sc.clock : &SteadyClock::instance();
  start_ns_ = clock_->now_ns();
  if (model_.version() > 0) latest_snap_ = ModelSnapshot::freeze(model_);
  replicas_.reserve(request_.replicas);
  for (std::size_t r = 0; r < request_.replicas; ++r) {
    // Replicas carry a cold internal model — their own trainer never runs
    // (the fleet trains centrally and publishes into their slots), so one
    // frozen snapshot is shared instead of copying the forest N times.
    auto svc = std::make_unique<PredictionService>(sc, ml::IncrementalForest());
    if (latest_snap_) svc->publish(latest_snap_);
    replicas_.push_back(std::move(svc));
  }
}

PredictionFleet::~PredictionFleet() { stop(); }

void PredictionFleet::start() {
  {
    core::MutexLock lock(lifecycle_mutex_);
    if (started_ || stopped_) return;
    started_ = true;
    if (request_.service.worker_threads > 0) {
      trainer_pool_ = std::make_unique<ml::ThreadPool>(1);
    }
  }
  for (auto& r : replicas_) r->start();
}

void PredictionFleet::stop() {
  {
    core::MutexLock lock(lifecycle_mutex_);
    if (stopped_) return;
    stopped_ = true;
    accepting_.store(false, std::memory_order_release);
  }
  // Close intake first; a queued training task still drains what is
  // already buffered (close keeps items poppable), then replicas finish
  // their own queues on stop().
  observations_.close();
  trainer_pool_.reset();
  for (auto& r : replicas_) r->stop();
}

std::optional<std::size_t> PredictionFleet::submit(std::uint64_t key,
                                                   std::vector<double> features,
                                                   Callback done) {
  if (!accepting_.load(std::memory_order_acquire)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::optional<std::size_t> target;
  {
    core::MutexLock lock(route_mutex_);
    if (router_.policy() == RouterPolicy::kLeastQueued) {
      std::vector<std::size_t> depths(replicas_.size(), 0);
      for (std::size_t r = 0; r < replicas_.size(); ++r) {
        if (router_.active(r)) depths[r] = replicas_[r]->queue_depth();
      }
      target = router_.route(key, depths);
    } else {
      target = router_.route(key, {});
    }
  }
  if (!target) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  // Wrap the callback so fleet-level conservation (submitted == completed
  // + shed) holds by construction: every accepted request ticks completed_
  // exactly once, on whichever thread serves its micro-batch.
  auto counted = [this, cb = std::move(done)](const PredictResult& r) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (cb) cb(r);
  };
  if (!replicas_[*target]->submit(std::move(features), std::move(counted))) {
    // Routed to a full queue: consistent hashing does not fail over — a
    // hot shard sheds, exactly like an overloaded single service.
    shed_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  routed_[*target].fetch_add(1, std::memory_order_relaxed);
  return target;
}

bool PredictionFleet::observe(std::vector<double> features, double label) {
  if (features.size() != request_.service.feature_dim) {
    throw std::invalid_argument(
        "PredictionFleet::observe: feature dimension mismatch");
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    observed_shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Sample sample;
  sample.features = std::move(features);
  sample.label = label;
  if (!observations_.try_push(std::move(sample))) {
    observed_shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  observed_.fetch_add(1, std::memory_order_relaxed);
  if (request_.service.worker_threads > 0) maybe_schedule_train();
  return true;
}

std::size_t PredictionFleet::poll() {
  std::size_t served = 0;
  // Draining replicas are polled too: a drained queue must still empty —
  // that is the "finish in-flight" half of the drain protocol.
  for (auto& r : replicas_) served += r->poll();
  if (observations_.size() >= request_.service.train_batch) train_round();
  return served;
}

std::size_t PredictionFleet::poll_replica(std::size_t replica) {
  GSIGHT_ASSERT(replica < replicas_.size(), "fleet replica out of range");
  const std::size_t served = replicas_[replica]->poll();
  if (observations_.size() >= request_.service.train_batch) train_round();
  return served;
}

bool PredictionFleet::train_now() { return train_round(); }

bool PredictionFleet::train_round() {
  std::shared_ptr<const ModelSnapshot> snap;
  {
    core::MutexLock lock(train_mutex_);
    std::vector<Sample> drained;
    observations_.try_pop_batch(drained, request_.service.max_train_drain);
    if (drained.empty()) return false;
    ml::Dataset batch(request_.service.feature_dim);
    for (const auto& s : drained) batch.add(s.features, s.label);
    model_.partial_fit(batch);
    train_rounds_.fetch_add(1, std::memory_order_relaxed);
    // Freeze under the training lock (the model cannot advance mid-copy).
    snap = ModelSnapshot::freeze(model_);
  }
  fan_out(std::move(snap));
  return true;
}

std::uint64_t PredictionFleet::fan_out(
    std::shared_ptr<const ModelSnapshot> snap) {
  const std::uint64_t version = snap->version;
  std::uint64_t wm = 0;
  {
    core::MutexLock lock(route_mutex_);
    if (!latest_snap_ || snap->version > latest_snap_->version) {
      latest_snap_ = snap;
    }
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      if (!router_.active(r)) continue;  // draining replicas go stale
      if (replicas_[r]->publish(snap)) {
        publishes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    wm = watermark_locked();
  }
  mark("fleet.publish", {{"version", std::to_string(version)},
                         {"watermark", std::to_string(wm)}});
  return wm;
}

void PredictionFleet::maybe_schedule_train() {
  if (observations_.size() < request_.service.train_batch) return;
  if (train_pending_.exchange(true, std::memory_order_acq_rel)) return;
  core::MutexLock lock(lifecycle_mutex_);
  if (!accepting_.load(std::memory_order_acquire) || !trainer_pool_) {
    train_pending_.store(false, std::memory_order_release);
    return;
  }
  trainer_pool_->submit([this] {
    train_round();
    train_pending_.store(false, std::memory_order_release);
    maybe_schedule_train();
  });
}

void PredictionFleet::drain(std::size_t replica) {
  GSIGHT_ASSERT(replica < replicas_.size(), "fleet replica out of range");
  bool flipped = false;
  {
    core::MutexLock lock(route_mutex_);
    if (router_.active(replica)) {
      GSIGHT_ASSERT(router_.active_count() > 1,
                    "cannot drain the last active replica");
      router_.set_active(replica, false);
      flipped = true;
    }
  }
  if (!flipped) return;  // already draining/drained
  drains_.fetch_add(1, std::memory_order_relaxed);
  mark("fleet.drain", {{"replica", std::to_string(replica)}});
  if (request_.service.worker_threads > 0) {
    // Finish in-flight: no new requests can route here (the ring already
    // re-sharded), so this strictly decreases to zero as workers drain.
    while (replicas_[replica]->in_flight() > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
  // Synchronous mode: the caller's subsequent polls empty the queue —
  // poll() serves draining replicas too.
}

void PredictionFleet::readd(std::size_t replica) {
  GSIGHT_ASSERT(replica < replicas_.size(), "fleet replica out of range");
  std::uint64_t wm = 0;
  {
    core::MutexLock lock(route_mutex_);
    if (router_.active(replica)) return;
    // Catch the replica up *before* it rejoins the ring: holding
    // route_mutex_ across publish + activate means no concurrent fan_out
    // can slip a newer version past this one, so the watermark — the min
    // over active replicas — never moves backwards on a re-add.
    if (latest_snap_ && replicas_[replica]->publish(latest_snap_)) {
      publishes_.fetch_add(1, std::memory_order_relaxed);
    }
    router_.set_active(replica, true);
    wm = watermark_locked();
  }
  readds_.fetch_add(1, std::memory_order_relaxed);
  mark("fleet.readd", {{"replica", std::to_string(replica)},
                       {"watermark", std::to_string(wm)}});
}

bool PredictionFleet::active(std::size_t replica) const {
  GSIGHT_ASSERT(replica < replicas_.size(), "fleet replica out of range");
  core::MutexLock lock(route_mutex_);
  return router_.active(replica);
}

std::uint64_t PredictionFleet::watermark() const {
  core::MutexLock lock(route_mutex_);
  return watermark_locked();
}

std::uint64_t PredictionFleet::watermark_locked() const {
  std::uint64_t wm = std::numeric_limits<std::uint64_t>::max();
  bool any = false;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (!router_.active(r)) continue;
    any = true;
    wm = std::min(wm, replicas_[r]->snapshot_version());
  }
  return any ? wm : 0;
}

FleetStats PredictionFleet::stats() const {
  FleetStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.observations = observed_.load(std::memory_order_relaxed);
  s.observations_shed = observed_shed_.load(std::memory_order_relaxed);
  s.train_rounds = train_rounds_.load(std::memory_order_relaxed);
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.drains = drains_.load(std::memory_order_relaxed);
  s.readds = readds_.load(std::memory_order_relaxed);
  core::MutexLock lock(route_mutex_);
  s.latest_version = latest_snap_ ? latest_snap_->version : 0;
  s.active_replicas = router_.active_count();
  s.watermark = watermark_locked();
  s.routed.reserve(replicas_.size());
  s.replica_versions.reserve(replicas_.size());
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    s.routed.push_back(routed_[r].load(std::memory_order_relaxed));
    const std::uint64_t version = replicas_[r]->snapshot_version();
    s.replica_versions.push_back(version);
    if (router_.active(r) && version < s.latest_version) ++s.stale_replicas;
  }
  return s;
}

void PredictionFleet::export_metrics(obs::MetricsRegistry& registry) const {
  const FleetStats s = stats();
  registry.counter("fleet.submitted").inc(static_cast<double>(s.submitted));
  registry.counter("fleet.completed").inc(static_cast<double>(s.completed));
  registry.counter("fleet.shed").inc(static_cast<double>(s.shed));
  registry.counter("fleet.observations")
      .inc(static_cast<double>(s.observations));
  registry.counter("fleet.observations_shed")
      .inc(static_cast<double>(s.observations_shed));
  registry.counter("fleet.train_rounds")
      .inc(static_cast<double>(s.train_rounds));
  registry.counter("fleet.publishes").inc(static_cast<double>(s.publishes));
  registry.counter("fleet.drains").inc(static_cast<double>(s.drains));
  registry.counter("fleet.readds").inc(static_cast<double>(s.readds));
  registry.gauge("fleet.latest_version")
      .set(static_cast<double>(s.latest_version));
  registry.gauge("fleet.watermark").set(static_cast<double>(s.watermark));
  registry.gauge("fleet.active_replicas")
      .set(static_cast<double>(s.active_replicas));
  registry.gauge("fleet.stale_replicas")
      .set(static_cast<double>(s.stale_replicas));
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    const obs::Labels labels = {{"replica", std::to_string(r)}};
    registry.counter("fleet.replica_routed", labels)
        .inc(static_cast<double>(s.routed[r]));
    registry.gauge("fleet.replica_version", labels)
        .set(static_cast<double>(s.replica_versions[r]));
    registry.gauge("fleet.replica_queue_depth", labels)
        .set(static_cast<double>(replicas_[r]->queue_depth()));
  }
}

void PredictionFleet::emit_live_metrics() {
  auto* sink = live_.load(std::memory_order_acquire);
  if (sink == nullptr) return;
  obs::MetricsRegistry registry;
  export_metrics(registry);
  sink->metric_deltas(now_s(), registry);
}

double PredictionFleet::now_s() const {
  const std::uint64_t now = clock_->now_ns();
  return now >= start_ns_
             ? static_cast<double>(now - start_ns_) / kNsPerSecond
             : 0.0;
}

void PredictionFleet::mark(
    const char* name, std::vector<std::pair<std::string, std::string>> args) {
  auto* sink = live_.load(std::memory_order_acquire);
  if (sink == nullptr) return;
  sink->mark(now_s(), name, args);
}

}  // namespace gsight::serve
