#include "stats/seed_stream.hpp"

namespace gsight::stats {

namespace {

/// SplitMix64 finaliser (Steele, Lea & Flood): bijective on 64-bit words
/// with full avalanche, the same mixer Rng::reseed uses for state setup.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t SeedStream::derive(std::uint64_t root, std::uint64_t index) {
  // Mix the root before folding in the index so low-entropy roots (0, 1,
  // 2...) do not produce correlated child lattices, then mix again so
  // consecutive indices land in unrelated regions of seed space.
  return mix(mix(root) ^ (index * 0xD1B54A32D192ED03ULL));
}

}  // namespace gsight::stats
