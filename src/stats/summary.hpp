// Descriptive statistics used throughout the simulator and benches:
// streaming mean/variance (Welford), percentile extraction, coefficient of
// variation, and a reservoir for bounded-memory tail-latency tracking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace gsight::stats {

/// Streaming mean / variance accumulator (Welford's algorithm).
class Running {
 public:
  void add(double x);
  void merge(const Running& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Coefficient of variation (stddev / |mean|); 0 when mean is 0.
  double cov() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set with linear interpolation between order
/// statistics (the "R-7" / NumPy default definition). `p` in [0, 100].
/// The input is copied; use `percentile_inplace` to avoid the copy.
double percentile(std::vector<double> values, double p);

/// As `percentile`, but reorders `values` in place (nth_element based).
double percentile_inplace(std::vector<double>& values, double p);

double mean(const std::vector<double>& values);
double variance(const std::vector<double>& values);
double stddev(const std::vector<double>& values);
/// Coefficient of variation of a sample set.
double cov(const std::vector<double>& values);
double median(std::vector<double> values);

/// Tail-latency digest of one sample set: count, mean, and the standard
/// reporting percentiles including the deep tail (p999 = 99.9th,
/// p9999 = 99.99th). All percentiles use the same R-7 interpolation as
/// percentile(); on small samples the deep-tail values interpolate
/// toward the maximum rather than clamping to it.
struct TailSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double p9999 = 0.0;
};

/// Digest of `values`; reorders the vector in place (nth_element based).
TailSummary tail_summary_inplace(std::vector<double>& values);
/// Copying variant.
TailSummary tail_summary(std::vector<double> values);

/// Fixed-capacity uniform reservoir sample (Vitter's Algorithm R). Keeps an
/// unbiased sample of an unbounded stream so long simulations can report
/// percentiles without storing every observation.
class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity, std::uint64_t seed = 42);

  void add(double x);
  std::size_t seen() const { return seen_; }
  std::size_t size() const { return data_.size(); }
  const std::vector<double>& data() const { return data_; }
  /// Percentile over the retained sample. Returns 0 when empty.
  double percentile(double p) const;
  /// Tail digest (p50/p90/p99/p999/p9999) over the retained sample.
  /// `count` is the retained size, not `seen()`.
  TailSummary tail_summary() const;
  double mean() const;

 private:
  std::size_t capacity_;
  std::size_t seen_ = 0;
  std::vector<double> data_;
  Rng rng_;
};

}  // namespace gsight::stats
