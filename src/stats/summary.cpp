#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace gsight::stats {

void Running::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Running::merge(const Running& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Running::reset() { *this = Running{}; }

double Running::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Running::stddev() const { return std::sqrt(variance()); }

double Running::cov() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / std::abs(m);
}

double percentile_inplace(std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  // A plain assert() here compiled out under NDEBUG, so an out-of-range p
  // silently computed an out-of-bounds rank in release builds. The runtime
  // contract survives every build mode (GSIGHT_CONTRACT_LEVEL >= 1).
  GSIGHT_ASSERT(p >= 0.0 && p <= 100.0, "percentile p outside [0, 100]");
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(lo),
                   values.end());
  const double vlo = values[lo];
  std::nth_element(values.begin() + static_cast<std::ptrdiff_t>(lo),
                   values.begin() + static_cast<std::ptrdiff_t>(hi), values.end());
  const double vhi = values[hi];
  const double frac = rank - static_cast<double>(lo);
  return vlo + frac * (vhi - vlo);
}

double percentile(std::vector<double> values, double p) {
  return percentile_inplace(values, p);
}

double mean(const std::vector<double>& values) {
  Running r;
  for (double v : values) r.add(v);
  return r.mean();
}

double variance(const std::vector<double>& values) {
  Running r;
  for (double v : values) r.add(v);
  return r.variance();
}

double stddev(const std::vector<double>& values) {
  return std::sqrt(variance(values));
}

double cov(const std::vector<double>& values) {
  Running r;
  for (double v : values) r.add(v);
  return r.cov();
}

double median(std::vector<double> values) {
  return percentile_inplace(values, 50.0);
}

TailSummary tail_summary_inplace(std::vector<double>& values) {
  TailSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.mean = mean(values);
  s.p50 = percentile_inplace(values, 50.0);
  s.p90 = percentile_inplace(values, 90.0);
  s.p99 = percentile_inplace(values, 99.0);
  s.p999 = percentile_inplace(values, 99.9);
  s.p9999 = percentile_inplace(values, 99.99);
  return s;
}

TailSummary tail_summary(std::vector<double> values) {
  return tail_summary_inplace(values);
}

Reservoir::Reservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  GSIGHT_ASSERT(capacity > 0, "reservoir capacity must be non-zero");
  data_.reserve(capacity);
}

void Reservoir::add(double x) {
  ++seen_;
  if (data_.size() < capacity_) {
    data_.push_back(x);
    return;
  }
  const std::uint64_t j = rng_.uniform_index(seen_);
  if (j < capacity_) data_[j] = x;
}

double Reservoir::percentile(double p) const {
  if (data_.empty()) return 0.0;
  return stats::percentile(data_, p);
}

TailSummary Reservoir::tail_summary() const {
  return stats::tail_summary(data_);
}

double Reservoir::mean() const { return stats::mean(data_); }

}  // namespace gsight::stats
