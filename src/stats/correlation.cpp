#include "stats/correlation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace gsight::stats {

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  std::vector<double> r(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && x[order[j + 1]] == x[order[i]]) ++j;
    // Average rank for the tie block [i, j] (1-based ranks).
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  return pearson(ranks(x), ranks(y));
}

}  // namespace gsight::stats
