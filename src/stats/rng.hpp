// Deterministic pseudo-random number generation for simulation and ML.
//
// We ship our own xoshiro256++ generator instead of std::mt19937 for two
// reasons: (1) reproducibility across standard-library implementations —
// std:: distributions are not bit-stable between libstdc++/libc++, and every
// experiment in this repository must replay exactly from a seed; (2) speed —
// the simulator draws per-invocation jitter on hot paths.
#pragma once

#include <cstdint>
#include <vector>

namespace gsight::stats {

/// xoshiro256++ PRNG (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator so it can feed std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed via SplitMix64, which
  /// guarantees a well-mixed nonzero state for any seed (including 0).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  std::uint64_t operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Marsaglia polar method.
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Log-normal such that the *median* of the result is `median` and the
  /// underlying normal has sigma `sigma`. Convenient for latency jitter.
  double lognormal_median(double median, double sigma);
  /// Exponential with the given rate (events per unit time). rate > 0.
  double exponential(double rate);
  /// Bernoulli trial.
  bool chance(double p);
  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean);

  /// Fisher-Yates shuffle of an index range [0, n) returned as a vector.
  std::vector<std::size_t> permutation(std::size_t n);
  /// k distinct indices sampled uniformly from [0, n) (partial shuffle).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);
  /// Same draw sequence and selection as the vector overload, but writes
  /// into `out` (resized to k) without allocating per call: hot loops
  /// (per-node feature sampling in tree training) reuse their buffer.
  void sample_without_replacement(std::size_t n, std::size_t k,
                                  std::vector<std::size_t>& out);

  /// Derive an independent child generator (for per-thread streams).
  Rng split();

  /// Full serialisable generator state: the four xoshiro words plus the
  /// cached Marsaglia spare. Persisting it (ml/forest_io) lets an
  /// incremental model resume mid-stream bit-identically to an
  /// uninterrupted run.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool have_spare_normal = false;
    double spare_normal = 0.0;
  };
  State state() const {
    return {{s_[0], s_[1], s_[2], s_[3]}, have_spare_normal_, spare_normal_};
  }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    have_spare_normal_ = st.have_spare_normal;
    spare_normal_ = st.spare_normal;
  }

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace gsight::stats
