// Pearson and Spearman correlation coefficients, used to reproduce Table 3
// (metric <-> performance correlation) and to drive Gsight's feature
// selection (metrics with |corr| < 0.1 are dropped, leaving 16 of 19).
#pragma once

#include <vector>

namespace gsight::stats {

/// Pearson product-moment correlation of two equally sized samples.
/// Returns 0 when either sample has zero variance or fewer than 2 points.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Spearman rank correlation (Pearson over mid-ranks; ties get the average
/// rank, so the coefficient is exact in the presence of ties).
double spearman(const std::vector<double>& x, const std::vector<double>& y);

/// Mid-ranks of a sample (1-based, ties averaged) — exposed for testing.
std::vector<double> ranks(const std::vector<double>& x);

}  // namespace gsight::stats
