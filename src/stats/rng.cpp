#include "stats/rng.hpp"

#include <cassert>
#include <cmath>
#include <utility>

namespace gsight::stats {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  have_spare_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless method would be overkill; rejection on the
  // top bits keeps the distribution exact.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : uniform_index(span));
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * mul;
  have_spare_normal_ = true;
  return u * mul;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_median(double median, double sigma) {
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::chance(double p) { return uniform() < p; }

std::uint64_t Rng::poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double x = normal(mean, std::sqrt(mean));
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

void Rng::sample_without_replacement(std::size_t n, std::size_t k,
                                     std::vector<std::size_t>& out) {
  assert(k <= n);
  // Scratch identity permutation shared across calls: the partial
  // Fisher-Yates records its swaps and reverts them afterwards, so
  // restoring the invariant costs O(k) instead of re-initialising O(n).
  thread_local std::vector<std::size_t> idx;
  thread_local std::vector<std::pair<std::size_t, std::size_t>> swaps;
  if (idx.size() < n) {
    const std::size_t old = idx.size();
    idx.resize(n);
    for (std::size_t i = old; i < n; ++i) idx[i] = i;
  }
  swaps.clear();
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    if (j != i) {
      std::swap(idx[i], idx[j]);
      swaps.emplace_back(i, j);
    }
  }
  out.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k));
  for (auto it = swaps.rbegin(); it != swaps.rend(); ++it) {
    std::swap(idx[it->first], idx[it->second]);
  }
}

Rng Rng::split() {
  Rng child;
  child.reseed(next() ^ 0xA5A5A5A55A5A5A5AULL);
  return child;
}

}  // namespace gsight::stats
