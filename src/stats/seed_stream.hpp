// SeedStream — the repo's single seed-derivation primitive. Every place
// that needs "the i-th independent random stream under root seed R"
// (parallel campaign tasks, per-trace generators, per-subsystem Rngs)
// derives it as SeedStream::derive(R, i) instead of ad-hoc arithmetic like
// `R + i` or `R ^ 0xBEEF`. Ad-hoc offsets are dangerous twice over: two
// sites that pick overlapping offsets silently share streams, and
// low-entropy roots (0, 1, 2...) keep their correlation through xor/add.
// derive() runs both operands through the SplitMix64 finaliser, so any
// (root, index) pair yields a well-mixed 64-bit seed and distinct pairs
// collide only at the 2^-64 birthday rate.
//
// Contract (DESIGN.md §9): a component that owns a root seed derives
//   * index streams with derive(root, i) for array-like children, and
//   * named sub-streams with derive(root, kTag) for fixed constants kTag,
// never reusing an index. Derivation is pure — safe to call concurrently
// and guaranteed identical between serial and parallel execution orders.
#pragma once

#include <cstdint>

namespace gsight::stats {

class SeedStream {
 public:
  explicit SeedStream(std::uint64_t root) : root_(root) {}

  std::uint64_t root() const { return root_; }

  /// The i-th child seed of this stream's root.
  std::uint64_t derive(std::uint64_t index) const {
    return derive(root_, index);
  }

  /// Pure SplitMix64-style derivation: mix(root) xor-folded with the
  /// index, mixed again. Stateless and order-independent.
  static std::uint64_t derive(std::uint64_t root, std::uint64_t index);

  /// Two-level derivation for tagged families of streams: the i-th child
  /// of the named sub-stream `tag` under `root`. Equivalent to
  /// derive(derive(root, tag), index); used where a component owns several
  /// *arrays* of streams (e.g. per-shard platform seeds vs per-shard load
  /// seeds) that must never collide across families.
  static std::uint64_t derive(std::uint64_t root, std::uint64_t tag,
                              std::uint64_t index) {
    return derive(derive(root, tag), index);
  }

 private:
  std::uint64_t root_;
};

}  // namespace gsight::stats
