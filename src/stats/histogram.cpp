#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/contracts.hpp"
#include "stats/summary.hpp"

namespace gsight::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  GSIGHT_ASSERT(std::isfinite(lo) && std::isfinite(hi) && hi > lo,
                "histogram range must be finite and non-empty");
  GSIGHT_ASSERT(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  // NaN/inf cannot be binned: casting the scaled position to an integer
  // would be undefined behaviour. Count them aside instead of clamping —
  // a NaN clamped into a bin would silently corrupt the distribution.
  if (!std::isfinite(x)) {
    ++nonfinite_;
    return;
  }
  const double t = (x - lo_) / (hi_ - lo_);
  const double pos =
      std::clamp(t * static_cast<double>(counts_.size()), 0.0,
                 static_cast<double>(counts_.size()) - 1.0);
  ++counts_[static_cast<std::size_t>(pos)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  std::size_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bin_high(i) <= x) {
      cum += counts_[i];
    } else {
      break;
    }
  }
  return static_cast<double>(cum) / static_cast<double>(total_);
}

std::string Histogram::ascii(std::size_t width) const {
  std::string out;
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) * static_cast<double>(width) /
                     static_cast<double>(peak)));
    std::snprintf(line, sizeof line, "%10.3f..%-10.3f %8zu |", bin_low(i),
                  bin_high(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> values,
                                                     std::size_t max_points) {
  std::vector<std::pair<double, double>> pts;
  if (values.empty()) return pts;
  if (max_points == 0) max_points = 1;  // n / 0 below otherwise
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += step) {
    pts.emplace_back(values[i],
                     static_cast<double>(i + 1) / static_cast<double>(n));
  }
  // Ensure the curve ends at (max, 1.0). Comparing values alone is wrong
  // when the maximum is duplicated: the last emitted point can carry the
  // max value with a fraction < 1, so patch the fraction in place.
  if (pts.back().first == values.back()) {  // gsight-lint: allow(simtime-eq)
    pts.back().second = 1.0;
  } else {
    pts.emplace_back(values.back(), 1.0);
  }
  return pts;
}

std::string distribution_summary(const std::vector<double>& values) {
  if (values.empty()) return "(empty)";
  std::vector<double> v = values;
  const double p25 = percentile_inplace(v, 25);
  const double p50 = percentile_inplace(v, 50);
  const double p75 = percentile_inplace(v, 75);
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "n=%zu min=%.4g p25=%.4g median=%.4g p75=%.4g max=%.4g "
                "mean=%.4g sd=%.4g",
                values.size(), *std::min_element(values.begin(), values.end()),
                p25, p50, p75, *std::max_element(values.begin(), values.end()),
                mean(values), stddev(values));
  return buf;
}

}  // namespace gsight::stats
