// Histogram and empirical-CDF helpers used by the scheduling benches
// (Figure 11 reports CDFs of function density and CPU/memory utilisation)
// and by the text-mode "violin" summaries of Figure 5.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gsight::stats {

/// Fixed-width histogram over [lo, hi); values outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Record a sample. Non-finite samples (NaN, ±inf would otherwise be UB
  /// in the bin cast) are tallied separately and excluded from the bins
  /// and the CDF denominator.
  void add(double x);
  std::size_t count() const { return total_; }
  /// Samples rejected by add() for being NaN or infinite.
  std::size_t nonfinite_count() const { return nonfinite_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;
  /// Fraction of mass at or below x (empirical CDF evaluated at bin edges).
  double cdf(double x) const;

  /// Render as rows of "lo..hi count bar" for bench output.
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nonfinite_ = 0;
};

/// Points of an empirical CDF: sorted (value, cumulative fraction) pairs
/// thinned to at most `max_points` entries.
std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> values,
                                                     std::size_t max_points = 64);

/// Five-number + moments summary line used as a textual "violin plot".
std::string distribution_summary(const std::vector<double>& values);

}  // namespace gsight::stats
