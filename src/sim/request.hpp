// RequestContext — executes one end-to-end request through an App's call
// graph: every function invocation is forwarded through the gateway,
// queued at an instance, executed under interference, and then fans out to
// its children (nested children gate the caller's completion; async
// children do not). End-to-end latency is the root node's completion time,
// so interference anywhere on the nested (critical) path stretches it
// while side-branch interference does not (Observation 2).
//
// Contexts are pooled. A serverless sim issues millions of requests, and
// the original shared_ptr design paid three heap allocations per request
// (the context's control block plus a shared completion callback each for
// stats and the user). RequestContext is now intrusively refcounted and
// recycled through a RequestPool: in steady state issuing a request
// performs no context allocation at all — the pool grows only to the
// high-water mark of concurrently in-flight requests. Stats recording
// moved from capturing lambdas to the RequestSink interface (implemented
// by Platform), so the completion path is a virtual call instead of a
// std::function pair.
//
// Lifetime rules: every callback a context hands to the gateway or an
// instance captures a RequestRef, so the context stays checked out until
// the last pending callback is destroyed (fired, or dropped by
// abort_executions / engine teardown). When the final ref dies the
// context returns to the free list — which is why the pool must outlive
// the engine and gateway (Platform declares it first, destroying it
// last).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/gateway.hpp"
#include "sim/instance.hpp"
#include "workloads/app.hpp"

namespace gsight::sim {

/// Resolves (app, fn) to the instance that should serve the next
/// invocation (round-robin across healthy replicas in the platform).
class Router {
 public:
  virtual ~Router() = default;
  /// May return nullptr when no replica exists; the request then fails.
  virtual Instance* route(std::size_t app, std::size_t fn) = 0;
  /// Clone-aware routing: pick a replica whose server is NOT one of
  /// exclude[0..n) — clones of one request must land on distinct servers
  /// or replication buys nothing. Returns nullptr when every replica's
  /// server is excluded (the extra clone is simply not dispatched). The
  /// default ignores the exclusion so single-replica test routers keep
  /// working.
  virtual Instance* route_clone(std::size_t app, std::size_t fn,
                                const Server* const* exclude, std::size_t n) {
    (void)exclude;
    (void)n;
    return route(app, fn);
  }
  /// One shared duration-jitter draw for a synchronized clone group
  /// (CloneConfig::Policy::kSynchronized). <= 0 means "draw per clone".
  virtual double clone_jitter(std::size_t app, std::size_t fn) {
    (void)app;
    (void)fn;
    return -1.0;
  }
};

/// What a context represents: an LS request (e2e latency) or an SC/BG
/// job run (JCT). Determines which AppStats series the sink records.
enum class RequestKind { kRequest, kJob };

/// Where completed work reports its measurements. Implemented by
/// Platform; replaces the per-request capturing lambdas so launching a
/// request allocates no callback state.
class RequestSink {
 public:
  virtual ~RequestSink() = default;
  /// Root completion: `ok` is false when routing failed mid-graph.
  virtual void on_request_done(std::size_t app, RequestKind kind,
                               double latency_s, bool ok) = 0;
  /// Every finished function invocation of every request.
  virtual void on_fn_done(std::size_t app, std::size_t fn,
                          const InvocationResult& result) = 0;
  /// A tracked request was retracted via RequestContext::cancel() before
  /// completing (cross-shard clone groups). No on_request_done follows.
  virtual void on_request_cancelled(std::size_t app, RequestKind kind) {
    (void)app;
    (void)kind;
  }
  /// Per-request clone accounting, reported at finish/cancel time when
  /// the request dispatched any clones: how many clone invocations were
  /// submitted and how many were retracted by cancel-on-first-complete.
  virtual void on_clone_accounting(std::size_t app, std::uint32_t dispatched,
                                   std::uint32_t cancelled) {
    (void)app;
    (void)dispatched;
    (void)cancelled;
  }
};

class RequestContext;
class RequestPool;

/// Intrusive refcounted handle to a pooled RequestContext. Copyable (the
/// gateway/instance callbacks that capture it must be, to live inside
/// std::function); the context returns to its pool when the last ref
/// dies. Single-threaded by design, like the engine it serves.
class RequestRef {
 public:
  RequestRef() = default;
  explicit RequestRef(RequestContext* ctx);
  RequestRef(const RequestRef& other);
  RequestRef(RequestRef&& other) noexcept;
  RequestRef& operator=(const RequestRef& other);
  RequestRef& operator=(RequestRef&& other) noexcept;
  ~RequestRef();

  RequestContext* operator->() const { return ctx_; }
  RequestContext& operator*() const { return *ctx_; }
  explicit operator bool() const { return ctx_ != nullptr; }

 private:
  RequestContext* ctx_ = nullptr;
};

class RequestContext {
 public:
  /// User callback for issue_request: (e2e latency, ok). Fires after the
  /// sink has recorded the completion.
  using DoneRequest = std::function<void(double e2e_latency_s, bool ok)>;
  /// User callback for submit_job: receives the JCT (even on failure,
  /// matching the original submit_job contract).
  using DoneJob = std::function<void(double jct_s)>;

  /// Kick off the request from its root function. The pool's RequestRef
  /// (plus the refs captured by pending callbacks) keeps the context
  /// checked out until every spawned invocation has finished.
  void launch();

  /// Retract the whole request: every live clone/invocation ticket is
  /// cancelled at its instance, the sink is told via
  /// on_request_cancelled, and neither on_request_done nor the user
  /// callback ever fires. Idempotent; returns false when the request
  /// already finished (or was already cancelled). Used by the sharded
  /// runtime to resolve cross-cell clone groups.
  bool cancel();

  bool finished() const { return finished_; }
  bool cancelled() const { return cancelled_; }

 private:
  friend class RequestPool;
  friend class RequestRef;

  explicit RequestContext(RequestPool* pool) : pool_(pool) {}

  /// Re-initialize a recycled context for its next request. Reuses the
  /// nodes_ buffer capacity across checkouts.
  void reset(const wl::App* app, std::size_t app_index, Engine* engine,
             Gateway* gateway, Router* router, RequestSink* sink,
             RequestKind kind, DoneRequest done_request, DoneJob done_job,
             obs::Tracer* tracer, std::uint64_t request_id);

  void add_ref() { ++refs_; }
  void release_ref();

  /// One dispatched clone of a node's invocation: where it went and the
  /// instance ticket that retracts it. Fixed-size storage inside
  /// NodeState so the cloning fast path allocates nothing.
  struct CloneSlot {
    Instance* instance = nullptr;
    std::uint64_t ticket = 0;  ///< 0 = empty / already resolved
  };

  struct NodeState {
    bool invoked = false;
    bool exec_done = false;
    bool completed = false;
    std::size_t pending_nested = 0;
    std::optional<std::size_t> parent;  ///< nested parent, if any
    // Cloning state. clones_expected is the fan-out d for this node
    // (1 = legacy single dispatch); clone_won latches on the first
    // completion so late siblings and stale deliveries drop.
    CloneSlot clones[kMaxCloneFactor];
    std::uint8_t clones_expected = 0;
    std::uint8_t clones_unroutable = 0;
    bool clone_won = false;
    double clone_jitter = -1.0;  ///< shared draw (synchronized policy)
  };

  void invoke(std::size_t node, std::optional<std::size_t> nested_parent);
  /// Gateway delivery of clone `c` of `node`: route (excluding sibling
  /// servers), submit, record the cancellation ticket.
  void deliver_clone(std::size_t node, std::size_t c, SimTime forwarded);
  /// First clone of `node` to complete: cancel the siblings, then run
  /// the normal completion path.
  void on_clone_done(std::size_t node, std::size_t c,
                     const InvocationResult& result);
  void on_exec_done(std::size_t node, const InvocationResult& result);
  void complete_node(std::size_t node);
  void finish(bool ok);

  RequestPool* pool_;
  std::uint32_t refs_ = 0;
  const wl::App* app_ = nullptr;
  std::size_t app_index_ = 0;
  Engine* engine_ = nullptr;
  Gateway* gateway_ = nullptr;
  Router* router_ = nullptr;
  RequestSink* sink_ = nullptr;
  RequestKind kind_ = RequestKind::kRequest;
  DoneRequest done_request_;
  DoneJob done_job_;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t request_id_ = 0;
  SimTime start_ = 0.0;
  std::vector<NodeState> nodes_;
  bool finished_ = false;
  bool cancelled_ = false;
  std::uint32_t clones_dispatched_ = 0;
  std::uint32_t clones_cancelled_ = 0;
};

/// LIFO free-list pool of RequestContexts. LIFO keeps the hottest
/// (cache-resident) context on top; `allocated()` is the high-water mark
/// of concurrent in-flight requests, which the pool ctest uses to prove
/// reuse actually happens.
class RequestPool {
 public:
  RequestPool() = default;
  RequestPool(const RequestPool&) = delete;
  RequestPool& operator=(const RequestPool&) = delete;

  /// Check out a context (recycled if available) initialized for one
  /// request. Exactly one of done_request / done_job is meaningful,
  /// selected by `kind`.
  RequestRef acquire(const wl::App* app, std::size_t app_index, Engine* engine,
                     Gateway* gateway, Router* router, RequestSink* sink,
                     RequestKind kind, RequestContext::DoneRequest done_request,
                     RequestContext::DoneJob done_job, obs::Tracer* tracer,
                     std::uint64_t request_id);

  /// Contexts ever created (pool high-water mark).
  std::size_t allocated() const { return owned_.size(); }
  /// Contexts currently on the free list (== allocated() when idle).
  std::size_t available() const { return free_.size(); }

 private:
  friend class RequestContext;
  void recycle(RequestContext* ctx);

  std::vector<std::unique_ptr<RequestContext>> owned_;
  std::vector<RequestContext*> free_;
};

}  // namespace gsight::sim
