// RequestContext — executes one end-to-end request through an App's call
// graph: every function invocation is forwarded through the gateway,
// queued at an instance, executed under interference, and then fans out to
// its children (nested children gate the caller's completion; async
// children do not). End-to-end latency is the root node's completion time,
// so interference anywhere on the nested (critical) path stretches it
// while side-branch interference does not (Observation 2).
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "sim/gateway.hpp"
#include "sim/instance.hpp"
#include "workloads/app.hpp"

namespace gsight::sim {

/// Resolves (app, fn) to the instance that should serve the next
/// invocation (round-robin across healthy replicas in the platform).
class Router {
 public:
  virtual ~Router() = default;
  /// May return nullptr when no replica exists; the request then fails.
  virtual Instance* route(std::size_t app, std::size_t fn) = 0;
};

class RequestContext : public std::enable_shared_from_this<RequestContext> {
 public:
  /// Called once, when the root completes (ok) or routing fails (not ok).
  using Completion = std::function<void(double e2e_latency_s, bool ok)>;
  /// Called for every finished function invocation of this request.
  using FnObserver = std::function<void(
      std::size_t fn, const InvocationResult& result)>;

  /// `tracer` (optional) receives the request's lifecycle spans; `request_id`
  /// correlates them across lanes (Platform hands out monotonic ids).
  RequestContext(const wl::App* app, std::size_t app_index, Engine* engine,
                 Gateway* gateway, Router* router, Completion on_complete,
                 FnObserver fn_observer = nullptr,
                 obs::Tracer* tracer = nullptr, std::uint64_t request_id = 0);

  /// Kick off the request from its root function. The context keeps itself
  /// alive via shared_from_this until every spawned invocation has
  /// finished.
  static void launch(const std::shared_ptr<RequestContext>& ctx);

 private:
  struct NodeState {
    bool invoked = false;
    bool exec_done = false;
    bool completed = false;
    std::size_t pending_nested = 0;
    std::optional<std::size_t> parent;  ///< nested parent, if any
  };

  void invoke(std::size_t node, std::optional<std::size_t> nested_parent);
  void on_exec_done(std::size_t node, const InvocationResult& result);
  void complete_node(std::size_t node);
  void finish(bool ok);

  const wl::App* app_;
  std::size_t app_index_;
  Engine* engine_;
  Gateway* gateway_;
  Router* router_;
  Completion on_complete_;
  FnObserver fn_observer_;
  obs::Tracer* tracer_;
  std::uint64_t request_id_;
  SimTime start_ = 0.0;
  std::vector<NodeState> nodes_;
  bool finished_ = false;
};

}  // namespace gsight::sim
