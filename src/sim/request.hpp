// RequestContext — executes one end-to-end request through an App's call
// graph: every function invocation is forwarded through the gateway,
// queued at an instance, executed under interference, and then fans out to
// its children (nested children gate the caller's completion; async
// children do not). End-to-end latency is the root node's completion time,
// so interference anywhere on the nested (critical) path stretches it
// while side-branch interference does not (Observation 2).
//
// Contexts are pooled. A serverless sim issues millions of requests, and
// the original shared_ptr design paid three heap allocations per request
// (the context's control block plus a shared completion callback each for
// stats and the user). RequestContext is now intrusively refcounted and
// recycled through a RequestPool: in steady state issuing a request
// performs no context allocation at all — the pool grows only to the
// high-water mark of concurrently in-flight requests. Stats recording
// moved from capturing lambdas to the RequestSink interface (implemented
// by Platform), so the completion path is a virtual call instead of a
// std::function pair.
//
// Lifetime rules: every callback a context hands to the gateway or an
// instance captures a RequestRef, so the context stays checked out until
// the last pending callback is destroyed (fired, or dropped by
// abort_executions / engine teardown). When the final ref dies the
// context returns to the free list — which is why the pool must outlive
// the engine and gateway (Platform declares it first, destroying it
// last).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/gateway.hpp"
#include "sim/instance.hpp"
#include "workloads/app.hpp"

namespace gsight::sim {

/// Resolves (app, fn) to the instance that should serve the next
/// invocation (round-robin across healthy replicas in the platform).
class Router {
 public:
  virtual ~Router() = default;
  /// May return nullptr when no replica exists; the request then fails.
  virtual Instance* route(std::size_t app, std::size_t fn) = 0;
};

/// What a context represents: an LS request (e2e latency) or an SC/BG
/// job run (JCT). Determines which AppStats series the sink records.
enum class RequestKind { kRequest, kJob };

/// Where completed work reports its measurements. Implemented by
/// Platform; replaces the per-request capturing lambdas so launching a
/// request allocates no callback state.
class RequestSink {
 public:
  virtual ~RequestSink() = default;
  /// Root completion: `ok` is false when routing failed mid-graph.
  virtual void on_request_done(std::size_t app, RequestKind kind,
                               double latency_s, bool ok) = 0;
  /// Every finished function invocation of every request.
  virtual void on_fn_done(std::size_t app, std::size_t fn,
                          const InvocationResult& result) = 0;
};

class RequestContext;
class RequestPool;

/// Intrusive refcounted handle to a pooled RequestContext. Copyable (the
/// gateway/instance callbacks that capture it must be, to live inside
/// std::function); the context returns to its pool when the last ref
/// dies. Single-threaded by design, like the engine it serves.
class RequestRef {
 public:
  RequestRef() = default;
  explicit RequestRef(RequestContext* ctx);
  RequestRef(const RequestRef& other);
  RequestRef(RequestRef&& other) noexcept;
  RequestRef& operator=(const RequestRef& other);
  RequestRef& operator=(RequestRef&& other) noexcept;
  ~RequestRef();

  RequestContext* operator->() const { return ctx_; }
  RequestContext& operator*() const { return *ctx_; }
  explicit operator bool() const { return ctx_ != nullptr; }

 private:
  RequestContext* ctx_ = nullptr;
};

class RequestContext {
 public:
  /// User callback for issue_request: (e2e latency, ok). Fires after the
  /// sink has recorded the completion.
  using DoneRequest = std::function<void(double e2e_latency_s, bool ok)>;
  /// User callback for submit_job: receives the JCT (even on failure,
  /// matching the original submit_job contract).
  using DoneJob = std::function<void(double jct_s)>;

  /// Kick off the request from its root function. The pool's RequestRef
  /// (plus the refs captured by pending callbacks) keeps the context
  /// checked out until every spawned invocation has finished.
  void launch();

 private:
  friend class RequestPool;
  friend class RequestRef;

  explicit RequestContext(RequestPool* pool) : pool_(pool) {}

  /// Re-initialize a recycled context for its next request. Reuses the
  /// nodes_ buffer capacity across checkouts.
  void reset(const wl::App* app, std::size_t app_index, Engine* engine,
             Gateway* gateway, Router* router, RequestSink* sink,
             RequestKind kind, DoneRequest done_request, DoneJob done_job,
             obs::Tracer* tracer, std::uint64_t request_id);

  void add_ref() { ++refs_; }
  void release_ref();

  struct NodeState {
    bool invoked = false;
    bool exec_done = false;
    bool completed = false;
    std::size_t pending_nested = 0;
    std::optional<std::size_t> parent;  ///< nested parent, if any
  };

  void invoke(std::size_t node, std::optional<std::size_t> nested_parent);
  void on_exec_done(std::size_t node, const InvocationResult& result);
  void complete_node(std::size_t node);
  void finish(bool ok);

  RequestPool* pool_;
  std::uint32_t refs_ = 0;
  const wl::App* app_ = nullptr;
  std::size_t app_index_ = 0;
  Engine* engine_ = nullptr;
  Gateway* gateway_ = nullptr;
  Router* router_ = nullptr;
  RequestSink* sink_ = nullptr;
  RequestKind kind_ = RequestKind::kRequest;
  DoneRequest done_request_;
  DoneJob done_job_;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t request_id_ = 0;
  SimTime start_ = 0.0;
  std::vector<NodeState> nodes_;
  bool finished_ = false;
};

/// LIFO free-list pool of RequestContexts. LIFO keeps the hottest
/// (cache-resident) context on top; `allocated()` is the high-water mark
/// of concurrent in-flight requests, which the pool ctest uses to prove
/// reuse actually happens.
class RequestPool {
 public:
  RequestPool() = default;
  RequestPool(const RequestPool&) = delete;
  RequestPool& operator=(const RequestPool&) = delete;

  /// Check out a context (recycled if available) initialized for one
  /// request. Exactly one of done_request / done_job is meaningful,
  /// selected by `kind`.
  RequestRef acquire(const wl::App* app, std::size_t app_index, Engine* engine,
                     Gateway* gateway, Router* router, RequestSink* sink,
                     RequestKind kind, RequestContext::DoneRequest done_request,
                     RequestContext::DoneJob done_job, obs::Tracer* tracer,
                     std::uint64_t request_id);

  /// Contexts ever created (pool high-water mark).
  std::size_t allocated() const { return owned_.size(); }
  /// Contexts currently on the free list (== allocated() when idle).
  std::size_t available() const { return free_.size(); }

 private:
  friend class RequestContext;
  void recycle(RequestContext* ctx);

  std::vector<std::unique_ptr<RequestContext>> owned_;
  std::vector<RequestContext*> free_;
};

}  // namespace gsight::sim
