#include "sim/cluster.hpp"

#include <cassert>

namespace gsight::sim {

Cluster::Cluster(Engine* engine, const InterferenceModel* model,
                 std::vector<ServerConfig> servers, ExecSliceSink* sink,
                 std::uint64_t seed)
    : engine_(engine), model_(model), sink_(sink), rng_(seed) {
  assert(!servers.empty());
  servers_.reserve(servers.size());
  for (std::size_t i = 0; i < servers.size(); ++i) {
    servers_.push_back(std::make_unique<Server>(i, servers[i], engine_, model_));
    servers_.back()->set_slice_sink(sink_);
  }
}

Instance* Cluster::create_instance(std::size_t app, std::size_t fn,
                                   const wl::FunctionSpec* spec,
                                   std::size_t server_idx,
                                   InstanceConfig config) {
  assert(server_idx < servers_.size());
  auto instance = std::make_unique<Instance>(
      next_instance_id_++, app, fn, spec, servers_[server_idx].get(), engine_,
      config, rng_.next());
  Instance* raw = instance.get();
  instances_.emplace(raw, std::move(instance));
  return raw;
}

bool Cluster::destroy_instance(Instance* instance) {
  const auto it = instances_.find(instance);
  if (it == instances_.end()) return false;
  if (!instance->idle()) return false;
  instances_.erase(it);
  return true;
}

std::size_t Cluster::total_backlog() const {
  std::size_t backlog = 0;
  for (const auto& [raw, inst] : instances_) {
    backlog += inst->queue_depth() + (inst->busy() ? 1 : 0);
  }
  return backlog;
}

std::vector<Instance*> Cluster::instances() const {
  std::vector<Instance*> out;
  out.reserve(instances_.size());
  for (const auto& [raw, inst] : instances_) out.push_back(raw);
  return out;
}

double Cluster::cpu_utilization() const {
  double sum = 0.0;
  for (const auto& s : servers_) sum += s->cpu_utilization();
  return sum / static_cast<double>(servers_.size());
}

double Cluster::memory_utilization() const {
  double used = 0.0, cap = 0.0;
  for (const auto& s : servers_) {
    used += s->resident_mem_gb();
    cap += s->config().mem_gb;
  }
  return cap > 0.0 ? used / cap : 0.0;
}

}  // namespace gsight::sim
