#include "sim/cluster.hpp"

#include "core/contracts.hpp"

namespace gsight::sim {

Cluster::Cluster(Engine* engine, const InterferenceModel* model,
                 std::vector<ServerConfig> servers, ExecSliceSink* sink,
                 std::uint64_t seed)
    : engine_(engine), model_(model), sink_(sink), rng_(seed) {
  GSIGHT_ASSERT(!servers.empty(), "cluster needs at least one server");
  servers_.reserve(servers.size());
  for (std::size_t i = 0; i < servers.size(); ++i) {
    servers_.push_back(std::make_unique<Server>(i, servers[i], engine_, model_));
    servers_.back()->set_slice_sink(sink_);
  }
}

Instance* Cluster::create_instance(std::size_t app, std::size_t fn,
                                   const wl::FunctionSpec* spec,
                                   std::size_t server_idx,
                                   InstanceConfig config) {
  GSIGHT_ASSERT(server_idx < servers_.size(), "instance placed off-cluster");
  const std::uint64_t id = next_instance_id_++;
  auto instance = std::make_unique<Instance>(
      id, app, fn, spec, servers_[server_idx].get(), engine_, config,
      rng_.next());
  Instance* raw = instance.get();
  instances_.emplace(id, std::move(instance));
  ++created_;
  GSIGHT_INVARIANT(created_ - destroyed_ == instances_.size(),
                   "instance accounting drifted");
  return raw;
}

bool Cluster::destroy_instance(Instance* instance) {
  GSIGHT_ASSERT(instance != nullptr, "destroy_instance(nullptr)");
  return destroy_instance(instance->id());
}

bool Cluster::destroy_instance(std::uint64_t id) {
  const auto it = instances_.find(id);
  if (it == instances_.end()) return false;
  if (!it->second->idle()) return false;
  instances_.erase(it);
  ++destroyed_;
  GSIGHT_INVARIANT(created_ - destroyed_ == instances_.size(),
                   "instance accounting drifted");
  return true;
}

void Cluster::set_tracer(obs::Tracer* tracer) {
  for (auto& s : servers_) s->set_tracer(tracer);
}

std::size_t Cluster::total_backlog() const {
  std::size_t backlog = 0;
  for (const auto& [id, inst] : instances_) {
    backlog += inst->queue_depth() + (inst->busy() ? 1 : 0);
  }
  return backlog;
}

std::vector<Instance*> Cluster::instances() const {
  std::vector<Instance*> out;
  out.reserve(instances_.size());
  for (const auto& [id, inst] : instances_) out.push_back(inst.get());
  return out;
}

double Cluster::cpu_utilization() const {
  double sum = 0.0;
  for (const auto& s : servers_) sum += s->cpu_utilization();
  return sum / static_cast<double>(servers_.size());
}

double Cluster::memory_utilization() const {
  double used = 0.0, cap = 0.0;
  for (const auto& s : servers_) {
    used += s->resident_mem_gb();
    cap += s->config().mem_gb;
  }
  return cap > 0.0 ? used / cap : 0.0;
}

}  // namespace gsight::sim
