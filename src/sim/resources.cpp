#include "sim/resources.hpp"

#include <cmath>

namespace gsight::sim {

namespace {
// Release tolerance: acquire/release pairs sum floating-point amounts in
// different orders, so allow an epsilon before declaring non-conservation.
constexpr double kSlack = 1e-9;
}  // namespace

ResourceLedger::ResourceLedger(double capacity, Policy policy)
    : capacity_(capacity), policy_(policy) {
  GSIGHT_ASSERT(std::isfinite(capacity), "ledger capacity must be finite");
  GSIGHT_ASSERT(capacity >= 0.0, "ledger capacity must be non-negative");
}

bool ResourceLedger::can_acquire(double amount) const {
  return std::isfinite(amount) && amount >= 0.0 &&
         used_ + amount <= capacity_ + kSlack;
}

void ResourceLedger::acquire(double amount) {
  GSIGHT_ASSERT(std::isfinite(amount), "acquire amount must be finite");
  GSIGHT_ASSERT(amount >= 0.0, "acquire amount must be non-negative");
  if (policy_ == Policy::kStrict) {
    GSIGHT_ASSERT(used_ + amount <= capacity_ + kSlack,
                  "allocation exceeds capacity");
  }
  used_ += amount;
}

void ResourceLedger::release(double amount) {
  GSIGHT_ASSERT(std::isfinite(amount), "release amount must be finite");
  GSIGHT_ASSERT(amount >= 0.0, "release amount must be non-negative");
  GSIGHT_ASSERT(used_ - amount >= -kSlack,
                "release drives allocation negative");
  used_ = std::max(0.0, used_ - amount);
}

}  // namespace gsight::sim
