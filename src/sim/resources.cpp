#include "sim/resources.hpp"

// ServerConfig is all-inline; this translation unit anchors the header so
// the library has a home for future out-of-line additions.
namespace gsight::sim {}
