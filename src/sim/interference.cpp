#include "sim/interference.hpp"

#include <algorithm>
#include <cmath>

namespace gsight::sim {

namespace {

// Queueing-style latency factor for a shared channel, driven by the
// *corunners'* utilisation: factor = 1 + u_others / (1 - u_total). A solo
// run sees exactly 1 regardless of its own demand, and growing the
// channel capacity monotonically shrinks the factor (for moderate loads
// this is algebraically identical to the classic (1-u_own)/(1-u_total)
// form, but it has no artifact when one tenant alone saturates the
// channel).
double channel_factor(double own, double total, double capacity, double cap_u) {
  if (capacity <= 0.0) return 1.0;
  const double u_total = std::min(total / capacity, cap_u);
  const double u_others = std::min(std::max(total - own, 0.0) / capacity, cap_u);
  return 1.0 + u_others / (1.0 - u_total);
}

}  // namespace

std::vector<ExecObservation> InterferenceModel::evaluate(
    const ServerConfig& server,
    std::span<const wl::Phase* const> phases) const {
  std::vector<ExecObservation> out(phases.size());

  DemandTotals totals;
  std::size_t active = 0;
  for (const auto* p : phases) {
    if (p == nullptr) continue;
    totals.add(p->demand);
    ++active;
  }
  if (active == 0) return out;

  // CPU: time-slicing once demanded cores exceed the node.
  const double cpu_factor = std::max(1.0, totals.cores / server.cores);
  // LLC: proportional shares capped at capacity.
  const bool llc_over = totals.llc_mb > server.llc_mb;
  // Memory overcommit -> swapping penalty shared by everyone.
  const double overcommit_gb = std::max(0.0, totals.mem_gb - server.mem_gb);
  const double swap_factor =
      1.0 + params_.swap_penalty_per_gb * overcommit_gb;
  // Frequency droop with node-wide CPU pressure.
  const double pressure = std::min(1.0, totals.cores / server.cores);
  const double freq = server.base_freq_ghz * (1.0 - params_.freq_droop * pressure);

  for (std::size_t i = 0; i < phases.size(); ++i) {
    const auto* p = phases[i];
    if (p == nullptr) continue;
    const auto& d = p->demand;
    const auto& u = p->uarch;
    ExecObservation& ob = out[i];

    // --- LLC share and induced extra misses -----------------------------
    const double occupancy =
        llc_over ? server.llc_mb * d.llc_mb / totals.llc_mb : d.llc_mb;
    const double miss_inflation =
        d.llc_mb > 0.0 ? (d.llc_mb - occupancy) / d.llc_mb : 0.0;
    // Requests that used to hit in L2/L3 now travel further.
    const double extra_l3 =
        params_.llc_spill_fraction * u.l2_mpki * miss_inflation;
    const double eff_l3 = u.l3_mpki + extra_l3;
    const double eff_l2 = u.l2_mpki * (1.0 + 0.8 * miss_inflation);

    // --- Memory bandwidth queueing ---------------------------------------
    const double bw_factor =
        channel_factor(d.membw_gbps, totals.membw_gbps, server.membw_gbps,
                       params_.max_utilization);

    // --- CPI composition --------------------------------------------------
    const double mlp = std::max(u.mem_lp, 1.0);
    const double cpi_solo = 1.0 / std::max(u.base_ipc, 1e-3);
    const double cpi_mem_solo =
        u.l3_mpki / 1000.0 * params_.mem_latency_cycles / mlp;
    const double cpi_extra_llc =
        extra_l3 / 1000.0 * params_.mem_latency_cycles / mlp * bw_factor;
    const double cpi_extra_bw = cpi_mem_solo * (bw_factor - 1.0);
    const double cpi_co = cpi_solo + cpi_extra_llc + cpi_extra_bw;
    ob.uarch_slowdown = cpi_co / cpi_solo;
    ob.ipc = u.base_ipc / ob.uarch_slowdown;

    // --- IO channels -------------------------------------------------------
    const double disk_factor =
        channel_factor(d.disk_mbps, totals.disk_mbps, server.disk_mbps,
                       params_.max_utilization);
    const double net_factor =
        channel_factor(d.net_mbps, totals.net_mbps, server.net_mbps,
                       params_.max_utilization);

    // --- Progress rate ------------------------------------------------------
    const double frac_other =
        std::max(0.0, 1.0 - d.frac_cpu - d.frac_disk - d.frac_net);
    const double denom = d.frac_cpu * cpu_factor * ob.uarch_slowdown +
                         d.frac_disk * disk_factor +
                         d.frac_net * net_factor + frac_other;
    ob.rate = 1.0 / std::max(denom, 1e-9) / swap_factor;
    ob.cpu_share = 1.0 / cpu_factor;

    // --- Synthetic counters --------------------------------------------------
    const double crowd = static_cast<double>(active - 1);
    ob.llc_occupancy_mb = occupancy;
    ob.l2_mpki = eff_l2;
    ob.l3_mpki = eff_l3;
    // Private caches and TLBs suffer mildly from time-slicing (warmup after
    // each context switch) — a small, crowd-dependent inflation.
    const double slice_pollution = 0.05 * (cpu_factor - 1.0) + 0.01 * crowd;
    ob.l1i_mpki = u.l1i_mpki * (1.0 + slice_pollution);
    ob.l1d_mpki = u.l1d_mpki * (1.0 + slice_pollution + 0.2 * miss_inflation);
    ob.branch_mpki = u.branch_mpki * (1.0 + 0.5 * slice_pollution);
    ob.dtlb_mpki = u.dtlb_mpki * (1.0 + slice_pollution + 0.3 * miss_inflation);
    ob.itlb_mpki = u.itlb_mpki * (1.0 + slice_pollution);
    ob.mem_lp = u.mem_lp;
    ob.ctx_per_s = params_.base_ctx_per_s * d.cores *
                   (cpu_factor * cpu_factor) * (1.0 + 0.3 * crowd);
    ob.cpu_freq_ghz = freq;
    // Achieved traffic scales with actual progress.
    ob.membw_gbps = d.membw_gbps * std::min(1.0, ob.rate * denom) / bw_factor;
    ob.disk_mbps = d.disk_mbps / disk_factor;
    ob.net_mbps = d.net_mbps / net_factor;
  }
  return out;
}

ExecObservation InterferenceModel::solo(const ServerConfig& server,
                                        const wl::Phase& p) const {
  const wl::Phase* ptr = &p;
  return evaluate(server, std::span<const wl::Phase* const>(&ptr, 1))[0];
}

}  // namespace gsight::sim
