#include "sim/autoscaler.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "obs/json.hpp"

namespace gsight::sim {

Autoscaler::Autoscaler(Platform* platform, AutoscalerConfig config,
                       PlacementFn place)
    : platform_(platform), config_(config), place_(std::move(place)) {
  GSIGHT_ASSERT(platform_ != nullptr);
  scale_out_counter_ = &platform_->metrics().counter("autoscaler.scale_outs");
  scale_in_counter_ = &platform_->metrics().counter("autoscaler.scale_ins");
}

void Autoscaler::start() {
  if (started_) return;
  started_ = true;
  platform_->engine().after(config_.tick_s, [this] { tick(); });
}

double Autoscaler::rate_estimate(std::size_t app) const {
  return app < rate_.size() ? rate_[app] : 0.0;
}

std::size_t Autoscaler::last_target(std::size_t app, std::size_t fn) const {
  if (app >= targets_.size() || fn >= targets_[app].size()) return 0;
  return targets_[app][fn];
}

void Autoscaler::tick() {
  const std::size_t apps = platform_->app_count();
  rate_.resize(apps, 0.0);
  targets_.resize(apps);
  for (std::size_t a = 0; a < apps; ++a) {
    const wl::App& app = platform_->app(a);
    targets_[a].resize(app.function_count(), 1);
    if (app.cls != wl::WorkloadClass::kLatencySensitive) continue;

    const double observed =
        static_cast<double>(platform_->drain_arrival_count(a)) /
        config_.tick_s;
    rate_[a] = config_.rate_alpha * observed +
               (1.0 - config_.rate_alpha) * rate_[a];

    for (std::size_t fn = 0; fn < app.function_count(); ++fn) {
      const std::size_t current = platform_->replicas(a, fn).size();
      // Replica-equivalents of demand over the last tick, from *measured*
      // busy time (so interference-stretched service is priced in) plus
      // the work already queued. Solo-rate formulas systematically
      // under-provision packed deployments.
      const double busy_now = platform_->recorder().busy_seconds(a, fn);
      auto& seen = busy_seen_[{a, fn}];
      const double busy_delta = std::max(0.0, busy_now - seen);
      seen = busy_now;
      const double queued = static_cast<double>(
          platform_->queued_invocations(a, fn));
      const double service = app.function(fn).solo_duration_s();
      const double demand =
          busy_delta / config_.tick_s + queued * service / config_.tick_s;
      auto desired = static_cast<std::size_t>(
          std::ceil(demand / config_.target_utilization));
      desired = std::clamp<std::size_t>(desired, 1, config_.max_replicas);
      targets_[a][fn] = desired;

      if (desired > current) {
        for (std::size_t i = current; i < desired; ++i) {
          const std::size_t server = place_ ? place_(a, fn) : 0;
          if (server == static_cast<std::size_t>(-1)) break;  // refused
          platform_->add_replica(a, fn, server);
          ++scale_outs_;
          scale_out_counter_->inc();
          obs::Tracer& tracer = platform_->tracer();
          if (tracer.enabled()) {
            tracer.instant(
                platform_->now(), "autoscaler.scale_out", "autoscaler",
                obs::Lanes::kPlatform, /*tid=*/0,
                {{"app", obs::json_number(static_cast<double>(a))},
                 {"fn", obs::json_number(static_cast<double>(fn))},
                 {"server", obs::json_number(static_cast<double>(server))}});
          }
        }
      } else if (desired < current) {
        // Hysteresis: only scale in after the lower target persists, and
        // only one replica at a time (each scale-out costs a cold start,
        // so churn is expensive).
        auto& below = below_ticks_[{a, fn}];
        if (++below >= config_.scale_in_patience) {
          if (platform_->remove_replica(a, fn, desired)) {
            ++scale_ins_;
            scale_in_counter_->inc();
            obs::Tracer& tracer = platform_->tracer();
            if (tracer.enabled()) {
              tracer.instant(
                  platform_->now(), "autoscaler.scale_in", "autoscaler",
                  obs::Lanes::kPlatform, /*tid=*/0,
                  {{"app", obs::json_number(static_cast<double>(a))},
                   {"fn", obs::json_number(static_cast<double>(fn))}});
            }
          }
        }
      } else {
        below_ticks_[{a, fn}] = 0;
      }
      if (desired >= current) below_ticks_[{a, fn}] = 0;
    }
  }
  platform_->engine().after(config_.tick_s, [this] { tick(); });
}

}  // namespace gsight::sim
