// FunctionInstance — one container replica of a function on a server.
// Serverless semantics: concurrency 1, FIFO queue, cold start on the first
// invocation after creation or after an idle expiry (§5.2 treats startup
// as an ordinary leading phase of the execution, which is exactly how it
// is modelled here).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/server.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace gsight::sim {

struct InvocationResult {
  double queue_wait_s = 0.0;
  double exec_s = 0.0;       ///< busy time including any cold start
  double local_latency_s = 0.0;  ///< queue_wait + exec
  double mean_ipc = 0.0;
  bool cold = false;
};

struct InstanceConfig {
  /// Idle seconds after which the instance goes cold again (Azure-style
  /// keep-alive). Infinite disables re-cooling.
  double idle_expiry_s = 1e18;
  /// Demands of the synthetic startup phase, scaled by the spec's
  /// cold_start_s. Startup is CPU+disk heavy (image pull, runtime boot).
  double startup_cores = 1.0;
  double startup_disk_mbps = 150.0;
};

class Instance {
 public:
  using DoneFn = std::function<void(const InvocationResult&)>;

  Instance(std::uint64_t id, std::size_t app, std::size_t fn,
           const wl::FunctionSpec* spec, Server* server, Engine* engine,
           InstanceConfig config, std::uint64_t seed);
  ~Instance();

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  std::uint64_t id() const { return id_; }
  std::size_t app_index() const { return app_; }
  std::size_t fn_index() const { return fn_; }
  const wl::FunctionSpec& spec() const { return *spec_; }
  Server& server() const { return *server_; }

  /// Enqueue one invocation; `done` fires at completion. Returns a
  /// cancellation ticket (see cancel()). When `jitter_override` > 0 the
  /// invocation runs with that duration multiplier instead of drawing
  /// one from the instance Rng — the gateway's synchronized-service
  /// cloning mode gives every sibling clone the same draw.
  std::uint64_t submit(DoneFn done, double jitter_override = -1.0);

  /// Retract a submitted invocation. A queued invocation is dropped
  /// (its DoneFn destroyed, releasing any captured refs); a running one
  /// has its server execution aborted and the next queued invocation
  /// starts. The DoneFn never fires and no latency/IPC sample is
  /// recorded. Returns false when the ticket already completed (or was
  /// already cancelled) — cancellation is idempotent.
  bool cancel(std::uint64_t ticket);

  std::size_t queue_depth() const { return queue_.size(); }
  bool busy() const { return busy_; }
  /// True once the instance has served its first invocation (and has
  /// not re-cooled past the idle expiry).
  bool warm() const { return warm_; }
  bool draining() const { return retiring_; }
  /// Mark the instance as retiring: the router stops sending it work and
  /// the owner (Platform's gc) destroys it once `idle()` — an instance
  /// cannot safely self-destruct mid-execution.
  void retire() { retiring_ = true; }
  bool idle() const { return !busy_ && queue_.empty(); }

  std::uint64_t invocations() const { return invocations_; }
  std::uint64_t cold_starts() const { return cold_starts_; }
  std::uint64_t cancellations() const { return cancellations_; }
  const stats::Reservoir& local_latencies() const { return latencies_; }
  const stats::Running& ipc_stats() const { return ipc_stats_; }

 private:
  struct Pending {
    SimTime enqueued = 0.0;
    DoneFn done;
    std::uint64_t ticket = 0;
    double jitter_override = -1.0;
  };

  void start_next();
  std::vector<wl::Phase> materialize_phases(bool cold, double jitter_override);

  std::uint64_t id_;
  std::size_t app_;
  std::size_t fn_;
  const wl::FunctionSpec* spec_;
  Server* server_;
  Engine* engine_;
  InstanceConfig config_;
  stats::Rng rng_;

  std::deque<Pending> queue_;
  bool busy_ = false;
  bool warm_ = false;
  bool retiring_ = false;
  SimTime last_finish_ = 0.0;
  ExecId current_exec_ = 0;
  std::uint64_t current_ticket_ = 0;  ///< 0 = nothing running
  std::uint64_t next_ticket_ = 1;

  std::uint64_t invocations_ = 0;
  std::uint64_t cold_starts_ = 0;
  std::uint64_t cancellations_ = 0;
  stats::Reservoir latencies_{4096};
  stats::Running ipc_stats_;
};

}  // namespace gsight::sim
