// gsight-analyze: hot-path
#include "sim/platform.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "stats/seed_stream.hpp"

namespace gsight::sim {

namespace {
/// Named sub-stream of the platform seed (DESIGN.md §9) feeding the
/// synchronized-clone jitter Rng.
constexpr std::uint64_t kCloneJitterTag = 0x434C4F4E4A495454ULL;  // CLONJITT
}  // namespace

std::vector<double> AppStats::e2e_values() const {
  std::vector<double> out;
  out.reserve(e2e.size());
  for (const auto& [t, l] : e2e) out.push_back(l);
  return out;
}

std::vector<double> AppStats::fn_latency_values(std::size_t fn) const {
  std::vector<double> out;
  const auto& src = fn_latency.at(fn);
  out.reserve(src.size());
  for (const auto& [t, l] : src) out.push_back(l);
  return out;
}

std::vector<double> AppStats::e2e_values_between(double t0, double t1) const {
  std::vector<double> out;
  for (const auto& [t, l] : e2e) {
    if (t >= t0 && t < t1) out.push_back(l);
  }
  return out;
}

Platform::Platform(PlatformConfig config)
    : config_(config),
      model_(config.interference),
      recorder_(config.metric_window_s),
      rng_(config.seed),
      clone_rng_(stats::SeedStream::derive(config.seed, kCloneJitterTag)) {
  config_.validate();
  std::vector<ServerConfig> servers(config_.servers, config_.server);
  cluster_ = std::make_unique<Cluster>(&engine_, &model_, servers, &recorder_,
                                       rng_.next());
  gateway_ = std::make_unique<Gateway>(&engine_, config_.gateway);
  gateway_->set_backend_backlog_source(
      [this] { return cluster_->total_backlog(); });
  gateway_->set_instance_count_source(
      [this] { return cluster_->total_instances(); });
  tracer_.set_sink(config_.trace_sink != nullptr
                       ? config_.trace_sink
                       : (config_.use_default_trace_sink
                              ? obs::default_trace_sink()
                              : nullptr));
  cluster_->set_tracer(&tracer_);
  gateway_->set_observability(
      &tracer_, &metrics_.counter("gateway.forwards"),
      &metrics_.histogram("gateway.forward_latency_s"));
}

Platform::~Platform() = default;

std::size_t Platform::deploy(const wl::App& app,
                             const std::vector<std::size_t>& fn_to_server) {
  app.validate();
  if (fn_to_server.size() != app.function_count()) {
    throw std::invalid_argument("deploy: placement size mismatch for " +
                                app.name);
  }
  auto deployed = std::make_unique<DeployedApp>();
  deployed->app = app;
  deployed->replicas.resize(app.function_count());
  deployed->rr.assign(app.function_count(), 0);
  deployed->stats.fn_latency.resize(app.function_count());
  deployed->stats.fn_ipc.resize(app.function_count());
  const std::size_t id = apps_.size();
  apps_.push_back(std::move(deployed));
  for (std::size_t fn = 0; fn < app.function_count(); ++fn) {
    add_replica(id, fn, fn_to_server[fn]);
  }
  return id;
}

std::vector<Instance*> Platform::replicas(std::size_t app,
                                          std::size_t fn) const {
  return apps_.at(app)->replicas.at(fn);
}

Instance* Platform::add_replica(std::size_t app, std::size_t fn,
                                std::size_t server_idx) {
  DeployedApp& d = *apps_.at(app);
  Instance* inst = cluster_->create_instance(
      app, fn, &d.app.function(fn), server_idx, config_.instance);
  d.replicas.at(fn).push_back(inst);
  // Pre-warm LS replicas (paper §5.2: cold starts can be hidden by
  // pre-warmed functions): the warm-up invocation pays the startup cost
  // off the request path; the router gates on warm().
  if (d.app.cls == wl::WorkloadClass::kLatencySensitive) {
    inst->submit([](const InvocationResult&) {});
  }
  return inst;
}

bool Platform::remove_replica(std::size_t app, std::size_t fn,
                              std::size_t min_keep) {
  DeployedApp& d = *apps_.at(app);
  auto& reps = d.replicas.at(fn);
  // Count replicas not already retiring.
  std::size_t live = 0;
  for (auto* r : reps) {
    if (!r->draining()) ++live;
  }
  if (live <= min_keep) return false;
  // Retire the most recently added live replica.
  for (auto it = reps.rbegin(); it != reps.rend(); ++it) {
    if (!(*it)->draining()) {
      (*it)->retire();
      retired_.push_back(*it);
      gc_retired();
      return true;
    }
  }
  return false;
}

void Platform::gc_retired() {
  for (auto it = retired_.begin(); it != retired_.end();) {
    Instance* inst = *it;
    if (inst->idle()) {
      // Unlink from the app's replica list, then destroy.
      auto& reps = apps_.at(inst->app_index())->replicas.at(inst->fn_index());
      reps.erase(std::remove(reps.begin(), reps.end(), inst), reps.end());
      cluster_->destroy_instance(inst);
      it = retired_.erase(it);
    } else {
      // Try again shortly; the instance is still draining.
      ++it;
    }
  }
  if (!retired_.empty()) {
    engine_.after(0.5, [this] { gc_retired(); });
  }
}

Instance* Platform::route(std::size_t app, std::size_t fn) {
  DeployedApp& d = *apps_.at(app);
  auto& reps = d.replicas.at(fn);
  if (reps.empty()) return nullptr;
  const std::size_t n = reps.size();
  // Prefer warm replicas (readiness gating): a replica still executing its
  // cold start should not receive live traffic — it is pre-warmed by
  // add_replica and joins the rotation once ready.
  Instance* cold_fallback = nullptr;
  for (std::size_t probe = 0; probe < n; ++probe) {
    Instance* inst = reps[d.rr[fn] % n];
    d.rr[fn] = (d.rr[fn] + 1) % n;
    if (inst->draining()) continue;
    if (inst->warm()) return inst;
    if (cold_fallback == nullptr) cold_fallback = inst;
  }
  if (cold_fallback != nullptr) return cold_fallback;
  return reps[0];  // all draining: deliver anyway rather than drop
}

Instance* Platform::route_clone(std::size_t app, std::size_t fn,
                                const Server* const* exclude, std::size_t n) {
  DeployedApp& d = *apps_.at(app);
  auto& reps = d.replicas.at(fn);
  if (reps.empty()) return nullptr;
  const std::size_t count = reps.size();
  const auto excluded = [exclude, n](const Instance* inst) {
    for (std::size_t i = 0; i < n; ++i) {
      if (exclude[i] == &inst->server()) return true;
    }
    return false;
  };
  // Same round-robin warm-preference probe as route(), sharing the
  // cursor, but replicas on excluded (sibling-clone) servers are skipped
  // and there is no all-draining fallback: a clone that cannot reach a
  // distinct server is surplus and simply not dispatched.
  Instance* cold_fallback = nullptr;
  for (std::size_t probe = 0; probe < count; ++probe) {
    Instance* inst = reps[d.rr[fn] % count];
    d.rr[fn] = (d.rr[fn] + 1) % count;
    if (inst->draining() || excluded(inst)) continue;
    if (inst->warm()) return inst;
    if (cold_fallback == nullptr) cold_fallback = inst;
  }
  return cold_fallback;
}

double Platform::clone_jitter(std::size_t app, std::size_t fn) {
  const wl::FunctionSpec& spec = apps_.at(app)->app.function(fn);
  return spec.jitter_sigma > 0.0
             ? clone_rng_.lognormal_median(1.0, spec.jitter_sigma)
             : 1.0;
}

void Platform::on_request_done(std::size_t app, RequestKind kind,
                               double latency_s, bool ok) {
  AppStats& stats = apps_.at(app)->stats;
  if (kind == RequestKind::kRequest) {
    if (ok) {
      stats.e2e.emplace_back(engine_.now(), latency_s);
    } else {
      ++stats.failed;
    }
  } else if (ok) {
    stats.jct.emplace_back(engine_.now(), latency_s);
  }
}

void Platform::on_fn_done(std::size_t app, std::size_t fn,
                          const InvocationResult& result) {
  AppStats& stats = apps_.at(app)->stats;
  stats.fn_latency[fn].emplace_back(engine_.now(), result.local_latency_s);
  stats.fn_ipc[fn].add(result.mean_ipc);
}

void Platform::on_request_cancelled(std::size_t app, RequestKind kind) {
  (void)kind;
  ++apps_.at(app)->stats.cancelled;
}

void Platform::on_clone_accounting(std::size_t app, std::uint32_t dispatched,
                                   std::uint32_t cancelled) {
  AppStats& stats = apps_.at(app)->stats;
  stats.clones_dispatched += dispatched;
  stats.clones_cancelled += cancelled;
}

void Platform::issue_request(std::size_t app,
                             std::function<void(double, bool)> on_done) {
  DeployedApp& d = *apps_.at(app);
  ++d.arrivals_since_drain;
  RequestRef ctx = request_pool_.acquire(
      &d.app, app, &engine_, gateway_.get(), this, this, RequestKind::kRequest,
      std::move(on_done), nullptr, &tracer_, next_request_id_++);
  ctx->launch();
}

std::uint64_t Platform::issue_tracked_request(
    std::size_t app, std::function<void(double, bool)> on_done) {
  DeployedApp& d = *apps_.at(app);
  ++d.arrivals_since_drain;
  const std::uint64_t handle = next_request_id_++;
  // The wrapper untracks on completion; cancel_request untracks on
  // retraction — either way the pool gets its context back.
  RequestRef ctx = request_pool_.acquire(
      &d.app, app, &engine_, gateway_.get(), this, this, RequestKind::kRequest,
      [this, handle, user = std::move(on_done)](double latency, bool ok) {
        tracked_.erase(handle);
        if (user) user(latency, ok);
      },
      nullptr, &tracer_, handle);
  tracked_.emplace(handle, ctx);
  ctx->launch();
  return handle;
}

bool Platform::cancel_request(std::uint64_t handle) {
  const auto it = tracked_.find(handle);
  if (it == tracked_.end()) return false;
  RequestRef ctx = it->second;  // keep the context alive across cancel()
  tracked_.erase(it);
  return ctx->cancel();
}

void Platform::submit_job(std::size_t app, std::function<void(double)> on_done) {
  DeployedApp& d = *apps_.at(app);
  RequestRef ctx = request_pool_.acquire(
      &d.app, app, &engine_, gateway_.get(), this, this, RequestKind::kJob,
      nullptr, std::move(on_done), &tracer_, next_request_id_++);
  ctx->launch();
}

std::size_t Platform::abort_executions(std::size_t app) {
  std::size_t aborted = 0;
  DeployedApp& d = *apps_.at(app);
  for (auto& reps : d.replicas) {
    for (Instance* inst : reps) {
      Server& server = inst->server();
      for (const ExecId id : server.executions_of(inst)) {
        if (server.abort_execution(id)) ++aborted;
      }
    }
  }
  return aborted;
}

void Platform::schedule_next_arrival(std::size_t app, double rate_cap,
                                     std::function<double(double)> rate,
                                     std::uint64_t generation) {
  // Thinned Poisson process: candidate arrivals at `rate_cap`, accepted
  // with probability rate(now)/rate_cap.
  const double gap = rng_.exponential(rate_cap);
  engine_.after(gap, [this, app, rate_cap, rate, generation] {
    DeployedApp& d = *apps_.at(app);
    if (d.load_generation != generation) return;  // load was changed
    const double r = rate(engine_.now());
    if (r > 0.0 && rng_.uniform() < r / rate_cap) issue_request(app);
    schedule_next_arrival(app, rate_cap, rate, generation);
  });
}

void Platform::set_open_loop(std::size_t app, double qps) {
  DeployedApp& d = *apps_.at(app);
  ++d.load_generation;
  if (qps <= 0.0) return;
  schedule_next_arrival(
      app, qps, [qps](double) { return qps; }, d.load_generation);
}

void Platform::set_rate_function(std::size_t app,
                                 std::function<double(double)> rate,
                                 double peak_rate) {
  DeployedApp& d = *apps_.at(app);
  ++d.load_generation;
  if (peak_rate <= 0.0) return;
  schedule_next_arrival(app, peak_rate, std::move(rate), d.load_generation);
}

std::uint64_t Platform::drain_arrival_count(std::size_t app) {
  DeployedApp& d = *apps_.at(app);
  const std::uint64_t n = d.arrivals_since_drain;
  d.arrivals_since_drain = 0;
  return n;
}

std::size_t Platform::queued_invocations(std::size_t app,
                                         std::size_t fn) const {
  std::size_t n = 0;
  for (const Instance* inst : apps_.at(app)->replicas.at(fn)) {
    n += inst->queue_depth() + (inst->busy() ? 1 : 0);
  }
  return n;
}

void Platform::refresh_metrics() {
  metrics_.gauge("engine.events")
      .set(static_cast<double>(engine_.events_executed()));
  metrics_.gauge("engine.sim_time_s").set(engine_.now());
  metrics_.gauge("cluster.instances")
      .set(static_cast<double>(cluster_->total_instances()));
  metrics_.gauge("cluster.instances_created")
      .set(static_cast<double>(cluster_->instances_created()));
  metrics_.gauge("cluster.instances_destroyed")
      .set(static_cast<double>(cluster_->instances_destroyed()));
  metrics_.gauge("cluster.backlog")
      .set(static_cast<double>(cluster_->total_backlog()));
  metrics_.gauge("cluster.function_density").set(function_density());
  metrics_.gauge("cluster.cpu_utilization").set(cluster_->cpu_utilization());
  metrics_.gauge("cluster.mem_utilization")
      .set(cluster_->memory_utilization());
  metrics_.gauge("gateway.queue_depth")
      .set(static_cast<double>(gateway_->queue_depth()));
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    const DeployedApp& d = *apps_[i];
    const obs::Labels labels{{"app", d.app.name}};
    metrics_.gauge("app.requests_ok", labels)
        .set(static_cast<double>(d.stats.e2e.size()));
    metrics_.gauge("app.requests_failed", labels)
        .set(static_cast<double>(d.stats.failed));
    metrics_.gauge("app.jobs_done", labels)
        .set(static_cast<double>(d.stats.jct.size()));
    metrics_.gauge("app.requests_cancelled", labels)
        .set(static_cast<double>(d.stats.cancelled));
    metrics_.gauge("app.clones_dispatched", labels)
        .set(static_cast<double>(d.stats.clones_dispatched));
    metrics_.gauge("app.clones_cancelled", labels)
        .set(static_cast<double>(d.stats.clones_cancelled));
  }
}

double Platform::function_density() const {
  // Instances per core of the *active* servers (those hosting at least one
  // instance): packing onto fewer servers raises density, which is the
  // §4 objective ("minimum number of active servers").
  double cores = 0.0;
  for (std::size_t i = 0; i < cluster_->size(); ++i) {
    if (cluster_->server(i).resident_count() > 0) {
      cores += cluster_->server(i).config().cores;
    }
  }
  return cores > 0.0
             ? static_cast<double>(cluster_->total_instances()) / cores
             : 0.0;
}

}  // namespace gsight::sim
