#include "sim/mailbox.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/contracts.hpp"

namespace gsight::sim {

void Outbox::post(std::size_t dest, SimTime sent_at, SimTime deliver_at,
                  std::function<void(Shard&)> apply) {
  GSIGHT_ASSERT(apply != nullptr, "mailbox message without an apply");
  GSIGHT_ASSERT(std::isfinite(deliver_at) && deliver_at >= sent_at,
                "mailbox message delivered before it was sent");
  ShardMessage msg;
  msg.epoch = epoch_;
  msg.source = source_;
  msg.seq = seq_++;
  msg.dest = dest;
  msg.sent_at = sent_at;
  msg.deliver_at = deliver_at;
  msg.apply = std::move(apply);
  pending_.push_back(std::move(msg));
}

std::vector<ShardMessage> Outbox::drain() {
  std::vector<ShardMessage> out;
  out.swap(pending_);
  return out;
}

Mailbox::Mailbox(std::size_t cells) {
  GSIGHT_ASSERT(cells > 0, "mailbox needs at least one cell");
  outboxes_.reserve(cells);
  for (std::size_t i = 0; i < cells; ++i) outboxes_.emplace_back(i);
}

void Mailbox::begin_epoch(std::uint64_t epoch) {
  for (auto& box : outboxes_) box.begin_epoch(epoch);
}

std::vector<ShardMessage> Mailbox::collect() {
  std::vector<ShardMessage> all;
  for (auto& box : outboxes_) {
    auto msgs = box.drain();
    all.insert(all.end(), std::make_move_iterator(msgs.begin()),
               std::make_move_iterator(msgs.end()));
  }
  // Outboxes are visited in cell order and each buffer is already
  // seq-ordered, but sort anyway: the replay order is a contract, not an
  // accident of iteration.
  std::stable_sort(all.begin(), all.end(),
                   [](const ShardMessage& a, const ShardMessage& b) {
                     return mailbox_order(a, b);
                   });
  exchanged_ += all.size();
  return all;
}

}  // namespace gsight::sim
