// InterferenceModel — the contention "physics" of a server. Given the set
// of phases currently executing on one node, it produces, for each
// execution: (a) the progress-rate multiplier (1.0 = solo speed) and
// (b) the synthetic system/microarchitecture counters a profiler would
// observe (effective IPC, MPKIs, context switches, frequency, occupancies).
//
// The model is a CPI decomposition:
//   cpi_co = cpi_solo
//          + Δ(L3 MPKI) · mem_latency / MLP            (LLC-share loss)
//          + cpi_mem_solo · (bw_factor − 1)            (bandwidth queueing)
// with CPU time-slicing when Σcores exceeds the node, and 1/(1−U) queueing
// factors on disk and NIC time fractions. Solo execution yields every
// factor = 1 by construction, so solo profiles are exact.
//
// This is where the paper's qualitative observations are grounded:
// network-bound corunners barely move IPC (Obs 1), cache/bandwidth-hungry
// phases are the sensitive windows (Obs 3), and memory overcommit models
// swapping cliffs the schedulers must avoid.
#pragma once

#include <span>
#include <vector>

#include "sim/resources.hpp"
#include "workloads/phase.hpp"

namespace gsight::sim {

struct InterferenceParams {
  double mem_latency_cycles = 200.0;  ///< DRAM round trip, cycles
  /// Fraction of lost-LLC hits that convert to L3 misses.
  double llc_spill_fraction = 0.6;
  /// Cap on any 1/(1-U) queueing factor (U clamped below 1). Real memory
  /// systems degrade more gracefully than an M/M/1 pole, so the clamp is
  /// deliberately conservative.
  double max_utilization = 0.90;
  /// Context switches per second for a solo single-thread function.
  double base_ctx_per_s = 120.0;
  /// Frequency droop at full-node utilisation (fraction of base clock).
  double freq_droop = 0.06;
  /// Progress-rate penalty factor applied per GB of memory overcommit
  /// (models swapping; schedulers must never trigger it).
  double swap_penalty_per_gb = 0.5;
};

/// Observable state of one execution under the current colocation.
struct ExecObservation {
  double rate = 1.0;          ///< phase progress per wall-clock second
  double ipc = 0.0;           ///< effective instructions per cycle
  double uarch_slowdown = 1.0;
  double cpu_share = 1.0;     ///< fraction of demanded cores actually granted
  double llc_occupancy_mb = 0.0;
  double l1i_mpki = 0.0, l1d_mpki = 0.0;
  double l2_mpki = 0.0, l3_mpki = 0.0;
  double branch_mpki = 0.0, dtlb_mpki = 0.0, itlb_mpki = 0.0;
  double mem_lp = 0.0;
  double ctx_per_s = 0.0;
  double cpu_freq_ghz = 0.0;
  double membw_gbps = 0.0;    ///< achieved memory traffic
  double disk_mbps = 0.0;     ///< achieved disk traffic
  double net_mbps = 0.0;      ///< achieved NIC traffic
};

class InterferenceModel {
 public:
  explicit InterferenceModel(InterferenceParams params = {})
      : params_(params) {}

  /// Evaluate all colocated phases on a node at once. `phases[i]` may be
  /// null for idle slots (skipped; result left default).
  std::vector<ExecObservation> evaluate(
      const ServerConfig& server,
      std::span<const wl::Phase* const> phases) const;

  /// Convenience: one execution alone on the node (must give rate == 1).
  ExecObservation solo(const ServerConfig& server, const wl::Phase& p) const;

  const InterferenceParams& params() const { return params_; }

 private:
  InterferenceParams params_;
};

}  // namespace gsight::sim
