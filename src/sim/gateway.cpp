#include "sim/gateway.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/contracts.hpp"

namespace gsight::sim {

namespace {

void require_finite_nonnegative(double value, const char* what) {
  if (!(std::isfinite(value) && value >= 0.0)) {
    throw std::invalid_argument(std::string("GatewayConfig: ") + what +
                                " must be finite and non-negative");
  }
}

}  // namespace

void CloneConfig::validate() const {
  if (factor < 1 || factor > kMaxCloneFactor) {
    throw std::invalid_argument(
        "CloneConfig: factor must be in [1, " +
        std::to_string(kMaxCloneFactor) + "], got " + std::to_string(factor));
  }
}

void GatewayConfig::validate() const {
  require_finite_nonnegative(base_service_s, "base_service_s");
  require_finite_nonnegative(backlog_coeff, "backlog_coeff");
  // The backlog multiplier is clamped to max_backlog_factor; a ceiling
  // below 1 would make load *reduce* the service time.
  if (!(std::isfinite(max_backlog_factor) && max_backlog_factor >= 1.0)) {
    throw std::invalid_argument(
        "GatewayConfig: max_backlog_factor must be finite and >= 1");
  }
  // instance_knee divides the instance count; zero or negative makes the
  // knee multiplier inf/NaN for any populated cluster.
  if (!(std::isfinite(instance_knee) && instance_knee > 0.0)) {
    throw std::invalid_argument(
        "GatewayConfig: instance_knee must be finite and positive");
  }
  require_finite_nonnegative(instance_exponent, "instance_exponent");
  clone.validate();
}

Gateway::Gateway(Engine* engine, GatewayConfig config)
    : engine_(engine), config_(config) {
  GSIGHT_ASSERT(engine_ != nullptr);
  config_.validate();
}

double Gateway::current_service_s() const {
  const double backlog =
      static_cast<double>(backend_backlog_ ? backend_backlog_() : 0);
  const double backlog_factor =
      std::min(1.0 + config_.backlog_coeff * backlog,
               config_.max_backlog_factor);
  const double instances =
      static_cast<double>(instance_count_ ? instance_count_() : 0);
  const double knee =
      1.0 + std::pow(instances / config_.instance_knee,
                     config_.instance_exponent);
  return config_.base_service_s * backlog_factor * knee;
}

void Gateway::forward(std::function<void()> deliver) {
  queue_.push_back({engine_->now(), std::move(deliver)});
  if (!busy_) serve_next();
  // Queue-length invariant: while the gateway is busy, the item in service
  // remains at the front, so the queue can never be observed empty.
  GSIGHT_INVARIANT(!busy_ || !queue_.empty(),
                   "gateway busy with an empty queue");
}

void Gateway::serve_next() {
  GSIGHT_ASSERT(!queue_.empty(), "serve_next on an empty gateway queue");
  busy_ = true;
  const double service = current_service_s();
  GSIGHT_INVARIANT(std::isfinite(service) && service >= 0.0,
                   "bad gateway service time");
  engine_->after(service, [this] {
    GSIGHT_ASSERT(busy_ && !queue_.empty(),
                  "gateway completion without an item in service");
    Item item = std::move(queue_.front());
    queue_.pop_front();
    const double latency = engine_->now() - item.enqueued;
    latencies_.add(latency);
    ++forwards_;
    if (forward_counter_ != nullptr) forward_counter_->inc();
    if (forward_hist_ != nullptr) forward_hist_->observe(latency);
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->complete(item.enqueued, latency, "gateway.forward", "gateway",
                        obs::Lanes::kPlatform, /*tid=*/0);
      tracer_->counter(
          engine_->now(), "gateway.queue_depth", obs::Lanes::kPlatform,
          {{"depth", obs::json_number(static_cast<double>(queue_.size()))}});
    }
    item.deliver();
    busy_ = false;
    if (!queue_.empty()) serve_next();
  });
}

}  // namespace gsight::sim
