#include "sim/gateway.hpp"

#include <cassert>
#include <cmath>

namespace gsight::sim {

Gateway::Gateway(Engine* engine, GatewayConfig config)
    : engine_(engine), config_(config) {
  assert(engine_ != nullptr);
}

double Gateway::current_service_s() const {
  const double backlog =
      static_cast<double>(backend_backlog_ ? backend_backlog_() : 0);
  const double backlog_factor =
      std::min(1.0 + config_.backlog_coeff * backlog,
               config_.max_backlog_factor);
  const double instances =
      static_cast<double>(instance_count_ ? instance_count_() : 0);
  const double knee =
      1.0 + std::pow(instances / config_.instance_knee,
                     config_.instance_exponent);
  return config_.base_service_s * backlog_factor * knee;
}

void Gateway::forward(std::function<void()> deliver) {
  queue_.push_back({engine_->now(), std::move(deliver)});
  if (!busy_) serve_next();
}

void Gateway::serve_next() {
  assert(!queue_.empty());
  busy_ = true;
  const double service = current_service_s();
  engine_->after(service, [this] {
    Item item = std::move(queue_.front());
    queue_.pop_front();
    latencies_.add(engine_->now() - item.enqueued);
    item.deliver();
    busy_ = false;
    if (!queue_.empty()) serve_next();
  });
}

}  // namespace gsight::sim
