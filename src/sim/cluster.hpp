// Cluster — the set of servers plus instance lifecycle management.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/instance.hpp"
#include "sim/server.hpp"
#include "stats/rng.hpp"

namespace gsight::sim {

class Cluster {
 public:
  Cluster(Engine* engine, const InterferenceModel* model,
          std::vector<ServerConfig> servers, ExecSliceSink* sink,
          std::uint64_t seed);

  std::size_t size() const { return servers_.size(); }
  Server& server(std::size_t i) { return *servers_.at(i); }
  const Server& server(std::size_t i) const { return *servers_.at(i); }

  /// Create one replica of (app, fn) on `server_idx`.
  Instance* create_instance(std::size_t app, std::size_t fn,
                            const wl::FunctionSpec* spec,
                            std::size_t server_idx, InstanceConfig config);
  /// Destroy an instance. Must be idle (no running or queued work);
  /// returns false (and leaves it alive) otherwise.
  bool destroy_instance(Instance* instance);

  std::size_t total_instances() const { return instances_.size(); }
  /// Sum of queued invocations across all instances (the gateway's
  /// backlog signal).
  std::size_t total_backlog() const;
  /// All live instances (unordered).
  std::vector<Instance*> instances() const;

  /// Cluster-wide CPU utilisation (mean over servers).
  double cpu_utilization() const;
  /// Cluster-wide memory utilisation from resident instances.
  double memory_utilization() const;

 private:
  Engine* engine_;
  const InterferenceModel* model_;
  ExecSliceSink* sink_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::unordered_map<Instance*, std::unique_ptr<Instance>> instances_;
  std::uint64_t next_instance_id_ = 1;
  stats::Rng rng_;
};

}  // namespace gsight::sim
