// Cluster — the set of servers plus instance lifecycle management.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "sim/instance.hpp"
#include "sim/server.hpp"
#include "stats/rng.hpp"

namespace gsight::sim {

class Cluster {
 public:
  Cluster(Engine* engine, const InterferenceModel* model,
          std::vector<ServerConfig> servers, ExecSliceSink* sink,
          std::uint64_t seed);

  std::size_t size() const { return servers_.size(); }
  Server& server(std::size_t i) { return *servers_.at(i); }
  const Server& server(std::size_t i) const { return *servers_.at(i); }

  /// Create one replica of (app, fn) on `server_idx`.
  Instance* create_instance(std::size_t app, std::size_t fn,
                            const wl::FunctionSpec* spec,
                            std::size_t server_idx, InstanceConfig config);
  /// Destroy an instance. Must be idle (no running or queued work);
  /// returns false (and leaves it alive) otherwise. The pointer must be a
  /// live instance of this cluster — pass the id instead when the instance
  /// may already be gone.
  bool destroy_instance(Instance* instance);
  /// Destroy by id; returns false when no such instance exists (safe for
  /// ids that may already have been destroyed).
  bool destroy_instance(std::uint64_t id);

  std::size_t total_instances() const { return instances_.size(); }
  /// Sum of queued invocations across all instances (the gateway's
  /// backlog signal).
  std::size_t total_backlog() const;
  /// All live instances, ordered by creation (instance id) so callers that
  /// iterate — schedulers, autoscalers, metric sweeps — are
  /// replay-deterministic.
  std::vector<Instance*> instances() const;
  /// Lifetime counters (instance-accounting invariant: created - destroyed
  /// == live).
  std::uint64_t instances_created() const { return created_; }
  std::uint64_t instances_destroyed() const { return destroyed_; }

  /// Observability: forwards the platform tracer to every server so
  /// completed executions land on per-server trace lanes.
  void set_tracer(obs::Tracer* tracer);

  /// Cluster-wide CPU utilisation (mean over servers).
  double cpu_utilization() const;
  /// Cluster-wide memory utilisation from resident instances.
  double memory_utilization() const;

 private:
  Engine* engine_;
  const InterferenceModel* model_;
  ExecSliceSink* sink_;
  std::vector<std::unique_ptr<Server>> servers_;
  // Keyed by the monotonically assigned instance id, *not* by pointer:
  // pointer-keyed unordered maps iterate in allocator-dependent order,
  // which silently breaks bit-exact replay (backlog sums and instance
  // sweeps would visit instances in address order).
  std::map<std::uint64_t, std::unique_ptr<Instance>> instances_;
  std::uint64_t next_instance_id_ = 1;
  std::uint64_t created_ = 0;
  std::uint64_t destroyed_ = 0;
  stats::Rng rng_;
};

}  // namespace gsight::sim
