#include "sim/recorder.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "sim/instance.hpp"

namespace gsight::sim {

void MetricAccum::add(double slice_dt, const ExecObservation& obs,
                      const wl::Phase& phase) {
  dt += slice_dt;
  ipc += slice_dt * obs.ipc;
  l1i_mpki += slice_dt * obs.l1i_mpki;
  l1d_mpki += slice_dt * obs.l1d_mpki;
  l2_mpki += slice_dt * obs.l2_mpki;
  l3_mpki += slice_dt * obs.l3_mpki;
  branch_mpki += slice_dt * obs.branch_mpki;
  dtlb_mpki += slice_dt * obs.dtlb_mpki;
  itlb_mpki += slice_dt * obs.itlb_mpki;
  mem_lp += slice_dt * obs.mem_lp;
  ctx_per_s += slice_dt * obs.ctx_per_s;
  cpu_freq_ghz += slice_dt * obs.cpu_freq_ghz;
  llc_occupancy_mb += slice_dt * obs.llc_occupancy_mb;
  membw_gbps += slice_dt * obs.membw_gbps;
  disk_mbps += slice_dt * obs.disk_mbps;
  net_mbps += slice_dt * obs.net_mbps;
  cores_granted += slice_dt * phase.demand.cores * obs.cpu_share;
  mem_gb += slice_dt * phase.demand.mem_gb;
  cpu_util += slice_dt * obs.cpu_share;
}

void MetricAccum::merge(const MetricAccum& other) {
  dt += other.dt;
  ipc += other.ipc;
  l1i_mpki += other.l1i_mpki;
  l1d_mpki += other.l1d_mpki;
  l2_mpki += other.l2_mpki;
  l3_mpki += other.l3_mpki;
  branch_mpki += other.branch_mpki;
  dtlb_mpki += other.dtlb_mpki;
  itlb_mpki += other.itlb_mpki;
  mem_lp += other.mem_lp;
  ctx_per_s += other.ctx_per_s;
  cpu_freq_ghz += other.cpu_freq_ghz;
  llc_occupancy_mb += other.llc_occupancy_mb;
  membw_gbps += other.membw_gbps;
  disk_mbps += other.disk_mbps;
  net_mbps += other.net_mbps;
  cores_granted += other.cores_granted;
  mem_gb += other.mem_gb;
  cpu_util += other.cpu_util;
}

MetricAccum MetricAccum::finalized() const {
  MetricAccum f;
  if (dt <= 0.0) return f;
  f = *this;
  const double inv = 1.0 / dt;
  f.ipc *= inv;
  f.l1i_mpki *= inv;
  f.l1d_mpki *= inv;
  f.l2_mpki *= inv;
  f.l3_mpki *= inv;
  f.branch_mpki *= inv;
  f.dtlb_mpki *= inv;
  f.itlb_mpki *= inv;
  f.mem_lp *= inv;
  f.ctx_per_s *= inv;
  f.cpu_freq_ghz *= inv;
  f.llc_occupancy_mb *= inv;
  f.membw_gbps *= inv;
  f.disk_mbps *= inv;
  f.net_mbps *= inv;
  f.cores_granted *= inv;
  f.mem_gb *= inv;
  f.cpu_util *= inv;
  f.dt = dt;
  return f;
}

void Recorder::on_exec_slice(void* owner, SimTime end, double dt,
                             const ExecObservation& obs,
                             const wl::Phase& phase) {
  if (owner == nullptr || dt <= 0.0) return;
  const auto* inst = static_cast<const Instance*>(owner);
  auto& windows = data_[{inst->app_index(), inst->fn_index()}];
  // Split the slice across window boundaries so long SC phases produce
  // per-second samples, exactly like a 1 Hz collector would see.
  double begin = end - dt;
  while (dt > 0.0) {
    const auto w = static_cast<std::int64_t>(std::floor(begin / window_s_));
    const double w_end = (static_cast<double>(w) + 1.0) * window_s_;
    const double piece = std::min(dt, w_end - begin);
    if (piece <= 0.0) break;  // numeric guard at exact boundaries
    windows[w].add(piece, obs, phase);
    begin += piece;
    dt -= piece;
  }
}

void Recorder::on_exec_aborted(void* owner, SimTime when) {
  (void)when;
  if (owner == nullptr) return;
  const auto* inst = static_cast<const Instance*>(owner);
  ++aborts_[{inst->app_index(), inst->fn_index()}];
}

std::uint64_t Recorder::aborts(std::size_t app, std::size_t fn) const {
  const auto it = aborts_.find({app, fn});
  return it == aborts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::int64_t, MetricAccum>> Recorder::windows(
    std::size_t app, std::size_t fn) const {
  std::vector<std::pair<std::int64_t, MetricAccum>> out;
  const auto it = data_.find({app, fn});
  if (it == data_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [w, acc] : it->second) out.emplace_back(w, acc.finalized());
  return out;
}

MetricAccum Recorder::total(std::size_t app, std::size_t fn) const {
  MetricAccum total;
  const auto it = data_.find({app, fn});
  if (it == data_.end()) return total;
  for (const auto& [w, acc] : it->second) total.merge(acc);
  return total.finalized();
}

namespace {

// Hex-float rendering: loss-free (every bit of the mantissa survives) and
// locale-independent, unlike iostream's default %g formatting.
void put_hex(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);
  os << buf;
}

}  // namespace

void Recorder::dump(std::ostream& os) const {
  for (const auto& [key, windows] : data_) {
    for (const auto& [w, acc] : windows) {
      os << key.first << '/' << key.second << '@' << w;
      const double fields[] = {
          acc.dt,          acc.ipc,        acc.l1i_mpki,  acc.l1d_mpki,
          acc.l2_mpki,     acc.l3_mpki,    acc.branch_mpki, acc.dtlb_mpki,
          acc.itlb_mpki,   acc.mem_lp,     acc.ctx_per_s, acc.cpu_freq_ghz,
          acc.llc_occupancy_mb, acc.membw_gbps, acc.disk_mbps, acc.net_mbps,
          acc.cores_granted, acc.mem_gb,   acc.cpu_util};
      for (const double f : fields) {
        os << ' ';
        put_hex(os, f);
      }
      os << '\n';
    }
  }
  // Abort counters append after the windows (absent entirely when no
  // execution was retracted, keeping legacy dumps byte-identical).
  for (const auto& [key, n] : aborts_) {
    os << "aborts " << key.first << '/' << key.second << ' ' << n << '\n';
  }
}

std::string Recorder::dump_string() const {
  std::ostringstream os;
  dump(os);
  return os.str();
}

double Recorder::busy_seconds(std::size_t app, std::size_t fn) const {
  const auto it = data_.find({app, fn});
  if (it == data_.end()) return 0.0;
  double dt = 0.0;
  for (const auto& [w, acc] : it->second) dt += acc.dt;
  return dt;
}

}  // namespace gsight::sim
