// ShardedEngine — the coordinator of a sharded simulation (DESIGN.md
// §13). It owns one Shard per cluster cell and advances them in lockstep
// epochs: every cell runs alone to the next barrier (cells spread over
// `topology.shards` executor lanes, each lane optionally on its own
// ml::ThreadPool thread), then the coordinator serially replays the
// epoch's cross-cell messages in (epoch, source, seq) order and opens the
// next epoch. Epoch length never exceeds the cross-cell hop latency, so a
// message posted in an epoch always takes effect after the barrier that
// closes it — no cell can ever observe another cell mid-epoch.
//
// Determinism: cell state is a function of (cell configs, root seed,
// message replay order) only. Lane assignment and thread count change
// which OS thread runs a cell, never what the cell computes — so runs
// with any `--shards N` and any thread count are byte-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/mailbox.hpp"
#include "sim/shard.hpp"

namespace gsight::ml {
class ThreadPool;
}  // namespace gsight::ml

namespace gsight::sim {

/// Cluster shape (per cell), topology, and root seed come from the
/// embedded ClusterSpec; the fields below are the sharded-run knobs.
struct ShardedEngineConfig : ClusterSpec {
  GatewayConfig gateway;
  InstanceConfig instance;
  double metric_window_s = 1.0;
  /// Worker threads for the lane executor. 1 runs every lane on the
  /// calling thread (serial); 0 selects hardware concurrency. The result
  /// is byte-identical either way.
  std::size_t threads = 1;
  /// Per-arrival probability of a cross-cell handoff.
  double remote_fraction = 0.05;
  /// Turn handoffs into cross-cell clone pairs (first completion cancels
  /// the sibling through the mailbox). See ShardConfig::clone_handoffs.
  bool clone_handoffs = false;
  /// Diurnal load shape driven on every cell (base_qps is per cell).
  wl::AzureTraceConfig trace;
};

class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedEngineConfig config);
  ~ShardedEngine();

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t lanes() const { return config_.topology.lanes(); }
  Shard& shard(std::size_t i) { return *shards_.at(i); }
  const ShardedEngineConfig& config() const { return config_; }

  /// Deploy the synthetic edge app on every cell and start each cell's
  /// diurnal load loop (the standard setup of the scaling bench and the
  /// determinism suite).
  void deploy_default_load();

  /// Advance every cell to `t` through lockstep epochs.
  void run_until(SimTime t);

  SimTime now() const { return now_; }
  std::uint64_t epochs_run() const { return epoch_; }
  /// Sum of events executed across all cells.
  std::uint64_t events_executed() const;
  std::uint64_t messages_exchanged() const {
    return mailbox_.messages_exchanged();
  }
  /// The run's mailbox. Cell code reaches its own outbox through the
  /// Shard; this accessor exists for components (and tests) that inject
  /// cross-cell effects from outside the standard load loop.
  Mailbox& mailbox() { return mailbox_; }

  /// Concatenated per-cell digests (cell order). The byte-identity
  /// artifact: equal strings iff the runs are bit-identical.
  std::string merged_digest() const;

  /// Snapshot per-cell gauges into this engine's registry with a
  /// {"shard": i} label on every sample, plus run-level totals.
  void refresh_metrics();
  obs::MetricsRegistry& metrics() { return metrics_; }

 private:
  void advance_lane(std::size_t lane, SimTime barrier);
  void exchange_at_barrier(SimTime barrier);

  ShardedEngineConfig config_;
  Mailbox mailbox_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ml::ThreadPool> pool_;  ///< null when threads == 1
  obs::MetricsRegistry metrics_;
  SimTime now_ = 0.0;
  std::uint64_t epoch_ = 0;
};

}  // namespace gsight::sim
