#include "sim/instance.hpp"

#include <memory>

#include "core/contracts.hpp"
#include "stats/seed_stream.hpp"

namespace gsight::sim {

namespace {
/// Named sub-stream of the instance's seed (DESIGN.md §9): the latency
/// reservoir must sample independently of the jitter Rng.
constexpr std::uint64_t kLatencyReservoirStream = 1;
}  // namespace

Instance::Instance(std::uint64_t id, std::size_t app, std::size_t fn,
                   const wl::FunctionSpec* spec, Server* server, Engine* engine,
                   InstanceConfig config, std::uint64_t seed)
    : id_(id),
      app_(app),
      fn_(fn),
      spec_(spec),
      server_(server),
      engine_(engine),
      config_(config),
      rng_(seed),
      latencies_(4096,
                 stats::SeedStream::derive(seed, kLatencyReservoirStream)) {
  server_->add_resident(spec_->mem_alloc_gb);
}

Instance::~Instance() { server_->remove_resident(spec_->mem_alloc_gb); }

std::vector<wl::Phase> Instance::materialize_phases(bool cold,
                                                    double jitter_override) {
  std::vector<wl::Phase> phases;
  phases.reserve(spec_->phases.size() + 1);
  if (cold && spec_->cold_start_s > 0.0) {
    wl::Phase startup;
    startup.name = "cold-start";
    startup.solo_duration_s = spec_->cold_start_s;
    startup.demand.cores = config_.startup_cores;
    startup.demand.disk_mbps = config_.startup_disk_mbps;
    startup.demand.llc_mb = 1.0;
    startup.demand.membw_gbps = 1.0;
    startup.demand.mem_gb = spec_->mem_alloc_gb;
    startup.demand.frac_cpu = 0.5;
    startup.demand.frac_disk = 0.4;
    startup.uarch.base_ipc = 1.0;
    phases.push_back(std::move(startup));
  }
  const double jitter =
      jitter_override > 0.0
          ? jitter_override
          : (spec_->jitter_sigma > 0.0
                 ? rng_.lognormal_median(1.0, spec_->jitter_sigma)
                 : 1.0);
  for (const auto& p : spec_->phases) {
    wl::Phase copy = p;
    copy.solo_duration_s *= jitter;
    copy.demand.mem_gb = std::max(copy.demand.mem_gb, spec_->mem_alloc_gb);
    phases.push_back(std::move(copy));
  }
  return phases;
}

std::uint64_t Instance::submit(DoneFn done, double jitter_override) {
  const std::uint64_t ticket = next_ticket_++;
  queue_.push_back({engine_->now(), std::move(done), ticket, jitter_override});
  if (!busy_) start_next();
  return ticket;
}

bool Instance::cancel(std::uint64_t ticket) {
  if (ticket == 0) return false;
  if (busy_ && ticket == current_ticket_) {
    // Abort the in-flight execution: the server erases the Exec (the
    // completion lambda — and the DoneFn it owns — is destroyed without
    // firing) and recomputes the survivors' rates.
    server_->abort_execution(current_exec_);
    busy_ = false;
    current_exec_ = 0;
    current_ticket_ = 0;
    last_finish_ = engine_->now();
    ++cancellations_;
    if (!queue_.empty()) start_next();
    return true;
  }
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->ticket == ticket) {
      queue_.erase(it);  // destroying Pending::done releases captured refs
      ++cancellations_;
      return true;
    }
  }
  return false;
}

void Instance::start_next() {
  GSIGHT_ASSERT(!busy_ && !queue_.empty(),
                "start_next needs an idle instance with queued work");
  busy_ = true;
  Pending pending = std::move(queue_.front());
  queue_.pop_front();

  const SimTime now = engine_->now();
  const bool cold =
      !warm_ || (now - last_finish_) > config_.idle_expiry_s;
  if (cold) ++cold_starts_;
  warm_ = true;
  ++invocations_;

  const double queue_wait = now - pending.enqueued;
  current_ticket_ = pending.ticket;
  auto done = std::make_shared<DoneFn>(std::move(pending.done));
  current_exec_ = server_->begin_execution(
      materialize_phases(cold, pending.jitter_override),
      [this, queue_wait, cold, done](const ExecResult& r) {
        InvocationResult inv;
        inv.queue_wait_s = queue_wait;
        inv.exec_s = r.duration_s;
        inv.local_latency_s = queue_wait + r.duration_s;
        inv.mean_ipc = r.mean_ipc;
        inv.cold = cold;
        latencies_.add(inv.local_latency_s);
        ipc_stats_.add(r.mean_ipc);
        busy_ = false;
        last_finish_ = engine_->now();
        current_exec_ = 0;
        current_ticket_ = 0;
        if (!queue_.empty()) start_next();
        if (*done) (*done)(inv);
      },
      /*owner=*/this);
}

}  // namespace gsight::sim
