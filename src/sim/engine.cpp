#include "sim/engine.hpp"

#include <cmath>

#include "core/contracts.hpp"

namespace gsight::sim {

void Engine::at(SimTime when, EventQueue::Callback cb) {
  GSIGHT_ASSERT(std::isfinite(when), "event time is not finite");
  GSIGHT_ASSERT(when >= now_, "event scheduled in the past");
  queue_.push(when, std::move(cb));
}

void Engine::after(SimTime delay, EventQueue::Callback cb) {
  GSIGHT_ASSERT(std::isfinite(delay), "event delay is not finite");
  GSIGHT_ASSERT(delay >= 0.0, "negative event delay");
  at(now_ + delay, std::move(cb));
}

std::size_t Engine::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto [when, cb] = queue_.pop();
    now_ = when;
    cb();
    ++executed;
    ++events_executed_;
  }
  now_ = std::max(now_, until);
  return executed;
}

std::size_t Engine::run_all() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    auto [when, cb] = queue_.pop();
    now_ = when;
    cb();
    ++executed;
    ++events_executed_;
  }
  return executed;
}

}  // namespace gsight::sim
