#include "sim/engine.hpp"

#include <cassert>
#include <limits>

namespace gsight::sim {

void Engine::at(SimTime when, EventQueue::Callback cb) {
  assert(when >= now_);
  queue_.push(when, std::move(cb));
}

void Engine::after(SimTime delay, EventQueue::Callback cb) {
  assert(delay >= 0.0);
  at(now_ + delay, std::move(cb));
}

std::size_t Engine::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto [when, cb] = queue_.pop();
    now_ = when;
    cb();
    ++executed;
  }
  now_ = std::max(now_, until);
  return executed;
}

std::size_t Engine::run_all() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    auto [when, cb] = queue_.pop();
    now_ = when;
    cb();
    ++executed;
  }
  return executed;
}

}  // namespace gsight::sim
