// Platform — the serverless platform facade: engine + cluster + gateway +
// recorder + deployed apps + load drivers. This is the simulated OpenFaaS:
// requests enter through the shared gateway, route round-robin across a
// function's replicas, execute under interference, and report QoS.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/cluster.hpp"
#include "sim/cluster_spec.hpp"
#include "sim/gateway.hpp"
#include "sim/recorder.hpp"
#include "sim/request.hpp"
#include "workloads/app.hpp"

namespace gsight::sim {

/// Cluster shape, seed and trace sink come from the embedded ClusterSpec
/// (validated in the Platform constructor); the fields below are the
/// platform-only knobs.
struct PlatformConfig : ClusterSpec {
  GatewayConfig gateway;
  InstanceConfig instance;
  double metric_window_s = 1.0;
};

/// Per-app QoS bookkeeping.
struct AppStats {
  /// (completion time, end-to-end latency) of every successful request.
  std::vector<std::pair<double, double>> e2e;
  std::uint64_t failed = 0;
  /// (completion time, local latency) per function.
  std::vector<std::vector<std::pair<double, double>>> fn_latency;
  /// Mean-IPC accumulator per function (invocation-weighted).
  std::vector<stats::Running> fn_ipc;
  /// Completed job JCTs (SC apps): (completion time, jct).
  std::vector<std::pair<double, double>> jct;
  /// Requests retracted via cancel_request before completing.
  std::uint64_t cancelled = 0;
  /// Clone invocations submitted / retracted by cancel-on-first-complete
  /// (zero unless the gateway's CloneConfig::factor > 1).
  std::uint64_t clones_dispatched = 0;
  std::uint64_t clones_cancelled = 0;

  std::vector<double> e2e_values() const;
  std::vector<double> fn_latency_values(std::size_t fn) const;
  /// e2e latencies completing within [t0, t1).
  std::vector<double> e2e_values_between(double t0, double t1) const;
};

class Platform final : public Router, public RequestSink {
 public:
  explicit Platform(PlatformConfig config = {});
  ~Platform() override;

  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }
  Cluster& cluster() { return *cluster_; }
  Gateway& gateway() { return *gateway_; }
  Recorder& recorder() { return recorder_; }
  const PlatformConfig& config() const { return config_; }

  // --- Observability ------------------------------------------------------
  /// The platform's span tracer; shared by the gateway, servers, scaler
  /// and request contexts. Swap sinks at any time (null disables).
  obs::Tracer& tracer() { return tracer_; }
  void set_trace_sink(obs::TraceSink* sink) { tracer_.set_sink(sink); }
  /// Live metrics registry. Counters/histograms update as the sim runs;
  /// gauges are snapshotted by refresh_metrics().
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// Update the gauge metrics (instances, density, utilisation, engine
  /// events, per-app request totals) from current platform state.
  void refresh_metrics();

  // --- Deployment --------------------------------------------------------
  /// Deploy an app with one replica of function i on fn_to_server[i].
  /// Returns the app handle used by every other call.
  std::size_t deploy(const wl::App& app,
                     const std::vector<std::size_t>& fn_to_server);
  std::size_t app_count() const { return apps_.size(); }
  const wl::App& app(std::size_t id) const { return apps_.at(id)->app; }
  /// Current replicas of one function.
  std::vector<Instance*> replicas(std::size_t app, std::size_t fn) const;
  Instance* add_replica(std::size_t app, std::size_t fn,
                        std::size_t server_idx);
  /// Retire one replica (prefers the most recently added). The instance is
  /// destroyed as soon as it drains. Keeps at least `min_keep` replicas.
  bool remove_replica(std::size_t app, std::size_t fn,
                      std::size_t min_keep = 1);

  // --- Load --------------------------------------------------------------
  /// Open-loop Poisson arrivals at `qps` toward the app's root function,
  /// starting now. qps <= 0 stops the loop.
  void set_open_loop(std::size_t app, double qps);
  /// Time-varying open loop: `rate(t)` is sampled at each arrival.
  void set_rate_function(std::size_t app, std::function<double(double)> rate,
                         double peak_rate);
  /// Issue a single request now. `on_done` (optional) fires with the
  /// end-to-end latency and success flag, after stats are recorded.
  void issue_request(std::size_t app,
                     std::function<void(double, bool)> on_done = {});
  /// Like issue_request, but returns a handle that can retract the
  /// request later (cross-shard clone groups). The handle stays valid —
  /// the platform holds a RequestRef — until the request completes or is
  /// cancelled.
  std::uint64_t issue_tracked_request(
      std::size_t app, std::function<void(double, bool)> on_done = {});
  /// Retract a tracked request: every in-flight invocation is cancelled
  /// at its instance and no completion is recorded (AppStats::cancelled
  /// counts it instead). Returns false when the handle is unknown or the
  /// request already completed — cancellation is idempotent.
  bool cancel_request(std::uint64_t handle);
  /// Run an SC/BG app once through its graph; on_done receives the JCT.
  void submit_job(std::size_t app, std::function<void(double)> on_done = {});
  /// Abort every running execution of the app (models migrating the
  /// workload off its servers — the "local control" of Observation 5).
  /// Pending completions never fire. Returns the number aborted.
  std::size_t abort_executions(std::size_t app);

  // --- Execution ---------------------------------------------------------
  void run_until(double t) { engine_.run_until(t); }
  double now() const { return engine_.now(); }

  // --- Introspection ------------------------------------------------------
  const AppStats& stats(std::size_t app) const { return apps_.at(app)->stats; }
  /// Arrivals to the app's root function since the last call (autoscaler
  /// rate signal).
  std::uint64_t drain_arrival_count(std::size_t app);
  /// Invocations currently queued (or running) across the replicas of one
  /// function — the autoscaler's backlog signal.
  std::size_t queued_invocations(std::size_t app, std::size_t fn) const;
  std::size_t total_instances() const { return cluster_->total_instances(); }
  /// Instances per core across the cluster ("function density", Fig. 11).
  double function_density() const;
  /// The context pool behind issue_request/submit_job; allocated() is the
  /// high-water mark of concurrent in-flight requests (the pool ctest
  /// asserts reuse by checking it stays far below total requests issued).
  const RequestPool& request_pool() const { return request_pool_; }

  // Router:
  Instance* route(std::size_t app, std::size_t fn) override;
  Instance* route_clone(std::size_t app, std::size_t fn,
                        const Server* const* exclude, std::size_t n) override;
  double clone_jitter(std::size_t app, std::size_t fn) override;

 private:
  // RequestSink (called by pooled RequestContexts; private because only
  // the contexts — via the base interface — should report through it):
  void on_request_done(std::size_t app, RequestKind kind, double latency_s,
                       bool ok) override;
  void on_fn_done(std::size_t app, std::size_t fn,
                  const InvocationResult& result) override;
  void on_request_cancelled(std::size_t app, RequestKind kind) override;
  void on_clone_accounting(std::size_t app, std::uint32_t dispatched,
                           std::uint32_t cancelled) override;
  struct DeployedApp {
    wl::App app;
    std::vector<std::vector<Instance*>> replicas;  // per fn
    std::vector<std::size_t> rr;                   // round-robin cursors
    AppStats stats;
    std::uint64_t load_generation = 0;  // bumping cancels the open loop
    std::uint64_t arrivals_since_drain = 0;
  };

  void schedule_next_arrival(std::size_t app, double rate_cap,
                             std::function<double(double)> rate,
                             std::uint64_t generation);
  void gc_retired();

  PlatformConfig config_;
  // Declared before the engine/cluster/gateway on purpose: pending engine
  // events and queued gateway forwards hold RequestRefs, and dropping the
  // last ref returns a context to this pool — so the pool must be
  // destroyed after every holder of refs (members destroy in reverse
  // declaration order).
  RequestPool request_pool_;
  Engine engine_;
  InterferenceModel model_;
  Recorder recorder_;
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  std::uint64_t next_request_id_ = 1;
  // Tracked (cancellable) requests by handle. Holds RequestRefs, so it
  // must be destroyed before request_pool_ (it is: reverse declaration
  // order). Ordered map: erase order feeds nothing, but iteration during
  // teardown must be deterministic.
  std::map<std::uint64_t, RequestRef> tracked_;
  // Instances (owned by the cluster) hold pointers into the deployed apps'
  // FunctionSpecs, so `apps_` must outlive `cluster_`: members below are
  // destroyed in reverse declaration order.
  std::vector<std::unique_ptr<DeployedApp>> apps_;
  std::vector<Instance*> retired_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Gateway> gateway_;
  stats::Rng rng_;
  /// Dedicated stream for synchronized-clone jitter draws so enabling
  /// cloning never perturbs the load RNG (rng_) sequence.
  stats::Rng clone_rng_;
};

}  // namespace gsight::sim
