// gsight-analyze: hot-path
#include "sim/request.hpp"

#include "core/contracts.hpp"
#include "obs/json.hpp"

namespace gsight::sim {

RequestRef::RequestRef(RequestContext* ctx) : ctx_(ctx) {
  if (ctx_ != nullptr) ctx_->add_ref();
}

RequestRef::RequestRef(const RequestRef& other) : ctx_(other.ctx_) {
  if (ctx_ != nullptr) ctx_->add_ref();
}

RequestRef::RequestRef(RequestRef&& other) noexcept : ctx_(other.ctx_) {
  other.ctx_ = nullptr;
}

RequestRef& RequestRef::operator=(const RequestRef& other) {
  if (this == &other) return *this;
  RequestContext* old = ctx_;
  ctx_ = other.ctx_;
  if (ctx_ != nullptr) ctx_->add_ref();
  if (old != nullptr) old->release_ref();
  return *this;
}

RequestRef& RequestRef::operator=(RequestRef&& other) noexcept {
  if (this == &other) return *this;
  RequestContext* old = ctx_;
  ctx_ = other.ctx_;
  other.ctx_ = nullptr;
  if (old != nullptr) old->release_ref();
  return *this;
}

RequestRef::~RequestRef() {
  if (ctx_ != nullptr) ctx_->release_ref();
}

void RequestContext::release_ref() {
  GSIGHT_ASSERT(refs_ > 0, "RequestContext over-released");
  if (--refs_ == 0) pool_->recycle(this);
}

void RequestContext::reset(const wl::App* app, std::size_t app_index,
                           Engine* engine, Gateway* gateway, Router* router,
                           RequestSink* sink, RequestKind kind,
                           DoneRequest done_request, DoneJob done_job,
                           obs::Tracer* tracer, std::uint64_t request_id) {
  app_ = app;
  app_index_ = app_index;
  engine_ = engine;
  gateway_ = gateway;
  router_ = router;
  sink_ = sink;
  kind_ = kind;
  done_request_ = std::move(done_request);
  done_job_ = std::move(done_job);
  tracer_ = tracer;
  request_id_ = request_id;
  start_ = 0.0;
  nodes_.assign(app->function_count(), NodeState{});
  finished_ = false;
}

void RequestContext::launch() {
  start_ = engine_->now();
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->async_begin(start_, "request", "request", request_id_,
                         {{"app", app_->name}});
  }
  invoke(app_->graph.root(), std::nullopt);
}

void RequestContext::invoke(std::size_t node,
                            std::optional<std::size_t> nested_parent) {
  GSIGHT_ASSERT(node < nodes_.size(), "invoked unknown call-graph node");
  NodeState& state = nodes_[node];
  GSIGHT_ASSERT(!state.invoked, "tree-structured call graphs only");
  state.invoked = true;
  state.parent = nested_parent;

  RequestRef self(this);
  const SimTime forwarded = engine_->now();
  gateway_->forward([self, node, forwarded] {
    const bool tracing =
        self->tracer_ != nullptr && self->tracer_->enabled();
    if (tracing) {
      // The gateway leg of this node: enqueue at the shared gateway until
      // delivery to a backend replica.
      self->tracer_->complete(
          forwarded, self->engine_->now() - forwarded, "request.gateway",
          "request", obs::Lanes::kRequests, self->request_id_,
          {{"fn", obs::json_number(static_cast<double>(node))}});
    }
    Instance* instance =
        self->router_->route(self->app_index_, node);
    if (instance == nullptr) {
      if (tracing) {
        self->tracer_->instant(self->engine_->now(), "request.drop", "request",
                               obs::Lanes::kRequests, self->request_id_);
      }
      self->finish(false);
      return;
    }
    if (tracing) {
      self->tracer_->instant(
          self->engine_->now(), "request.dispatch", "request",
          obs::Lanes::kRequests, self->request_id_,
          {{"fn", obs::json_number(static_cast<double>(node))},
           {"instance", obs::json_number(static_cast<double>(instance->id()))},
           {"server",
            obs::json_number(static_cast<double>(instance->server().id()))}});
    }
    instance->submit([self, node](const InvocationResult& r) {
      self->on_exec_done(node, r);
    });
  });
}

void RequestContext::on_exec_done(std::size_t node,
                                  const InvocationResult& result) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    const SimTime now = engine_->now();
    if (result.cold) {
      // The cold start is modelled as a leading phase of the execution;
      // mark its onset so traces show where startup cost lands.
      tracer_->instant(now - result.exec_s, "request.cold_start", "request",
                       obs::Lanes::kRequests, request_id_,
                       {{"fn", obs::json_number(static_cast<double>(node))}});
    }
    tracer_->complete(
        now - result.local_latency_s, result.local_latency_s, "request.exec",
        "request", obs::Lanes::kRequests, request_id_,
        {{"fn", obs::json_number(static_cast<double>(node))},
         {"queue_wait_s", obs::json_number(result.queue_wait_s)},
         {"exec_s", obs::json_number(result.exec_s)},
         {"ipc", obs::json_number(result.mean_ipc)},
         {"cold", result.cold ? "1" : "0"}});
  }
  sink_->on_fn_done(app_index_, node, result);
  NodeState& state = nodes_[node];
  state.exec_done = true;
  // Fan out to children now that this function returned its response.
  for (const auto& edge : app_->graph.children(node)) {
    if (edge.kind == wl::EdgeKind::kNested) ++state.pending_nested;
  }
  for (const auto& edge : app_->graph.children(node)) {
    invoke(edge.callee, edge.kind == wl::EdgeKind::kNested
                            ? std::optional<std::size_t>(node)
                            : std::nullopt);
  }
  if (state.pending_nested == 0) complete_node(node);
}

void RequestContext::complete_node(std::size_t node) {
  NodeState& state = nodes_[node];
  if (state.completed) return;
  state.completed = true;
  if (node == app_->graph.root()) {
    finish(true);
    return;
  }
  if (state.parent.has_value()) {
    NodeState& parent = nodes_[*state.parent];
    GSIGHT_ASSERT(parent.pending_nested > 0,
                  "nested completion without a pending child");
    if (--parent.pending_nested == 0 && parent.exec_done) {
      complete_node(*state.parent);
    }
  }
  // Async completions have no parent to notify.
}

void RequestContext::finish(bool ok) {
  if (finished_) return;
  finished_ = true;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->async_end(engine_->now(), "request", "request", request_id_,
                       {{"ok", ok ? "1" : "0"}});
  }
  const double elapsed = engine_->now() - start_;
  // Sink first (stats recorded), then the user callback — preserving the
  // "after stats are recorded" ordering issue_request documents.
  sink_->on_request_done(app_index_, kind_, elapsed, ok);
  if (kind_ == RequestKind::kRequest) {
    if (done_request_) done_request_(elapsed, ok);
  } else {
    if (done_job_) done_job_(elapsed);
  }
}

RequestRef RequestPool::acquire(const wl::App* app, std::size_t app_index,
                                Engine* engine, Gateway* gateway,
                                Router* router, RequestSink* sink,
                                RequestKind kind,
                                RequestContext::DoneRequest done_request,
                                RequestContext::DoneJob done_job,
                                obs::Tracer* tracer,
                                std::uint64_t request_id) {
  RequestContext* ctx = nullptr;
  if (!free_.empty()) {
    ctx = free_.back();
    free_.pop_back();
  } else {
    // The one legitimate allocation on the request path: growing the pool
    // to a new high-water mark of concurrently in-flight requests.
    owned_.emplace_back(new RequestContext(this));  // gsight-analyze: allow(hot-alloc)
    ctx = owned_.back().get();
  }
  ctx->reset(app, app_index, engine, gateway, router, sink, kind,
             std::move(done_request), std::move(done_job), tracer, request_id);
  return RequestRef(ctx);
}

void RequestPool::recycle(RequestContext* ctx) {
  // Drop captured user-callback state eagerly (same release point the
  // shared_ptr design had); the context's buffers keep their capacity.
  ctx->done_request_ = nullptr;
  ctx->done_job_ = nullptr;
  free_.push_back(ctx);
}

}  // namespace gsight::sim
