#include "sim/request.hpp"

#include "core/contracts.hpp"

namespace gsight::sim {

RequestContext::RequestContext(const wl::App* app, std::size_t app_index,
                               Engine* engine, Gateway* gateway, Router* router,
                               Completion on_complete, FnObserver fn_observer)
    : app_(app),
      app_index_(app_index),
      engine_(engine),
      gateway_(gateway),
      router_(router),
      on_complete_(std::move(on_complete)),
      fn_observer_(std::move(fn_observer)),
      nodes_(app->function_count()) {}

void RequestContext::launch(const std::shared_ptr<RequestContext>& ctx) {
  ctx->start_ = ctx->engine_->now();
  ctx->invoke(ctx->app_->graph.root(), std::nullopt);
}

void RequestContext::invoke(std::size_t node,
                            std::optional<std::size_t> nested_parent) {
  GSIGHT_ASSERT(node < nodes_.size(), "invoked unknown call-graph node");
  NodeState& state = nodes_[node];
  GSIGHT_ASSERT(!state.invoked, "tree-structured call graphs only");
  state.invoked = true;
  state.parent = nested_parent;

  auto self = shared_from_this();
  gateway_->forward([self, node] {
    Instance* instance =
        self->router_->route(self->app_index_, node);
    if (instance == nullptr) {
      self->finish(false);
      return;
    }
    instance->submit([self, node](const InvocationResult& r) {
      self->on_exec_done(node, r);
    });
  });
}

void RequestContext::on_exec_done(std::size_t node,
                                  const InvocationResult& result) {
  if (fn_observer_) fn_observer_(node, result);
  NodeState& state = nodes_[node];
  state.exec_done = true;
  // Fan out to children now that this function returned its response.
  for (const auto& edge : app_->graph.children(node)) {
    if (edge.kind == wl::EdgeKind::kNested) ++state.pending_nested;
  }
  for (const auto& edge : app_->graph.children(node)) {
    invoke(edge.callee, edge.kind == wl::EdgeKind::kNested
                            ? std::optional<std::size_t>(node)
                            : std::nullopt);
  }
  if (state.pending_nested == 0) complete_node(node);
}

void RequestContext::complete_node(std::size_t node) {
  NodeState& state = nodes_[node];
  if (state.completed) return;
  state.completed = true;
  if (node == app_->graph.root()) {
    finish(true);
    return;
  }
  if (state.parent.has_value()) {
    NodeState& parent = nodes_[*state.parent];
    GSIGHT_ASSERT(parent.pending_nested > 0,
                  "nested completion without a pending child");
    if (--parent.pending_nested == 0 && parent.exec_done) {
      complete_node(*state.parent);
    }
  }
  // Async completions have no parent to notify.
}

void RequestContext::finish(bool ok) {
  if (finished_) return;
  finished_ = true;
  if (on_complete_) on_complete_(engine_->now() - start_, ok);
}

}  // namespace gsight::sim
