#include "sim/request.hpp"

#include "core/contracts.hpp"
#include "obs/json.hpp"

namespace gsight::sim {

RequestContext::RequestContext(const wl::App* app, std::size_t app_index,
                               Engine* engine, Gateway* gateway, Router* router,
                               Completion on_complete, FnObserver fn_observer,
                               obs::Tracer* tracer, std::uint64_t request_id)
    : app_(app),
      app_index_(app_index),
      engine_(engine),
      gateway_(gateway),
      router_(router),
      on_complete_(std::move(on_complete)),
      fn_observer_(std::move(fn_observer)),
      tracer_(tracer),
      request_id_(request_id),
      nodes_(app->function_count()) {}

void RequestContext::launch(const std::shared_ptr<RequestContext>& ctx) {
  ctx->start_ = ctx->engine_->now();
  if (ctx->tracer_ != nullptr && ctx->tracer_->enabled()) {
    ctx->tracer_->async_begin(ctx->start_, "request", "request",
                              ctx->request_id_, {{"app", ctx->app_->name}});
  }
  ctx->invoke(ctx->app_->graph.root(), std::nullopt);
}

void RequestContext::invoke(std::size_t node,
                            std::optional<std::size_t> nested_parent) {
  GSIGHT_ASSERT(node < nodes_.size(), "invoked unknown call-graph node");
  NodeState& state = nodes_[node];
  GSIGHT_ASSERT(!state.invoked, "tree-structured call graphs only");
  state.invoked = true;
  state.parent = nested_parent;

  auto self = shared_from_this();
  const SimTime forwarded = engine_->now();
  gateway_->forward([self, node, forwarded] {
    const bool tracing =
        self->tracer_ != nullptr && self->tracer_->enabled();
    if (tracing) {
      // The gateway leg of this node: enqueue at the shared gateway until
      // delivery to a backend replica.
      self->tracer_->complete(
          forwarded, self->engine_->now() - forwarded, "request.gateway",
          "request", obs::Lanes::kRequests, self->request_id_,
          {{"fn", obs::json_number(static_cast<double>(node))}});
    }
    Instance* instance =
        self->router_->route(self->app_index_, node);
    if (instance == nullptr) {
      if (tracing) {
        self->tracer_->instant(self->engine_->now(), "request.drop", "request",
                               obs::Lanes::kRequests, self->request_id_);
      }
      self->finish(false);
      return;
    }
    if (tracing) {
      self->tracer_->instant(
          self->engine_->now(), "request.dispatch", "request",
          obs::Lanes::kRequests, self->request_id_,
          {{"fn", obs::json_number(static_cast<double>(node))},
           {"instance", obs::json_number(static_cast<double>(instance->id()))},
           {"server",
            obs::json_number(static_cast<double>(instance->server().id()))}});
    }
    instance->submit([self, node](const InvocationResult& r) {
      self->on_exec_done(node, r);
    });
  });
}

void RequestContext::on_exec_done(std::size_t node,
                                  const InvocationResult& result) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    const SimTime now = engine_->now();
    if (result.cold) {
      // The cold start is modelled as a leading phase of the execution;
      // mark its onset so traces show where startup cost lands.
      tracer_->instant(now - result.exec_s, "request.cold_start", "request",
                       obs::Lanes::kRequests, request_id_,
                       {{"fn", obs::json_number(static_cast<double>(node))}});
    }
    tracer_->complete(
        now - result.local_latency_s, result.local_latency_s, "request.exec",
        "request", obs::Lanes::kRequests, request_id_,
        {{"fn", obs::json_number(static_cast<double>(node))},
         {"queue_wait_s", obs::json_number(result.queue_wait_s)},
         {"exec_s", obs::json_number(result.exec_s)},
         {"ipc", obs::json_number(result.mean_ipc)},
         {"cold", result.cold ? "1" : "0"}});
  }
  if (fn_observer_) fn_observer_(node, result);
  NodeState& state = nodes_[node];
  state.exec_done = true;
  // Fan out to children now that this function returned its response.
  for (const auto& edge : app_->graph.children(node)) {
    if (edge.kind == wl::EdgeKind::kNested) ++state.pending_nested;
  }
  for (const auto& edge : app_->graph.children(node)) {
    invoke(edge.callee, edge.kind == wl::EdgeKind::kNested
                            ? std::optional<std::size_t>(node)
                            : std::nullopt);
  }
  if (state.pending_nested == 0) complete_node(node);
}

void RequestContext::complete_node(std::size_t node) {
  NodeState& state = nodes_[node];
  if (state.completed) return;
  state.completed = true;
  if (node == app_->graph.root()) {
    finish(true);
    return;
  }
  if (state.parent.has_value()) {
    NodeState& parent = nodes_[*state.parent];
    GSIGHT_ASSERT(parent.pending_nested > 0,
                  "nested completion without a pending child");
    if (--parent.pending_nested == 0 && parent.exec_done) {
      complete_node(*state.parent);
    }
  }
  // Async completions have no parent to notify.
}

void RequestContext::finish(bool ok) {
  if (finished_) return;
  finished_ = true;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->async_end(engine_->now(), "request", "request", request_id_,
                       {{"ok", ok ? "1" : "0"}});
  }
  if (on_complete_) on_complete_(engine_->now() - start_, ok);
}

}  // namespace gsight::sim
