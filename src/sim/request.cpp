// gsight-analyze: hot-path
#include "sim/request.hpp"

#include "core/contracts.hpp"
#include "obs/json.hpp"

namespace gsight::sim {

RequestRef::RequestRef(RequestContext* ctx) : ctx_(ctx) {
  if (ctx_ != nullptr) ctx_->add_ref();
}

RequestRef::RequestRef(const RequestRef& other) : ctx_(other.ctx_) {
  if (ctx_ != nullptr) ctx_->add_ref();
}

RequestRef::RequestRef(RequestRef&& other) noexcept : ctx_(other.ctx_) {
  other.ctx_ = nullptr;
}

RequestRef& RequestRef::operator=(const RequestRef& other) {
  if (this == &other) return *this;
  RequestContext* old = ctx_;
  ctx_ = other.ctx_;
  if (ctx_ != nullptr) ctx_->add_ref();
  if (old != nullptr) old->release_ref();
  return *this;
}

RequestRef& RequestRef::operator=(RequestRef&& other) noexcept {
  if (this == &other) return *this;
  RequestContext* old = ctx_;
  ctx_ = other.ctx_;
  other.ctx_ = nullptr;
  if (old != nullptr) old->release_ref();
  return *this;
}

RequestRef::~RequestRef() {
  if (ctx_ != nullptr) ctx_->release_ref();
}

void RequestContext::release_ref() {
  GSIGHT_ASSERT(refs_ > 0, "RequestContext over-released");
  if (--refs_ == 0) pool_->recycle(this);
}

void RequestContext::reset(const wl::App* app, std::size_t app_index,
                           Engine* engine, Gateway* gateway, Router* router,
                           RequestSink* sink, RequestKind kind,
                           DoneRequest done_request, DoneJob done_job,
                           obs::Tracer* tracer, std::uint64_t request_id) {
  app_ = app;
  app_index_ = app_index;
  engine_ = engine;
  gateway_ = gateway;
  router_ = router;
  sink_ = sink;
  kind_ = kind;
  done_request_ = std::move(done_request);
  done_job_ = std::move(done_job);
  tracer_ = tracer;
  request_id_ = request_id;
  start_ = 0.0;
  nodes_.assign(app->function_count(), NodeState{});
  finished_ = false;
  cancelled_ = false;
  clones_dispatched_ = 0;
  clones_cancelled_ = 0;
}

void RequestContext::launch() {
  start_ = engine_->now();
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->async_begin(start_, "request", "request", request_id_,
                         {{"app", app_->name}});
  }
  invoke(app_->graph.root(), std::nullopt);
}

void RequestContext::invoke(std::size_t node,
                            std::optional<std::size_t> nested_parent) {
  GSIGHT_ASSERT(node < nodes_.size(), "invoked unknown call-graph node");
  NodeState& state = nodes_[node];
  GSIGHT_ASSERT(!state.invoked, "tree-structured call graphs only");
  state.invoked = true;
  state.parent = nested_parent;

  // Cloning fan-out (jobs are never cloned): each clone is a separate
  // gateway forward — replication amplifies gateway load too, which is
  // part of what the clone-bench measures.
  const CloneConfig& cc = gateway_->clone_config();
  const std::size_t d =
      (kind_ == RequestKind::kRequest && cc.factor > 1)
          ? std::min<std::size_t>(cc.factor, kMaxCloneFactor)
          : 1;
  state.clones_expected = static_cast<std::uint8_t>(d);
  if (d > 1 && cc.policy == CloneConfig::Policy::kSynchronized) {
    state.clone_jitter = router_->clone_jitter(app_index_, node);
  }
  for (std::size_t c = 0; c < d; ++c) {
    RequestRef self(this);
    const SimTime forwarded = engine_->now();
    gateway_->forward([self, node, c, forwarded] {
      self->deliver_clone(node, c, forwarded);
    });
  }
}

void RequestContext::deliver_clone(std::size_t node, std::size_t c,
                                   SimTime forwarded) {
  NodeState& state = nodes_[node];
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  if (tracing) {
    // The gateway leg of this node: enqueue at the shared gateway until
    // delivery to a backend replica.
    tracer_->complete(forwarded, engine_->now() - forwarded, "request.gateway",
                      "request", obs::Lanes::kRequests, request_id_,
                      {{"fn", obs::json_number(static_cast<double>(node))}});
  }
  // A sibling already won, or the whole request was retracted, while this
  // clone sat in the gateway queue: drop it (the ref dies with us).
  if (cancelled_ || state.clone_won) return;
  Instance* instance;
  if (state.clones_expected <= 1) {
    instance = router_->route(app_index_, node);
  } else {
    // Distinct-server constraint: exclude every server a sibling clone
    // already landed on.
    const Server* exclude[kMaxCloneFactor];
    std::size_t n = 0;
    for (std::size_t i = 0; i < state.clones_expected; ++i) {
      if (state.clones[i].instance != nullptr) {
        exclude[n++] = &state.clones[i].instance->server();
      }
    }
    instance = router_->route_clone(app_index_, node, exclude, n);
  }
  if (instance == nullptr) {
    if (state.clones_expected > 1) {
      // This clone is surplus (all replica servers taken by siblings or
      // draining). The request only fails when every clone is unroutable.
      ++state.clones_unroutable;
      if (state.clones_unroutable < state.clones_expected) return;
    }
    if (tracing) {
      tracer_->instant(engine_->now(), "request.drop", "request",
                       obs::Lanes::kRequests, request_id_);
    }
    finish(false);
    return;
  }
  if (tracing) {
    tracer_->instant(
        engine_->now(), "request.dispatch", "request", obs::Lanes::kRequests,
        request_id_,
        {{"fn", obs::json_number(static_cast<double>(node))},
         {"instance", obs::json_number(static_cast<double>(instance->id()))},
         {"server",
          obs::json_number(static_cast<double>(instance->server().id()))}});
  }
  state.clones[c].instance = instance;
  RequestRef self(this);
  if (state.clones_expected <= 1) {
    state.clones[c].ticket =
        instance->submit([self, node](const InvocationResult& r) {
          self->nodes_[node].clones[0].ticket = 0;
          self->on_exec_done(node, r);
        });
  } else {
    ++clones_dispatched_;
    state.clones[c].ticket = instance->submit(
        [self, node, c](const InvocationResult& r) {
          self->on_clone_done(node, c, r);
        },
        state.clone_jitter);
  }
}

void RequestContext::on_clone_done(std::size_t node, std::size_t c,
                                   const InvocationResult& result) {
  NodeState& state = nodes_[node];
  state.clones[c].ticket = 0;
  if (state.clone_won) return;  // siblings are cancelled, but stay safe
  state.clone_won = true;
  // Cancel-on-first-complete: retract every sibling still queued or
  // running; their DoneFns are destroyed without firing, releasing the
  // RequestRefs they captured.
  for (std::size_t i = 0; i < state.clones_expected; ++i) {
    if (i == c) continue;
    CloneSlot& slot = state.clones[i];
    if (slot.ticket != 0 && slot.instance != nullptr) {
      if (slot.instance->cancel(slot.ticket)) ++clones_cancelled_;
      slot.ticket = 0;
    }
  }
  on_exec_done(node, result);
}

bool RequestContext::cancel() {
  if (finished_) return false;
  finished_ = true;
  cancelled_ = true;
  for (auto& state : nodes_) {
    for (std::size_t i = 0; i < state.clones_expected; ++i) {
      CloneSlot& slot = state.clones[i];
      if (slot.ticket != 0 && slot.instance != nullptr) {
        if (slot.instance->cancel(slot.ticket)) ++clones_cancelled_;
        slot.ticket = 0;
      }
    }
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->async_end(engine_->now(), "request", "request", request_id_,
                       {{"ok", "cancelled"}});
  }
  if (clones_dispatched_ > 0) {
    sink_->on_clone_accounting(app_index_, clones_dispatched_,
                               clones_cancelled_);
  }
  sink_->on_request_cancelled(app_index_, kind_);
  return true;
}

void RequestContext::on_exec_done(std::size_t node,
                                  const InvocationResult& result) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    const SimTime now = engine_->now();
    if (result.cold) {
      // The cold start is modelled as a leading phase of the execution;
      // mark its onset so traces show where startup cost lands.
      tracer_->instant(now - result.exec_s, "request.cold_start", "request",
                       obs::Lanes::kRequests, request_id_,
                       {{"fn", obs::json_number(static_cast<double>(node))}});
    }
    tracer_->complete(
        now - result.local_latency_s, result.local_latency_s, "request.exec",
        "request", obs::Lanes::kRequests, request_id_,
        {{"fn", obs::json_number(static_cast<double>(node))},
         {"queue_wait_s", obs::json_number(result.queue_wait_s)},
         {"exec_s", obs::json_number(result.exec_s)},
         {"ipc", obs::json_number(result.mean_ipc)},
         {"cold", result.cold ? "1" : "0"}});
  }
  sink_->on_fn_done(app_index_, node, result);
  NodeState& state = nodes_[node];
  state.exec_done = true;
  // Fan out to children now that this function returned its response.
  for (const auto& edge : app_->graph.children(node)) {
    if (edge.kind == wl::EdgeKind::kNested) ++state.pending_nested;
  }
  for (const auto& edge : app_->graph.children(node)) {
    invoke(edge.callee, edge.kind == wl::EdgeKind::kNested
                            ? std::optional<std::size_t>(node)
                            : std::nullopt);
  }
  if (state.pending_nested == 0) complete_node(node);
}

void RequestContext::complete_node(std::size_t node) {
  NodeState& state = nodes_[node];
  if (state.completed) return;
  state.completed = true;
  if (node == app_->graph.root()) {
    finish(true);
    return;
  }
  if (state.parent.has_value()) {
    NodeState& parent = nodes_[*state.parent];
    GSIGHT_ASSERT(parent.pending_nested > 0,
                  "nested completion without a pending child");
    if (--parent.pending_nested == 0 && parent.exec_done) {
      complete_node(*state.parent);
    }
  }
  // Async completions have no parent to notify.
}

void RequestContext::finish(bool ok) {
  if (finished_) return;
  finished_ = true;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->async_end(engine_->now(), "request", "request", request_id_,
                       {{"ok", ok ? "1" : "0"}});
  }
  const double elapsed = engine_->now() - start_;
  // Sink first (stats recorded), then the user callback — preserving the
  // "after stats are recorded" ordering issue_request documents.
  if (clones_dispatched_ > 0) {
    sink_->on_clone_accounting(app_index_, clones_dispatched_,
                               clones_cancelled_);
  }
  sink_->on_request_done(app_index_, kind_, elapsed, ok);
  if (kind_ == RequestKind::kRequest) {
    if (done_request_) done_request_(elapsed, ok);
  } else {
    if (done_job_) done_job_(elapsed);
  }
}

RequestRef RequestPool::acquire(const wl::App* app, std::size_t app_index,
                                Engine* engine, Gateway* gateway,
                                Router* router, RequestSink* sink,
                                RequestKind kind,
                                RequestContext::DoneRequest done_request,
                                RequestContext::DoneJob done_job,
                                obs::Tracer* tracer,
                                std::uint64_t request_id) {
  RequestContext* ctx = nullptr;
  if (!free_.empty()) {
    ctx = free_.back();
    free_.pop_back();
  } else {
    // The one legitimate allocation on the request path: growing the pool
    // to a new high-water mark of concurrently in-flight requests.
    owned_.emplace_back(new RequestContext(this));  // gsight-analyze: allow(hot-alloc)
    ctx = owned_.back().get();
  }
  ctx->reset(app, app_index, engine, gateway, router, sink, kind,
             std::move(done_request), std::move(done_job), tracer, request_id);
  return RequestRef(ctx);
}

void RequestPool::recycle(RequestContext* ctx) {
  // Drop captured user-callback state eagerly (same release point the
  // shared_ptr design had); the context's buffers keep their capacity.
  ctx->done_request_ = nullptr;
  ctx->done_job_ = nullptr;
  free_.push_back(ctx);
}

}  // namespace gsight::sim
