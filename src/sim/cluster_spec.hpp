// ClusterSpec — the cluster-shaped fields every run-configuration struct
// used to repeat (server count, node hardware, interference model, root
// seed, trace sink). sim::PlatformConfig, core::RunnerConfig and
// sched::ExperimentConfig all embed it by inheritance, so the fields read
// as direct members at existing call sites (`cfg.servers`, `cfg.seed`)
// while being defined — and validated — exactly once.
#pragma once

#include <cstdint>
#include <cstddef>

#include "sim/interference.hpp"
#include "sim/resources.hpp"

namespace gsight::obs {
class TraceSink;
}  // namespace gsight::obs

namespace gsight::sim {

struct ClusterSpec {
  std::size_t servers = 8;
  ServerConfig server = ServerConfig::tianjin_testbed();
  InterferenceParams interference;
  /// Root seed for the run. Components derive their private streams with
  /// stats::SeedStream::derive(seed, tag) — never by reusing or offsetting
  /// the root directly (DESIGN.md §9).
  std::uint64_t seed = 1234;
  /// Span-trace sink. nullptr falls back to obs::default_trace_sink()
  /// when `use_default_trace_sink` holds (set by the bench harness from
  /// $GSIGHT_TRACE), which is itself null by default — tracing off.
  obs::TraceSink* trace_sink = nullptr;
  /// Campaign workers clear this so parallel tasks never race on the
  /// process-wide default sink; an explicit `trace_sink` still applies.
  bool use_default_trace_sink = true;

  /// Throws std::invalid_argument on an unrunnable cluster: zero servers,
  /// or non-positive node capacities/durations.
  void validate() const;
};

}  // namespace gsight::sim
