// ClusterSpec — the cluster-shaped fields every run-configuration struct
// used to repeat (server count, node hardware, interference model, root
// seed, trace sink). sim::PlatformConfig, core::RunnerConfig and
// sched::ExperimentConfig all embed it by inheritance, so the fields read
// as direct members at existing call sites (`cfg.servers`, `cfg.seed`)
// while being defined — and validated — exactly once.
#pragma once

#include <cstdint>
#include <cstddef>

#include "sim/interference.hpp"
#include "sim/resources.hpp"

namespace gsight::obs {
class TraceSink;
}  // namespace gsight::obs

namespace gsight::sim {

/// Multi-cluster shape for sharded runs (DESIGN.md §13). The simulated
/// estate is a fixed set of `clusters` identical cluster cells; `shards`
/// picks how many executor lanes advance those cells. Results depend only
/// on the cells and the root seed — never on the lane count or thread
/// count — which is what makes an N-shard run byte-identical to the
/// 1-shard run.
struct ShardTopology {
  /// Number of cluster cells. Each cell owns a private engine, event
  /// queue, gateway, recorder and RNG; `ClusterSpec::servers` is the size
  /// of EACH cell.
  std::size_t clusters = 1;
  /// Executor lanes (`--shards N`). 0 means one lane per cell; values
  /// above `clusters` are clamped. Cells map to lanes as `cell % lanes`.
  std::size_t shards = 0;
  /// Minimum cross-cell latency: the gateway -> cluster hop. No message
  /// posted in an epoch can take effect sooner than this, which is what
  /// lets cells advance an epoch without hearing from each other.
  double hop_latency_s = 0.01;
  /// Epoch barrier spacing. 0 derives it from hop_latency_s (the largest
  /// safe value); an explicit value must not exceed hop_latency_s or the
  /// conservative-synchronization argument breaks.
  double epoch_s = 0.0;

  std::size_t lanes() const {
    if (shards == 0 || shards > clusters) return clusters;
    return shards;
  }
  double epoch_length() const { return epoch_s > 0.0 ? epoch_s : hop_latency_s; }

  /// Throws std::invalid_argument on zero cells, a non-positive/non-finite
  /// hop, or an epoch longer than the hop.
  void validate() const;
};

struct ClusterSpec {
  std::size_t servers = 8;
  ServerConfig server = ServerConfig::tianjin_testbed();
  InterferenceParams interference;
  /// Root seed for the run. Components derive their private streams with
  /// stats::SeedStream::derive(seed, tag) — never by reusing or offsetting
  /// the root directly (DESIGN.md §9).
  std::uint64_t seed = 1234;
  /// Span-trace sink. nullptr falls back to obs::default_trace_sink()
  /// when `use_default_trace_sink` holds (set by the bench harness from
  /// $GSIGHT_TRACE), which is itself null by default — tracing off.
  obs::TraceSink* trace_sink = nullptr;
  /// Campaign workers clear this so parallel tasks never race on the
  /// process-wide default sink; an explicit `trace_sink` still applies.
  bool use_default_trace_sink = true;
  /// Multi-cluster shape for sharded runs; the single-cell default leaves
  /// existing (unsharded) configurations untouched.
  ShardTopology topology;

  /// Throws std::invalid_argument on an unrunnable cluster: zero servers,
  /// non-positive node capacities/durations, or a bad shard topology.
  void validate() const;
};

}  // namespace gsight::sim
