// Time-ordered event queue for the discrete-event engine. Events are
// closures tagged with a sequence number so simultaneous events fire in
// scheduling order (deterministic replay). Cancellation is by generation
// counters at the call sites (lazy invalidation), not by queue surgery.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace gsight::sim {

using SimTime = double;  ///< seconds since simulation start

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Contract: `when` must be finite (non-NaN) and non-negative.
  void push(SimTime when, Callback cb);
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  SimTime next_time() const;
  /// Pop and return the earliest event (time, callback). Contract: popped
  /// times are monotonically non-decreasing over the queue's lifetime.
  std::pair<SimTime, Callback> pop();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Callback cb;
  };
  /// Strict total order on (when, seq) — seq is unique, so pop order is
  /// fully determined and replay-deterministic regardless of heap shape.
  static bool earlier(const Entry& a, const Entry& b) {
    // Exact comparison of stored (not computed) times is the tie-break
    // that makes replay deterministic, so the lint rule is waived here.
    return a.when < b.when ||
           (a.when == b.when && a.seq < b.seq);  // gsight-lint: allow(simtime-eq)
  }
  void sift_up(std::size_t i);
  void sift_down(Entry&& e);

  // Hand-rolled binary min-heap. std::priority_queue is copy-based (top()
  // is const), which forced each Callback behind a shared_ptr; holding
  // entries by value lets push/pop move the closures instead of
  // allocating a control block per event on the hottest simulator path.
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  SimTime last_popped_ = 0.0;
};

}  // namespace gsight::sim
