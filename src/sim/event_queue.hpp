// Time-ordered event queue for the discrete-event engine. Events are
// closures tagged with a sequence number so simultaneous events fire in
// scheduling order (deterministic replay). Cancellation is by generation
// counters at the call sites (lazy invalidation), not by queue surgery.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace gsight::sim {

using SimTime = double;  ///< seconds since simulation start

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Contract: `when` must be finite (non-NaN) and non-negative.
  void push(SimTime when, Callback cb);
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  SimTime next_time() const;
  /// Pop and return the earliest event (time, callback). Contract: popped
  /// times are monotonically non-decreasing over the queue's lifetime.
  std::pair<SimTime, Callback> pop();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    // Shared-ptr'd so Entry stays copyable for priority_queue internals.
    std::shared_ptr<Callback> cb;
    bool operator>(const Entry& o) const {
      // Exact comparison of stored (not computed) times is the tie-break
      // that makes replay deterministic, so the lint rule is waived here.
      return when > o.when ||
             (when == o.when && seq > o.seq);  // gsight-lint: allow(simtime-eq)
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
  SimTime last_popped_ = 0.0;
};

}  // namespace gsight::sim
