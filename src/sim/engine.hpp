// Discrete-event simulation engine: a clock plus the event queue. Every
// platform component schedules closures; the engine advances time to the
// next event. Periodic activities (metric windows, autoscaler ticks) are
// self-rescheduling events.
#pragma once

#include "sim/event_queue.hpp"

namespace gsight::sim {

class Engine {
 public:
  SimTime now() const { return now_; }

  /// Schedule `cb` to run at absolute time `when` (finite, >= now).
  void at(SimTime when, EventQueue::Callback cb);
  /// Schedule `cb` to run `delay` seconds from now (finite, >= 0).
  void after(SimTime delay, EventQueue::Callback cb);

  /// Run events until the queue empties or the clock passes `until`.
  /// Events scheduled exactly at `until` still run. Returns the number of
  /// events executed.
  std::size_t run_until(SimTime until);
  /// Drain the queue completely.
  std::size_t run_all();

  std::size_t pending() const { return queue_.size(); }
  /// Cumulative count of events executed over the engine's lifetime — the
  /// observability layer samples this into its "engine.events" counter.
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  SimTime now_ = 0.0;
  EventQueue queue_;
  std::uint64_t events_executed_ = 0;
};

}  // namespace gsight::sim
