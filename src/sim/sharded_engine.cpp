#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "core/contracts.hpp"
#include "ml/thread_pool.hpp"
#include "stats/seed_stream.hpp"

namespace gsight::sim {

namespace {

/// Named sub-stream tag for per-cell platform seeds (pairs with
/// kShardLoadTag in shard.cpp; the two families must never collide).
constexpr std::uint64_t kShardPlatformTag = 0x534841504C415453ULL;  // "SHAPLATS"

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineConfig config)
    : config_(std::move(config)),
      mailbox_(std::max<std::size_t>(config_.topology.clusters, 1)) {
  config_.validate();
  const std::size_t cells = config_.topology.clusters;
  shards_.reserve(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    ShardConfig sc;
    sc.index = i;
    sc.total_shards = cells;
    sc.hop_latency_s = config_.topology.hop_latency_s;
    sc.remote_fraction = config_.remote_fraction;
    sc.clone_handoffs = config_.clone_handoffs;
    sc.load_seed = config_.seed;
    // Each cell is a full platform of `servers` nodes with its own derived
    // seed. Cells never share the process-wide default trace sink: lanes
    // may run concurrently.
    static_cast<ClusterSpec&>(sc.platform) = static_cast<ClusterSpec&>(config_);
    sc.platform.gateway = config_.gateway;
    sc.platform.instance = config_.instance;
    sc.platform.metric_window_s = config_.metric_window_s;
    sc.platform.seed = stats::SeedStream::derive(config_.seed,
                                                 kShardPlatformTag, i);
    sc.platform.trace_sink = nullptr;
    sc.platform.use_default_trace_sink = false;
    sc.platform.topology = ShardTopology{};  // cells are not themselves sharded
    shards_.push_back(std::make_unique<Shard>(sc, &mailbox_.outbox(i)));
  }
  if (config_.threads != 1) {
    pool_ = std::make_unique<ml::ThreadPool>(config_.threads);
  }
}

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::deploy_default_load() {
  const wl::App app = shard_edge_app();
  for (auto& shard : shards_) {
    shard->deploy_spread(app);
    shard->start_diurnal_load(config_.trace);
  }
}

void ShardedEngine::advance_lane(std::size_t lane, SimTime barrier) {
  // Static cell -> lane map (cell % lanes): which lane advances a cell
  // affects wall-clock only, never results.
  for (std::size_t c = lane; c < shards_.size(); c += lanes()) {
    shards_[c]->advance_to(barrier);
  }
}

void ShardedEngine::exchange_at_barrier(SimTime barrier) {
  // Coordinator-serial replay in (epoch, source, seq) order. Within one
  // destination engine, push order decides the tie-break sequence of
  // same-time events — so the sorted replay is itself part of the
  // determinism contract.
  for (auto& msg : mailbox_.collect()) {
    Shard* dest = shards_.at(msg.dest).get();
    // epoch <= hop guarantees deliver_at >= barrier (ShardTopology::
    // validate()); the max() guards the exact-equality float edge so a
    // delivery never lands behind the destination clock.
    const SimTime when = std::max(msg.deliver_at, barrier);
    dest->engine().at(when, [dest, apply = std::move(msg.apply)] {
      apply(*dest);
    });
  }
}

void ShardedEngine::run_until(SimTime t) {
  const double epoch_len = config_.topology.epoch_length();
  while (now_ < t) {
    const SimTime barrier = std::min(t, now_ + epoch_len);
    ++epoch_;
    mailbox_.begin_epoch(epoch_);
    if (pool_ != nullptr && lanes() > 1) {
      pool_->parallel_for(lanes(),
                          [this, barrier](std::size_t lane) {
                            advance_lane(lane, barrier);
                          });
    } else {
      for (std::size_t lane = 0; lane < lanes(); ++lane) {
        advance_lane(lane, barrier);
      }
    }
    exchange_at_barrier(barrier);
    // Engine::run_until clamps each cell clock to the barrier, so after
    // the exchange every cell agrees on "now".
    now_ = barrier;
  }
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->platform().engine().events_executed();
  }
  return total;
}

std::string ShardedEngine::merged_digest() const {
  std::string out;
  for (const auto& shard : shards_) out += shard->digest();
  return out;
}

void ShardedEngine::refresh_metrics() {
  metrics_.gauge("sharded.cells").set(static_cast<double>(shard_count()));
  metrics_.gauge("sharded.lanes").set(static_cast<double>(lanes()));
  metrics_.gauge("sharded.epochs").set(static_cast<double>(epoch_));
  metrics_.gauge("sharded.events")
      .set(static_cast<double>(events_executed()));
  metrics_.gauge("sharded.messages")
      .set(static_cast<double>(messages_exchanged()));
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    const obs::Labels labels{{"shard", std::to_string(i)}};
    metrics_.gauge("shard.events", labels)
        .set(static_cast<double>(s.platform().engine().events_executed()));
    metrics_.gauge("shard.requests", labels)
        .set(static_cast<double>(s.requests_issued()));
    metrics_.gauge("shard.handoffs_out", labels)
        .set(static_cast<double>(s.handoffs_sent()));
    metrics_.gauge("shard.handoffs_in", labels)
        .set(static_cast<double>(s.handoffs_received()));
    metrics_.gauge("shard.clone_groups", labels)
        .set(static_cast<double>(s.clone_groups()));
    metrics_.gauge("shard.clone_cancels_applied", labels)
        .set(static_cast<double>(s.clone_cancels_applied()));
    metrics_.gauge("shard.instances", labels)
        .set(static_cast<double>(s.platform().total_instances()));
  }
}

}  // namespace gsight::sim
