// Server hardware geometry (Table 4) and aggregate resource bookkeeping.
#pragma once

#include <string>

#include "core/contracts.hpp"
#include "workloads/phase.hpp"

namespace gsight::sim {

/// Per-server service discipline (CloudSimSC models disciplines as a
/// first-class simulator concept; the request-cloning PS paper motivates
/// the second one).
///
///  - kSerial: the status quo. Every active execution asks the
///    interference model for its full core demand; when the colocation
///    over-commits the node the model's demand-proportional `cpu_factor`
///    stretches everyone. Equivalent to the pre-discipline behaviour
///    bit-for-bit.
///  - kProcessorSharing: an egalitarian cap layered on top. With n
///    active executions each is limited to cores/n — an execution whose
///    current phase demands more progresses at rate * (cores/n)/demand.
///    Re-timed on every arrival/departure/phase change (the recompute
///    already fires there), so in-flight completion times shift exactly
///    as PS theory says they should.
enum class ServiceDiscipline { kSerial, kProcessorSharing };

struct ServerConfig {
  double cores = 40.0;       ///< physical cores (we model cores, not SMT)
  double llc_mb = 25.0;      ///< shared last-level cache
  double mem_gb = 256.0;     ///< DRAM capacity
  double membw_gbps = 60.0;  ///< sustained memory bandwidth
  double disk_mbps = 2000.0; ///< SSD throughput
  double net_mbps = 10000.0; ///< NIC throughput
  double base_freq_ghz = 2.0;
  ServiceDiscipline discipline = ServiceDiscipline::kSerial;

  /// The paper's testbed node: Intel Xeon E7-4820 v4, 4 sockets, 40 cores,
  /// 25 MB LLC, 256 GB RAM, 960 GB SSD (Table 4).
  static ServerConfig tianjin_testbed() { return {}; }
  /// One socket of the testbed node — the paper's experiments bind
  /// colocated workloads to a socket (§2.1), so sockets are the natural
  /// contention domain and the default placement unit in the benches.
  static ServerConfig socket() {
    ServerConfig c;
    c.cores = 10.0;
    c.llc_mb = 25.0;
    c.mem_gb = 64.0;
    c.membw_gbps = 16.0;
    c.disk_mbps = 1200.0;
    c.net_mbps = 10000.0;
    return c;
  }
  /// A deliberately small node for unit tests (contention easy to trigger).
  static ServerConfig tiny() {
    ServerConfig c;
    c.cores = 4.0;
    c.llc_mb = 8.0;
    c.mem_gb = 16.0;
    c.membw_gbps = 10.0;
    c.disk_mbps = 400.0;
    c.net_mbps = 1000.0;
    return c;
  }
};

/// Conservation-checked bookkeeping for one scalar resource (memory,
/// cores, bandwidth, ...). Every acquire/release is validated by runtime
/// contracts: amounts must be finite and non-negative, the balance can
/// never go negative, and — unless the ledger is created oversubscribable
/// (serverless platforms deliberately over-commit memory) — the balance
/// can never exceed capacity.
class ResourceLedger {
 public:
  enum class Policy { kStrict, kOversubscribe };

  explicit ResourceLedger(double capacity, Policy policy = Policy::kStrict);

  double capacity() const { return capacity_; }
  double used() const { return used_; }
  double available() const { return capacity_ - used_; }
  bool oversubscribable() const { return policy_ == Policy::kOversubscribe; }

  /// True iff a strict ledger could acquire `amount` right now.
  bool can_acquire(double amount) const;
  /// Take `amount` out of the ledger. Contract: amount finite and >= 0;
  /// strict ledgers additionally require used + amount <= capacity.
  void acquire(double amount);
  /// Return `amount` to the ledger. Contract: never drives `used` negative.
  void release(double amount);

 private:
  double capacity_;
  double used_ = 0.0;
  Policy policy_;
};

/// Sum of demands over a set of colocated executions.
struct DemandTotals {
  double cores = 0.0;
  double llc_mb = 0.0;
  double membw_gbps = 0.0;
  double disk_mbps = 0.0;
  double net_mbps = 0.0;
  double mem_gb = 0.0;

  void add(const wl::ResourceDemand& d) {
    cores += d.cores;
    llc_mb += d.llc_mb;
    membw_gbps += d.membw_gbps;
    disk_mbps += d.disk_mbps;
    net_mbps += d.net_mbps;
    mem_gb += d.mem_gb;
  }
};

}  // namespace gsight::sim
