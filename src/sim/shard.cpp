#include "sim/shard.hpp"

#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "core/contracts.hpp"
#include "stats/seed_stream.hpp"
#include "workloads/phase.hpp"

namespace gsight::sim {

namespace {

/// Named sub-stream tag for shard load RNGs (DESIGN.md §9): keeps the
/// per-cell load streams disjoint from the per-cell platform seeds, which
/// derive from the same root under kShardPlatformTag.
constexpr std::uint64_t kShardLoadTag = 0x5348414C4F414453ULL;  // "SHALOADS"

}  // namespace

wl::App shard_edge_app() {
  wl::FunctionSpec fn;
  fn.name = "edge-lookup";
  fn.mem_alloc_gb = 0.128;
  fn.cold_start_s = 0.25;
  fn.phases.push_back(
      wl::cpu_phase("lookup", /*duration_s=*/0.02, /*cores=*/0.5,
                    /*llc_mb=*/1.0, /*ipc=*/2.2));
  wl::App app;
  app.name = "edge-lookup";
  app.cls = wl::WorkloadClass::kLatencySensitive;
  app.functions.push_back(std::move(fn));
  app.graph = wl::CallGraph(1);
  app.graph.set_root(0);
  app.default_qps = 40.0;
  return app;
}

Shard::Shard(ShardConfig config, Outbox* outbox)
    : config_(std::move(config)),
      outbox_(outbox),
      load_rng_(stats::SeedStream::derive(config_.load_seed, kShardLoadTag,
                                          config_.index)) {
  GSIGHT_ASSERT(config_.index < config_.total_shards,
                "shard index outside the topology");
  GSIGHT_ASSERT(outbox_ != nullptr || config_.total_shards == 1,
                "multi-cell shard without an outbox");
  GSIGHT_ASSERT(config_.remote_fraction >= 0.0 &&
                    config_.remote_fraction <= 1.0,
                "remote_fraction outside [0, 1]");
  platform_ = std::make_unique<Platform>(config_.platform);
}

std::size_t Shard::deploy_spread(const wl::App& app) {
  std::vector<std::size_t> placement(app.function_count(), 0);
  const std::size_t id = platform_->deploy(app, placement);
  const std::size_t root = app.graph.root();
  for (std::size_t s = 1; s < config_.platform.servers; ++s) {
    platform_->add_replica(id, root, s);
  }
  if (!has_app_) {
    load_app_ = id;
    has_app_ = true;
  }
  return id;
}

void Shard::start_diurnal_load(const wl::AzureTraceConfig& trace) {
  GSIGHT_ASSERT(has_app_, "start_diurnal_load before deploy_spread");
  rate_model_ = wl::AzureTraceGenerator(trace, /*seed=*/0);
  // Thinning envelope: the diurnal/weekly waves peak at
  // base * (1 + diurnal) * (1 + weekly); the 1.5 headroom covers the
  // multiplicative rate noise (matches wl::AzureTraceGenerator).
  peak_rate_ = trace.base_qps * (1.0 + trace.diurnal_amplitude) *
               (1.0 + trace.weekly_amplitude) * 1.5;
  GSIGHT_ASSERT(peak_rate_ > 0.0, "diurnal load with a non-positive peak");
  schedule_next_arrival();
}

void Shard::schedule_next_arrival() {
  // Thinned Poisson (same scheme as Platform::schedule_next_arrival):
  // candidates at peak_rate_, accepted with probability rate(t)/peak,
  // modulated by the trace's multiplicative log-normal noise. Every draw
  // comes from the cell-private load RNG, so the sequence is identical no
  // matter how cells are spread over lanes or threads.
  const double gap = load_rng_.exponential(peak_rate_);
  platform_->engine().after(gap, [this] {
    const double t = platform_->now();
    double accept = rate_model_.rate_at(t) / peak_rate_;
    if (rate_model_.config().noise_sigma > 0.0) {
      accept *=
          std::exp(rate_model_.config().noise_sigma * load_rng_.normal());
    }
    if (accept > 0.0 && load_rng_.uniform() < accept) {
      const bool remote = config_.total_shards > 1 &&
                          config_.remote_fraction > 0.0 &&
                          load_rng_.uniform() < config_.remote_fraction;
      if (remote) {
        // Hand off to a uniformly chosen other cell. The request enters
        // the destination's gateway one hop later, via the mailbox.
        const std::uint64_t draw =
            load_rng_.uniform_index(config_.total_shards - 1);
        const std::size_t dest =
            static_cast<std::size_t>(draw) +
            (static_cast<std::size_t>(draw) >= config_.index ? 1 : 0);
        const std::size_t app = load_app_;
        if (config_.clone_handoffs) {
          // Cross-cell clone pair: one leg here, the sibling on `dest`,
          // first completion cancels the other (one hop later). Both
          // legs register under (origin = this cell, group).
          const std::uint64_t group = next_clone_group_++;
          ++clone_groups_;
          const std::size_t origin = config_.index;
          const std::uint64_t handle = platform_->issue_tracked_request(
              app, [this, dest, origin, group](double, bool) {
                finish_clone_leg(dest, origin, group);
              });
          clone_registry_[{origin, group}] = handle;
          ++requests_issued_;
          outbox_->post(dest, t, t + config_.hop_latency_s,
                        [origin, group, app](Shard& s) {
                          s.inject_clone(origin, group, app);
                        });
          ++handoffs_sent_;
        } else {
          outbox_->post(dest, t, t + config_.hop_latency_s,
                        [app](Shard& s) { s.inject_request(app); });
          ++handoffs_sent_;
        }
      } else {
        platform_->issue_request(load_app_);
        ++requests_issued_;
      }
    }
    schedule_next_arrival();
  });
}

void Shard::inject_request(std::size_t app) {
  ++handoffs_received_;
  platform_->issue_request(app);
  ++requests_issued_;
}

void Shard::inject_clone(std::size_t origin, std::uint64_t group,
                         std::size_t app) {
  ++handoffs_received_;
  const std::uint64_t handle = platform_->issue_tracked_request(
      app, [this, origin, group](double, bool) {
        // The sibling leg lives on the origin cell.
        finish_clone_leg(origin, origin, group);
      });
  clone_registry_[{origin, group}] = handle;
  ++requests_issued_;
}

void Shard::finish_clone_leg(std::size_t peer, std::size_t origin,
                             std::uint64_t group) {
  clone_registry_.erase({origin, group});
  const SimTime t = platform_->now();
  outbox_->post(peer, t, t + config_.hop_latency_s,
                [origin, group](Shard& s) { s.cancel_clone(origin, group); });
  ++clone_cancels_sent_;
}

void Shard::cancel_clone(std::size_t origin, std::uint64_t group) {
  ++clone_cancels_received_;
  const auto it = clone_registry_.find({origin, group});
  if (it == clone_registry_.end()) {
    // The leg here completed before the cancel arrived (including the
    // both-legs-win-in-one-epoch race): deterministic no-op.
    ++clone_cancels_stale_;
    return;
  }
  const std::uint64_t handle = it->second;
  clone_registry_.erase(it);
  if (platform_->cancel_request(handle)) {
    ++clone_cancels_applied_;
  } else {
    ++clone_cancels_stale_;
  }
}

std::string Shard::digest() const {
  std::ostringstream os;
  os << "shard " << config_.index << " events "
     << platform_->engine().events_executed() << " issued "
     << requests_issued_ << " handoffs_out " << handoffs_sent_
     << " handoffs_in " << handoffs_received_ << " clone_groups "
     << clone_groups_ << " cancels_sent " << clone_cancels_sent_
     << " cancels_in " << clone_cancels_received_ << " cancels_applied "
     << clone_cancels_applied_ << " cancels_stale " << clone_cancels_stale_
     << '\n';
  os << std::hexfloat;
  for (std::size_t a = 0; a < platform_->app_count(); ++a) {
    const AppStats& st = platform_->stats(a);
    os << "app " << a << " ok " << st.e2e.size() << " failed " << st.failed
       << " cancelled " << st.cancelled << " clones "
       << st.clones_dispatched << '/' << st.clones_cancelled << '\n';
    for (const auto& [t, l] : st.e2e) os << t << ' ' << l << '\n';
  }
  os << platform_->recorder().dump_string();
  return os.str();
}

}  // namespace gsight::sim
