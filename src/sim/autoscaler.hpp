// Autoscaler — OpenFaaS-style replica scaling for LS apps. Every tick it
// estimates each app's arrival rate, derives the replica count needed to
// keep per-replica utilisation at `target_utilization`, and asks the
// pluggable scheduler for a server whenever it must scale out. This is the
// hook through which Gsight / Best Fit / Worst Fit drive placement in the
// scheduling study (Figures 11-12).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "sim/platform.hpp"

namespace gsight::sim {

struct AutoscalerConfig {
  double tick_s = 5.0;
  double target_utilization = 0.7;
  std::size_t max_replicas = 32;
  /// Exponential smoothing factor for the arrival-rate estimate.
  double rate_alpha = 0.5;
  /// Consecutive ticks a lower target must persist before scaling in
  /// (one replica per tick) — damps diurnal churn and the cold starts
  /// it would cause.
  std::size_t scale_in_patience = 3;
};

class Autoscaler {
 public:
  /// Chooses the server for a new replica of (app, fn); returns the server
  /// index, or SIZE_MAX to refuse the scale-out.
  using PlacementFn =
      std::function<std::size_t(std::size_t app, std::size_t fn)>;

  Autoscaler(Platform* platform, AutoscalerConfig config,
             PlacementFn place);

  /// Begin ticking (idempotent).
  void start();
  /// Current smoothed arrival-rate estimate for an app.
  double rate_estimate(std::size_t app) const;
  /// Replica target computed at the last tick for (app, fn).
  std::size_t last_target(std::size_t app, std::size_t fn) const;

  std::uint64_t scale_out_events() const { return scale_outs_; }
  std::uint64_t scale_in_events() const { return scale_ins_; }

 private:
  void tick();

  Platform* platform_;
  AutoscalerConfig config_;
  PlacementFn place_;
  bool started_ = false;
  std::vector<double> rate_;                        // per app
  std::vector<std::vector<std::size_t>> targets_;   // per app, fn
  /// Cumulative busy-seconds seen at the last tick, per (app, fn).
  std::map<std::pair<std::size_t, std::size_t>, double> busy_seen_;
  /// Ticks in a row the target sat below the replica count.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> below_ticks_;
  std::uint64_t scale_outs_ = 0;
  std::uint64_t scale_ins_ = 0;
  obs::Counter* scale_out_counter_ = nullptr;
  obs::Counter* scale_in_counter_ = nullptr;
};

}  // namespace gsight::sim
