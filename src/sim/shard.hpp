// Shard — one cluster cell of a sharded simulation (DESIGN.md §13). A
// shard owns a complete Platform (engine, event queue, gateway, cluster,
// recorder, metrics) plus a SeedStream-derived load RNG, and advances in
// isolation between epoch barriers. Every cross-cell effect goes through
// the cell's Outbox; nothing a shard computes depends on any other cell's
// intra-epoch progress, which is the invariant behind N-vs-1 byte
// identity.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "sim/mailbox.hpp"
#include "sim/platform.hpp"
#include "workloads/azure_trace.hpp"

namespace gsight::sim {

struct ShardConfig {
  std::size_t index = 0;         ///< this cell's id in [0, total_shards)
  std::size_t total_shards = 1;  ///< cells in the topology
  /// The cell's platform. `seed` should already be the per-cell derived
  /// seed (SeedStream::derive(root, kShardPlatformTag, index)); the
  /// sharded engine does this derivation.
  PlatformConfig platform;
  /// Root seed the load stream derives from (the run's root, not the
  /// per-cell platform seed).
  std::uint64_t load_seed = 1234;
  double hop_latency_s = 0.01;  ///< cross-cell message latency
  /// Probability that an accepted arrival is handed off to another cell
  /// (models requests entering through the "wrong" regional gateway).
  double remote_fraction = 0.0;
  /// Turn each would-be handoff into a cross-cell clone pair instead: one
  /// leg runs locally, the sibling runs on the remote cell, and whichever
  /// completes first posts a cancel for the other through the mailbox.
  bool clone_handoffs = false;
};

class Shard {
 public:
  /// `outbox` must be this cell's entry in the run's Mailbox and must
  /// outlive the shard. May be nullptr only when total_shards == 1.
  Shard(ShardConfig config, Outbox* outbox);

  std::size_t index() const { return config_.index; }
  Platform& platform() { return *platform_; }
  const Platform& platform() const { return *platform_; }
  Engine& engine() { return platform_->engine(); }

  /// Deploy `app` with its root function on server 0 and one extra root
  /// replica per remaining server, so instance counts scale with the cell
  /// size. Returns the app handle; the first deployed app is the target
  /// of the diurnal load loop and of incoming handoffs.
  std::size_t deploy_spread(const wl::App& app);

  /// Start the open-loop diurnal arrival process against the first
  /// deployed app: a thinned Poisson process following `trace`'s
  /// rate_at(t), with each accepted arrival either issued locally or
  /// handed off to a remote cell with probability `remote_fraction`.
  void start_diurnal_load(const wl::AzureTraceConfig& trace);

  /// Run this cell's engine up to (and including) `t`. Called from the
  /// lane executor; everything it touches is cell-private.
  void advance_to(SimTime t) { platform_->run_until(t); }

  /// Entry point for handed-off requests (runs inside this cell's engine
  /// via a mailbox message).
  void inject_request(std::size_t app);
  /// Entry point for the remote leg of a cross-cell clone pair: issues a
  /// tracked request registered under (origin, group) so a later cancel
  /// message can retract it.
  void inject_clone(std::size_t origin, std::uint64_t group, std::size_t app);
  /// Entry point for a clone-cancel message: retracts the (origin, group)
  /// leg if it is still registered here. A missing entry means the leg
  /// already completed (stale cancel, including the both-legs-finish-in-
  /// one-epoch double win) — a deterministic no-op.
  void cancel_clone(std::size_t origin, std::uint64_t group);

  std::uint64_t requests_issued() const { return requests_issued_; }
  std::uint64_t handoffs_sent() const { return handoffs_sent_; }
  std::uint64_t handoffs_received() const { return handoffs_received_; }
  std::uint64_t clone_groups() const { return clone_groups_; }
  std::uint64_t clone_cancels_applied() const {
    return clone_cancels_applied_;
  }
  std::uint64_t clone_cancels_stale() const { return clone_cancels_stale_; }

  /// Deterministic hex-float state digest: request stats plus the full
  /// Recorder dump. Two runs are byte-identical iff every cell's digest
  /// compares equal as a string.
  std::string digest() const;

 private:
  void schedule_next_arrival();
  /// One leg of clone group (origin, group) completed here; unregister it
  /// and post a cancel for the sibling leg living on `peer`.
  void finish_clone_leg(std::size_t peer, std::size_t origin,
                        std::uint64_t group);

  ShardConfig config_;
  Outbox* outbox_;
  std::unique_ptr<Platform> platform_;
  stats::Rng load_rng_;
  /// Rate shape only — every random draw (gaps, thinning, noise, handoff
  /// choice) comes from load_rng_, never from this generator's own stream.
  wl::AzureTraceGenerator rate_model_{wl::AzureTraceConfig{}, 0};
  double peak_rate_ = 0.0;
  std::size_t load_app_ = 0;
  bool has_app_ = false;
  std::uint64_t requests_issued_ = 0;
  std::uint64_t handoffs_sent_ = 0;
  std::uint64_t handoffs_received_ = 0;
  // Cross-cell clone state. The registry maps (origin cell, group id) of
  // every live leg on this cell to the tracked-request handle that can
  // retract it; ordered map so teardown order is deterministic.
  std::uint64_t next_clone_group_ = 1;
  std::map<std::pair<std::size_t, std::uint64_t>, std::uint64_t>
      clone_registry_;
  std::uint64_t clone_groups_ = 0;
  std::uint64_t clone_cancels_sent_ = 0;
  std::uint64_t clone_cancels_received_ = 0;
  std::uint64_t clone_cancels_applied_ = 0;
  std::uint64_t clone_cancels_stale_ = 0;
};

/// The synthetic edge workload the shard-scaling bench and determinism
/// tests deploy on every cell: a single short latency-sensitive function,
/// cheap enough that a 24h diurnal trace stays event-bound rather than
/// compute-bound.
wl::App shard_edge_app();

}  // namespace gsight::sim
