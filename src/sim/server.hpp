// Server — one physical node executing function phases under the
// interference model. Executions progress at rates that depend on the
// whole colocation set; any membership or phase change triggers a
// recompute that (a) banks elapsed progress at the old rates, (b)
// re-evaluates rates, and (c) reschedules completion events. Stale events
// are invalidated by per-execution generation counters.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/interference.hpp"
#include "sim/resources.hpp"
#include "workloads/function_spec.hpp"

namespace gsight::sim {

using ExecId = std::uint64_t;

/// Measured outcome of one completed execution.
struct ExecResult {
  double duration_s = 0.0;     ///< wall-clock busy time
  double solo_s = 0.0;         ///< what the same work took solo
  double mean_ipc = 0.0;       ///< time-weighted effective IPC
  double mean_slowdown = 1.0;  ///< duration / solo
};

/// Hook for exact, time-weighted metric accounting: called for every
/// execution each time progress is banked, with the observation that was
/// in force during [now-dt, now].
class ExecSliceSink {
 public:
  virtual ~ExecSliceSink() = default;
  virtual void on_exec_slice(void* owner, SimTime end, double dt,
                             const ExecObservation& obs,
                             const wl::Phase& phase) = 0;
  /// An execution was retracted (clone cancellation, migration) before
  /// completing; its final partial slice is not banked. Default no-op.
  virtual void on_exec_aborted(void* owner, SimTime when) {
    (void)owner;
    (void)when;
  }
};

class Server {
 public:
  Server(std::size_t id, ServerConfig config, Engine* engine,
         const InterferenceModel* model);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::size_t id() const { return id_; }
  const ServerConfig& config() const { return config_; }

  using CompletionFn = std::function<void(const ExecResult&)>;

  /// Start executing `phases` (already jittered / startup-prefixed).
  /// `owner` is an opaque tag passed to the slice sink (the Instance).
  ExecId begin_execution(std::vector<wl::Phase> phases, CompletionFn on_complete,
                         void* owner = nullptr);
  /// Abort a running execution (migration / scale-down); no completion
  /// callback fires. Returns false if the id is not active.
  bool abort_execution(ExecId id);

  std::size_t active_count() const { return execs_.size(); }
  /// Ids of active executions started with the given owner tag.
  std::vector<ExecId> executions_of(const void* owner) const;
  /// Observation currently in force for an active execution (nullptr when
  /// the id is not active).
  const ExecObservation* observation(ExecId id) const;
  /// Sum of demands of the currently running phases.
  DemandTotals active_demand() const;

  /// Residency accounting (idle instances still hold memory). Memory is
  /// deliberately oversubscribable — serverless platforms over-commit —
  /// but the ledger contracts still guarantee it never goes negative.
  void add_resident(double mem_gb);
  void remove_resident(double mem_gb);
  double resident_mem_gb() const { return resident_mem_.used(); }
  std::size_t resident_count() const { return resident_count_; }

  /// Fraction of cores granted to running executions right now (0..1+).
  double cpu_utilization() const;

  void set_slice_sink(ExecSliceSink* sink) { sink_ = sink; }
  /// Observability: when the tracer is enabled, every completed execution
  /// emits an "exec" span on this server's trace lane.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct Exec {
    ExecId id = 0;
    std::vector<wl::Phase> phases;
    std::size_t phase_idx = 0;
    double remaining = 0.0;  ///< solo-seconds left in the current phase
    double rate = 1.0;
    SimTime last_update = 0.0;
    std::uint64_t gen = 0;
    CompletionFn on_complete;
    void* owner = nullptr;
    ExecObservation obs;
    // Accumulators for ExecResult.
    SimTime started = 0.0;
    double ipc_integral = 0.0;
    double busy_integral = 0.0;
  };

  /// Bank progress at old rates, re-evaluate the colocation, reschedule.
  void recompute();
  void schedule_completion(Exec& e);
  void on_phase_event(ExecId id, std::uint64_t gen);

  std::size_t id_;
  ServerConfig config_;
  Engine* engine_;
  const InterferenceModel* model_;
  ExecSliceSink* sink_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  // Ordered by ExecId (= start order) so every iteration — in particular
  // the colocation vector handed to the interference model in recompute()
  // — is replay-deterministic. An unordered_map here would make rates
  // depend on hash-table layout.
  std::map<ExecId, Exec> execs_;
  ExecId next_id_ = 1;
  ResourceLedger resident_mem_;
  std::size_t resident_count_ = 0;
};

}  // namespace gsight::sim
