#include "sim/cluster_spec.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace gsight::sim {

namespace {

void require_positive(double value, const char* what) {
  if (!(value > 0.0)) {
    throw std::invalid_argument(std::string("ClusterSpec: ") + what +
                                " must be positive");
  }
}

}  // namespace

void ShardTopology::validate() const {
  if (clusters == 0) {
    throw std::invalid_argument("ShardTopology: clusters must be non-zero");
  }
  if (!(std::isfinite(hop_latency_s) && hop_latency_s > 0.0)) {
    throw std::invalid_argument(
        "ShardTopology: hop_latency_s must be finite and positive");
  }
  if (!(std::isfinite(epoch_s) && epoch_s >= 0.0)) {
    throw std::invalid_argument(
        "ShardTopology: epoch_s must be finite and non-negative");
  }
  // Conservative synchronization: within an epoch cells advance without
  // hearing from each other, which is only sound while no cross-cell
  // message can land before the next barrier — i.e. epoch <= hop.
  if (epoch_s > hop_latency_s) {
    throw std::invalid_argument(
        "ShardTopology: epoch_s must not exceed hop_latency_s");
  }
}

void ClusterSpec::validate() const {
  if (servers == 0) {
    throw std::invalid_argument("ClusterSpec: servers must be non-zero");
  }
  require_positive(server.cores, "server.cores");
  require_positive(server.llc_mb, "server.llc_mb");
  require_positive(server.mem_gb, "server.mem_gb");
  require_positive(server.membw_gbps, "server.membw_gbps");
  require_positive(server.disk_mbps, "server.disk_mbps");
  require_positive(server.net_mbps, "server.net_mbps");
  require_positive(server.base_freq_ghz, "server.base_freq_ghz");
  require_positive(interference.mem_latency_cycles,
                   "interference.mem_latency_cycles");
  if (!(interference.max_utilization > 0.0 &&
        interference.max_utilization < 1.0)) {
    throw std::invalid_argument(
        "ClusterSpec: interference.max_utilization must lie in (0, 1)");
  }
  topology.validate();
}

}  // namespace gsight::sim
