// Deterministic cross-shard mailbox (DESIGN.md §13). Cells advance an
// epoch in isolation and buffer every cross-cell effect (request handoffs,
// global-metric reads) in a per-cell Outbox. At the epoch barrier the
// coordinator drains all outboxes on one thread and replays the messages
// sorted by (epoch, source cell, per-cell sequence) — a total order that
// depends only on what each cell did, never on how cells were interleaved
// across lanes or threads. That total order is what makes an N-shard run
// byte-identical to the 1-shard run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"

namespace gsight::sim {

class Shard;

/// One buffered cross-cell effect. `apply` runs inside the destination
/// cell's engine at `deliver_at` (>= the barrier closing the sending
/// epoch — see ShardTopology::validate()).
struct ShardMessage {
  std::uint64_t epoch = 0;   ///< epoch the message was posted in
  std::size_t source = 0;    ///< posting cell
  std::uint64_t seq = 0;     ///< per-source counter, monotone for all time
  std::size_t dest = 0;      ///< receiving cell
  SimTime sent_at = 0.0;     ///< source-cell sim time at post
  SimTime deliver_at = 0.0;  ///< sent_at + hop latency
  std::function<void(Shard&)> apply;
};

/// Strict weak order by (epoch, source, seq) — the replay order.
inline bool mailbox_order(const ShardMessage& a, const ShardMessage& b) {
  if (a.epoch != b.epoch) return a.epoch < b.epoch;
  if (a.source != b.source) return a.source < b.source;
  return a.seq < b.seq;
}

/// Per-cell send buffer. Owned by the Mailbox, written only by the owning
/// cell's events (each cell runs on exactly one lane per epoch), drained
/// only by the coordinator at the barrier — so it needs no locking.
class Outbox {
 public:
  explicit Outbox(std::size_t source) : source_(source) {}

  std::size_t source() const { return source_; }
  void begin_epoch(std::uint64_t epoch) { epoch_ = epoch; }

  void post(std::size_t dest, SimTime sent_at, SimTime deliver_at,
            std::function<void(Shard&)> apply);

  std::vector<ShardMessage> drain();
  std::uint64_t posted() const { return seq_; }

 private:
  std::size_t source_;
  std::uint64_t epoch_ = 0;
  std::uint64_t seq_ = 0;
  std::vector<ShardMessage> pending_;
};

class Mailbox {
 public:
  explicit Mailbox(std::size_t cells);

  std::size_t cells() const { return outboxes_.size(); }
  Outbox& outbox(std::size_t cell) { return outboxes_.at(cell); }

  /// Stamp every outbox with the epoch about to run.
  void begin_epoch(std::uint64_t epoch);

  /// Drain every outbox and return the messages in replay order
  /// (epoch, source, seq). Coordinator-only: runs at the barrier, after
  /// all lanes have joined.
  std::vector<ShardMessage> collect();

  /// Total messages ever collected.
  std::uint64_t messages_exchanged() const { return exchanged_; }

 private:
  std::vector<Outbox> outboxes_;
  std::uint64_t exchanged_ = 0;
};

}  // namespace gsight::sim
