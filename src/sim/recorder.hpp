// Recorder — exact, time-weighted metric accounting per (app, function),
// bucketed into fixed windows (1 s by default, matching the paper's
// "collected once per second" sampling). The server calls back with every
// execution slice, so integrals are exact rather than sampled; slices that
// span window boundaries are split across them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/server.hpp"

namespace gsight::sim {

/// Time-weighted sums of everything a profiler observes. Divide by `dt`
/// (via `finalize`) to obtain mean values over the window.
struct MetricAccum {
  double dt = 0.0;
  double ipc = 0.0;
  double l1i_mpki = 0.0, l1d_mpki = 0.0, l2_mpki = 0.0, l3_mpki = 0.0;
  double branch_mpki = 0.0, dtlb_mpki = 0.0, itlb_mpki = 0.0;
  double mem_lp = 0.0;
  double ctx_per_s = 0.0;
  double cpu_freq_ghz = 0.0;
  double llc_occupancy_mb = 0.0;
  double membw_gbps = 0.0, disk_mbps = 0.0, net_mbps = 0.0;
  double cores_granted = 0.0;
  double mem_gb = 0.0;
  double cpu_util = 0.0;  ///< granted cores / demanded cores

  void add(double slice_dt, const ExecObservation& obs, const wl::Phase& phase);
  void merge(const MetricAccum& other);
  /// Means over the accumulated time (all-zero if dt == 0).
  MetricAccum finalized() const;
};

class Recorder final : public ExecSliceSink {
 public:
  explicit Recorder(double window_s = 1.0) : window_s_(window_s) {}

  void on_exec_slice(void* owner, SimTime end, double dt,
                     const ExecObservation& obs,
                     const wl::Phase& phase) override;
  void on_exec_aborted(void* owner, SimTime when) override;

  /// Per-window means for one function, ordered by window index.
  std::vector<std::pair<std::int64_t, MetricAccum>> windows(
      std::size_t app, std::size_t fn) const;
  /// Whole-run aggregate for one function.
  MetricAccum total(std::size_t app, std::size_t fn) const;
  /// Busy seconds recorded for one function.
  double busy_seconds(std::size_t app, std::size_t fn) const;
  /// Executions of one function retracted before completing (clone
  /// cancellations, migrations).
  std::uint64_t aborts(std::size_t app, std::size_t fn) const;

  double window_s() const { return window_s_; }
  void clear() {
    data_.clear();
    aborts_.clear();
  }

  /// Deterministic serialization of every (app, fn, window) accumulator.
  /// Doubles are hex-float formatted, so two dumps compare equal iff the
  /// recordings are bit-identical — the replay/determinism harness diffs
  /// this across twin same-seed runs.
  void dump(std::ostream& os) const;
  std::string dump_string() const;

 private:
  using Key = std::pair<std::size_t, std::size_t>;
  double window_s_;
  std::map<Key, std::map<std::int64_t, MetricAccum>> data_;
  // Abort counters per (app, fn); a separate map so dumps from runs
  // without cancellations stay byte-identical to pre-cloning dumps.
  std::map<Key, std::uint64_t> aborts_;
};

}  // namespace gsight::sim
