// gsight-analyze: hot-path
#include "sim/server.hpp"

#include <cmath>

#include "core/contracts.hpp"
#include "obs/json.hpp"

namespace gsight::sim {

Server::Server(std::size_t id, ServerConfig config, Engine* engine,
               const InterferenceModel* model)
    : id_(id),
      config_(config),
      engine_(engine),
      model_(model),
      resident_mem_(config.mem_gb, ResourceLedger::Policy::kOversubscribe) {
  GSIGHT_ASSERT(engine_ != nullptr && model_ != nullptr);
}

void Server::add_resident(double mem_gb) {
  resident_mem_.acquire(mem_gb);
  ++resident_count_;
}

void Server::remove_resident(double mem_gb) {
  GSIGHT_ASSERT(resident_count_ > 0,
                "remove_resident with no resident instances");
  resident_mem_.release(mem_gb);
  --resident_count_;
}

ExecId Server::begin_execution(std::vector<wl::Phase> phases,
                               CompletionFn on_complete, void* owner) {
  GSIGHT_ASSERT(!phases.empty(), "execution needs at least one phase");
  Exec e;
  e.id = next_id_++;
  e.phases = std::move(phases);
  e.remaining = e.phases[0].solo_duration_s;
  e.last_update = engine_->now();
  e.started = engine_->now();
  e.on_complete = std::move(on_complete);
  e.owner = owner;
  const ExecId id = e.id;
  execs_.emplace(id, std::move(e));
  recompute();
  return id;
}

bool Server::abort_execution(ExecId id) {
  const auto it = execs_.find(id);
  if (it == execs_.end()) return false;
  if (sink_ != nullptr) {
    sink_->on_exec_aborted(it->second.owner, engine_->now());
  }
  execs_.erase(it);
  recompute();
  return true;
}

std::vector<ExecId> Server::executions_of(const void* owner) const {
  std::vector<ExecId> out;
  for (const auto& [id, e] : execs_) {
    if (e.owner == owner) out.push_back(id);
  }
  return out;
}

const ExecObservation* Server::observation(ExecId id) const {
  const auto it = execs_.find(id);
  return it == execs_.end() ? nullptr : &it->second.obs;
}

DemandTotals Server::active_demand() const {
  DemandTotals totals;
  for (const auto& [id, e] : execs_) {
    totals.add(e.phases[e.phase_idx].demand);
  }
  return totals;
}

double Server::cpu_utilization() const {
  double granted = 0.0;
  for (const auto& [id, e] : execs_) {
    granted += e.phases[e.phase_idx].demand.cores * e.obs.cpu_share;
  }
  return granted / config_.cores;
}

void Server::recompute() {
  const SimTime now = engine_->now();
  // 1. Bank progress under the rates that were in force.
  for (auto& [id, e] : execs_) {
    const double dt = now - e.last_update;
    GSIGHT_INVARIANT(dt >= 0.0, "execution progressed backwards in time");
    if (dt > 0.0) {
      e.remaining = std::max(0.0, e.remaining - e.rate * dt);
      e.ipc_integral += e.obs.ipc * dt;
      e.busy_integral += dt;
      if (sink_ != nullptr) {
        sink_->on_exec_slice(e.owner, now, dt, e.obs, e.phases[e.phase_idx]);
      }
    }
    e.last_update = now;
  }
  // 2. Re-evaluate the colocation.
  std::vector<const wl::Phase*> phases;
  std::vector<Exec*> order;
  phases.reserve(execs_.size());
  order.reserve(execs_.size());
  for (auto& [id, e] : execs_) {
    phases.push_back(&e.phases[e.phase_idx]);
    order.push_back(&e);
  }
  const auto observations = model_->evaluate(config_, phases);
  // 3. Apply new rates and reschedule completions. Under processor
  // sharing each execution is additionally capped to an equal share of
  // the cores: the interference model splits CPU time proportionally to
  // demand, so the egalitarian discipline is a further fair-share factor
  // on executions demanding more than cores/n.
  const double fair_cores = (config_.discipline ==
                                 ServiceDiscipline::kProcessorSharing &&
                             !order.empty())
                                ? config_.cores / static_cast<double>(
                                                      order.size())
                                : 0.0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    Exec& e = *order[i];
    e.obs = observations[i];
    e.rate = std::max(e.obs.rate, 1e-9);
    if (fair_cores > 0.0) {
      const double want = e.phases[e.phase_idx].demand.cores;
      if (want > fair_cores) e.rate *= fair_cores / want;
      e.rate = std::max(e.rate, 1e-9);
    }
    GSIGHT_INVARIANT(std::isfinite(e.rate) && e.rate > 0.0,
                     "interference model produced a bad progress rate");
    GSIGHT_INVARIANT(e.remaining >= 0.0, "negative remaining work");
    schedule_completion(e);
  }
}

void Server::schedule_completion(Exec& e) {
  ++e.gen;
  const double eta = e.remaining / e.rate;
  const ExecId id = e.id;
  const std::uint64_t gen = e.gen;
  engine_->after(eta, [this, id, gen] { on_phase_event(id, gen); });
}

void Server::on_phase_event(ExecId id, std::uint64_t gen) {
  const auto it = execs_.find(id);
  if (it == execs_.end() || it->second.gen != gen) return;  // stale event
  Exec& e = it->second;
  const SimTime now = engine_->now();
  // Bank the final slice of this phase.
  const double dt = now - e.last_update;
  if (dt > 0.0) {
    e.ipc_integral += e.obs.ipc * dt;
    e.busy_integral += dt;
    if (sink_ != nullptr) {
      sink_->on_exec_slice(e.owner, now, dt, e.obs, e.phases[e.phase_idx]);
    }
  }
  e.last_update = now;
  e.remaining = 0.0;

  if (e.phase_idx + 1 < e.phases.size()) {
    ++e.phase_idx;
    e.remaining = e.phases[e.phase_idx].solo_duration_s;
    recompute();
    return;
  }
  // Execution complete: gather the result, remove, then notify.
  ExecResult result;
  result.duration_s = now - e.started;
  for (const auto& p : e.phases) result.solo_s += p.solo_duration_s;
  result.mean_ipc =
      e.busy_integral > 0.0 ? e.ipc_integral / e.busy_integral : 0.0;
  result.mean_slowdown =
      result.solo_s > 0.0 ? result.duration_s / result.solo_s : 1.0;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->complete(
        e.started, result.duration_s, "server.exec", "server",
        obs::Lanes::kPlatform, /*tid=*/100 + id_,
        {{"slowdown", obs::json_number(result.mean_slowdown)},
         {"ipc", obs::json_number(result.mean_ipc)}});
  }
  CompletionFn on_complete = std::move(e.on_complete);
  execs_.erase(it);
  recompute();
  if (on_complete) on_complete(result);
}

}  // namespace gsight::sim
