// Gateway — the shared frontend of OpenFaaS/OpenWhisk-style platforms.
// Every invocation is received here and forwarded to a backend instance.
// Two properties matter for the paper's observations:
//  * per-forward cost grows with the queue the gateway manages, so one
//    saturated function degrades invocation speed for all others
//    (Observation 4, mechanism 2);
//  * bookkeeping cost grows superlinearly with the number of instances,
//    producing the >120-instance forwarding knee of Figure 14.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "stats/summary.hpp"

namespace gsight::sim {

/// Upper bound on the cloning fan-out. Small on purpose: it lets the
/// request layer keep per-clone state in a fixed-size array (no
/// allocation on the request hot path) and matches the d <= 4 range
/// studied in the request-cloning PS literature.
inline constexpr std::size_t kMaxCloneFactor = 8;

/// Gateway-level request cloning ("Modeling of Request Cloning in Cloud
/// Server Systems using Processor Sharing"): each external request fans
/// out into `factor` clones routed to distinct servers; the first clone
/// to complete wins and the siblings are cancelled.
struct CloneConfig {
  enum class Policy {
    /// Each clone draws its own duration jitter — clones act like
    /// independent samples of the service time (C(n,d)-style).
    kIndependent,
    /// Every sibling gets the same jitter draw — only placement and
    /// interference differ, the paper's synchronized-service model.
    kSynchronized,
  };
  std::size_t factor = 1;  ///< d; 1 disables cloning
  Policy policy = Policy::kIndependent;

  /// Throws std::invalid_argument when factor is outside
  /// [1, kMaxCloneFactor].
  void validate() const;
};

struct GatewayConfig {
  double base_service_s = 0.0001;  ///< cost of one forward, unloaded
  /// Extra service cost per invocation queued at the *backends* (the
  /// waiting queues of saturated functions the gateway must manage —
  /// Observation 4's second mechanism), as a fraction of base. The
  /// gateway's own queue is deliberately not priced: that feedback loop
  /// would be unconditionally unstable once arrival exceeds capacity.
  double backlog_coeff = 0.002;
  /// Ceiling on the backlog multiplier (1 + coeff * backlog is clamped to
  /// this) so a hopelessly saturated backend degrades the gateway without
  /// killing it.
  double max_backlog_factor = 3.0;
  /// Instance-count knee: cost multiplier is 1 + (n / knee)^exponent.
  double instance_knee = 120.0;
  double instance_exponent = 6.0;
  /// Request-cloning discipline applied at admission (jobs are never
  /// cloned — replaying a batch job d times has no latency story).
  CloneConfig clone;

  /// Throws std::invalid_argument on any field that would make
  /// current_service_s() non-finite or negative. Mirrors
  /// ClusterSpec::validate(): configuration errors are reported at
  /// construction, where the bad field is named, instead of tripping the
  /// "bad gateway service time" invariant mid-run.
  void validate() const;
};

class Gateway {
 public:
  Gateway(Engine* engine, GatewayConfig config);

  /// Counter of invocations queued at backends; maintained by the
  /// platform so the gateway can price queue management.
  void set_backend_backlog_source(std::function<std::size_t()> source) {
    backend_backlog_ = std::move(source);
  }
  void set_instance_count_source(std::function<std::size_t()> source) {
    instance_count_ = std::move(source);
  }

  /// Accept one invocation; `deliver` runs after the (load-dependent)
  /// forwarding delay.
  void forward(std::function<void()> deliver);

  std::size_t queue_depth() const { return queue_.size(); }
  std::uint64_t forwards() const { return forwards_; }
  const CloneConfig& clone_config() const { return config_.clone; }
  const stats::Reservoir& forwarding_latencies() const { return latencies_; }
  /// Instantaneous per-forward service time under current load.
  double current_service_s() const;

  /// Observability wiring (Platform). `tracer` may be the platform's
  /// always-present tracer (cost is one null-sink check per forward);
  /// `forward_hist` receives every forwarding latency.
  void set_observability(obs::Tracer* tracer, obs::Counter* forward_counter,
                         obs::HistogramMetric* forward_hist) {
    tracer_ = tracer;
    forward_counter_ = forward_counter;
    forward_hist_ = forward_hist;
  }

 private:
  void serve_next();

  Engine* engine_;
  GatewayConfig config_;
  std::function<std::size_t()> backend_backlog_;
  std::function<std::size_t()> instance_count_;
  struct Item {
    SimTime enqueued;
    std::function<void()> deliver;
  };
  std::deque<Item> queue_;
  bool busy_ = false;
  std::uint64_t forwards_ = 0;
  stats::Reservoir latencies_{8192, 0xFACE};
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* forward_counter_ = nullptr;
  obs::HistogramMetric* forward_hist_ = nullptr;
};

}  // namespace gsight::sim
