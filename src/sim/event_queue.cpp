#include "sim/event_queue.hpp"

#include <cassert>
#include <memory>

namespace gsight::sim {

void EventQueue::push(SimTime when, Callback cb) {
  heap_.push(Entry{when, next_seq_++, std::make_shared<Callback>(std::move(cb))});
}

SimTime EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.top().when;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  assert(!heap_.empty());
  Entry e = heap_.top();
  heap_.pop();
  return {e.when, std::move(*e.cb)};
}

}  // namespace gsight::sim
