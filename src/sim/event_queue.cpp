#include "sim/event_queue.hpp"

#include <cmath>
#include <memory>

#include "core/contracts.hpp"

namespace gsight::sim {

void EventQueue::push(SimTime when, Callback cb) {
  GSIGHT_ASSERT(!std::isnan(when), "event time is NaN");
  GSIGHT_ASSERT(std::isfinite(when), "event time is infinite");
  GSIGHT_ASSERT(when >= 0.0, "event time is negative");
  heap_.push(Entry{when, next_seq_++, std::make_shared<Callback>(std::move(cb))});
}

SimTime EventQueue::next_time() const {
  GSIGHT_ASSERT(!heap_.empty(), "next_time on empty queue");
  return heap_.top().when;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  GSIGHT_ASSERT(!heap_.empty(), "pop on empty queue");
  Entry e = heap_.top();
  heap_.pop();
  GSIGHT_INVARIANT(e.when >= last_popped_,
                   "event times dequeued out of order");
  last_popped_ = e.when;
  return {e.when, std::move(*e.cb)};
}

}  // namespace gsight::sim
