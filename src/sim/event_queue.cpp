#include "sim/event_queue.hpp"

#include <cmath>
#include <utility>

#include "core/contracts.hpp"

namespace gsight::sim {

void EventQueue::sift_up(std::size_t i) {
  Entry e = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(e);
}

// Re-seat `e` starting from the root after the minimum was removed.
void EventQueue::sift_down(Entry&& e) {
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], e)) break;
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(e);
}

void EventQueue::push(SimTime when, Callback cb) {
  GSIGHT_ASSERT(!std::isnan(when), "event time is NaN");
  GSIGHT_ASSERT(std::isfinite(when), "event time is infinite");
  GSIGHT_ASSERT(when >= 0.0, "event time is negative");
  heap_.push_back(Entry{when, next_seq_++, std::move(cb)});
  sift_up(heap_.size() - 1);
}

SimTime EventQueue::next_time() const {
  GSIGHT_ASSERT(!heap_.empty(), "next_time on empty queue");
  return heap_.front().when;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  GSIGHT_ASSERT(!heap_.empty(), "pop on empty queue");
  Entry e = std::move(heap_.front());
  Entry last = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(std::move(last));
  GSIGHT_INVARIANT(e.when >= last_popped_,
                   "event times dequeued out of order");
  last_popped_ = e.when;
  return {e.when, std::move(e.cb)};
}

}  // namespace gsight::sim
