#include "baselines/pythia.hpp"

namespace gsight::baselines {

namespace {

// Workload-level profile: the 16 selected metrics averaged across the
// workload's functions, placement ignored.
std::array<double, prof::kSelectedCount> workload_metrics(
    const prof::AppProfile& profile) {
  std::array<double, prof::kSelectedCount> m{};
  if (profile.functions.empty()) return m;
  for (const auto& fn : profile.functions) {
    const auto sel = prof::select(fn.metrics);
    for (std::size_t k = 0; k < sel.size(); ++k) m[k] += sel[k];
  }
  const double inv = 1.0 / static_cast<double>(profile.functions.size());
  for (auto& v : m) v *= inv;
  return m;
}

}  // namespace

std::vector<double> PythiaPredictor::featurize(const core::Scenario& scenario) {
  scenario.validate();
  const auto target = workload_metrics(*scenario.workloads[0].profile);
  std::array<double, prof::kSelectedCount> others{};
  for (std::size_t i = 1; i < scenario.workloads.size(); ++i) {
    const auto m = workload_metrics(*scenario.workloads[i].profile);
    for (std::size_t k = 0; k < m.size(); ++k) others[k] += m[k];
  }
  std::vector<double> out;
  out.reserve(2 * prof::kSelectedCount);
  out.insert(out.end(), target.begin(), target.end());
  out.insert(out.end(), others.begin(), others.end());
  return out;
}

double PythiaPredictor::predict(const core::Scenario& scenario) const {
  if (!model_.fitted()) return 0.0;
  return model_.predict(featurize(scenario));
}

void PythiaPredictor::observe(const core::Scenario& scenario,
                              double actual_qos) {
  const auto x = featurize(scenario);
  if (pending_.empty() && pending_.feature_count() == 0) {
    pending_ = ml::Dataset(x.size());
    if (buffer_.feature_count() == 0) buffer_ = ml::Dataset(x.size());
  }
  pending_.add(x, actual_qos);
  if (pending_.size() >= config_.update_batch) flush();
}

void PythiaPredictor::flush() {
  if (pending_.empty()) return;
  buffer_.append(pending_);
  pending_ = ml::Dataset(buffer_.feature_count());
  model_ = ml::RidgeClosedForm(config_.l2);
  model_.fit(buffer_);
}

}  // namespace gsight::baselines
