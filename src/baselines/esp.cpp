#include "baselines/esp.hpp"

namespace gsight::baselines {

namespace {

// ESP's four metrics, aggregated workload-level (mean over functions).
std::array<double, 4> esp_metrics(const prof::AppProfile& profile) {
  std::array<double, 4> m{};
  if (profile.functions.empty()) return m;
  for (const auto& fn : profile.functions) {
    m[0] += fn.metrics[static_cast<std::size_t>(prof::Metric::kIpc)];
    m[1] += fn.metrics[static_cast<std::size_t>(prof::Metric::kL2Mpki)];
    m[2] += fn.metrics[static_cast<std::size_t>(prof::Metric::kL3Mpki)];
    m[3] += fn.metrics[static_cast<std::size_t>(prof::Metric::kMemIo)];
  }
  const double inv = 1.0 / static_cast<double>(profile.functions.size());
  for (auto& v : m) v *= inv;
  return m;
}

}  // namespace

std::vector<double> EspPredictor::featurize(const core::Scenario& scenario) {
  scenario.validate();
  const auto target = esp_metrics(*scenario.workloads[0].profile);
  std::array<double, 4> others{};
  for (std::size_t i = 1; i < scenario.workloads.size(); ++i) {
    const auto m = esp_metrics(*scenario.workloads[i].profile);
    for (std::size_t k = 0; k < 4; ++k) others[k] += m[k];
  }
  // Base features: target 4 + corunner-aggregate 4.
  std::vector<double> base;
  base.insert(base.end(), target.begin(), target.end());
  base.insert(base.end(), others.begin(), others.end());
  // Quadratic expansion (ESP uses polynomial feature maps with selection).
  std::vector<double> out = base;
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (std::size_t j = i; j < base.size(); ++j) {
      out.push_back(base[i] * base[j]);
    }
  }
  return out;
}

double EspPredictor::predict(const core::Scenario& scenario) const {
  if (!model_.fitted()) return 0.0;
  return model_.predict(featurize(scenario));
}

void EspPredictor::observe(const core::Scenario& scenario, double actual_qos) {
  const auto x = featurize(scenario);
  if (pending_.empty() && pending_.feature_count() == 0) {
    pending_ = ml::Dataset(x.size());
    if (buffer_.feature_count() == 0) buffer_ = ml::Dataset(x.size());
  }
  pending_.add(x, actual_qos);
  if (pending_.size() >= config_.update_batch) flush();
}

void EspPredictor::flush() {
  if (pending_.empty()) return;
  buffer_.append(pending_);
  pending_ = ml::Dataset(buffer_.feature_count());
  model_ = ml::RidgeClosedForm(config_.l2);
  model_.fit(buffer_);
}

}  // namespace gsight::baselines
