// Pythia baseline [55] (Xu et al., Middleware'18): linear contention
// prediction for colocated workloads. Pythia characterises each workload
// by its resource usage vector and predicts the target's performance with
// a linear model over the target's own profile plus the *sum* of its
// corunners' usage — workload-level, blind to which server each function
// sits on and to temporal overlap, which is exactly why it mispredicts
// under partial interference (§6.2). Its scheduling policy is Best Fit.
#pragma once

#include "core/predictor.hpp"
#include "ml/linear.hpp"

namespace gsight::baselines {

struct PythiaConfig {
  double l2 = 1e-2;
  std::size_t update_batch = 32;
};

class PythiaPredictor final : public core::ScenarioPredictor {
 public:
  explicit PythiaPredictor(PythiaConfig config = {}) : config_(config) {}

  double predict(const core::Scenario& scenario) const override;
  void observe(const core::Scenario& scenario, double actual_qos) override;
  void flush() override;
  std::string name() const override { return "Pythia"; }

  std::size_t samples_seen() const { return buffer_.size(); }

  static std::vector<double> featurize(const core::Scenario& scenario);

 private:
  PythiaConfig config_;
  ml::Dataset buffer_;
  ml::Dataset pending_;
  ml::RidgeClosedForm model_{1e-2};
};

}  // namespace gsight::baselines
