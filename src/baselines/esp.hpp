// ESP baseline [37] (Mishra, Lafferty, Hoffmann — ICAC'17): predicts
// application interference with a regression over a small set of
// cross-application features. Faithful to its limitations as Table 2 and
// §6.2 describe them: only four microarchitecture metrics per workload
// (IPC, L2 access rate, L3 access rate, memory bandwidth), workload-level
// aggregation (no functions, no call path), no spatial or temporal overlap
// coding. We give it ESP's quadratic feature expansion and a closed-form
// ridge fit, refit from a growing buffer on each update batch.
#pragma once

#include "core/predictor.hpp"
#include "ml/linear.hpp"

namespace gsight::baselines {

struct EspConfig {
  double l2 = 1e-2;
  std::size_t update_batch = 32;
};

class EspPredictor final : public core::ScenarioPredictor {
 public:
  explicit EspPredictor(EspConfig config = {}) : config_(config) {}

  double predict(const core::Scenario& scenario) const override;
  void observe(const core::Scenario& scenario, double actual_qos) override;
  void flush() override;
  std::string name() const override { return "ESP"; }

  std::size_t samples_seen() const { return buffer_.size(); }

  /// The quadratic-expanded feature vector (exposed for tests).
  static std::vector<double> featurize(const core::Scenario& scenario);

 private:
  EspConfig config_;
  ml::Dataset buffer_;
  ml::Dataset pending_;
  ml::RidgeClosedForm model_{1e-2};
};

}  // namespace gsight::baselines
