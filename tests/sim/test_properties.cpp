// Property-style sweeps over the simulator's invariants.
#include <gtest/gtest.h>

#include "sim/interference.hpp"
#include "sim/recorder.hpp"
#include "stats/rng.hpp"
#include "workloads/phase.hpp"

namespace gsight::sim {
namespace {

wl::Phase random_phase(stats::Rng& rng) {
  wl::Phase p;
  p.name = "rand";
  p.solo_duration_s = rng.uniform(0.001, 10.0);
  p.demand.cores = rng.uniform(0.1, 8.0);
  p.demand.llc_mb = rng.uniform(0.1, 20.0);
  p.demand.membw_gbps = rng.uniform(0.1, 12.0);
  p.demand.disk_mbps = rng.uniform(0.0, 400.0);
  p.demand.net_mbps = rng.uniform(0.0, 2000.0);
  p.demand.mem_gb = rng.uniform(0.1, 8.0);
  p.demand.frac_cpu = rng.uniform(0.2, 0.9);
  p.demand.frac_disk = rng.uniform(0.0, 1.0 - p.demand.frac_cpu);
  p.demand.frac_net =
      rng.uniform(0.0, 1.0 - p.demand.frac_cpu - p.demand.frac_disk);
  p.uarch.base_ipc = rng.uniform(0.5, 3.0);
  p.uarch.l2_mpki = rng.uniform(1.0, 25.0);
  p.uarch.l3_mpki = rng.uniform(0.2, 12.0);
  p.uarch.mem_lp = rng.uniform(1.0, 8.0);
  return p;
}

class InterferenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterferenceProperty, SoloAlwaysRunsAtRateOne) {
  stats::Rng rng(GetParam());
  InterferenceModel model;
  const auto server = ServerConfig::socket();
  for (int i = 0; i < 50; ++i) {
    auto p = random_phase(rng);
    p.demand.cores = std::min(p.demand.cores, server.cores);
    p.demand.mem_gb = std::min(p.demand.mem_gb, server.mem_gb);
    const auto ob = model.solo(server, p);
    EXPECT_NEAR(ob.rate, 1.0, 1e-9);
    EXPECT_NEAR(ob.ipc, p.uarch.base_ipc, 1e-9);
  }
}

TEST_P(InterferenceProperty, ColocationNeverExceedsSoloSpeed) {
  stats::Rng rng(GetParam() ^ 0xF00D);
  InterferenceModel model;
  const auto server = ServerConfig::socket();
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<wl::Phase> phases;
    const std::size_t n = 2 + rng.uniform_index(5);
    for (std::size_t i = 0; i < n; ++i) phases.push_back(random_phase(rng));
    std::vector<const wl::Phase*> ptrs;
    for (const auto& p : phases) ptrs.push_back(&p);
    const auto obs = model.evaluate(server, ptrs);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(obs[i].rate, 1.0 + 1e-9);
      EXPECT_LE(obs[i].ipc, phases[i].uarch.base_ipc + 1e-9);
      EXPECT_GT(obs[i].rate, 0.0);
      EXPECT_GE(obs[i].uarch_slowdown, 1.0 - 1e-9);
    }
  }
}

TEST_P(InterferenceProperty, IdenticalPhasesGetIdenticalObservations) {
  stats::Rng rng(GetParam() ^ 0xBEEF);
  InterferenceModel model;
  const auto server = ServerConfig::socket();
  const auto p = random_phase(rng);
  std::vector<const wl::Phase*> ptrs{&p, &p, &p};
  const auto obs = model.evaluate(server, ptrs);
  for (std::size_t i = 1; i < obs.size(); ++i) {
    EXPECT_DOUBLE_EQ(obs[i].rate, obs[0].rate);
    EXPECT_DOUBLE_EQ(obs[i].ipc, obs[0].ipc);
    EXPECT_DOUBLE_EQ(obs[i].llc_occupancy_mb, obs[0].llc_occupancy_mb);
  }
}

TEST_P(InterferenceProperty, BiggerServerNeverSlower) {
  stats::Rng rng(GetParam() ^ 0xCAFE);
  InterferenceModel model;
  auto small = ServerConfig::socket();
  auto big = small;
  big.cores *= 2;
  big.llc_mb *= 2;
  big.membw_gbps *= 2;
  big.disk_mbps *= 2;
  big.net_mbps *= 2;
  big.mem_gb *= 2;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<wl::Phase> phases;
    for (int i = 0; i < 4; ++i) phases.push_back(random_phase(rng));
    std::vector<const wl::Phase*> ptrs;
    for (const auto& p : phases) ptrs.push_back(&p);
    const auto obs_small = model.evaluate(small, ptrs);
    const auto obs_big = model.evaluate(big, ptrs);
    for (std::size_t i = 0; i < phases.size(); ++i) {
      EXPECT_GE(obs_big[i].rate, obs_small[i].rate - 1e-9) << trial;
      EXPECT_GE(obs_big[i].ipc, obs_small[i].ipc - 1e-9) << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterferenceProperty,
                         ::testing::Values(1, 7, 42, 1234));

// (Window splitting of long slices is covered end-to-end by
// Recorder.WindowsCoverBusyTime in test_request_platform.cpp.)
TEST(MetricAccum, WeightedMeanIsExact) {
  ExecObservation ob;
  ob.ipc = 2.0;
  wl::Phase phase = wl::cpu_phase("p", 10.0);
  MetricAccum acc;
  acc.add(7.25, ob, phase);
  ob.ipc = 1.0;
  acc.add(2.75, ob, phase);
  const auto f = acc.finalized();
  EXPECT_NEAR(f.dt, 10.0, 1e-12);
  EXPECT_NEAR(f.ipc, (7.25 * 2.0 + 2.75 * 1.0) / 10.0, 1e-12);
}

TEST(MetricAccumProperty, MergeEqualsSequential) {
  stats::Rng rng(3);
  ExecObservation ob;
  wl::Phase phase = wl::mixed_phase("m", 1.0);
  MetricAccum a, b, both;
  for (int i = 0; i < 20; ++i) {
    ob.ipc = rng.uniform(0.5, 3.0);
    ob.l3_mpki = rng.uniform(0.0, 10.0);
    const double dt = rng.uniform(0.01, 1.0);
    (i % 2 == 0 ? a : b).add(dt, ob, phase);
    both.add(dt, ob, phase);
  }
  a.merge(b);
  EXPECT_NEAR(a.dt, both.dt, 1e-12);
  EXPECT_NEAR(a.finalized().ipc, both.finalized().ipc, 1e-12);
  EXPECT_NEAR(a.finalized().l3_mpki, both.finalized().l3_mpki, 1e-12);
}

TEST(MetricAccum, FinalizedOfEmptyIsZero) {
  const MetricAccum acc;
  const auto f = acc.finalized();
  EXPECT_DOUBLE_EQ(f.dt, 0.0);
  EXPECT_DOUBLE_EQ(f.ipc, 0.0);
}

}  // namespace
}  // namespace gsight::sim
