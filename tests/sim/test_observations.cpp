// Integration tests reproducing the paper's §2 observations qualitatively
// on the simulator — these are the ground-truth phenomena the predictor is
// later trained on, so they are guarded by tests, not just benches.
//
// Placement unit: a socket (§2.1 binds colocations to a socket), so
// contention actually bites. Cold starts are stripped and measurement
// starts after warmup.
#include <gtest/gtest.h>

#include "sim/platform.hpp"
#include "stats/summary.hpp"
#include "workloads/ecommerce.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/socialnetwork.hpp"
#include "workloads/sparkapps.hpp"

namespace gsight::sim {
namespace {

PlatformConfig socket_testbed(std::size_t servers, std::uint64_t seed = 99) {
  PlatformConfig pc;
  pc.servers = servers;
  pc.server = ServerConfig::socket();
  pc.seed = seed;
  pc.instance.startup_cores = 0.0;
  pc.instance.startup_disk_mbps = 0.0;
  return pc;
}

wl::App warm_social_network() {
  auto sn = wl::social_network();
  for (auto& fn : sn.functions) fn.cold_start_s = 0.0;
  return sn;
}

// Social network spread across 9 sockets with an optional corunner pinned
// to one victim function's socket; returns the e2e p99 over [10, 40) s.
double run_sn_p99_with_corunner(const wl::App* corunner, std::size_t victim_fn,
                                double qps = 90.0) {
  Platform platform(socket_testbed(9));
  const auto sn = warm_social_network();
  std::vector<std::size_t> placement(9);
  for (std::size_t i = 0; i < 9; ++i) placement[i] = i;
  const std::size_t sn_id = platform.deploy(sn, placement);
  if (corunner != nullptr) {
    const std::size_t co_id = platform.deploy(
        *corunner,
        std::vector<std::size_t>(corunner->function_count(), victim_fn));
    platform.submit_job(co_id);
  }
  platform.set_open_loop(sn_id, qps);
  platform.run_until(40.0);
  auto lat = platform.stats(sn_id).e2e_values_between(10.0, 40.0);
  return stats::percentile(std::move(lat), 99.0);
}

TEST(Observation1, VolatilityAcrossCorunners) {
  // matmul on a critical function hurts badly; iperf barely registers
  // (network-bound corunners do not dent IPC — Figure 3(a)).
  const double baseline = run_sn_p99_with_corunner(nullptr, 0);
  const auto matmul = wl::matmul(3.0);
  const auto iperf = wl::iperf(3.0);
  const double with_matmul =
      run_sn_p99_with_corunner(&matmul, wl::kGetFollowers);
  const double with_iperf =
      run_sn_p99_with_corunner(&iperf, wl::kGetFollowers);
  EXPECT_GT(with_matmul, baseline * 1.3);
  EXPECT_LT(with_iperf, baseline * 1.3);
  EXPECT_GT(with_matmul, with_iperf * 1.2);
}

TEST(Observation2, CriticalPathInterferenceWorseThanSideBranch) {
  const auto matmul = wl::matmul(3.0);
  const double critical =
      run_sn_p99_with_corunner(&matmul, wl::kUploadHomeTimeline);
  const double side = run_sn_p99_with_corunner(&matmul, wl::kUploadUniqueId);
  EXPECT_GT(critical, side * 1.15);
}

TEST(Observation2, VictimFunctionsDifferInSensitivity) {
  // Same corunner, different victims: the spread across victim functions
  // is large (the paper reports ~3x between compose-post and
  // get-followers).
  const auto matmul = wl::matmul(3.0);
  const double on_followers =
      run_sn_p99_with_corunner(&matmul, wl::kGetFollowers);
  const double on_uuid = run_sn_p99_with_corunner(&matmul, wl::kUploadUniqueId);
  EXPECT_GT(on_followers, on_uuid * 1.2);
}

TEST(Observation3, TemporalOverlapChangesJct) {
  // LR + KMeans colocated on one socket; LR's JCT depends on when KMeans
  // starts (Figure 3(b)).
  auto run_with_delay = [&](double delay) {
    Platform platform(socket_testbed(1, 5));
    auto lr = wl::logistic_regression_small();
    auto km = wl::kmeans_small();
    lr.functions[0].jitter_sigma = 0.0;
    lr.functions[0].cold_start_s = 0.0;
    km.functions[0].jitter_sigma = 0.0;
    km.functions[0].cold_start_s = 0.0;
    const std::size_t lr_id = platform.deploy(lr, {0});
    const std::size_t km_id = platform.deploy(km, {0});
    double jct = 0.0;
    platform.submit_job(lr_id, [&](double v) { jct = v; });
    platform.engine().after(delay,
                            [&platform, km_id] { platform.submit_job(km_id); });
    platform.run_until(400.0);
    EXPECT_GT(jct, 0.0);
    return jct;
  };
  const double no_overlap = run_with_delay(1000.0);  // never overlaps
  const double full_overlap = run_with_delay(0.0);
  EXPECT_GT(full_overlap, no_overlap * 1.1);
  // Late start => shorter overlap => between the two.
  const double late = run_with_delay(no_overlap * 0.8);
  EXPECT_LE(late, full_overlap + 0.5);
  EXPECT_GE(late, no_overlap * 0.99);
}

TEST(Observation4, HotspotPropagationImprovesDownstreamLocalLatency) {
  // Interference at compose-post (root): its local latency rises, while
  // downstream functions' local latencies do NOT rise with it — their
  // arrival rate drops because the root is the bottleneck (Figure 4(a)).
  auto run = [&](bool interfere) {
    Platform platform(socket_testbed(9, 11));
    const auto sn = warm_social_network();
    std::vector<std::size_t> placement(9);
    for (std::size_t i = 0; i < 9; ++i) placement[i] = i;
    const std::size_t sn_id = platform.deploy(sn, placement);
    if (interfere) {
      const auto mm = wl::matmul(3.0);
      const std::size_t co = platform.deploy(
          mm, {static_cast<std::size_t>(wl::kComposePost)});
      platform.submit_job(co);
    }
    platform.set_open_loop(sn_id, 150.0);  // near compose-post capacity
    platform.run_until(40.0);
    std::vector<double> p99(9);
    for (std::size_t fn = 0; fn < 9; ++fn) {
      std::vector<double> lat;
      for (const auto& [t, l] : platform.stats(sn_id).fn_latency[fn]) {
        if (t >= 10.0) lat.push_back(l);
      }
      p99[fn] = stats::percentile(std::move(lat), 99.0);
    }
    return p99;
  };
  const auto base = run(false);
  const auto hit = run(true);
  // The interfered function degrades...
  EXPECT_GT(hit[wl::kComposePost], base[wl::kComposePost] * 1.3);
  // ...while downstream critical-path functions do not degrade with it.
  std::size_t improved_or_flat = 0;
  for (std::size_t fn : {wl::kUploadMedia, wl::kComposeAndUpload,
                         wl::kUploadHomeTimeline, wl::kGetFollowers}) {
    if (hit[fn] <= base[fn] * 1.15) ++improved_or_flat;
  }
  EXPECT_GE(improved_or_flat, 3u);
}

TEST(Observation5, LocalControlRestoresInterferedFunction) {
  Platform platform(socket_testbed(9, 13));
  const auto sn = warm_social_network();
  std::vector<std::size_t> placement(9);
  for (std::size_t i = 0; i < 9; ++i) placement[i] = i;
  const std::size_t sn_id = platform.deploy(sn, placement);
  const auto mm = wl::matmul(10.0);  // spans the whole test
  const std::size_t co =
      platform.deploy(mm, {static_cast<std::size_t>(wl::kComposePost)});
  platform.submit_job(co);
  platform.set_open_loop(sn_id, 150.0);
  platform.run_until(40.0);
  // "Local control": migrate the corunner off the socket (Figure 4's
  // dotted lines) — modelled by aborting its execution at t = 40.
  EXPECT_GE(platform.abort_executions(co), 1u);
  platform.run_until(80.0);

  auto fn_p99 = [&](std::size_t fn, double t0, double t1) {
    std::vector<double> lat;
    for (const auto& [t, l] : platform.stats(sn_id).fn_latency[fn]) {
      if (t >= t0 && t < t1) lat.push_back(l);
    }
    return stats::percentile(std::move(lat), 99.0);
  };
  const double interfered_during = fn_p99(wl::kComposePost, 10.0, 40.0);
  const double interfered_after = fn_p99(wl::kComposePost, 50.0, 80.0);
  EXPECT_LT(interfered_after, interfered_during);
}

TEST(Observation6, GatewaySharedAcrossApps) {
  // Saturating one app's function slows the *other* app's forwarding
  // (Figure 4(b) mechanism 2: gateway queue management).
  Platform platform(socket_testbed(4, 17));
  auto a = warm_social_network();
  auto b = wl::e_commerce();
  for (auto& fn : b.functions) fn.cold_start_s = 0.0;
  const std::size_t a_id = platform.deploy(a, std::vector<std::size_t>(9, 0));
  const std::size_t b_id = platform.deploy(b, std::vector<std::size_t>(6, 1));
  platform.set_open_loop(b_id, 30.0);
  platform.run_until(10.0);
  const double fwd_calm = platform.gateway().current_service_s();
  // Saturate app A far beyond one replica's capacity: queues build.
  platform.set_open_loop(a_id, 500.0);
  platform.run_until(20.0);
  const double fwd_hot = platform.gateway().current_service_s();
  EXPECT_GT(fwd_hot, fwd_calm * 2.0);
}

}  // namespace
}  // namespace gsight::sim
