// Twin-run determinism harness: the whole platform — gateway, cluster,
// interference, autoscaler churn, open-loop Poisson load — executed twice
// from the same seed must produce bit-identical recorder output and QoS
// bookkeeping. This is the property every experiment in the repo leans on
// (replay from a seed), promoted to an enforced test.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/autoscaler.hpp"
#include "sim/platform.hpp"
#include "workloads/ecommerce.hpp"
#include "workloads/socialnetwork.hpp"

namespace gsight::sim {
namespace {

struct RunResult {
  std::string recorder_dump;
  std::string trace_dump;
  std::string metrics_dump;
  std::vector<std::pair<double, double>> e2e_a;
  std::vector<std::pair<double, double>> e2e_b;
  std::uint64_t failed_a = 0;
  std::size_t instances = 0;
  std::uint64_t created = 0;
  double cpu_util = 0.0;
  double mem_util = 0.0;
  std::size_t gateway_queue = 0;
};

/// One full platform run: two apps, autoscaled open-loop load, 40 simulated
/// seconds. Everything that feeds experiment figures is captured. With
/// `traced` the full span-tracing pipeline records into a memory sink —
/// tracing must never perturb the simulation it observes.
RunResult run_once(std::uint64_t seed, bool traced = false) {
  obs::MemoryTraceSink trace_sink;
  PlatformConfig pc;
  pc.servers = 4;
  pc.server = ServerConfig::socket();
  pc.seed = seed;
  if (traced) pc.trace_sink = &trace_sink;
  Platform platform(pc);

  const auto social = wl::social_network();
  const auto shop = wl::e_commerce();
  const std::size_t a =
      platform.deploy(social, std::vector<std::size_t>(
                                  social.function_count(), 0));
  const std::size_t b = platform.deploy(
      shop, std::vector<std::size_t>(shop.function_count(), 1));

  // Round-robin placement keeps the autoscaler deterministic without
  // dragging the whole scheduler stack into this test.
  std::size_t cursor = 0;
  Autoscaler scaler(&platform, AutoscalerConfig{},
                    [&cursor, &pc](std::size_t, std::size_t) {
                      return cursor++ % pc.servers;
                    });
  scaler.start();

  platform.set_open_loop(a, 30.0);
  platform.set_open_loop(b, 15.0);
  platform.run_until(40.0);

  RunResult r;
  r.recorder_dump = platform.recorder().dump_string();
  r.trace_dump = trace_sink.chrome_trace_string();
  platform.refresh_metrics();
  r.metrics_dump = platform.metrics().to_json_string(0);
  r.e2e_a = platform.stats(a).e2e;
  r.e2e_b = platform.stats(b).e2e;
  r.failed_a = platform.stats(a).failed;
  r.instances = platform.total_instances();
  r.created = platform.cluster().instances_created();
  r.cpu_util = platform.cluster().cpu_utilization();
  r.mem_util = platform.cluster().memory_utilization();
  r.gateway_queue = platform.gateway().queue_depth();
  return r;
}

TEST(Determinism, TwinRunsProduceBitIdenticalRecorderOutput) {
  const RunResult first = run_once(0xD5EED);
  const RunResult second = run_once(0xD5EED);

  ASSERT_FALSE(first.recorder_dump.empty());
  // Bit-exact: the dumps are hex-float serialisations, so string equality
  // is double equality down to the last mantissa bit.
  EXPECT_EQ(first.recorder_dump, second.recorder_dump);

  ASSERT_EQ(first.e2e_a.size(), second.e2e_a.size());
  for (std::size_t i = 0; i < first.e2e_a.size(); ++i) {
    EXPECT_EQ(first.e2e_a[i], second.e2e_a[i]) << "request " << i;
  }
  EXPECT_EQ(first.e2e_b, second.e2e_b);
  EXPECT_EQ(first.failed_a, second.failed_a);
  EXPECT_EQ(first.instances, second.instances);
  EXPECT_EQ(first.created, second.created);
  EXPECT_EQ(first.cpu_util, second.cpu_util);
  EXPECT_EQ(first.mem_util, second.mem_util);
  EXPECT_EQ(first.gateway_queue, second.gateway_queue);
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Guards against the harness degenerating into comparing constants: a
  // different seed must actually change the recording.
  const RunResult first = run_once(1);
  const RunResult second = run_once(2);
  EXPECT_NE(first.recorder_dump, second.recorder_dump);
}

TEST(Determinism, RecorderDumpIsStableAcrossIdenticalReplays) {
  // dump_string itself must be a pure function of the recording.
  const RunResult r = run_once(7);
  EXPECT_EQ(r.recorder_dump, run_once(7).recorder_dump);
}

TEST(Determinism, TracingDoesNotPerturbTheSimulation) {
  // The tracer must be a pure observer: a traced run and an untraced run
  // from the same seed record bit-identical simulations.
  const RunResult plain = run_once(0xD5EED, /*traced=*/false);
  const RunResult traced = run_once(0xD5EED, /*traced=*/true);
  EXPECT_EQ(plain.recorder_dump, traced.recorder_dump);
  EXPECT_EQ(plain.e2e_a, traced.e2e_a);
  EXPECT_EQ(plain.e2e_b, traced.e2e_b);
  EXPECT_EQ(plain.metrics_dump, traced.metrics_dump);
  EXPECT_TRUE(plain.trace_dump.find("\"ph\"") == std::string::npos);
#if GSIGHT_OBS_ENABLED
  // The traced run actually captured the request lifecycle.
  EXPECT_NE(traced.trace_dump.find("request.exec"), std::string::npos);
  EXPECT_NE(traced.trace_dump.find("gateway.forward"), std::string::npos);
#endif
}

TEST(Determinism, TwinTracedRunsEmitBitIdenticalTraces) {
  const RunResult first = run_once(0xD5EED, /*traced=*/true);
  const RunResult second = run_once(0xD5EED, /*traced=*/true);
  EXPECT_EQ(first.trace_dump, second.trace_dump);
  EXPECT_EQ(first.metrics_dump, second.metrics_dump);
  ASSERT_FALSE(first.metrics_dump.empty());
}

}  // namespace
}  // namespace gsight::sim
