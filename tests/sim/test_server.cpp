#include "sim/server.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gsight::sim {
namespace {

struct Fixture : ::testing::Test {
  Engine engine;
  InterferenceModel model;
  ServerConfig config = ServerConfig::tiny();
  Server server{0, ServerConfig::tiny(), &engine, &model};
};

TEST_F(Fixture, SoloExecutionTakesSoloDuration) {
  bool done = false;
  ExecResult result;
  server.begin_execution({wl::cpu_phase("c", 2.5)},
                         [&](const ExecResult& r) {
                           done = true;
                           result = r;
                         });
  engine.run_until(10.0);
  ASSERT_TRUE(done);
  EXPECT_NEAR(result.duration_s, 2.5, 1e-9);
  EXPECT_NEAR(result.solo_s, 2.5, 1e-9);
  EXPECT_NEAR(result.mean_slowdown, 1.0, 1e-9);
  EXPECT_NEAR(result.mean_ipc, 2.2, 1e-6);  // cpu_phase default ipc
}

TEST_F(Fixture, MultiPhaseExecutionSumsDurations) {
  double finished = -1.0;
  server.begin_execution(
      {wl::cpu_phase("a", 1.0), wl::disk_phase("b", 2.0),
       wl::net_phase("c", 0.5)},
      [&](const ExecResult&) { finished = engine.now(); });
  engine.run_until(10.0);
  EXPECT_NEAR(finished, 3.5, 1e-9);
}

TEST_F(Fixture, ContendedExecutionsSlowDown) {
  // Two 4-core demands on a 4-core server => ~2x stretching.
  std::vector<double> completions;
  for (int i = 0; i < 2; ++i) {
    server.begin_execution(
        {wl::cpu_phase("c", 1.0, /*cores=*/4.0)},
        [&](const ExecResult&) { completions.push_back(engine.now()); });
  }
  engine.run_until(10.0);
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_GT(completions[0], 1.8);
  EXPECT_LT(completions[0], 2.3);
}

TEST_F(Fixture, LateArrivalOnlySlowsRemainder) {
  // Exec A runs solo for 1s, then B joins; A's first half is full speed.
  std::vector<double> completions(2, 0.0);
  server.begin_execution({wl::cpu_phase("a", 2.0, 4.0)},
                         [&](const ExecResult&) { completions[0] = engine.now(); });
  engine.at(1.0, [&] {
    server.begin_execution({wl::cpu_phase("b", 2.0, 4.0)},
                           [&](const ExecResult&) { completions[1] = engine.now(); });
  });
  engine.run_until(20.0);
  // A: 1s solo + ~2s contended for remaining 1s of work => ~3s total.
  EXPECT_NEAR(completions[0], 3.0, 0.1);
  // B: contended while A alive, solo afterwards.
  EXPECT_GT(completions[1], 3.5);
  EXPECT_LT(completions[1], 4.6);
}

TEST_F(Fixture, AbortRemovesExecution) {
  bool completed = false;
  const ExecId id = server.begin_execution(
      {wl::cpu_phase("c", 5.0)}, [&](const ExecResult&) { completed = true; });
  EXPECT_EQ(server.active_count(), 1u);
  engine.run_until(1.0);
  EXPECT_TRUE(server.abort_execution(id));
  engine.run_until(20.0);
  EXPECT_FALSE(completed);
  EXPECT_EQ(server.active_count(), 0u);
  EXPECT_FALSE(server.abort_execution(id));  // already gone
}

TEST_F(Fixture, ObservationAccessibleWhileRunning) {
  const ExecId id =
      server.begin_execution({wl::cpu_phase("c", 3.0)}, [](const ExecResult&) {});
  const auto* ob = server.observation(id);
  ASSERT_NE(ob, nullptr);
  EXPECT_NEAR(ob->rate, 1.0, 1e-9);
  EXPECT_EQ(server.observation(9999), nullptr);
}

TEST_F(Fixture, ActiveDemandAggregates) {
  server.begin_execution({wl::cpu_phase("a", 3.0, 2.0)}, [](const ExecResult&) {});
  server.begin_execution({wl::disk_phase("b", 3.0, 100.0)},
                         [](const ExecResult&) {});
  const auto totals = server.active_demand();
  EXPECT_NEAR(totals.cores, 2.3, 1e-9);  // 2.0 + 0.3 (disk phase cores)
  EXPECT_NEAR(totals.disk_mbps, 100.0, 1e-9);
}

TEST_F(Fixture, ResidencyAccounting) {
  server.add_resident(2.0);
  server.add_resident(3.0);
  EXPECT_DOUBLE_EQ(server.resident_mem_gb(), 5.0);
  EXPECT_EQ(server.resident_count(), 2u);
  server.remove_resident(2.0);
  EXPECT_DOUBLE_EQ(server.resident_mem_gb(), 3.0);
}

struct SliceCollector final : ExecSliceSink {
  double total_dt = 0.0;
  double ipc_weighted = 0.0;
  int slices = 0;
  void on_exec_slice(void*, SimTime, double dt, const ExecObservation& obs,
                     const wl::Phase&) override {
    total_dt += dt;
    ipc_weighted += dt * obs.ipc;
    ++slices;
  }
};

TEST_F(Fixture, SliceSinkIntegralsCoverExecution) {
  SliceCollector sink;
  server.set_slice_sink(&sink);
  server.begin_execution({wl::cpu_phase("a", 1.0), wl::cpu_phase("b", 2.0)},
                         [](const ExecResult&) {});
  engine.run_until(10.0);
  EXPECT_NEAR(sink.total_dt, 3.0, 1e-9);
  EXPECT_NEAR(sink.ipc_weighted / sink.total_dt, 2.2, 1e-6);
  EXPECT_GE(sink.slices, 2);
}

TEST_F(Fixture, CpuUtilizationReflectsLoad) {
  EXPECT_DOUBLE_EQ(server.cpu_utilization(), 0.0);
  server.begin_execution({wl::cpu_phase("c", 5.0, /*cores=*/2.0)},
                         [](const ExecResult&) {});
  EXPECT_NEAR(server.cpu_utilization(), 0.5, 1e-9);  // 2 of 4 cores
}

TEST_F(Fixture, ManyStaggeredExecutionsAllComplete) {
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    engine.at(0.1 * i, [&, i] {
      server.begin_execution({wl::mixed_phase("m", 0.5 + 0.05 * i)},
                             [&](const ExecResult&) { ++completed; });
    });
  }
  engine.run_until(100.0);
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(server.active_count(), 0u);
}

}  // namespace
}  // namespace gsight::sim
