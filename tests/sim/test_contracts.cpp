// Contract-violation coverage: the runtime contracts of the sim layer must
// actually fire on bad inputs, and EventQueue's deterministic tie-break
// must hold under interleaved push/pop traffic.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/contracts.hpp"
#include "sim/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/gateway.hpp"
#include "sim/resources.hpp"

namespace gsight::sim {
namespace {

using core::ContractViolation;
using core::ScopedContractHandler;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// --- EventQueue time contracts ---------------------------------------------

TEST(Contracts, EventQueueRejectsNaNTime) {
  ScopedContractHandler guard;
  EventQueue q;
  EXPECT_THROW(q.push(kNaN, [] {}), ContractViolation);
}

TEST(Contracts, EventQueueRejectsInfiniteTime) {
  ScopedContractHandler guard;
  EventQueue q;
  EXPECT_THROW(q.push(kInf, [] {}), ContractViolation);
}

TEST(Contracts, EventQueueRejectsNegativeTime) {
  ScopedContractHandler guard;
  EventQueue q;
  EXPECT_THROW(q.push(-1.0, [] {}), ContractViolation);
}

TEST(Contracts, EventQueueRejectsPopWhenEmpty) {
  ScopedContractHandler guard;
  EventQueue q;
  EXPECT_THROW(q.pop(), ContractViolation);
  EXPECT_THROW(q.next_time(), ContractViolation);
}

TEST(Contracts, EngineRejectsSchedulingInThePast) {
  ScopedContractHandler guard;
  Engine e;
  e.at(2.0, [] {});
  e.run_until(2.0);
  EXPECT_THROW(e.at(1.0, [] {}), ContractViolation);
  EXPECT_THROW(e.after(-0.5, [] {}), ContractViolation);
  EXPECT_THROW(e.after(kNaN, [] {}), ContractViolation);
}

TEST(Contracts, EngineRejectsNonFiniteTimes) {
  // Regression: after() rejected NaN but let +inf through (and at() checked
  // nothing), leaving an event at t=inf that run_all() happily executed.
  // Both entry points now enforce the header's documented "finite" contract.
  ScopedContractHandler guard;
  Engine e;
  EXPECT_THROW(e.after(kInf, [] {}), ContractViolation);
  EXPECT_THROW(e.at(kInf, [] {}), ContractViolation);
  EXPECT_THROW(e.at(kNaN, [] {}), ContractViolation);
  // The queue stays untouched after the rejected schedules.
  EXPECT_EQ(e.run_all(), 0u);
}

// --- EventQueue tie-break determinism ---------------------------------------

TEST(EventQueueOrdering, EqualTimesFireInPushOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.push(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  std::vector<int> expect(16);
  for (int i = 0; i < 16; ++i) expect[i] = i;
  EXPECT_EQ(order, expect);
}

TEST(EventQueueOrdering, TieBreakSurvivesInterleavedPushPop) {
  // Pops interleaved with pushes must not disturb the push-order tie-break
  // within each timestamp (the heap reshuffles internally; the seq tag is
  // what keeps replay stable).
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(10); });
  q.push(2.0, [&] { order.push_back(20); });
  q.push(2.0, [&] { order.push_back(21); });
  q.pop().second();  // fires 10
  q.push(2.0, [&] { order.push_back(22); });
  q.push(3.0, [&] { order.push_back(30); });
  q.push(2.0, [&] { order.push_back(23); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 21, 22, 23, 30}));
}

TEST(EventQueueOrdering, PoppedTimesAreMonotone) {
  EventQueue q;
  q.push(5.0, [] {});
  q.push(1.0, [] {});
  q.push(3.0, [] {});
  SimTime last = 0.0;
  while (!q.empty()) {
    const auto [when, cb] = q.pop();
    EXPECT_GE(when, last);
    last = when;
  }
}

// --- ResourceLedger conservation --------------------------------------------

TEST(Contracts, LedgerRejectsOverAllocation) {
  ScopedContractHandler guard;
  ResourceLedger ledger(10.0);
  ledger.acquire(6.0);
  EXPECT_THROW(ledger.acquire(5.0), ContractViolation);
  EXPECT_DOUBLE_EQ(ledger.used(), 6.0);
}

TEST(Contracts, LedgerRejectsNegativeBalance) {
  ScopedContractHandler guard;
  ResourceLedger ledger(10.0);
  ledger.acquire(2.0);
  EXPECT_THROW(ledger.release(3.0), ContractViolation);
}

TEST(Contracts, LedgerRejectsNaNAmounts) {
  ScopedContractHandler guard;
  ResourceLedger ledger(10.0);
  EXPECT_THROW(ledger.acquire(kNaN), ContractViolation);
  EXPECT_THROW(ledger.acquire(-1.0), ContractViolation);
  EXPECT_THROW(ledger.release(kNaN), ContractViolation);
}

TEST(Contracts, OversubscribableLedgerAllowsOverCapacityButNotNegative) {
  ScopedContractHandler guard;
  ResourceLedger ledger(10.0, ResourceLedger::Policy::kOversubscribe);
  ledger.acquire(25.0);  // over-commit is the point
  EXPECT_DOUBLE_EQ(ledger.used(), 25.0);
  ledger.release(25.0);
  EXPECT_THROW(ledger.release(1.0), ContractViolation);
}

TEST(Contracts, LedgerCanAcquireTracksCapacity) {
  ResourceLedger ledger(10.0);
  EXPECT_TRUE(ledger.can_acquire(10.0));
  EXPECT_FALSE(ledger.can_acquire(10.5));
  EXPECT_FALSE(ledger.can_acquire(kNaN));
  ledger.acquire(4.0);
  EXPECT_DOUBLE_EQ(ledger.available(), 6.0);
  EXPECT_FALSE(ledger.can_acquire(6.5));
}

// --- Cluster / Gateway accounting -------------------------------------------

TEST(Contracts, ClusterRejectsOffClusterPlacement) {
  ScopedContractHandler guard;
  Engine engine;
  InterferenceModel model{InterferenceParams{}};
  Cluster cluster(&engine, &model, {ServerConfig::tiny()}, nullptr, 42);
  wl::FunctionSpec spec;
  EXPECT_THROW(cluster.create_instance(0, 0, &spec, /*server_idx=*/5, {}),
               ContractViolation);
  EXPECT_THROW(cluster.destroy_instance(nullptr), ContractViolation);
}

TEST(Contracts, ClusterInstanceAccountingBalances) {
  Engine engine;
  InterferenceModel model{InterferenceParams{}};
  Cluster cluster(&engine, &model, {ServerConfig::tiny()}, nullptr, 42);
  wl::FunctionSpec spec;
  Instance* a = cluster.create_instance(0, 0, &spec, 0, {});
  Instance* b = cluster.create_instance(0, 1, &spec, 0, {});
  const std::uint64_t a_id = a->id();
  EXPECT_EQ(cluster.instances_created(), 2u);
  EXPECT_EQ(cluster.total_instances(), 2u);
  EXPECT_TRUE(cluster.destroy_instance(a));
  EXPECT_FALSE(cluster.destroy_instance(a_id));  // already gone
  EXPECT_EQ(cluster.instances_destroyed(), 1u);
  EXPECT_EQ(cluster.total_instances(), 1u);
  // Creation-ordered iteration: remaining instance is b.
  ASSERT_EQ(cluster.instances().size(), 1u);
  EXPECT_EQ(cluster.instances()[0], b);
}

TEST(Contracts, GatewayRejectsNegativeServiceTime) {
  // GatewayConfig is now validated like ClusterSpec: configuration errors
  // surface as std::invalid_argument at construction, naming the bad field,
  // instead of tripping the "bad gateway service time" invariant mid-run.
  Engine engine;
  GatewayConfig config;
  config.base_service_s = -1.0;
  EXPECT_THROW(Gateway(&engine, config), std::invalid_argument);
}

TEST(Contracts, GatewayConfigValidateRejectsBadFields) {
  const GatewayConfig good;
  EXPECT_NO_THROW(good.validate());

  GatewayConfig c = good;
  c.base_service_s = kInf;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = good;
  c.backlog_coeff = kNaN;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = good;
  c.backlog_coeff = -0.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = good;
  c.max_backlog_factor = 0.5;  // load would *reduce* service time
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = good;
  c.max_backlog_factor = kInf;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = good;
  c.instance_knee = 0.0;  // divides the instance count
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = good;
  c.instance_knee = -120.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = good;
  c.instance_exponent = kNaN;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Contracts, GatewayConstructorRunsValidation) {
  Engine engine;
  GatewayConfig config;
  config.instance_knee = 0.0;
  EXPECT_THROW(Gateway(&engine, config), std::invalid_argument);
}

}  // namespace
}  // namespace gsight::sim
