// The pooled request path: issue_request/submit_job check RequestContexts
// out of Platform's RequestPool instead of make_shared-ing fresh ones.
// Two contracts are enforced here. First, determinism: pooling is a pure
// allocation strategy, so twin runs with identical configs must produce
// byte-identical stats (the doubles are compared via their exact bit
// patterns, not with tolerances). Second, reuse: the pool's high-water
// mark tracks *concurrent* in-flight requests, which under a steady
// open loop is far below the total requests served — and every context
// is back on the free list once the platform drains.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "sim/platform.hpp"
#include "workloads/socialnetwork.hpp"
#include "workloads/sparkapps.hpp"

namespace gsight::sim {
namespace {

PlatformConfig pool_config() {
  PlatformConfig pc;
  pc.servers = 4;
  pc.server = ServerConfig::tianjin_testbed();
  pc.seed = 21;
  pc.instance.startup_cores = 0.0;
  pc.instance.startup_disk_mbps = 0.0;
  return pc;
}

void append_bytes(std::string& out, const void* p, std::size_t n) {
  out.append(static_cast<const char*>(p), n);
}

void append_pairs(std::string& out,
                  const std::vector<std::pair<double, double>>& v) {
  for (const auto& [t, x] : v) {
    append_bytes(out, &t, sizeof(t));
    append_bytes(out, &x, sizeof(x));
  }
}

/// Serialize every stats series of every app into exact bytes — any
/// single-ulp divergence between runs changes the string.
std::string stats_bytes(const Platform& platform, std::size_t apps) {
  std::string out;
  for (std::size_t a = 0; a < apps; ++a) {
    const AppStats& st = platform.stats(a);
    append_pairs(out, st.e2e);
    append_bytes(out, &st.failed, sizeof(st.failed));
    for (const auto& fn : st.fn_latency) append_pairs(out, fn);
    append_pairs(out, st.jct);
  }
  return out;
}

/// One mixed LS + SC run: open-loop requests against SocialNetwork plus
/// periodic job submissions. Returns the stats bytes; reports the pool
/// and request totals through out-params.
std::string run_once(std::size_t* allocated, std::size_t* available,
                     std::size_t* requests) {
  Platform platform(pool_config());
  const std::size_t ls =
      platform.deploy(wl::social_network(), std::vector<std::size_t>(9, 0));
  const auto sc_app = wl::logistic_regression_small();
  const std::size_t sc = platform.deploy(
      sc_app, std::vector<std::size_t>(sc_app.function_count(), 1));
  platform.set_open_loop(ls, 40.0);
  for (int i = 0; i < 5; ++i) {
    platform.engine().after(2.0 * i, [&platform, sc] {
      platform.submit_job(sc);
    });
  }
  platform.run_until(30.0);
  platform.set_open_loop(ls, 0.0);
  platform.run_until(60.0);  // drain everything in flight
  *allocated = platform.request_pool().allocated();
  *available = platform.request_pool().available();
  *requests = platform.stats(ls).e2e.size() + platform.stats(ls).failed +
              platform.stats(sc).jct.size();
  return stats_bytes(platform, 2);
}

TEST(RequestPool, TwinRunsAreByteIdentical) {
  std::size_t alloc_a = 0, avail_a = 0, req_a = 0;
  std::size_t alloc_b = 0, avail_b = 0, req_b = 0;
  const std::string a = run_once(&alloc_a, &avail_a, &req_a);
  const std::string b = run_once(&alloc_b, &avail_b, &req_b);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(alloc_a, alloc_b);
  EXPECT_EQ(req_a, req_b);
}

TEST(RequestPool, ContextsAreReusedAndReturned) {
  std::size_t allocated = 0, available = 0, requests = 0;
  run_once(&allocated, &available, &requests);
  // Hundreds of requests were served; the pool only ever grows to the
  // concurrent in-flight high-water mark.
  EXPECT_GT(requests, 100u);
  EXPECT_GT(allocated, 0u);
  EXPECT_LT(allocated, requests / 2);
  // Fully drained: every context is back on the free list.
  EXPECT_EQ(available, allocated);
}

TEST(RequestPool, UserCallbacksStillFire) {
  Platform platform(pool_config());
  const std::size_t id =
      platform.deploy(wl::social_network(), std::vector<std::size_t>(9, 0));
  int fired = 0;
  double latency = 0.0;
  bool ok = false;
  platform.issue_request(id, [&](double l, bool o) {
    ++fired;
    latency = l;
    ok = o;
  });
  platform.run_until(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(ok);
  EXPECT_GT(latency, 0.0);
  ASSERT_EQ(platform.stats(id).e2e.size(), 1u);
  // Sink-then-callback ordering: the recorded latency is the delivered one.
  EXPECT_EQ(platform.stats(id).e2e[0].second, latency);
}

/// Clone-enabled variant of run_once: every request fans into two legs
/// with cancel-on-first-complete, so contexts are also released through
/// the destroyed-unfired path (the loser's DoneFn dies with its pending
/// events) instead of only through normal completion.
std::string run_once_cloned(std::size_t* allocated, std::size_t* available,
                            std::size_t* cancelled) {
  PlatformConfig pc = pool_config();
  pc.gateway.clone.factor = 2;
  Platform platform(pc);
  const std::size_t ls =
      platform.deploy(wl::social_network(), std::vector<std::size_t>(9, 0));
  for (std::size_t fn = 0; fn < 9; ++fn) {
    for (std::size_t s = 1; s < 4; ++s) platform.add_replica(ls, fn, s);
  }
  platform.set_open_loop(ls, 40.0);
  platform.run_until(20.0);
  platform.set_open_loop(ls, 0.0);
  platform.run_until(40.0);  // drain everything in flight
  *allocated = platform.request_pool().allocated();
  *available = platform.request_pool().available();
  *cancelled = platform.stats(ls).clones_cancelled;
  return stats_bytes(platform, 1);
}

TEST(RequestPool, CloneTwinRunsAreByteIdentical) {
  std::size_t alloc_a = 0, avail_a = 0, cancel_a = 0;
  std::size_t alloc_b = 0, avail_b = 0, cancel_b = 0;
  const std::string a = run_once_cloned(&alloc_a, &avail_a, &cancel_a);
  const std::string b = run_once_cloned(&alloc_b, &avail_b, &cancel_b);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(alloc_a, alloc_b);
  EXPECT_EQ(cancel_a, cancel_b);
  // Cancellation actually exercised, not a degenerate run.
  EXPECT_GT(cancel_a, 0u);
}

TEST(RequestPool, SiblingCloneRefDropsReturnEveryContext) {
  std::size_t allocated = 0, available = 0, cancelled = 0;
  run_once_cloned(&allocated, &available, &cancelled);
  EXPECT_GT(cancelled, 100u);
  // Losing legs release their refs without ever firing; the context still
  // comes back to the free list once the winner finishes.
  EXPECT_EQ(available, allocated);
}

TEST(RequestPool, ContextRecyclesAfterTrackedCancel) {
  Platform platform(pool_config());
  const std::size_t id =
      platform.deploy(wl::social_network(), std::vector<std::size_t>(9, 0));
  const std::uint64_t handle = platform.issue_tracked_request(id);
  platform.run_until(0.05);  // mid-flight
  ASSERT_TRUE(platform.cancel_request(handle));
  platform.run_until(5.0);
  EXPECT_EQ(platform.stats(id).cancelled, 1u);
  EXPECT_EQ(platform.request_pool().available(),
            platform.request_pool().allocated());
  // The recycled context serves the next request as usual.
  platform.issue_request(id);
  platform.run_until(10.0);
  EXPECT_EQ(platform.stats(id).e2e.size(), 1u);
  EXPECT_EQ(platform.request_pool().available(),
            platform.request_pool().allocated());
}

TEST(RequestPool, RoutingFailureReportsNotOkAndRecycles) {
  Platform platform(pool_config());
  wl::App app = wl::logistic_regression_small();
  const std::size_t id = platform.deploy(
      app, std::vector<std::size_t>(app.function_count(), 0));
  // Remove every replica of the root so routing fails. min_keep=0 lets
  // the last one retire.
  while (platform.remove_replica(id, 0, 0)) {
  }
  platform.run_until(5.0);  // let retired replicas drain away
  bool called = false;
  bool ok = true;
  platform.issue_request(id, [&](double, bool o) {
    called = true;
    ok = o;
  });
  platform.run_until(10.0);
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_EQ(platform.stats(id).failed, 1u);
  EXPECT_EQ(platform.request_pool().available(),
            platform.request_pool().allocated());
}

}  // namespace
}  // namespace gsight::sim
