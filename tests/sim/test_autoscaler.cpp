// Autoscaler behaviour tests, focused on scale-in hysteresis: a lower
// target must persist `scale_in_patience` ticks before any replica is
// retired, replicas then leave one per tick, and a demand spike resets
// the patience counter. Also covers the per-(app, fn) bookkeeping maps
// when the app set grows between ticks.
#include "sim/autoscaler.hpp"

#include <gtest/gtest.h>

#include "sim/platform.hpp"
#include "workloads/socialnetwork.hpp"

namespace gsight::sim {
namespace {

PlatformConfig quiet_config() {
  PlatformConfig pc;
  pc.servers = 4;
  pc.server = ServerConfig::tianjin_testbed();
  pc.seed = 11;
  pc.instance.startup_cores = 0.0;
  pc.instance.startup_disk_mbps = 0.0;
  return pc;
}

wl::App warm_social() {
  auto app = wl::social_network();
  for (auto& fn : app.functions) {
    fn.jitter_sigma = 0.0;
    fn.cold_start_s = 0.0;  // pre-warm invocations finish immediately
  }
  return app;
}

// Refuse every scale-out so tests observe scale-in behaviour in
// isolation (current replica counts never grow under load spikes).
Autoscaler::PlacementFn refuse_placement() {
  return [](std::size_t, std::size_t) {
    return static_cast<std::size_t>(-1);
  };
}

TEST(Autoscaler, ScaleInWaitsForPatienceThenOneReplicaPerTick) {
  Platform platform(quiet_config());
  const std::size_t id =
      platform.deploy(warm_social(), std::vector<std::size_t>(9, 0));
  // 3 surplus replicas of fn 0: idle demand says desired == 1.
  for (int i = 0; i < 3; ++i) platform.add_replica(id, 0, 0);
  ASSERT_EQ(platform.replicas(id, 0).size(), 4u);

  AutoscalerConfig cfg;
  cfg.tick_s = 1.0;
  cfg.scale_in_patience = 3;
  Autoscaler scaler(&platform, cfg, refuse_placement());
  scaler.start();

  // Ticks fire at t = 1, 2, 3, ... Patience of 3 means the first removal
  // happens on the third consecutive below-target tick.
  platform.run_until(1.5);
  EXPECT_EQ(scaler.scale_in_events(), 0u);
  platform.run_until(2.5);
  EXPECT_EQ(scaler.scale_in_events(), 0u);
  platform.run_until(3.5);
  EXPECT_EQ(scaler.scale_in_events(), 1u);  // first removal at tick 3
  platform.run_until(4.5);
  EXPECT_EQ(scaler.scale_in_events(), 2u);  // then exactly one per tick
  platform.run_until(5.5);
  EXPECT_EQ(scaler.scale_in_events(), 3u);
  // All surplus gone; min_keep stops further removals.
  platform.run_until(9.5);
  EXPECT_EQ(scaler.scale_in_events(), 3u);
  EXPECT_EQ(scaler.last_target(id, 0), 1u);
}

TEST(Autoscaler, DemandSpikeResetsPatienceCounter) {
  Platform platform(quiet_config());
  const std::size_t id =
      platform.deploy(warm_social(), std::vector<std::size_t>(9, 0));
  platform.add_replica(id, 0, 0);  // one surplus replica of the root fn
  ASSERT_EQ(platform.replicas(id, 0).size(), 2u);

  AutoscalerConfig cfg;
  cfg.tick_s = 1.0;
  cfg.scale_in_patience = 2;
  Autoscaler scaler(&platform, cfg, refuse_placement());
  scaler.start();

  // Tick 1 (t=1): idle, below-target streak starts. Without intervention
  // tick 2 would remove the surplus replica (patience 2).
  platform.run_until(1.1);
  EXPECT_EQ(scaler.scale_in_events(), 0u);
  // Burst enough root-fn work that tick 2 sees demand needing both
  // replicas — the streak must reset instead of removing.
  for (int i = 0; i < 200; ++i) platform.issue_request(id);
  platform.run_until(2.5);
  EXPECT_EQ(scaler.scale_in_events(), 0u);
  // Once the burst drains, the full patience must elapse again before
  // the surplus replica goes.
  platform.run_until(12.0);
  EXPECT_EQ(scaler.scale_in_events(), 1u);
}

TEST(Autoscaler, AppDeployedBetweenTicksGetsOwnHysteresisState) {
  Platform platform(quiet_config());
  const std::size_t first =
      platform.deploy(warm_social(), std::vector<std::size_t>(9, 0));

  AutoscalerConfig cfg;
  cfg.tick_s = 1.0;
  cfg.scale_in_patience = 2;
  Autoscaler scaler(&platform, cfg, refuse_placement());
  scaler.start();

  // Let the scaler tick twice with a single app, then grow the app set —
  // the per-(app, fn) maps and per-app vectors must absorb the new keys.
  platform.run_until(2.5);
  const std::size_t second =
      platform.deploy(warm_social(), std::vector<std::size_t>(9, 1));
  platform.add_replica(second, 0, 1);
  platform.add_replica(second, 0, 1);
  ASSERT_EQ(platform.replicas(second, 0).size(), 3u);

  // Ticks 3 and 4 build the new app's streak; removals at ticks 4 and 5.
  platform.run_until(3.5);
  EXPECT_EQ(scaler.scale_in_events(), 0u);
  platform.run_until(4.5);
  EXPECT_EQ(scaler.scale_in_events(), 1u);
  platform.run_until(5.5);
  EXPECT_EQ(scaler.scale_in_events(), 2u);
  platform.run_until(8.5);
  EXPECT_EQ(scaler.scale_in_events(), 2u);  // back at min_keep
  // The first app never had surplus: its targets stay at one replica.
  EXPECT_EQ(scaler.last_target(first, 0), 1u);
  EXPECT_EQ(scaler.last_target(second, 0), 1u);
}

TEST(Autoscaler, AccessorsAreBoundsSafeForUnknownIds) {
  Platform platform(quiet_config());
  AutoscalerConfig cfg;
  Autoscaler scaler(&platform, cfg, refuse_placement());
  EXPECT_DOUBLE_EQ(scaler.rate_estimate(99), 0.0);
  EXPECT_EQ(scaler.last_target(99, 0), 0u);
}

TEST(Autoscaler, ScaleEventsAppearInMetricsRegistry) {
  Platform platform(quiet_config());
  const std::size_t id =
      platform.deploy(warm_social(), std::vector<std::size_t>(9, 0));
  platform.add_replica(id, 0, 0);
  AutoscalerConfig cfg;
  cfg.tick_s = 1.0;
  cfg.scale_in_patience = 1;
  Autoscaler scaler(&platform, cfg, refuse_placement());
  scaler.start();
  platform.run_until(3.0);
  EXPECT_GT(scaler.scale_in_events(), 0u);
  EXPECT_DOUBLE_EQ(
      platform.metrics().counter("autoscaler.scale_ins").value(),
      static_cast<double>(scaler.scale_in_events()));
}

}  // namespace
}  // namespace gsight::sim
