#include "workloads/serverful.hpp"

#include <gtest/gtest.h>

#include "sim/platform.hpp"
#include "workloads/socialnetwork.hpp"

namespace gsight::wl {
namespace {

TEST(Serverful, SuiteValidates) {
  const auto suite = serverful_suite();
  EXPECT_EQ(suite.size(), 5u);
  for (const auto& app : suite) {
    EXPECT_NO_THROW(app.validate()) << app.name;
    EXPECT_EQ(app.function_count(), 1u) << app.name;  // monolithic
  }
}

TEST(Serverful, ClassesMatchTheirRoles) {
  EXPECT_EQ(redis_server().cls, WorkloadClass::kLatencySensitive);
  EXPECT_EQ(solr_search().cls, WorkloadClass::kLatencySensitive);
  EXPECT_EQ(mongodb_server().cls, WorkloadClass::kLatencySensitive);
  EXPECT_EQ(bigdata_sort().cls, WorkloadClass::kShortCompute);
}

TEST(Serverful, MonolithizePreservesWorkAndBlendsDemand) {
  const auto sn = social_network();
  const auto mono = monolithize(sn);
  // The monolith's single-request duration is the critical path (one
  // container executes the chain inline).
  EXPECT_NEAR(mono.functions[0].solo_duration_s(), sn.critical_path_solo_s(),
              1e-12);
  // Blended demand is a convex combination: within the min/max of the
  // original functions.
  const auto blended = mono.functions[0].average_demand();
  double lo = 1e18, hi = 0.0;
  for (const auto& fn : sn.functions) {
    lo = std::min(lo, fn.average_demand().cores);
    hi = std::max(hi, fn.average_demand().cores);
  }
  EXPECT_GE(blended.cores, lo - 1e-12);
  EXPECT_LE(blended.cores, hi + 1e-12);
}

TEST(Serverful, MonolithizeIsIdempotentInShape) {
  const auto once = monolithize(social_network());
  const auto twice = monolithize(once);
  EXPECT_EQ(twice.function_count(), 1u);
  EXPECT_NEAR(twice.functions[0].solo_duration_s(),
              once.functions[0].solo_duration_s(), 1e-12);
}

TEST(Serverful, RedisServesHighQpsSolo) {
  sim::PlatformConfig pc;
  pc.servers = 1;
  pc.server = sim::ServerConfig::socket();
  pc.instance.startup_cores = 0.0;
  sim::Platform platform(pc);
  auto app = redis_server();
  app.functions[0].cold_start_s = 0.0;
  const std::size_t id = platform.deploy(app, {0});
  platform.set_open_loop(id, 200.0);
  platform.run_until(20.0);
  const auto lat = platform.stats(id).e2e_values_between(5.0, 20.0);
  ASSERT_GT(lat.size(), 1000u);
  // Sub-millisecond service at 200 qps: p99 stays low-millisecond.
  EXPECT_LT(stats::percentile(lat, 99.0), 0.01);
}

TEST(Serverful, BigdataSortRunsAsJob) {
  sim::PlatformConfig pc;
  pc.servers = 1;
  pc.server = sim::ServerConfig::socket();
  pc.instance.startup_cores = 0.0;
  sim::Platform platform(pc);
  auto app = bigdata_sort();
  app.functions[0].cold_start_s = 0.0;
  app.functions[0].jitter_sigma = 0.0;
  const std::size_t id = platform.deploy(app, {0});
  double jct = 0.0;
  platform.submit_job(id, [&](double v) { jct = v; });
  platform.run_until(1000.0);
  EXPECT_NEAR(jct, app.total_solo_s(), app.total_solo_s() * 0.05);
}

}  // namespace
}  // namespace gsight::wl
