#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

namespace gsight::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, InterleavedPushPopKeepsTotalOrder) {
  // Stress the hand-rolled heap: interleave pushes and pops with heavy
  // time ties and verify the popped sequence is exactly sorted by
  // (time, insertion order).
  EventQueue q;
  std::vector<std::pair<double, int>> popped;
  int tag = 0;
  const auto push_n = [&](int n, int step) {
    for (int i = 0; i < n; ++i) {
      const double when = static_cast<double>((tag * step + 7 * i) % 13);
      const int id = tag++;
      q.push(when, [&popped, when, id] { popped.emplace_back(when, id); });
    }
  };
  push_n(40, 3);
  while (!q.empty()) q.pop().second();
  ASSERT_EQ(popped.size(), 40u);
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
  // Refill a drained queue with strictly later times (the queue's pop
  // contract is lifetime-monotonic) and drain again to exercise reuse.
  popped.clear();
  tag = 0;
  const double base = 13.0;
  for (int i = 0; i < 25; ++i) {
    const double when = base + static_cast<double>((5 * i) % 13);
    const int id = tag++;
    q.push(when, [&popped, when, id] { popped.emplace_back(when, id); });
  }
  while (!q.empty()) q.pop().second();
  ASSERT_EQ(popped.size(), 25u);
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
}

TEST(Engine, ClockAdvancesToEventTime) {
  Engine e;
  double seen = -1.0;
  e.at(5.0, [&] { seen = e.now(); });
  e.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(Engine, AfterIsRelative) {
  Engine e;
  e.run_until(2.0);
  double fired_at = -1.0;
  e.after(3.0, [&] { fired_at = e.now(); });
  e.run_until(100.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  int fired = 0;
  e.at(1.0, [&] { ++fired; });
  e.at(5.0, [&] { ++fired; });
  e.at(5.0 + 1e-9, [&] { ++fired; });
  EXPECT_EQ(e.run_until(5.0), 2u);  // events at exactly `until` run
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(e.now());
    if (times.size() < 4) e.after(1.0, chain);
  };
  e.at(0.0, chain);
  e.run_until(10.0);
  EXPECT_EQ(times, (std::vector<double>{0.0, 1.0, 2.0, 3.0}));
}

TEST(Engine, RunAllDrainsEverything) {
  Engine e;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    e.at(static_cast<double>(i), [&] { ++fired; });
  }
  EXPECT_EQ(e.run_all(), 10u);
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(Engine, RunUntilPastEmptyQueueAdvancesClock) {
  Engine e;
  EXPECT_EQ(e.run_until(7.5), 0u);
  EXPECT_DOUBLE_EQ(e.now(), 7.5);
}

}  // namespace
}  // namespace gsight::sim
