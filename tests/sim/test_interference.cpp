#include "sim/interference.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "workloads/phase.hpp"

namespace gsight::sim {
namespace {

std::vector<ExecObservation> eval(const InterferenceModel& model,
                                  const ServerConfig& server,
                                  const std::vector<wl::Phase>& phases) {
  std::vector<const wl::Phase*> ptrs;
  for (const auto& p : phases) ptrs.push_back(&p);
  return model.evaluate(server, ptrs);
}

TEST(Interference, SoloRunsAtFullSpeed) {
  InterferenceModel model;
  const auto server = ServerConfig::tianjin_testbed();
  for (const auto& phase :
       {wl::cpu_phase("c", 1.0), wl::memory_phase("m", 1.0),
        wl::disk_phase("d", 1.0), wl::net_phase("n", 1.0),
        wl::mixed_phase("x", 1.0)}) {
    const auto ob = model.solo(server, phase);
    EXPECT_NEAR(ob.rate, 1.0, 1e-9) << phase.name;
    EXPECT_NEAR(ob.ipc, phase.uarch.base_ipc, 1e-9) << phase.name;
    EXPECT_NEAR(ob.uarch_slowdown, 1.0, 1e-9) << phase.name;
  }
}

TEST(Interference, EmptyServerNoObservations) {
  InterferenceModel model;
  const auto out = model.evaluate(ServerConfig::tiny(), {});
  EXPECT_TRUE(out.empty());
}

TEST(Interference, NullSlotsAreSkipped) {
  InterferenceModel model;
  const auto phase = wl::cpu_phase("c", 1.0);
  std::vector<const wl::Phase*> ptrs{nullptr, &phase, nullptr};
  const auto out = model.evaluate(ServerConfig::tiny(), ptrs);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].ipc, 0.0);
  EXPECT_NEAR(out[1].rate, 1.0, 1e-9);
}

TEST(Interference, CpuOversubscriptionTimeSlices) {
  InterferenceModel model;
  auto server = ServerConfig::tiny();  // 4 cores
  std::vector<wl::Phase> phases(4, wl::cpu_phase("c", 1.0, /*cores=*/2.0));
  const auto out = eval(model, server, phases);  // 8 cores demanded on 4
  for (const auto& ob : out) {
    EXPECT_LT(ob.rate, 0.6);  // ~2x time slicing
    EXPECT_NEAR(ob.cpu_share, 0.5, 1e-9);
  }
}

TEST(Interference, CacheContentionDegradesIpc) {
  InterferenceModel model;
  auto server = ServerConfig::tiny();  // 8 MB LLC
  // Two 6 MB working sets on an 8 MB cache must inflate misses.
  std::vector<wl::Phase> phases(
      2, wl::memory_phase("m", 1.0, /*cores=*/1.0, /*llc_mb=*/6.0,
                          /*membw=*/2.0));
  const auto out = eval(model, server, phases);
  const auto solo = model.solo(server, phases[0]);
  for (const auto& ob : out) {
    EXPECT_LT(ob.ipc, solo.ipc * 0.95);
    EXPECT_GT(ob.l3_mpki, solo.l3_mpki);
    EXPECT_LT(ob.llc_occupancy_mb, 6.0);
  }
}

TEST(Interference, NetworkBoundCorunnerBarelyDentsIpc) {
  // Observation 1: iperf-like colocation does not move the victim's IPC.
  InterferenceModel model;
  auto server = ServerConfig::tianjin_testbed();
  const auto victim = wl::cpu_phase("victim", 1.0, 2.0, 4.0, 2.0);
  const auto iperf = wl::net_phase("iperf", 1.0, /*net_mbps=*/2000.0);
  const auto out = eval(model, server, {victim, iperf});
  const auto solo = model.solo(server, victim);
  EXPECT_GT(out[0].ipc, solo.ipc * 0.97);
}

TEST(Interference, CpuBoundCorunnerHurtsMemoryBoundVictim) {
  InterferenceModel model;
  auto server = ServerConfig::tiny();
  const auto victim = wl::memory_phase("victim", 1.0, 1.0, 6.0, 4.0);
  const auto matmul = wl::cpu_phase("matmul", 1.0, 4.0, 6.0, 2.6);
  const auto out = eval(model, server, {victim, matmul});
  const auto solo = model.solo(server, victim);
  EXPECT_LT(out[0].ipc, solo.ipc * 0.9);
  EXPECT_LT(out[0].rate, 0.95);
}

TEST(Interference, DiskChannelQueueing) {
  InterferenceModel model;
  auto server = ServerConfig::tiny();  // 400 MB/s disk
  std::vector<wl::Phase> phases(2, wl::disk_phase("d", 1.0, 300.0));
  const auto out = eval(model, server, phases);
  // 600 on 400 MB/s: heavy queueing on the disk fraction.
  for (const auto& ob : out) EXPECT_LT(ob.rate, 0.75);
}

TEST(Interference, MemoryBandwidthSaturation) {
  InterferenceModel model;
  auto server = ServerConfig::tiny();  // 10 GB/s
  std::vector<wl::Phase> phases(
      3, wl::memory_phase("m", 1.0, 1.0, 2.0, /*membw=*/5.0));
  const auto out = eval(model, server, phases);
  const auto solo = model.solo(server, phases[0]);
  for (const auto& ob : out) {
    EXPECT_LT(ob.ipc, solo.ipc);
    EXPECT_LT(ob.membw_gbps, 5.0);  // achieved < demanded
  }
}

TEST(Interference, SwapPenaltyOnMemoryOvercommit) {
  InterferenceModel model;
  auto server = ServerConfig::tiny();  // 16 GB
  auto big = wl::cpu_phase("big", 1.0);
  big.demand.mem_gb = 20.0;  // over capacity alone
  const auto ob = model.solo(server, big);
  EXPECT_LT(ob.rate, 0.5);
}

TEST(Interference, MoreCorunnersNeverSpeedYouUp) {
  InterferenceModel model;
  auto server = ServerConfig::tiny();
  const auto victim = wl::mixed_phase("v", 1.0);
  std::vector<wl::Phase> others;
  double prev_rate = 1e9;
  for (int k = 0; k < 6; ++k) {
    std::vector<wl::Phase> all{victim};
    for (const auto& o : others) all.push_back(o);
    const double rate = eval(model, server, all)[0].rate;
    EXPECT_LE(rate, prev_rate + 1e-9) << k;
    prev_rate = rate;
    others.push_back(wl::mixed_phase("o", 1.0));
  }
}

TEST(Interference, CountersRespondToContention) {
  InterferenceModel model;
  auto server = ServerConfig::tiny();
  const auto victim = wl::memory_phase("v", 1.0, 2.0, 6.0, 4.0);
  const auto solo = model.solo(server, victim);
  std::vector<wl::Phase> crowd(3, wl::cpu_phase("c", 1.0, 2.0, 4.0, 2.0));
  std::vector<wl::Phase> all{victim};
  for (const auto& c : crowd) all.push_back(c);
  const auto ob = eval(model, server, all)[0];
  EXPECT_GT(ob.ctx_per_s, solo.ctx_per_s);        // time slicing
  EXPECT_LT(ob.cpu_freq_ghz, solo.cpu_freq_ghz);  // frequency droop
  EXPECT_GE(ob.l1d_mpki, solo.l1d_mpki);          // slice pollution
  EXPECT_GE(ob.dtlb_mpki, solo.dtlb_mpki);
}

TEST(Interference, FractionsOutsideChannelsAreImmune) {
  InterferenceModel model;
  auto server = ServerConfig::tiny();
  // A phase that is 100% "other" (blocked on an external service).
  wl::Phase idle;
  idle.name = "blocked";
  idle.solo_duration_s = 1.0;
  idle.demand.cores = 0.1;
  idle.demand.frac_cpu = 0.0;
  std::vector<wl::Phase> all{idle, wl::cpu_phase("c", 1.0, 8.0)};
  const auto out = eval(model, server, all);
  EXPECT_NEAR(out[0].rate, 1.0, 1e-6);
}

}  // namespace
}  // namespace gsight::sim
