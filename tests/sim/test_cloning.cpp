// Request cloning + service disciplines. Covers the PR-10 tentpole at the
// sim layer: kProcessorSharing's equal-share cap on greedy executions,
// gateway fan-out to distinct servers, cancel-on-first-complete with
// per-request clone accounting, the synchronized-service policy's shared
// jitter draw (arxiv 2002.04416's C(n,d) model), and tracked-request
// cancellation. Test names deliberately contain "Clone"/"ProcessorSharing"
// so check.sh's TSan stage picks them up by regex.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/platform.hpp"
#include "stats/summary.hpp"
#include "workloads/phase.hpp"

namespace gsight::sim {
namespace {

PlatformConfig clone_config(std::size_t servers = 4) {
  PlatformConfig pc;
  pc.servers = servers;
  pc.server = ServerConfig::socket();
  pc.seed = 77;
  pc.instance.startup_cores = 0.0;
  pc.instance.startup_disk_mbps = 0.0;
  return pc;
}

wl::App one_fn_app(const std::string& name, wl::Phase phase,
                   wl::WorkloadClass cls = wl::WorkloadClass::kLatencySensitive,
                   double jitter_sigma = 0.0) {
  wl::FunctionSpec fn;
  fn.name = "fn";
  fn.cold_start_s = 0.0;
  fn.jitter_sigma = jitter_sigma;
  fn.phases.push_back(std::move(phase));
  wl::App app;
  app.name = name;
  app.cls = cls;
  app.functions.push_back(std::move(fn));
  app.graph = wl::CallGraph(1);
  return app;
}

double run_one_job_jct(ServiceDiscipline discipline, double cores) {
  PlatformConfig pc = clone_config(1);
  pc.server.discipline = discipline;
  Platform platform(pc);
  const std::size_t id = platform.deploy(
      one_fn_app("solo", wl::cpu_phase("work", 2.0, cores),
                 wl::WorkloadClass::kShortCompute),
      {0});
  platform.submit_job(id);
  platform.run_until(60.0);
  const auto& jct = platform.stats(id).jct;
  return jct.size() == 1 ? jct[0].second : -1.0;
}

TEST(ProcessorSharing, SoloRunMatchesSerialBitExact) {
  // A lone execution demands less than the whole server, so the fair
  // share never binds: kProcessorSharing must be bit-identical to the
  // kSerial status quo.
  const double serial = run_one_job_jct(ServiceDiscipline::kSerial, 8.0);
  const double ps = run_one_job_jct(ServiceDiscipline::kProcessorSharing, 8.0);
  ASSERT_GT(serial, 0.0);
  EXPECT_EQ(serial, ps);
}

TEST(ProcessorSharing, GreedyExecutionIsCappedToFairShare) {
  // Heavy (8 cores) + light (1 core) on a 10-core socket. Demand-
  // proportional slicing (kSerial) sees 9 <= 10 cores and runs both at
  // full speed; egalitarian sharing caps the heavy job at 10/2 = 5 cores,
  // stretching its JCT by ~8/5.
  auto run_heavy = [](ServiceDiscipline discipline) {
    PlatformConfig pc = clone_config(1);
    pc.server.discipline = discipline;
    Platform platform(pc);
    const std::size_t heavy = platform.deploy(
        one_fn_app("heavy", wl::cpu_phase("work", 2.0, 8.0),
                   wl::WorkloadClass::kShortCompute),
        {0});
    const std::size_t light = platform.deploy(
        one_fn_app("light", wl::cpu_phase("work", 2.0, 1.0),
                   wl::WorkloadClass::kShortCompute),
        {0});
    platform.submit_job(heavy);
    platform.submit_job(light);
    platform.run_until(60.0);
    EXPECT_EQ(platform.stats(light).jct.size(), 1u);
    return platform.stats(heavy).jct.at(0).second;
  };
  const double serial = run_heavy(ServiceDiscipline::kSerial);
  const double ps = run_heavy(ServiceDiscipline::kProcessorSharing);
  EXPECT_GT(ps, serial * 1.2);
}

TEST(Cloning, FanOutCancelsSiblingsOnFirstCompletion) {
  PlatformConfig pc = clone_config(4);
  pc.gateway.clone.factor = 3;
  Platform platform(pc);
  const std::size_t id = platform.deploy(
      one_fn_app("ls", wl::cpu_phase("serve", 0.02)), {0});
  platform.add_replica(id, 0, 1);
  platform.add_replica(id, 0, 2);
  platform.add_replica(id, 0, 3);
  platform.issue_request(id);
  platform.run_until(5.0);
  const AppStats& st = platform.stats(id);
  // Exactly one completion despite three dispatched legs; the two losing
  // clones were retracted and their aborted executions recorded.
  ASSERT_EQ(st.e2e.size(), 1u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.clones_dispatched, 3u);
  EXPECT_EQ(st.clones_cancelled, 2u);
  EXPECT_EQ(platform.recorder().aborts(id, 0), 2u);
  EXPECT_EQ(platform.request_pool().available(),
            platform.request_pool().allocated());
}

TEST(Cloning, AccountingBalancesUnderOpenLoopLoad) {
  PlatformConfig pc = clone_config(4);
  pc.gateway.clone.factor = 2;
  Platform platform(pc);
  const std::size_t id = platform.deploy(
      one_fn_app("ls", wl::cpu_phase("serve", 0.01)), {0});
  for (std::size_t s = 1; s < 4; ++s) platform.add_replica(id, 0, s);
  platform.set_open_loop(id, 50.0);
  platform.run_until(10.0);
  platform.set_open_loop(id, 0.0);
  platform.run_until(20.0);  // drain
  const AppStats& st = platform.stats(id);
  EXPECT_GT(st.e2e.size(), 100u);
  EXPECT_EQ(st.failed, 0u);
  // Every request fanned into exactly 2 legs, one won, one was retracted.
  EXPECT_EQ(st.clones_dispatched, 2 * st.e2e.size());
  EXPECT_EQ(st.clones_cancelled, st.e2e.size());
  EXPECT_EQ(platform.request_pool().available(),
            platform.request_pool().allocated());
}

TEST(Cloning, SynchronizedPolicySharesOneJitterDraw) {
  // Independent clones draw per-leg jitter: the request takes min-of-d
  // samples, which trims the mean. Synchronized service gives every leg
  // the same draw (same input, same work), so cloning cannot shorten the
  // service time itself — its mean must sit above the independent run's.
  auto mean_latency = [](CloneConfig::Policy policy) {
    PlatformConfig pc = clone_config(4);
    pc.gateway.clone.factor = 2;
    pc.gateway.clone.policy = policy;
    Platform platform(pc);
    const std::size_t id = platform.deploy(
        one_fn_app("ls", wl::cpu_phase("serve", 0.02),
                   wl::WorkloadClass::kLatencySensitive, 0.8),
        {0});
    for (std::size_t s = 1; s < 4; ++s) platform.add_replica(id, 0, s);
    platform.set_open_loop(id, 10.0);
    platform.run_until(30.0);
    platform.set_open_loop(id, 0.0);
    platform.run_until(40.0);
    const std::vector<double> e2e = platform.stats(id).e2e_values();
    EXPECT_GT(e2e.size(), 100u);
    return stats::mean(e2e);
  };
  const double independent = mean_latency(CloneConfig::Policy::kIndependent);
  const double synchronized = mean_latency(CloneConfig::Policy::kSynchronized);
  EXPECT_LT(independent, synchronized);
}

TEST(Cloning, TrackedRequestCancelRecordsNoSampleAndRecycles) {
  Platform platform(clone_config(1));
  const std::size_t id = platform.deploy(
      one_fn_app("ls", wl::cpu_phase("serve", 1.0)), {0});
  platform.run_until(2.0);  // let the deploy-time pre-warm invocation drain
  bool callback_fired = false;
  const std::uint64_t handle = platform.issue_tracked_request(
      id, [&](double, bool) { callback_fired = true; });
  platform.run_until(2.1);  // mid-flight: the 1 s execution is running
  EXPECT_TRUE(platform.cancel_request(handle));
  EXPECT_FALSE(platform.cancel_request(handle));  // idempotent
  platform.run_until(10.0);
  const AppStats& st = platform.stats(id);
  EXPECT_TRUE(st.e2e.empty());
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_FALSE(callback_fired);
  EXPECT_EQ(platform.recorder().aborts(id, 0), 1u);
  EXPECT_EQ(platform.request_pool().available(),
            platform.request_pool().allocated());
}

TEST(Cloning, CloneConfigRejectsOutOfRangeFactor) {
  CloneConfig zero;
  zero.factor = 0;
  EXPECT_THROW(zero.validate(), std::invalid_argument);
  CloneConfig huge;
  huge.factor = kMaxCloneFactor + 1;
  EXPECT_THROW(huge.validate(), std::invalid_argument);
  CloneConfig ok;
  ok.factor = kMaxCloneFactor;
  EXPECT_NO_THROW(ok.validate());
}

}  // namespace
}  // namespace gsight::sim
