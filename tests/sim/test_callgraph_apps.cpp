#include <gtest/gtest.h>

#include "workloads/callgraph.hpp"
#include "workloads/ecommerce.hpp"
#include "workloads/serverful.hpp"
#include "workloads/socialnetwork.hpp"
#include "workloads/sparkapps.hpp"
#include "workloads/suite.hpp"

namespace gsight::wl {
namespace {

TEST(CallGraph, CriticalPathFollowsNestedEdges) {
  CallGraph g(4);
  g.set_root(0);
  g.add_edge(0, 1, EdgeKind::kNested);
  g.add_edge(0, 2, EdgeKind::kAsync);
  g.add_edge(1, 3, EdgeKind::kNested);
  EXPECT_EQ(g.critical_path(), (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_TRUE(g.on_critical_path(0));
  EXPECT_TRUE(g.on_critical_path(3));
  EXPECT_FALSE(g.on_critical_path(2));
}

TEST(CallGraph, TopologicalOrderRespectsEdges) {
  CallGraph g(5);
  g.set_root(0);
  g.add_edge(0, 1, EdgeKind::kNested);
  g.add_edge(0, 2, EdgeKind::kAsync);
  g.add_edge(1, 3, EdgeKind::kNested);
  g.add_edge(2, 4, EdgeKind::kAsync);
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 5u);
  auto pos = [&](std::size_t n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(4));
}

TEST(CallGraph, CycleDetected) {
  CallGraph g(2);
  g.add_edge(0, 1, EdgeKind::kNested);
  g.add_edge(1, 0, EdgeKind::kNested);
  EXPECT_THROW(g.topological_order(), std::logic_error);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(CallGraph, BadIndicesThrow) {
  CallGraph g(2);
  EXPECT_THROW(g.add_edge(0, 5, EdgeKind::kNested), std::logic_error);
  EXPECT_THROW(g.add_edge(7, 0, EdgeKind::kNested), std::logic_error);
}

TEST(SocialNetwork, MatchesFigure2) {
  const App app = social_network();
  EXPECT_EQ(app.function_count(), 9u);
  EXPECT_EQ(app.cls, WorkloadClass::kLatencySensitive);
  // Critical path 1 -> 2 -> 6 -> 8 -> 9 (0-based: 0,1,5,7,8).
  EXPECT_EQ(app.graph.critical_path(),
            (std::vector<std::size_t>{kComposePost, kUploadMedia,
                                      kComposeAndUpload, kUploadHomeTimeline,
                                      kGetFollowers}));
  // Non-critical: 3, 4, 5, 7 (0-based 2, 3, 4, 6).
  EXPECT_FALSE(app.graph.on_critical_path(kUploadText));
  EXPECT_FALSE(app.graph.on_critical_path(kUploadUrls));
  EXPECT_FALSE(app.graph.on_critical_path(kUploadUniqueId));
  EXPECT_FALSE(app.graph.on_critical_path(kPostStorage));
}

TEST(SocialNetwork, MillisecondScaleFunctions) {
  const App app = social_network();
  for (const auto& fn : app.functions) {
    EXPECT_GT(fn.solo_duration_s(), 0.0005) << fn.name;
    EXPECT_LT(fn.solo_duration_s(), 0.05) << fn.name;
  }
  EXPECT_LT(app.critical_path_solo_s(), app.total_solo_s());
}

TEST(ECommerce, ValidStructure) {
  const App app = e_commerce();
  EXPECT_EQ(app.function_count(), 6u);
  EXPECT_NO_THROW(app.validate());
  EXPECT_TRUE(app.graph.on_critical_path(kPayment));
  EXPECT_FALSE(app.graph.on_critical_path(kConfirmation));
}

TEST(SparkApps, PhasesHaveDistinctPressure) {
  const App lr = logistic_regression();
  ASSERT_EQ(lr.functions.size(), 1u);
  const auto& phases = lr.functions[0].phases;
  ASSERT_EQ(phases.size(), 5u);
  // The late-map phase is the bandwidth-hungry one (Observation 3).
  EXPECT_GT(phases[2].demand.membw_gbps, phases[1].demand.membw_gbps);
  // Shuffle is network-heavy.
  EXPECT_GT(phases[3].demand.net_mbps, 500.0);
  EXPECT_GT(lr.total_solo_s(), 300.0);
}

TEST(SparkApps, SmallVariantsScaleDown) {
  EXPECT_LT(logistic_regression_small().total_solo_s(),
            logistic_regression().total_solo_s() / 10.0);
  EXPECT_LT(kmeans_small().total_solo_s(), kmeans().total_solo_s() / 10.0);
}

TEST(Suite, AllAppsValidate) {
  for (const auto& app : full_suite()) {
    EXPECT_NO_THROW(app.validate()) << app.name;
    EXPECT_GT(app.total_solo_s(), 0.0) << app.name;
  }
}

TEST(Suite, ClassesPartitionCorrectly) {
  for (const auto& app : ls_suite()) {
    EXPECT_EQ(app.cls, WorkloadClass::kLatencySensitive) << app.name;
  }
  for (const auto& app : sc_suite()) {
    EXPECT_EQ(app.cls, WorkloadClass::kShortCompute) << app.name;
  }
  for (const auto& app : bg_suite()) {
    EXPECT_EQ(app.cls, WorkloadClass::kBackground) << app.name;
  }
}

TEST(Suite, ByNameFindsAndThrows) {
  EXPECT_EQ(by_name("social-network").function_count(), 9u);
  EXPECT_THROW(by_name("nonexistent"), std::out_of_range);
}

TEST(Suite, CharacterizationCorunnersCoverChannels) {
  const auto corunners = characterization_corunners();
  ASSERT_EQ(corunners.size(), 4u);
  const auto& mm = corunners[0].functions[0].average_demand();
  const auto& d = corunners[1].functions[0].average_demand();
  const auto& ip = corunners[2].functions[0].average_demand();
  EXPECT_GT(mm.cores, 2.0);          // matmul: CPU
  EXPECT_GT(d.disk_mbps, 100.0);     // dd: disk
  EXPECT_GT(ip.net_mbps, 1000.0);    // iperf: net
}

TEST(Monolithize, FusesFunctions) {
  const App mono = monolithize(social_network());
  EXPECT_EQ(mono.function_count(), 1u);
  EXPECT_NO_THROW(mono.validate());
  // Memory adds up; duration collapses to the critical path.
  double mem = 0.0;
  for (const auto& fn : social_network().functions) mem += fn.mem_alloc_gb;
  EXPECT_NEAR(mono.functions[0].mem_alloc_gb, mem, 1e-9);
}

TEST(FunctionSpec, AverageDemandWeightsByDuration) {
  FunctionSpec fn;
  fn.phases.push_back(cpu_phase("a", 3.0, /*cores=*/4.0));
  fn.phases.push_back(disk_phase("b", 1.0, 100.0));
  const auto avg = fn.average_demand();
  // cores: 0.75*4 + 0.25*0.3 = 3.075
  EXPECT_NEAR(avg.cores, 3.075, 1e-9);
  EXPECT_NEAR(avg.disk_mbps, 25.0, 1e-9);
}

}  // namespace
}  // namespace gsight::wl
