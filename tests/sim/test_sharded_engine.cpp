// Sharded-engine determinism suite: N-lane runs must be byte-identical to
// the 1-lane run (serial and thread-pooled), the mailbox must replay in
// (epoch, source, seq) order, and events landing exactly on an epoch
// barrier must execute in a pinned epoch.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/mailbox.hpp"
#include "sim/shard.hpp"
#include "sim/sharded_engine.hpp"
#include "stats/seed_stream.hpp"

namespace gsight::sim {
namespace {

ShardedEngineConfig small_config(std::size_t cells, std::size_t lanes,
                                 std::size_t threads) {
  ShardedEngineConfig cfg;
  cfg.servers = 2;
  cfg.server = ServerConfig::tiny();
  cfg.seed = 20260808;
  cfg.topology.clusters = cells;
  cfg.topology.shards = lanes;
  cfg.topology.hop_latency_s = 0.05;
  cfg.threads = threads;
  cfg.remote_fraction = 0.2;
  cfg.trace.base_qps = 25.0;
  cfg.trace.day_seconds = 60.0;
  return cfg;
}

std::string run_digest(std::size_t cells, std::size_t lanes,
                       std::size_t threads, double horizon) {
  ShardedEngine eng(small_config(cells, lanes, threads));
  eng.deploy_default_load();
  eng.run_until(horizon);
  return eng.merged_digest();
}

// --- Topology validation -----------------------------------------------------

TEST(ShardTopologyValidate, RejectsBadShapes) {
  ShardTopology t;
  EXPECT_NO_THROW(t.validate());
  t.clusters = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = ShardTopology{};
  t.hop_latency_s = 0.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = ShardTopology{};
  t.epoch_s = t.hop_latency_s * 2.0;  // epoch longer than the hop
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(ShardTopologyValidate, LaneClamping) {
  ShardTopology t;
  t.clusters = 4;
  t.shards = 0;
  EXPECT_EQ(t.lanes(), 4u);
  t.shards = 2;
  EXPECT_EQ(t.lanes(), 2u);
  t.shards = 16;  // more lanes than cells is clamped
  EXPECT_EQ(t.lanes(), 4u);
}

// --- Mailbox replay order ----------------------------------------------------

TEST(Mailbox, OutboxStampsEpochSourceSeq) {
  Mailbox mb(3);
  mb.begin_epoch(7);
  mb.outbox(2).post(0, 1.0, 1.5, [](Shard&) {});
  mb.outbox(2).post(1, 1.1, 1.6, [](Shard&) {});
  const auto msgs = mb.collect();
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].epoch, 7u);
  EXPECT_EQ(msgs[0].source, 2u);
  EXPECT_EQ(msgs[0].seq, 0u);
  EXPECT_EQ(msgs[1].seq, 1u);
  EXPECT_EQ(mb.messages_exchanged(), 2u);
  // Sequence numbers keep rising across epochs — they are per-source
  // lifetime counters, so a (source, seq) pair is globally unique.
  mb.begin_epoch(8);
  mb.outbox(2).post(0, 2.0, 2.5, [](Shard&) {});
  const auto next = mb.collect();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].seq, 2u);
}

TEST(Mailbox, CollectSortsByEpochSourceSeq) {
  Mailbox mb(4);
  mb.begin_epoch(1);
  // Post in a scrambled source order; the replay order must come out
  // sorted regardless.
  mb.outbox(3).post(0, 1.0, 1.5, [](Shard&) {});
  mb.outbox(1).post(0, 1.0, 1.5, [](Shard&) {});
  mb.outbox(1).post(2, 1.2, 1.7, [](Shard&) {});
  mb.outbox(0).post(3, 1.3, 1.8, [](Shard&) {});
  const auto msgs = mb.collect();
  ASSERT_EQ(msgs.size(), 4u);
  std::vector<std::size_t> sources;
  for (const auto& m : msgs) sources.push_back(m.source);
  EXPECT_EQ(sources, (std::vector<std::size_t>{0, 1, 1, 3}));
  EXPECT_LT(msgs[1].seq, msgs[2].seq);  // same source: seq order
}

TEST(Mailbox, MailboxOrderIsStrictWeak) {
  ShardMessage a, b;
  a.epoch = 1;
  b.epoch = 2;
  EXPECT_TRUE(mailbox_order(a, b));
  EXPECT_FALSE(mailbox_order(b, a));
  b.epoch = 1;
  a.source = 0;
  b.source = 1;
  EXPECT_TRUE(mailbox_order(a, b));
  b.source = 0;
  a.seq = 5;
  b.seq = 5;
  EXPECT_FALSE(mailbox_order(a, b));
  EXPECT_FALSE(mailbox_order(b, a));
}

// --- Seed derivation ---------------------------------------------------------

TEST(ShardSeeds, TaggedDerivationComposesAndSeparates) {
  const std::uint64_t root = 42;
  const std::uint64_t tag_a = 0x11, tag_b = 0x22;
  EXPECT_EQ(stats::SeedStream::derive(root, tag_a, 3),
            stats::SeedStream::derive(stats::SeedStream::derive(root, tag_a), 3));
  // Same index under different tags must give different streams: the
  // per-cell platform seed and per-cell load seed families never collide.
  EXPECT_NE(stats::SeedStream::derive(root, tag_a, 3),
            stats::SeedStream::derive(root, tag_b, 3));
}

// --- Byte-identity across lane/thread counts --------------------------------

TEST(ShardedDeterminism, TwinRunsAreByteIdentical) {
  const std::string a = run_digest(4, 0, 1, 20.0);
  const std::string b = run_digest(4, 0, 1, 20.0);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ShardedDeterminism, LaneCountDoesNotChangeResults) {
  // Same 4-cell topology advanced by 1, 2 and 4 lanes: the cell -> lane
  // map changes wall-clock scheduling only, never what a cell computes.
  const std::string one = run_digest(4, 1, 1, 20.0);
  const std::string two = run_digest(4, 2, 1, 20.0);
  const std::string four = run_digest(4, 4, 1, 20.0);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST(ShardedDeterminism, ThreadPoolMatchesSerial) {
  const std::string serial = run_digest(4, 4, 1, 20.0);
  const std::string pooled = run_digest(4, 4, 8, 20.0);
  EXPECT_EQ(serial, pooled);
}

TEST(ShardedDeterminism, HandoffsFlowAndBalance) {
  ShardedEngine eng(small_config(4, 0, 1));
  eng.deploy_default_load();
  eng.run_until(30.0);
  std::uint64_t sent = 0, received = 0;
  for (std::size_t i = 0; i < eng.shard_count(); ++i) {
    sent += eng.shard(i).handoffs_sent();
    received += eng.shard(i).handoffs_received();
  }
  EXPECT_GT(sent, 0u);
  EXPECT_EQ(eng.messages_exchanged(), sent);
  // Deliveries land one hop after the send; only the tail still in flight
  // at the horizon may be outstanding.
  EXPECT_LE(received, sent);
  EXPECT_GT(received, 0u);
}

ShardedEngineConfig clone_handoff_config(std::size_t cells, std::size_t lanes,
                                         std::size_t threads) {
  ShardedEngineConfig cfg = small_config(cells, lanes, threads);
  cfg.clone_handoffs = true;
  cfg.remote_fraction = 0.3;
  return cfg;
}

std::string clone_run_digest(std::size_t cells, std::size_t lanes,
                             std::size_t threads, double horizon) {
  ShardedEngine eng(clone_handoff_config(cells, lanes, threads));
  eng.deploy_default_load();
  eng.run_until(horizon);
  return eng.merged_digest();
}

TEST(ShardedDeterminism, CloneHandoffLanesAreByteIdentical) {
  // Cross-cell clone pairs: the winner's cancel crosses the mailbox one
  // hop later, so cancellation events themselves ride the deterministic
  // (epoch, source, seq) replay. 1, 2 and 8 lanes (8 clamps to 4 cells),
  // serial and thread-pooled, must all produce the same digest bytes.
  const std::string one = clone_run_digest(4, 1, 1, 20.0);
  const std::string two = clone_run_digest(4, 2, 1, 20.0);
  const std::string eight = clone_run_digest(4, 8, 1, 20.0);
  const std::string pooled = clone_run_digest(4, 8, 8, 20.0);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_EQ(one, pooled);
}

TEST(ShardedDeterminism, CloneHandoffCancelsFlowAndResolve) {
  ShardedEngine eng(clone_handoff_config(4, 0, 1));
  eng.deploy_default_load();
  eng.run_until(30.0);
  std::uint64_t groups = 0, applied = 0, stale = 0;
  for (std::size_t i = 0; i < eng.shard_count(); ++i) {
    groups += eng.shard(i).clone_groups();
    applied += eng.shard(i).clone_cancels_applied();
    stale += eng.shard(i).clone_cancels_stale();
  }
  // The run actually exercised cross-shard cancellation: clone groups
  // formed, and the losing legs were retracted through the mailbox.
  EXPECT_GT(groups, 0u);
  EXPECT_GT(applied, 0u);
  // Every group resolves at most two cancels (one per leg's winner);
  // stale cancels (both legs winning in the same epoch, or the peer
  // already done) are expected and bounded by the group count.
  EXPECT_LE(applied + stale, 2 * groups);
}

TEST(ShardedDeterminism, MetricsCarryShardLabels) {
  ShardedEngine eng(small_config(2, 0, 1));
  eng.deploy_default_load();
  eng.run_until(5.0);
  eng.refresh_metrics();
  const std::string json = eng.metrics().to_json_string();
  // Labels export canonically as "k=v" strings: every per-cell gauge must
  // carry its shard label, and both cells must be present.
  EXPECT_NE(json.find("shard=0"), std::string::npos);
  EXPECT_NE(json.find("shard=1"), std::string::npos);
  EXPECT_NE(json.find("shard.events"), std::string::npos);
  EXPECT_NE(json.find("sharded.messages"), std::string::npos);
}

// --- Epoch-barrier pinning ---------------------------------------------------

TEST(ShardedEpochs, BarrierEventsLandInPinnedEpochs) {
  // hop = epoch = 1.0: epoch k covers (k-1, k].
  ShardedEngineConfig cfg = small_config(2, 0, 1);
  cfg.topology.hop_latency_s = 1.0;
  ShardedEngine eng(cfg);

  std::vector<std::uint64_t> local_epochs;
  // An event exactly at the t=1.0 barrier executes in the epoch that ends
  // there (run_until is inclusive), not the one that starts there.
  eng.shard(0).engine().at(1.0, [&] {
    local_epochs.push_back(eng.epochs_run());
  });
  eng.shard(0).engine().at(1.5, [&] {
    local_epochs.push_back(eng.epochs_run());
  });

  // A message posted at t=1.0 (epoch 1) is timestamped exactly at the
  // t=2.0 barrier after the hop; the delivery executes in epoch 2, never
  // retroactively inside the epoch that closed at its send time.
  std::vector<std::uint64_t> delivery_epochs;
  eng.shard(0).engine().at(1.0, [&] {
    eng.mailbox().outbox(0).post(1, 1.0, 2.0, [&](Shard&) {
      delivery_epochs.push_back(eng.epochs_run());
    });
  });

  eng.run_until(3.0);
  ASSERT_EQ(local_epochs.size(), 2u);
  EXPECT_EQ(local_epochs[0], 1u);  // t=1.0 pins to epoch 1
  EXPECT_EQ(local_epochs[1], 2u);  // t=1.5 falls in epoch 2
  ASSERT_EQ(delivery_epochs.size(), 1u);
  EXPECT_EQ(delivery_epochs[0], 2u);  // deliver_at=2.0 pins to epoch 2
}

}  // namespace
}  // namespace gsight::sim
