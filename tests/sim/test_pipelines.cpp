// The scatter-gather workloads (web search, wordcount) exercise parallel
// *nested* branches — the caller must wait for ALL children.
#include <gtest/gtest.h>

#include "sim/platform.hpp"
#include "workloads/pipelines.hpp"

namespace gsight::sim {
namespace {

PlatformConfig warm_sockets(std::size_t servers) {
  PlatformConfig pc;
  pc.servers = servers;
  pc.server = ServerConfig::socket();
  pc.seed = 3;
  pc.instance.startup_cores = 0.0;
  pc.instance.startup_disk_mbps = 0.0;
  return pc;
}

TEST(Pipelines, AppsValidate) {
  EXPECT_NO_THROW(wl::web_search().validate());
  EXPECT_NO_THROW(wl::inference_pipeline().validate());
  EXPECT_NO_THROW(wl::wordcount().validate());
  EXPECT_NO_THROW(wl::wordcount(8, 0.5).validate());
  EXPECT_EQ(wl::wordcount(8).function_count(), 10u);
}

TEST(Pipelines, WebSearchWaitsForAllShards) {
  Platform platform(warm_sockets(4));
  auto app = wl::web_search();
  for (auto& fn : app.functions) {
    fn.cold_start_s = 0.0;
    fn.jitter_sigma = 0.0;
  }
  // Make shard 2 slow: the end-to-end latency must follow the slowest
  // shard even though shards 0/1 finish early (scatter-gather).
  app.functions[4].phases[0].solo_duration_s = 0.5;
  const std::size_t id =
      platform.deploy(app, std::vector<std::size_t>(7, 0));
  platform.issue_request(id);
  platform.run_until(5.0);
  const auto& st = platform.stats(id);
  ASSERT_EQ(st.e2e.size(), 1u);
  EXPECT_GT(st.e2e[0].second, 0.5);
}

TEST(Pipelines, WordcountMakespanIsSlowestMapperPath) {
  Platform platform(warm_sockets(8));
  auto app = wl::wordcount(4, 0.02);  // seconds-scale
  for (auto& fn : app.functions) {
    fn.cold_start_s = 0.0;
    fn.jitter_sigma = 0.0;
  }
  std::vector<std::size_t> placement(app.function_count());
  for (std::size_t i = 0; i < placement.size(); ++i) placement[i] = i % 8;
  const std::size_t id = platform.deploy(app, placement);
  double jct = 0.0;
  platform.submit_job(id, [&](double v) { jct = v; });
  platform.run_until(60.0);
  // split (0.2 s) + map (0.8 s, parallel) + reduce (0.24 s).
  const double expected = 0.02 * 60.0 * (10.0 + 40.0 + 12.0) / 60.0;
  EXPECT_NEAR(jct, expected, 0.15);
}

TEST(Pipelines, ParallelMappersContendWhenColocated) {
  // All four mappers on one socket vs spread over four: the colocated
  // makespan must be longer (memory-bandwidth contention).
  auto run = [](bool colocated) {
    Platform platform(warm_sockets(4));
    auto app = wl::wordcount(4, 0.05);
    for (auto& fn : app.functions) {
      fn.cold_start_s = 0.0;
      fn.jitter_sigma = 0.0;
    }
    std::vector<std::size_t> placement(app.function_count(), 0);
    if (!colocated) {
      for (std::size_t i = 0; i < placement.size(); ++i) placement[i] = i % 4;
    }
    const std::size_t id = platform.deploy(app, placement);
    double jct = 0.0;
    platform.submit_job(id, [&](double v) { jct = v; });
    platform.run_until(300.0);
    return jct;
  };
  const double packed = run(true);
  const double spread = run(false);
  EXPECT_GT(packed, spread * 1.1);
}

TEST(Pipelines, InferencePipelineAsyncPostprocess) {
  Platform platform(warm_sockets(2));
  auto app = wl::inference_pipeline();
  for (auto& fn : app.functions) {
    fn.cold_start_s = 0.0;
    fn.jitter_sigma = 0.0;
  }
  // Blow up the async postprocess: e2e must not follow.
  app.functions[2].phases[0].solo_duration_s = 2.0;
  const std::size_t id =
      platform.deploy(app, std::vector<std::size_t>(3, 0));
  platform.issue_request(id);
  platform.run_until(10.0);
  ASSERT_EQ(platform.stats(id).e2e.size(), 1u);
  EXPECT_LT(platform.stats(id).e2e[0].second, 0.5);
}

}  // namespace
}  // namespace gsight::sim
