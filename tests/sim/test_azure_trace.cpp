#include "workloads/azure_trace.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gsight::wl {
namespace {

TEST(AzureTrace, RateIsNonNegativeEverywhere) {
  AzureTraceConfig cfg;
  cfg.diurnal_amplitude = 1.0;  // extreme swing
  AzureTraceGenerator gen(cfg);
  for (double t = 0.0; t < 3.0 * cfg.day_seconds; t += 7.3) {
    EXPECT_GE(gen.rate_at(t), 0.0);
  }
}

TEST(AzureTrace, DiurnalPeriodicity) {
  AzureTraceConfig cfg;
  cfg.weekly_amplitude = 0.0;  // isolate the daily wave
  AzureTraceGenerator gen(cfg);
  for (double t = 0.0; t < cfg.day_seconds; t += 50.0) {
    EXPECT_NEAR(gen.rate_at(t), gen.rate_at(t + cfg.day_seconds), 1e-9);
  }
}

TEST(AzureTrace, PeakAndTroughDiffer) {
  AzureTraceConfig cfg;
  cfg.diurnal_amplitude = 0.6;
  AzureTraceGenerator gen(cfg);
  double lo = 1e18, hi = 0.0;
  for (double t = 0.0; t < cfg.day_seconds; t += 1.0) {
    lo = std::min(lo, gen.rate_at(t));
    hi = std::max(hi, gen.rate_at(t));
  }
  EXPECT_GT(hi, 2.0 * lo);  // 0.6 amplitude => (1.6)/(0.4) = 4x swing
}

TEST(AzureTrace, ArrivalsMatchRateIntegral) {
  AzureTraceConfig cfg;
  cfg.base_qps = 50.0;
  cfg.noise_sigma = 0.0;
  cfg.weekly_amplitude = 0.0;  // so the daily sine integrates to ~0
  AzureTraceGenerator gen(cfg, 3);
  const double t1 = 2.0 * cfg.day_seconds;
  const auto arrivals = gen.arrivals(0.0, t1);
  const double expected = cfg.base_qps * t1;
  EXPECT_NEAR(static_cast<double>(arrivals.size()), expected,
              0.1 * expected);
}

TEST(AzureTrace, ArrivalsSortedWithinRange) {
  AzureTraceGenerator gen({}, 5);
  const auto arrivals = gen.arrivals(10.0, 50.0);
  ASSERT_FALSE(arrivals.empty());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i], 10.0);
    EXPECT_LT(arrivals[i], 50.0);
    if (i > 0) {
      EXPECT_GE(arrivals[i], arrivals[i - 1]);
    }
  }
}

TEST(AzureTrace, DeterministicForSeed) {
  AzureTraceGenerator a({}, 11), b({}, 11);
  EXPECT_EQ(a.arrivals(0.0, 100.0), b.arrivals(0.0, 100.0));
}

TEST(ZipfWeights, NormalizedAndDecreasing) {
  const auto w = zipf_weights(10, 1.1);
  ASSERT_EQ(w.size(), 10u);
  double sum = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    sum += w[i];
    if (i > 0) {
      EXPECT_LT(w[i], w[i - 1]);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(w[0], 3.0 * w[9]);  // heavy tail
}

TEST(ZipfWeights, SingleApp) {
  const auto w = zipf_weights(1);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

}  // namespace
}  // namespace gsight::wl
