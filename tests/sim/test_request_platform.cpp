#include <gtest/gtest.h>

#include "sim/autoscaler.hpp"
#include "sim/platform.hpp"
#include "stats/summary.hpp"
#include "workloads/socialnetwork.hpp"
#include "workloads/sparkapps.hpp"
#include "workloads/suite.hpp"

namespace gsight::sim {
namespace {

PlatformConfig warm_config(std::size_t servers = 4) {
  PlatformConfig pc;
  pc.servers = servers;
  pc.server = ServerConfig::tianjin_testbed();
  pc.seed = 7;
  pc.instance.startup_cores = 0.0;  // keep cold starts cheap in unit tests
  pc.instance.startup_disk_mbps = 0.0;
  return pc;
}

TEST(Platform, DeployCreatesOneReplicaPerFunction) {
  Platform platform(warm_config());
  const auto app = wl::social_network();
  const std::size_t id =
      platform.deploy(app, std::vector<std::size_t>(9, 0));
  EXPECT_EQ(platform.total_instances(), 9u);
  for (std::size_t fn = 0; fn < 9; ++fn) {
    EXPECT_EQ(platform.replicas(id, fn).size(), 1u);
  }
}

TEST(Platform, DeployRejectsBadPlacement) {
  Platform platform(warm_config());
  EXPECT_THROW(platform.deploy(wl::social_network(), {0, 1}),
               std::invalid_argument);
}

TEST(Platform, SingleRequestCompletesNearCriticalPathTime) {
  Platform platform(warm_config());
  auto app = wl::social_network();
  for (auto& fn : app.functions) {
    fn.jitter_sigma = 0.0;
    fn.cold_start_s = 0.0;
  }
  const std::size_t id =
      platform.deploy(app, std::vector<std::size_t>(9, 0));
  platform.issue_request(id);
  platform.run_until(5.0);
  const auto& st = platform.stats(id);
  ASSERT_EQ(st.e2e.size(), 1u);
  const double latency = st.e2e[0].second;
  const double critical = app.critical_path_solo_s();
  EXPECT_GT(latency, critical * 0.99);
  EXPECT_LT(latency, critical * 1.5 + 0.01);  // + gateway hops
}

TEST(Platform, AsyncBranchesDoNotExtendLatency) {
  // Make the async side branches enormous: e2e latency must not follow.
  Platform platform(warm_config());
  auto app = wl::social_network();
  for (auto& fn : app.functions) {
    fn.jitter_sigma = 0.0;
    fn.cold_start_s = 0.0;
  }
  app.functions[wl::kUploadText].phases[0].solo_duration_s = 3.0;  // async
  const std::size_t id =
      platform.deploy(app, std::vector<std::size_t>(9, 0));
  platform.issue_request(id);
  platform.run_until(10.0);
  const auto& st = platform.stats(id);
  ASSERT_EQ(st.e2e.size(), 1u);
  EXPECT_LT(st.e2e[0].second, 0.5);
}

TEST(Platform, NestedSlowdownExtendsLatency) {
  Platform platform(warm_config());
  auto app = wl::social_network();
  for (auto& fn : app.functions) {
    fn.jitter_sigma = 0.0;
    fn.cold_start_s = 0.0;
  }
  app.functions[wl::kGetFollowers].phases[0].solo_duration_s = 1.0;  // nested
  const std::size_t id =
      platform.deploy(app, std::vector<std::size_t>(9, 0));
  platform.issue_request(id);
  platform.run_until(10.0);
  EXPECT_GT(platform.stats(id).e2e[0].second, 1.0);
}

TEST(Platform, OpenLoopGeneratesApproximateRate) {
  Platform platform(warm_config());
  const std::size_t id =
      platform.deploy(wl::social_network(), std::vector<std::size_t>(9, 0));
  platform.set_open_loop(id, 50.0);
  platform.run_until(20.0);
  platform.set_open_loop(id, 0.0);
  platform.run_until(22.0);
  const auto n = platform.stats(id).e2e.size();
  EXPECT_NEAR(static_cast<double>(n), 1000.0, 150.0);
}

TEST(Platform, OpenLoopStops) {
  Platform platform(warm_config());
  auto app = wl::social_network();
  for (auto& fn : app.functions) fn.cold_start_s = 0.0;  // skip warmup
  const std::size_t id =
      platform.deploy(app, std::vector<std::size_t>(9, 0));
  platform.set_open_loop(id, 50.0);
  platform.run_until(5.0);
  platform.set_open_loop(id, 0.0);
  const auto before = platform.stats(id).e2e.size();
  platform.run_until(15.0);
  const auto after = platform.stats(id).e2e.size();
  EXPECT_LE(after - before, 5u);  // only in-flight stragglers
}

TEST(Platform, JobJctNearSoloWhenAlone) {
  Platform platform(warm_config());
  auto app = wl::logistic_regression_small();
  app.functions[0].jitter_sigma = 0.0;
  app.functions[0].cold_start_s = 0.0;
  const std::size_t id = platform.deploy(app, {0});
  double jct = 0.0;
  platform.submit_job(id, [&](double v) { jct = v; });
  platform.run_until(100.0);
  EXPECT_NEAR(jct, app.total_solo_s(), 0.2);
}

TEST(Platform, FnLatencyAndIpcPerFunctionRecorded) {
  Platform platform(warm_config());
  auto app = wl::social_network();
  for (auto& fn : app.functions) fn.cold_start_s = 0.0;  // skip warmup
  const std::size_t id =
      platform.deploy(app, std::vector<std::size_t>(9, 0));
  platform.set_open_loop(id, 20.0);
  platform.run_until(10.0);
  const auto& st = platform.stats(id);
  for (std::size_t fn = 0; fn < 9; ++fn) {
    EXPECT_FALSE(st.fn_latency[fn].empty()) << fn;
    EXPECT_GT(st.fn_ipc[fn].mean(), 0.0) << fn;
  }
}

TEST(Platform, AddAndRemoveReplica) {
  Platform platform(warm_config());
  const std::size_t id =
      platform.deploy(wl::social_network(), std::vector<std::size_t>(9, 0));
  platform.add_replica(id, 0, 1);
  EXPECT_EQ(platform.replicas(id, 0).size(), 2u);
  EXPECT_TRUE(platform.remove_replica(id, 0));
  // Let the pre-warm invocation finish and the gc destroy the drained
  // instance (cold start is 2 s for this app).
  platform.run_until(6.0);
  EXPECT_EQ(platform.replicas(id, 0).size(), 1u);
  // min_keep prevents removing the last replica.
  EXPECT_FALSE(platform.remove_replica(id, 0));
}

TEST(Platform, RouterSpreadsAcrossReplicas) {
  Platform platform(warm_config());
  const std::size_t id =
      platform.deploy(wl::social_network(), std::vector<std::size_t>(9, 0));
  platform.add_replica(id, 0, 1);
  Instance* a = platform.route(id, 0);
  Instance* b = platform.route(id, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(platform.route(id, 0), a);  // round robin wraps
}

TEST(Platform, FunctionDensityCountsInstancesPerActiveCore) {
  Platform platform(warm_config(2));  // 2 x 40 cores, one left empty
  const std::size_t id =
      platform.deploy(wl::social_network(), std::vector<std::size_t>(9, 0));
  EXPECT_NEAR(platform.function_density(), 9.0 / 40.0, 1e-9);
  // Spreading onto the second server halves the density contribution.
  platform.add_replica(id, 0, 1);
  EXPECT_NEAR(platform.function_density(), 10.0 / 80.0, 1e-9);
}

TEST(Autoscaler, ScalesOutUnderLoadAndBackWhenIdle) {
  Platform platform(warm_config());
  auto app = wl::social_network();
  const std::size_t id =
      platform.deploy(app, std::vector<std::size_t>(9, 0));
  AutoscalerConfig cfg;
  cfg.tick_s = 2.0;
  cfg.max_replicas = 8;
  std::size_t placements = 0;
  Autoscaler scaler(&platform, cfg, [&](std::size_t, std::size_t) {
    ++placements;
    return placements % 4;  // spread
  });
  scaler.start();
  // 120 qps against ~10ms functions needs ~2 replicas of the slow ones.
  platform.set_open_loop(id, 120.0);
  platform.run_until(30.0);
  EXPECT_GT(platform.total_instances(), 9u);
  EXPECT_GT(scaler.scale_out_events(), 0u);
  EXPECT_GT(scaler.rate_estimate(id), 60.0);
  platform.set_open_loop(id, 0.0);
  platform.run_until(120.0);
  EXPECT_GT(scaler.scale_in_events(), 0u);
}

TEST(Recorder, WindowsCoverBusyTime) {
  Platform platform(warm_config());
  auto app = wl::logistic_regression_small();
  app.functions[0].jitter_sigma = 0.0;
  app.functions[0].cold_start_s = 0.0;
  const std::size_t id = platform.deploy(app, {0});
  platform.submit_job(id);
  platform.run_until(60.0);
  const double busy = platform.recorder().busy_seconds(id, 0);
  EXPECT_NEAR(busy, app.total_solo_s(), 0.1);
  const auto windows = platform.recorder().windows(id, 0);
  EXPECT_GT(windows.size(), 5u);  // per-second samples from one long job
  for (const auto& [w, acc] : windows) {
    EXPECT_GT(acc.ipc, 0.0);
    EXPECT_LE(acc.dt, platform.recorder().window_s() + 1e-9);
  }
}

}  // namespace
}  // namespace gsight::sim
