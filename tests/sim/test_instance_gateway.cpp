#include <gtest/gtest.h>

#include "sim/gateway.hpp"
#include "sim/instance.hpp"

namespace gsight::sim {
namespace {

struct InstanceFixture : ::testing::Test {
  Engine engine;
  InterferenceModel model;
  Server server{0, ServerConfig::tiny(), &engine, &model};
  wl::FunctionSpec spec = [] {
    wl::FunctionSpec s;
    s.name = "fn";
    s.cold_start_s = 0.5;
    s.mem_alloc_gb = 0.25;
    s.jitter_sigma = 0.0;  // deterministic timing for assertions
    s.phases.push_back(wl::cpu_phase("work", 1.0));
    return s;
  }();
};

TEST_F(InstanceFixture, FirstInvocationIsCold) {
  Instance inst(1, 0, 0, &spec, &server, &engine, {}, 42);
  InvocationResult result;
  bool done = false;
  inst.submit([&](const InvocationResult& r) {
    result = r;
    done = true;
  });
  engine.run_until(10.0);
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.cold);
  EXPECT_NEAR(result.exec_s, 1.5, 1e-9);  // cold start + work
  EXPECT_EQ(inst.cold_starts(), 1u);
}

TEST_F(InstanceFixture, SecondInvocationIsWarm) {
  Instance inst(1, 0, 0, &spec, &server, &engine, {}, 42);
  std::vector<InvocationResult> results;
  inst.submit([&](const InvocationResult& r) { results.push_back(r); });
  engine.run_until(10.0);
  inst.submit([&](const InvocationResult& r) { results.push_back(r); });
  engine.run_until(20.0);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[1].cold);
  EXPECT_NEAR(results[1].exec_s, 1.0, 1e-9);
}

TEST_F(InstanceFixture, IdleExpiryRecools) {
  InstanceConfig cfg;
  cfg.idle_expiry_s = 5.0;
  Instance inst(1, 0, 0, &spec, &server, &engine, cfg, 42);
  int colds = 0;
  auto count = [&](const InvocationResult& r) { colds += r.cold ? 1 : 0; };
  inst.submit(count);
  engine.run_until(3.0);
  inst.submit(count);  // warm: only ~1.5s since finish
  engine.run_until(20.0);
  inst.submit(count);  // > 5 s idle: cold again
  engine.run_until(40.0);
  EXPECT_EQ(colds, 2);
  EXPECT_EQ(inst.cold_starts(), 2u);
}

TEST_F(InstanceFixture, FifoQueueingAccumulatesWait) {
  Instance inst(1, 0, 0, &spec, &server, &engine, {}, 42);
  std::vector<InvocationResult> results;
  for (int i = 0; i < 3; ++i) {
    inst.submit([&](const InvocationResult& r) { results.push_back(r); });
  }
  EXPECT_EQ(inst.queue_depth(), 2u);  // one running, two queued
  engine.run_until(30.0);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_NEAR(results[0].queue_wait_s, 0.0, 1e-9);
  EXPECT_NEAR(results[1].queue_wait_s, 1.5, 1e-9);  // behind cold+work
  EXPECT_NEAR(results[2].queue_wait_s, 2.5, 1e-9);
  EXPECT_GT(results[2].local_latency_s, results[0].local_latency_s);
}

TEST_F(InstanceFixture, ResidentMemoryTracked) {
  EXPECT_DOUBLE_EQ(server.resident_mem_gb(), 0.0);
  {
    Instance inst(1, 0, 0, &spec, &server, &engine, {}, 42);
    EXPECT_DOUBLE_EQ(server.resident_mem_gb(), 0.25);
  }
  EXPECT_DOUBLE_EQ(server.resident_mem_gb(), 0.0);
}

TEST_F(InstanceFixture, StatsAccumulate) {
  Instance inst(1, 0, 0, &spec, &server, &engine, {}, 42);
  for (int i = 0; i < 5; ++i) {
    inst.submit([](const InvocationResult&) {});
    engine.run_until(engine.now() + 10.0);
  }
  EXPECT_EQ(inst.invocations(), 5u);
  EXPECT_EQ(inst.local_latencies().seen(), 5u);
  EXPECT_GT(inst.ipc_stats().mean(), 0.0);
}

TEST_F(InstanceFixture, RetireMarksDraining) {
  Instance inst(1, 0, 0, &spec, &server, &engine, {}, 42);
  EXPECT_FALSE(inst.draining());
  EXPECT_TRUE(inst.idle());
  inst.retire();
  EXPECT_TRUE(inst.draining());
}

struct GatewayFixture : ::testing::Test {
  Engine engine;
  GatewayConfig config;
  GatewayFixture() { config.base_service_s = 0.001; }
};

TEST_F(GatewayFixture, DeliversAfterServiceTime) {
  Gateway gw(&engine, config);
  double delivered_at = -1.0;
  gw.forward([&] { delivered_at = engine.now(); });
  engine.run_until(1.0);
  EXPECT_NEAR(delivered_at, 0.001, 1e-6);
}

TEST_F(GatewayFixture, SerialQueueing) {
  Gateway gw(&engine, config);
  std::vector<double> times;
  for (int i = 0; i < 5; ++i) {
    gw.forward([&] { times.push_back(engine.now()); });
  }
  engine.run_until(1.0);
  ASSERT_EQ(times.size(), 5u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
    // Every forward costs at least the base service time; the gateway's
    // own queue is not priced (only backend backlog is), so the gaps are
    // uniform here.
    EXPECT_NEAR(times[i] - times[i - 1], config.base_service_s, 1e-9);
  }
}

TEST_F(GatewayFixture, InstanceCountKnee) {
  Gateway gw(&engine, config);
  std::size_t instances = 0;
  gw.set_instance_count_source([&] { return instances; });
  instances = 10;
  const double cheap = gw.current_service_s();
  instances = 120;
  const double at_knee = gw.current_service_s();
  instances = 200;
  const double beyond = gw.current_service_s();
  EXPECT_LT(cheap, at_knee);
  EXPECT_GT(at_knee, 1.5 * cheap);
  EXPECT_GT(beyond, 5.0 * at_knee);
}

TEST_F(GatewayFixture, BackendBacklogSlowsForwarding) {
  Gateway gw(&engine, config);
  std::size_t backlog = 0;
  gw.set_backend_backlog_source([&] { return backlog; });
  const double idle = gw.current_service_s();
  backlog = 1000;
  EXPECT_GT(gw.current_service_s(), 2.0 * idle);
}

TEST_F(GatewayFixture, ForwardingLatenciesRecorded) {
  Gateway gw(&engine, config);
  for (int i = 0; i < 10; ++i) {
    gw.forward([] {});
  }
  engine.run_until(1.0);
  EXPECT_EQ(gw.forwarding_latencies().seen(), 10u);
  EXPECT_GT(gw.forwarding_latencies().mean(), 0.0);
}

}  // namespace
}  // namespace gsight::sim
