// LoadDriver tests — the harness behind `gsight serve-bench`. The
// deterministic suite is the unit-level version of check.sh's twin-run
// gate; the threaded suites run under TSan via the 'Serve' name match.
#include "serve/load_driver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ml/incremental_forest.hpp"
#include "stats/rng.hpp"

namespace gsight::serve {
namespace {

constexpr std::size_t kDim = 16;

ml::IncrementalForest warm_model(std::uint64_t seed, std::size_t rows) {
  ml::IncrementalForestConfig cfg;
  cfg.forest.n_trees = 8;
  ml::IncrementalForest model(cfg, seed);
  if (rows > 0) {
    stats::Rng rng(seed ^ 0xABCDULL);
    ml::Dataset data(kDim);
    std::vector<double> x(kDim);
    for (std::size_t i = 0; i < rows; ++i) {
      for (auto& v : x) v = rng.uniform();
      data.add(x, LoadDriver::label_of(x));
    }
    model.partial_fit(data);
  }
  return model;
}

ServiceConfig sync_config() {
  ServiceConfig cfg;
  cfg.feature_dim = kDim;
  cfg.worker_threads = 0;
  cfg.max_batch = 8;
  cfg.queue_capacity = 128;
  cfg.train_batch = 32;
  cfg.batch_linger = std::chrono::microseconds(10);
  return cfg;
}

DriverRequest open_loop_config() {
  DriverRequest cfg;
  cfg.mode = DriverRequest::Mode::kOpenLoop;
  cfg.requests = 600;
  cfg.rate_hz = 100'000.0;
  cfg.observe_every = 8;
  cfg.seed = 5;
  return cfg;
}

TEST(ServeLoadDriver, DeterministicOpenLoopServesEveryRequest) {
  PredictionService service(sync_config(), warm_model(3, 64));
  service.start();
  LoadDriver driver(open_loop_config());
  const auto outcome = driver.run_deterministic(service);
  EXPECT_EQ(outcome.submitted, 600u);
  EXPECT_EQ(outcome.completed + outcome.shed, 600u);
  EXPECT_EQ(outcome.shed, 0u);  // capacity 128 >> in-flight at this rate
  EXPECT_GT(outcome.duration_s, 0.0);
  EXPECT_GT(outcome.throughput_rps, 0.0);
  // Virtual latency = queueing-until-batch delay: bounded by the linger.
  EXPECT_GE(outcome.latency_max_us, outcome.latency_p99_us);
  EXPECT_GE(outcome.latency_p99_us, outcome.latency_p50_us);
  // Hot swap happened under deterministic load too: 600/8 observations
  // cross the train_batch=32 threshold at least twice.
  EXPECT_GE(service.stats().train_rounds, 1u);
  EXPECT_GT(service.stats().model_version, 1u);
}

TEST(ServeLoadDriver, DeterministicTwinRunsAreIdentical) {
  LoadOutcome first;
  LoadOutcome second;
  ServiceStats stats_first;
  ServiceStats stats_second;
  for (int run = 0; run < 2; ++run) {
    PredictionService service(sync_config(), warm_model(3, 64));
    service.start();
    LoadDriver driver(open_loop_config());
    const auto outcome = driver.run_deterministic(service);
    (run == 0 ? first : second) = outcome;
    (run == 0 ? stats_first : stats_second) = service.stats();
  }
  // The virtual timeline makes every field exactly reproducible — the
  // same contract scripts/check.sh enforces on BENCH_serve.json.
  EXPECT_EQ(first.submitted, second.submitted);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.shed, second.shed);
  EXPECT_EQ(first.duration_s, second.duration_s);
  EXPECT_EQ(first.throughput_rps, second.throughput_rps);
  EXPECT_EQ(first.latency_p50_us, second.latency_p50_us);
  EXPECT_EQ(first.latency_p95_us, second.latency_p95_us);
  EXPECT_EQ(first.latency_p99_us, second.latency_p99_us);
  EXPECT_EQ(first.latency_mean_us, second.latency_mean_us);
  EXPECT_EQ(first.latency_max_us, second.latency_max_us);
  EXPECT_EQ(stats_first.batches, stats_second.batches);
  EXPECT_EQ(stats_first.train_rounds, stats_second.train_rounds);
  EXPECT_EQ(stats_first.model_version, stats_second.model_version);
  EXPECT_EQ(stats_first.batch_size_counts, stats_second.batch_size_counts);
}

TEST(ServeLoadDriver, DifferentSeedsChangeTheTimeline) {
  LoadOutcome outcomes[2];
  for (int run = 0; run < 2; ++run) {
    PredictionService service(sync_config(), warm_model(3, 64));
    service.start();
    auto lc = open_loop_config();
    lc.seed = static_cast<std::uint64_t>(run + 1);
    LoadDriver driver(lc);
    outcomes[run] = driver.run_deterministic(service);
  }
  // Different Poisson arrival streams: durations should not coincide.
  EXPECT_NE(outcomes[0].duration_s, outcomes[1].duration_s);
}

TEST(ServeLoadDriver, DeterministicOverloadSheds) {
  auto sc = sync_config();
  sc.queue_capacity = 2;  // tiny queue, batch deadline far away
  sc.max_batch = 64;
  sc.batch_linger = std::chrono::milliseconds(10);
  PredictionService service(sc, warm_model(7, 64));
  service.start();
  auto lc = open_loop_config();
  lc.requests = 200;
  lc.rate_hz = 10'000'000.0;  // arrivals far faster than deadlines fire
  LoadDriver driver(lc);
  const auto outcome = driver.run_deterministic(service);
  EXPECT_EQ(outcome.submitted, 200u);
  EXPECT_GT(outcome.shed, 0u) << "overload must shed, not queue unboundedly";
  EXPECT_EQ(outcome.completed + outcome.shed, 200u);
  EXPECT_EQ(service.stats().shed, outcome.shed);
}

ServiceConfig threaded_config() {
  ServiceConfig cfg;
  cfg.feature_dim = kDim;
  cfg.worker_threads = 2;
  cfg.max_batch = 8;
  cfg.queue_capacity = 512;
  cfg.train_batch = 32;
  cfg.batch_linger = std::chrono::microseconds(20);
  return cfg;
}

TEST(ServeLoadDriverThreaded, OpenLoopCompletesEveryAcceptedRequest) {
  PredictionService service(threaded_config(), warm_model(9, 64));
  service.start();
  auto lc = open_loop_config();
  lc.requests = 400;
  lc.rate_hz = 20'000.0;
  LoadDriver driver(lc);
  const auto outcome = driver.run_threaded(service);
  service.stop();
  EXPECT_EQ(outcome.submitted, 400u);
  EXPECT_EQ(outcome.completed + outcome.shed, 400u);
  EXPECT_GT(outcome.completed, 0u);
  EXPECT_GT(outcome.throughput_rps, 0.0);
}

TEST(ServeLoadDriverThreaded, ClosedLoopCompletesRequestedCount) {
  PredictionService service(threaded_config(), warm_model(11, 64));
  service.start();
  DriverRequest lc;
  lc.mode = DriverRequest::Mode::kClosedLoop;
  lc.requests = 300;
  lc.clients = 4;
  lc.observe_every = 8;
  lc.seed = 21;
  LoadDriver driver(lc);
  const auto outcome = driver.run_threaded(service);
  service.stop();
  // Closed loop never sheds: each client has at most one outstanding
  // request against a deep queue.
  EXPECT_EQ(outcome.shed, 0u);
  EXPECT_GE(outcome.completed, 300u);
  EXPECT_EQ(outcome.submitted, outcome.completed);
  EXPECT_GT(outcome.latency_p50_us, 0.0);
}

}  // namespace
}  // namespace gsight::serve
