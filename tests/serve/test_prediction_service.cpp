// Serving-layer tests. Suite names carry the "Serve" prefix on purpose:
// scripts/check.sh runs them under TSan via -R '...|Serve' — these tests
// are the data-race gate for the worker/trainer/hot-swap surface.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/encoder.hpp"
#include "profiling/profile.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/serving_predictor.hpp"
#include "serve/snapshot.hpp"
#include "stats/rng.hpp"

namespace gsight::serve {
namespace {

constexpr std::size_t kDim = 8;

ml::Dataset labelled_rows(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  ml::Dataset data(kDim);
  std::vector<double> x(kDim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.uniform();
    data.add(x, x[0] + 0.5 * x[1]);
  }
  return data;
}

ml::IncrementalForest small_model(std::uint64_t seed = 3,
                                  std::size_t warm_rows = 0) {
  ml::IncrementalForestConfig cfg;
  cfg.forest.n_trees = 8;
  ml::IncrementalForest model(cfg, seed);
  if (warm_rows > 0) model.partial_fit(labelled_rows(warm_rows, seed));
  return model;
}

std::vector<double> probe_row(std::uint64_t seed = 17) {
  stats::Rng rng(seed);
  std::vector<double> x(kDim);
  for (auto& v : x) v = rng.uniform();
  return x;
}

// --- BoundedQueue ----------------------------------------------------------

TEST(ServeBoundedQueue, FifoOrderAndBatchCap) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.try_push(int(i)));
  std::vector<int> out;
  EXPECT_EQ(q.try_pop_batch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.try_pop_batch(out, 100), 6u);
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(out.back(), 9);
  EXPECT_EQ(q.try_pop_batch(out, 1), 0u);
}

TEST(ServeBoundedQueue, ShedsWhenFullRecoversAfterPop) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full = shed
  std::vector<int> out;
  q.try_pop_batch(out, 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(ServeBoundedQueue, CloseRejectsPushesButDrains) {
  BoundedQueue<int> q(8);
  q.try_push(1);
  q.try_push(2);
  q.close();
  EXPECT_FALSE(q.try_push(3));
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 8, std::chrono::nanoseconds(0)), 2u);
  EXPECT_EQ(q.pop_batch(out, 8, std::chrono::nanoseconds(0)), 0u);
}

TEST(ServeBoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(8);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    std::vector<int> out;
    const auto n = q.pop_batch(out, 4, std::chrono::milliseconds(100));
    EXPECT_EQ(n, 0u);  // closed-and-drained signal
    woke.store(true);
  });
  q.close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

TEST(ServeBoundedQueue, ProducersAndConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(64);
  std::atomic<int> shed{0};
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        while (!q.try_push(std::move(item))) {
          std::this_thread::yield();  // full: retry (test wants all items)
        }
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> batch;
      for (;;) {
        batch.clear();
        if (q.pop_batch(batch, 16, std::chrono::microseconds(50)) == 0) {
          return;
        }
        for (int item : batch) ++seen[static_cast<std::size_t>(item)];
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(shed.load(), 0);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

// --- SnapshotSlot ----------------------------------------------------------

TEST(ServeSnapshot, FreezeCapturesVersionSamplesAndPredictions) {
  auto model = small_model(5, 64);
  const auto snap = ModelSnapshot::freeze(model);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, model.version());
  EXPECT_EQ(snap->samples_seen, model.samples_seen());
  const auto x = probe_row();
  EXPECT_EQ(snap->forest.predict(x), model.predict(x));
}

TEST(ServeSnapshot, PublishRejectsStaleAndDuplicateVersions) {
  SnapshotSlot slot;
  auto v2 = std::make_shared<ModelSnapshot>();
  v2->version = 2;
  auto v2_dup = std::make_shared<ModelSnapshot>();
  v2_dup->version = 2;
  auto v1 = std::make_shared<ModelSnapshot>();
  v1->version = 1;
  auto v3 = std::make_shared<ModelSnapshot>();
  v3->version = 3;

  EXPECT_TRUE(slot.publish(v2));
  EXPECT_EQ(slot.version(), 2u);
  EXPECT_FALSE(slot.publish(v2_dup)) << "duplicate version must be rejected";
  EXPECT_FALSE(slot.publish(v1)) << "stale version must be rejected";
  EXPECT_EQ(slot.version(), 2u);
  EXPECT_EQ(slot.swap_count(), 1u);
  EXPECT_TRUE(slot.publish(v3));
  EXPECT_EQ(slot.version(), 3u);
  EXPECT_EQ(slot.swap_count(), 2u);
  EXPECT_FALSE(slot.publish(nullptr));
}

TEST(ServeSnapshot, ConcurrentPublishersKeepVersionMonotonic) {
  SnapshotSlot slot;
  constexpr int kThreads = 4;
  constexpr int kVersions = 200;
  std::atomic<bool> stop_readers{false};
  std::atomic<int> violations{0};
  // Readers continuously verify they only ever see fully built snapshots
  // with monotonically non-decreasing versions.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!stop_readers.load(std::memory_order_acquire)) {
        const auto snap = slot.load();
        if (snap == nullptr) continue;
        if (snap->version < last || snap->samples_seen != snap->version) {
          ++violations;  // torn or rolled-back snapshot
        }
        last = snap->version;
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      for (int v = 1 + w; v <= kVersions; v += kThreads) {
        auto snap = std::make_shared<ModelSnapshot>();
        snap->version = static_cast<std::uint64_t>(v);
        snap->samples_seen = static_cast<std::size_t>(v);
        slot.publish(std::move(snap));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop_readers.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  // Version 200 always lands (every lower competitor loses to it).
  EXPECT_EQ(slot.version(), static_cast<std::uint64_t>(kVersions));
  EXPECT_GE(slot.swap_count(), 1u);
  EXPECT_LE(slot.swap_count(), static_cast<std::uint64_t>(kVersions));
}

// --- PredictionService, synchronous mode -----------------------------------

ServiceConfig sync_config() {
  ServiceConfig cfg;
  cfg.feature_dim = kDim;
  cfg.worker_threads = 0;
  cfg.max_batch = 4;
  cfg.queue_capacity = 16;
  cfg.train_batch = 8;
  return cfg;
}

TEST(ServePredictionService, SyncServesMicroBatchesWithWarmModel) {
  PredictionService service(sync_config(), small_model(7, 64));
  service.start();
  std::vector<PredictResult> results;
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(service.submit(
        probe_row(static_cast<std::uint64_t>(i)),
        [&results](const PredictResult& r) { results.push_back(r); }));
  }
  EXPECT_EQ(service.poll(), 4u);  // max_batch caps the first micro-batch
  EXPECT_EQ(service.poll(), 2u);
  EXPECT_EQ(service.poll(), 0u);
  ASSERT_EQ(results.size(), 6u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].model_version, 1u);
    EXPECT_EQ(results[i].batch_size, i < 4 ? 4u : 2u);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.accepted, 6u);
  EXPECT_EQ(stats.predicted, 6u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.shed, 0u);
  ASSERT_EQ(stats.batch_size_counts.size(), 4u);
  EXPECT_EQ(stats.batch_size_counts[3], 1u);  // one batch of 4
  EXPECT_EQ(stats.batch_size_counts[1], 1u);  // one batch of 2
}

TEST(ServePredictionService, AdmissionControlShedsWhenQueueFull) {
  auto cfg = sync_config();
  cfg.queue_capacity = 3;
  PredictionService service(cfg, small_model());
  service.start();
  int accepted = 0;
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    if (service.submit(probe_row(), nullptr)) {
      ++accepted;
    } else {
      ++shed;
    }
  }
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(shed, 7);
  EXPECT_EQ(service.stats().shed, 7u);
  // Shedding is immediate rejection, never a dropped accepted request:
  std::size_t served = 0;
  while (const auto n = service.poll()) served += n;
  EXPECT_EQ(served, 3u);
}

TEST(ServePredictionService, ColdModelServesZeroThenHotSwapsAfterTraining) {
  PredictionService service(sync_config(), small_model(9, 0));
  service.start();
  EXPECT_EQ(service.snapshot(), nullptr);  // nothing published yet
  double cold_value = -1.0;
  std::uint64_t cold_version = 99;
  service.submit(probe_row(), [&](const PredictResult& r) {
    cold_value = r.value;
    cold_version = r.model_version;
  });
  service.poll();
  EXPECT_EQ(cold_value, 0.0);  // cold-model contract
  EXPECT_EQ(cold_version, 0u);

  // Feed a training batch; the next poll folds it and publishes v1.
  const auto rows = labelled_rows(8, 21);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::vector<double> x(rows.x(i).begin(), rows.x(i).end());
    EXPECT_TRUE(service.observe(std::move(x), rows.y(i)));
  }
  service.poll();
  ASSERT_NE(service.snapshot(), nullptr);
  EXPECT_EQ(service.snapshot()->version, 1u);
  EXPECT_EQ(service.stats().snapshot_swaps, 1u);
  EXPECT_EQ(service.stats().train_rounds, 1u);

  std::uint64_t warm_version = 0;
  service.submit(probe_row(), [&](const PredictResult& r) {
    warm_version = r.model_version;
  });
  service.poll();
  EXPECT_EQ(warm_version, 1u);
}

TEST(ServePredictionService, TrainNowFoldsObservationsSynchronously) {
  PredictionService service(sync_config(), small_model(11, 32));
  service.start();
  EXPECT_FALSE(service.train_now());  // nothing queued
  EXPECT_TRUE(service.observe(probe_row(1), 0.5));
  EXPECT_TRUE(service.observe(probe_row(2), 0.7));
  EXPECT_TRUE(service.train_now());  // below train_batch, but explicit
  EXPECT_EQ(service.snapshot()->version, 2u);
}

TEST(ServePredictionService, RejectsWrongDimension) {
  PredictionService service(sync_config(), small_model());
  service.start();
  EXPECT_THROW(service.submit(std::vector<double>(kDim + 1, 0.0), nullptr),
               std::invalid_argument);
  EXPECT_THROW(service.observe(std::vector<double>(kDim - 1, 0.0), 1.0),
               std::invalid_argument);
}

TEST(ServePredictionService, StopShedsLateSubmissions) {
  PredictionService service(sync_config(), small_model());
  service.start();
  service.stop();
  EXPECT_FALSE(service.submit(probe_row(), nullptr));
  EXPECT_FALSE(service.observe(probe_row(), 1.0));
  EXPECT_GE(service.stats().shed, 1u);
}

// --- PredictionService, threaded mode (the TSan surface) -------------------

ServiceConfig threaded_config() {
  ServiceConfig cfg;
  cfg.feature_dim = kDim;
  cfg.worker_threads = 2;
  cfg.max_batch = 8;
  cfg.queue_capacity = 256;
  cfg.train_batch = 16;
  cfg.batch_linger = std::chrono::microseconds(20);
  return cfg;
}

TEST(ServePredictionServiceThreaded, PredictWaitCompletesUnderLoad) {
  PredictionService service(threaded_config(), small_model(13, 64));
  service.start();
  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const auto r = service.predict_wait(
            probe_row(static_cast<std::uint64_t>(c * 1000 + i)));
        if (r.has_value()) {
          ++completed;
          EXPECT_GE(r->batch_size, 1u);
          EXPECT_EQ(r->model_version, 1u);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  service.stop();
  // Queue capacity far exceeds in-flight load: nothing sheds.
  EXPECT_EQ(completed.load(), kClients * kPerClient);
  const auto stats = service.stats();
  EXPECT_EQ(stats.predicted, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_LE(stats.batches, stats.predicted);
}

TEST(ServePredictionServiceThreaded, BackgroundTrainerHotSwapsUnderLoad) {
  PredictionService service(threaded_config(), small_model(15, 64));
  service.start();
  const std::uint64_t version_before = service.stats().model_version;
  std::atomic<bool> stop_predicting{false};
  std::atomic<int> torn{0};
  // Prediction threads hammer the snapshot while observations drive the
  // background trainer through several publishes.
  std::vector<std::thread> predictors;
  for (int p = 0; p < 2; ++p) {
    predictors.emplace_back([&] {
      std::uint64_t last = 0;
      while (!stop_predicting.load(std::memory_order_acquire)) {
        const auto r = service.predict_wait(probe_row());
        if (!r.has_value()) continue;
        if (r->model_version < last) ++torn;  // rollback = torn publish
        last = r->model_version;
      }
    });
  }
  stats::Rng rng(77);
  std::vector<double> x(kDim);
  for (int i = 0; i < 200; ++i) {
    for (auto& v : x) v = rng.uniform();
    service.observe(std::vector<double>(x), x[0]);
    if (i % 50 == 49) std::this_thread::yield();
  }
  // Wait (bounded) for at least one background round to land.
  for (int spin = 0; spin < 10000; ++spin) {
    if (service.stats().model_version > version_before) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  stop_predicting.store(true, std::memory_order_release);
  for (auto& t : predictors) t.join();
  service.stop();
  const auto stats = service.stats();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(stats.model_version, version_before) << "no hot swap happened";
  EXPECT_GE(stats.train_rounds, 1u);
  EXPECT_GE(stats.snapshot_swaps, 2u);  // initial publish + >=1 under load
}

TEST(ServePredictionServiceThreaded, StopDrainsEveryAcceptedRequest) {
  auto cfg = threaded_config();
  cfg.batch_linger = std::chrono::milliseconds(1);
  PredictionService service(cfg, small_model(19, 64));
  service.start();
  std::atomic<int> callbacks{0};
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (service.submit(probe_row(static_cast<std::uint64_t>(i)),
                       [&callbacks](const PredictResult&) { ++callbacks; })) {
      ++accepted;
    }
  }
  service.stop();  // must drain, not drop
  EXPECT_EQ(callbacks.load(), accepted);
  EXPECT_EQ(service.stats().predicted, static_cast<std::uint64_t>(accepted));
}

TEST(ServePredictionServiceThreaded, StopIsIdempotentAndDestructorSafe) {
  auto service = std::make_unique<PredictionService>(threaded_config(),
                                                     small_model(23, 32));
  service->start();
  service->predict_wait(probe_row());
  service->stop();
  service->stop();
  service.reset();  // destructor after explicit stop: no double join
}

// --- ServingPredictor ------------------------------------------------------

TEST(ServeServingPredictor, BridgesEncoderToServiceSnapshot) {
  core::EncoderConfig ec;
  ec.servers = 4;
  ec.max_workloads = 2;
  const core::Encoder encoder(ec);
  ServiceConfig cfg;
  cfg.feature_dim = encoder.dimension();
  cfg.worker_threads = 0;
  cfg.train_batch = 4;
  ml::IncrementalForestConfig mc;
  mc.forest.n_trees = 4;
  PredictionService service(cfg, ml::IncrementalForest(mc, 29));
  service.start();
  ServingPredictor predictor(ec, &service);
  EXPECT_EQ(predictor.name(), "Gsight-Serve");

  prof::AppProfile profile;
  profile.app_name = "synthetic";
  stats::Rng rng(31);
  for (int i = 0; i < 2; ++i) {
    prof::FunctionProfile fp;
    for (auto& m : fp.metrics) m = rng.uniform(0.0, 10.0);
    fp.solo_duration_s = 0.01;
    profile.functions.push_back(fp);
  }
  core::Scenario scenario;
  scenario.servers = 4;
  core::WorkloadDeployment w;
  w.profile = &profile;
  w.fn_to_server = {0, 1};
  scenario.workloads = {w};

  // Cold service: the ScenarioPredictor contract is predict == 0.
  EXPECT_EQ(predictor.predict(scenario), 0.0);
  const std::vector<core::Scenario> sweep(3, scenario);
  EXPECT_EQ(predictor.predict_batch(sweep),
            (std::vector<double>{0.0, 0.0, 0.0}));

  // observe() + flush() route through the service's training path and
  // publish a snapshot the predictor immediately serves from.
  for (int i = 0; i < 4; ++i) predictor.observe(scenario, 0.8);
  predictor.flush();
  ASSERT_NE(service.snapshot(), nullptr);
  const double warm = predictor.predict(scenario);
  EXPECT_NE(warm, 0.0);
  // Batch and single paths read the same snapshot.
  EXPECT_EQ(predictor.predict_batch(sweep),
            (std::vector<double>{warm, warm, warm}));
}

}  // namespace
}  // namespace gsight::serve
