// PredictionFleet tests — routing, the fleet-wide version watermark,
// drain/re-shard conservation, and the request-struct validation that
// every serve entry point now goes through. Suites are named ServeFleet*
// so the check.sh TSan stage picks the threaded ones up via its
// 'Serve|Fleet' name match.
#include "serve/fleet.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ml/incremental_forest.hpp"
#include "obs/live_stream.hpp"
#include "serve/load_driver.hpp"
#include "serve/router.hpp"
#include "serve/snapshot.hpp"
#include "stats/rng.hpp"

namespace gsight::serve {
namespace {

constexpr std::size_t kDim = 16;

ml::IncrementalForest warm_model(std::uint64_t seed, std::size_t rows) {
  ml::IncrementalForestConfig cfg;
  cfg.forest.n_trees = 8;
  ml::IncrementalForest model(cfg, seed);
  if (rows > 0) {
    stats::Rng rng(seed ^ 0xABCDULL);
    ml::Dataset data(kDim);
    std::vector<double> x(kDim);
    for (std::size_t i = 0; i < rows; ++i) {
      for (auto& v : x) v = rng.uniform();
      data.add(x, LoadDriver::label_of(x));
    }
    model.partial_fit(data);
  }
  return model;
}

FleetRequest sync_fleet_request(std::size_t replicas) {
  FleetRequest fr;
  fr.replicas = replicas;
  fr.service.feature_dim = kDim;
  fr.service.worker_threads = 0;
  fr.service.max_batch = 8;
  fr.service.queue_capacity = 128;
  fr.service.train_batch = 16;
  fr.service.batch_linger = std::chrono::microseconds(10);
  return fr;
}

std::vector<double> features_of(std::uint64_t key) {
  std::vector<double> x(kDim);
  for (std::size_t d = 0; d < kDim; ++d) {
    x[d] = static_cast<double>((key * 31 + d) % 97) / 97.0;
  }
  return x;
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

TEST(ServeFleetRouter, ConsistentHashIsDeterministicAcrossInstances) {
  Router a(RouterPolicy::kConsistentHash, 4, 64);
  Router b(RouterPolicy::kConsistentHash, 4, 64);
  for (std::uint64_t key = 0; key < 512; ++key) {
    EXPECT_EQ(a.route(key, {}), b.route(key, {})) << "key " << key;
  }
}

TEST(ServeFleetRouter, DrainMovesOnlyTheDrainedReplicasKeys) {
  Router router(RouterPolicy::kConsistentHash, 4, 64);
  std::map<std::uint64_t, std::size_t> before;
  for (std::uint64_t key = 0; key < 1024; ++key) {
    before[key] = *router.route(key, {});
  }
  router.set_active(1, false);
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < 1024; ++key) {
    const std::size_t now = *router.route(key, {});
    EXPECT_NE(now, 1u);
    if (before[key] == 1) {
      ++moved;
    } else {
      // Minimal disruption: keys that never touched the drained replica
      // keep their assignment — the consistent-hash contract.
      EXPECT_EQ(now, before[key]) << "key " << key;
    }
  }
  EXPECT_GT(moved, 0u) << "some keys must have lived on replica 1";
  // Re-adding restores the exact original assignment.
  router.set_active(1, true);
  for (std::uint64_t key = 0; key < 1024; ++key) {
    EXPECT_EQ(*router.route(key, {}), before[key]);
  }
}

TEST(ServeFleetRouter, LeastQueuedPicksMinDepthWithLowestIdTie) {
  Router router(RouterPolicy::kLeastQueued, 4, 8);
  EXPECT_EQ(*router.route(0, {5, 2, 7, 2}), 1u);  // tie 1 vs 3 -> lowest id
  EXPECT_EQ(*router.route(9, {0, 0, 0, 0}), 0u);
  router.set_active(0, false);
  EXPECT_EQ(*router.route(9, {0, 0, 0, 0}), 1u);  // inactive never routed
}

TEST(ServeFleetRouter, NoActiveReplicaRoutesNowhere) {
  Router router(RouterPolicy::kConsistentHash, 2, 8);
  router.set_active(0, false);
  router.set_active(1, false);
  EXPECT_FALSE(router.route(7, {}).has_value());
  EXPECT_EQ(router.active_count(), 0u);
}

TEST(ServeFleetRouter, PolicyNamesRoundTrip) {
  EXPECT_STREQ(router_policy_name(RouterPolicy::kConsistentHash), "hash");
  EXPECT_STREQ(router_policy_name(RouterPolicy::kLeastQueued), "least");
  EXPECT_EQ(parse_router_policy("hash"), RouterPolicy::kConsistentHash);
  EXPECT_EQ(parse_router_policy("least"), RouterPolicy::kLeastQueued);
  EXPECT_FALSE(parse_router_policy("round-robin").has_value());
}

// ---------------------------------------------------------------------------
// Request validation (the one construction path for every entry point)
// ---------------------------------------------------------------------------

template <typename Fn>
std::string invalid_argument_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(ServeFleetValidate, FleetRequestNamesTheBadField) {
  FleetRequest fr = sync_fleet_request(2);
  fr.replicas = 0;
  EXPECT_NE(invalid_argument_message([&] { fr.validate(); })
                .find("FleetRequest: replicas"),
            std::string::npos);

  fr = sync_fleet_request(2);
  fr.vnodes_per_replica = 0;
  EXPECT_NE(invalid_argument_message([&] { fr.validate(); })
                .find("vnodes_per_replica"),
            std::string::npos);

  fr = sync_fleet_request(2);
  fr.drains.push_back({5, 10, 20});
  EXPECT_NE(invalid_argument_message([&] { fr.validate(); })
                .find("drains[].replica"),
            std::string::npos);

  fr = sync_fleet_request(2);
  fr.drains.push_back({1, 20, 10});
  EXPECT_NE(invalid_argument_message([&] { fr.validate(); })
                .find("readd_at must come after"),
            std::string::npos);
}

TEST(ServeFleetValidate, EmbeddedServiceConfigIsValidatedToo) {
  FleetRequest fr = sync_fleet_request(2);
  fr.service.feature_dim = 0;
  EXPECT_NE(invalid_argument_message([&] { fr.validate(); })
                .find("ServiceConfig: feature_dim"),
            std::string::npos);
  fr = sync_fleet_request(2);
  fr.service.queue_capacity = 0;
  EXPECT_NE(invalid_argument_message([&] { fr.validate(); })
                .find("queue_capacity"),
            std::string::npos);
  // The fleet constructor routes through validate(): a bad request can
  // never become a fleet.
  FleetRequest bad = sync_fleet_request(0);
  EXPECT_THROW(PredictionFleet(bad, warm_model(1, 0)), std::invalid_argument);
}

TEST(ServeFleetValidate, DriverRequestNamesTheBadField) {
  DriverRequest lc;
  lc.requests = 0;
  EXPECT_NE(invalid_argument_message([&] { lc.validate(); })
                .find("DriverRequest: requests"),
            std::string::npos);
  lc = DriverRequest{};
  lc.rate_hz = 0.0;
  EXPECT_NE(
      invalid_argument_message([&] { lc.validate(); }).find("rate_hz"),
      std::string::npos);
  lc = DriverRequest{};
  lc.clients = 0;
  EXPECT_NE(
      invalid_argument_message([&] { lc.validate(); }).find("clients"),
      std::string::npos);
  // LoadDriver's constructor enforces it.
  DriverRequest bad;
  bad.requests = 0;
  EXPECT_THROW(LoadDriver{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SnapshotSlot coherence (regression for the torn version/swaps pair)
// ---------------------------------------------------------------------------

std::shared_ptr<const ModelSnapshot> snapshot_v(std::uint64_t version) {
  auto snap = std::make_shared<ModelSnapshot>();
  snap->version = version;
  return snap;
}

TEST(ServeFleetSnapshotSlot, InfoReadsVersionAndSwapsCoherently) {
  SnapshotSlot slot;
  EXPECT_EQ(slot.info().version, 0u);
  EXPECT_EQ(slot.info().swaps, 0u);
  EXPECT_TRUE(slot.publish(snapshot_v(1)));
  EXPECT_TRUE(slot.publish(snapshot_v(2)));
  EXPECT_FALSE(slot.publish(snapshot_v(2)));  // duplicate rejected
  const auto info = slot.info();
  EXPECT_EQ(info.version, 2u);
  EXPECT_EQ(info.swaps, 2u);
}

TEST(ServeFleetSnapshotSlotThreaded, InfoIsNeverTorn) {
  SnapshotSlot slot;
  std::atomic<bool> stop{false};
  // The writer publishes version i on the i-th successful swap, so a
  // coherent (version, swaps) pair always has version == swaps. The old
  // code bumped swaps outside the slot mutex after the pointer swap, so
  // a concurrent reader could see version == swaps + 1.
  std::thread writer([&] {
    for (std::uint64_t v = 1; v <= 2000; ++v) {
      slot.publish(snapshot_v(v));
      if (v % 64 == 0) std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
  });
  // A floor of reads keeps the check meaningful even when one core
  // serialises the two threads into coarse slices.
  std::size_t reads = 0;
  while (!stop.load(std::memory_order_acquire) || reads < 1000) {
    const auto info = slot.info();
    ASSERT_EQ(info.version, info.swaps) << "torn version/swaps pair";
    ++reads;
  }
  writer.join();
  EXPECT_GE(reads, 1000u);
  EXPECT_EQ(slot.info().version, 2000u);
}

// ---------------------------------------------------------------------------
// Synchronous fleet: serving, watermark, drain/re-add
// ---------------------------------------------------------------------------

TEST(ServeFleetSync, RoutesServesAndAdvancesTheWatermark) {
  PredictionFleet fleet(sync_fleet_request(3), warm_model(3, 64));
  fleet.start();
  // The warm snapshot reached every replica before any traffic.
  EXPECT_EQ(fleet.watermark(), 1u);

  std::atomic<std::size_t> done{0};
  for (std::uint64_t key = 0; key < 200; ++key) {
    auto x = features_of(key);
    if (key % 4 == 0) fleet.observe(x, LoadDriver::label_of(x));
    const auto routed = fleet.submit(key, std::move(x),
                                     [&done](const PredictResult&) {
                                       done.fetch_add(1);
                                     });
    ASSERT_TRUE(routed.has_value());
    while (fleet.poll() > 0) {
    }
  }
  while (fleet.poll() > 0) {
  }
  fleet.train_now();

  const FleetStats s = fleet.stats();
  EXPECT_EQ(s.submitted, 200u);
  EXPECT_EQ(s.completed, 200u);
  EXPECT_EQ(done.load(), 200u);
  EXPECT_EQ(s.shed, 0u);
  // 50 observations over train_batch=16 -> at least two training rounds,
  // each fanned out to all three replicas.
  EXPECT_GE(s.train_rounds, 2u);
  EXPECT_GT(s.latest_version, 1u);
  EXPECT_EQ(s.watermark, s.latest_version);
  EXPECT_EQ(s.stale_replicas, 0u);
  EXPECT_GE(s.publishes, 3u * s.train_rounds);
  // Every replica took some share of a 200-key uniform stream.
  for (std::size_t r = 0; r < 3; ++r) EXPECT_GT(s.routed[r], 0u);
  fleet.stop();
}

TEST(ServeFleetSync, DrainedReplicaGoesStaleAndReaddCatchesUp) {
  PredictionFleet fleet(sync_fleet_request(3), warm_model(5, 64));
  fleet.start();
  fleet.drain(1);
  EXPECT_FALSE(fleet.active(1));
  EXPECT_EQ(fleet.stats().active_replicas, 2u);

  // Train past the drained replica: it stops receiving publishes.
  for (std::uint64_t i = 0; i < 32; ++i) {
    const auto x = features_of(i);
    fleet.observe(x, LoadDriver::label_of(x));
  }
  ASSERT_TRUE(fleet.train_now());
  FleetStats s = fleet.stats();
  EXPECT_GT(s.latest_version, 1u);
  EXPECT_LT(s.replica_versions[1], s.latest_version) << "drained -> stale";
  EXPECT_EQ(s.watermark, s.latest_version)
      << "watermark spans active replicas only";

  // Re-add catches the replica up *before* it rejoins, so the watermark
  // cannot regress through the transition.
  const std::uint64_t wm_before = fleet.watermark();
  fleet.readd(1);
  EXPECT_TRUE(fleet.active(1));
  s = fleet.stats();
  EXPECT_EQ(s.replica_versions[1], s.latest_version);
  EXPECT_GE(s.watermark, wm_before);
  EXPECT_EQ(s.drains, 1u);
  EXPECT_EQ(s.readds, 1u);
  fleet.stop();
}

TEST(ServeFleetSync, DrainKeepsQueuedRequestsServable) {
  PredictionFleet fleet(sync_fleet_request(2), warm_model(7, 64));
  fleet.start();
  // Fill queues on both replicas without polling.
  std::atomic<std::size_t> done{0};
  std::size_t accepted = 0;
  for (std::uint64_t key = 0; key < 64; ++key) {
    if (fleet.submit(key, features_of(key),
                     [&done](const PredictResult&) { done.fetch_add(1); })) {
      ++accepted;
    }
  }
  fleet.drain(0);
  // poll() still serves the draining replica: nothing is dropped.
  while (fleet.poll() > 0) {
  }
  EXPECT_EQ(done.load(), accepted);
  EXPECT_EQ(fleet.stats().completed, accepted);
  EXPECT_EQ(fleet.replica(0).queue_depth(), 0u);
  fleet.stop();
}

TEST(ServeFleetSync, DeterministicDrainUnderLoadTwinRunsAreIdentical) {
  DriverRequest lc;
  lc.requests = 1500;
  lc.rate_hz = 150'000.0;
  lc.observe_every = 8;
  lc.live_every = 128;
  lc.seed = 99;

  LoadOutcome outcomes[2];
  FleetStats stats[2];
  std::string streams[2];
  for (int run = 0; run < 2; ++run) {
    FleetRequest fr = sync_fleet_request(4);
    fr.drains = {{1, 400, 900}, {2, 600, 0}};
    PredictionFleet fleet(fr, warm_model(11, 64));
    std::ostringstream os;
    obs::LiveStreamSink sink(os);
    sink.hello("twin-test", {{"seed", "99"}});
    fleet.set_live_sink(&sink);
    fleet.start();
    LoadDriver driver(lc);
    outcomes[run] = driver.run_deterministic(fleet);
    fleet.stop();
    stats[run] = fleet.stats();
    streams[run] = os.str();
  }
  // Conservation under a mid-run drain + re-add and a permanent drain:
  // nothing lost, nothing double-counted.
  EXPECT_EQ(outcomes[0].submitted, 1500u);
  EXPECT_EQ(outcomes[0].completed + outcomes[0].shed, 1500u);
  EXPECT_EQ(stats[0].submitted, stats[0].completed);
  EXPECT_EQ(stats[0].drains, 2u);
  EXPECT_EQ(stats[0].readds, 1u);
  // The twin run reproduces the outcome, the counters and the live
  // stream byte-for-byte (the unit form of check.sh's fleet gate).
  EXPECT_EQ(outcomes[0].completed, outcomes[1].completed);
  EXPECT_EQ(outcomes[0].shed, outcomes[1].shed);
  EXPECT_EQ(outcomes[0].duration_s, outcomes[1].duration_s);
  EXPECT_EQ(outcomes[0].latency_p99_us, outcomes[1].latency_p99_us);
  EXPECT_EQ(stats[0].train_rounds, stats[1].train_rounds);
  EXPECT_EQ(stats[0].publishes, stats[1].publishes);
  EXPECT_EQ(stats[0].latest_version, stats[1].latest_version);
  EXPECT_EQ(stats[0].watermark, stats[1].watermark);
  EXPECT_EQ(stats[0].routed, stats[1].routed);
  ASSERT_FALSE(streams[0].empty());
  EXPECT_EQ(streams[0], streams[1]) << "live streams must be byte-identical";
}

// ---------------------------------------------------------------------------
// Threaded fleet (TSan-covered)
// ---------------------------------------------------------------------------

FleetRequest threaded_fleet_request(std::size_t replicas) {
  FleetRequest fr = sync_fleet_request(replicas);
  fr.service.worker_threads = 1;
  fr.service.queue_capacity = 512;
  fr.service.batch_linger = std::chrono::microseconds(20);
  return fr;
}

TEST(ServeFleetThreaded, WatermarkIsMonotonicUnderConcurrentPublishes) {
  PredictionFleet fleet(threaded_fleet_request(3), warm_model(13, 64));
  fleet.start();
  std::atomic<int> running{3};

  // Two writers race training rounds (fan-out publishes) while a third
  // drains and re-adds a replica; the reader asserts the watermark never
  // moves backwards through any of it.
  auto trainer = [&](std::uint64_t salt) {
    stats::Rng rng(salt);
    std::vector<double> x(kDim);
    for (int round = 0; round < 40; ++round) {
      for (std::size_t i = 0; i < 8; ++i) {
        for (auto& v : x) v = rng.uniform();
        fleet.observe(x, LoadDriver::label_of(x));
      }
      fleet.train_now();
    }
    running.fetch_sub(1, std::memory_order_acq_rel);
  };
  std::thread t1(trainer, 17);
  std::thread t2(trainer, 19);
  std::thread cycler([&] {
    for (int i = 0; i < 25; ++i) {
      fleet.drain(2);
      fleet.readd(2);
    }
    running.fetch_sub(1, std::memory_order_acq_rel);
  });
  std::uint64_t last = 0;
  while (running.load(std::memory_order_acquire) > 0) {
    const std::uint64_t wm = fleet.watermark();
    ASSERT_GE(wm, last) << "watermark regressed";
    last = wm;
    std::this_thread::yield();
  }
  t1.join();
  t2.join();
  cycler.join();
  const FleetStats s = fleet.stats();
  EXPECT_EQ(fleet.watermark(), s.latest_version);
  EXPECT_GE(s.train_rounds, 1u);
  fleet.stop();
}

TEST(ServeFleetThreaded, DrainReaddUnderLoadLosesNothing) {
  FleetRequest fr = threaded_fleet_request(3);
  fr.drains = {{1, 500, 1500}};
  PredictionFleet fleet(fr, warm_model(15, 64));
  fleet.start();
  DriverRequest lc;
  lc.requests = 2500;
  lc.rate_hz = 30'000.0;
  lc.observe_every = 8;
  lc.seed = 23;
  LoadDriver driver(lc);
  const auto outcome = driver.run_threaded(fleet);
  fleet.stop();
  const FleetStats s = fleet.stats();
  EXPECT_EQ(outcome.submitted, 2500u);
  EXPECT_EQ(outcome.completed + outcome.shed, 2500u);
  // Fleet-level conservation: every accepted request completed exactly
  // once, across the mid-run drain and re-add.
  EXPECT_EQ(s.submitted, s.completed);
  EXPECT_EQ(s.submitted, outcome.completed);
  EXPECT_EQ(s.drains, 1u);
  EXPECT_EQ(s.readds, 1u);
  EXPECT_GT(outcome.completed, 0u);
  fleet.stop();
}

TEST(ServeFleetThreaded, StopShedsLateSubmissionsInsteadOfHanging) {
  PredictionFleet fleet(threaded_fleet_request(2), warm_model(27, 64));
  fleet.start();
  fleet.stop();
  EXPECT_FALSE(fleet.submit(1, features_of(1), nullptr).has_value());
  EXPECT_FALSE(fleet.observe(features_of(2), 0.5));
  const FleetStats s = fleet.stats();
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.observations_shed, 1u);
}

}  // namespace
}  // namespace gsight::serve
