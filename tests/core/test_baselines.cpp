#include <gtest/gtest.h>

#include "baselines/esp.hpp"
#include "baselines/pythia.hpp"
#include "stats/rng.hpp"

namespace gsight::baselines {
namespace {

prof::AppProfile make_profile(const std::string& name, std::size_t fns,
                              double ipc, double l3) {
  prof::AppProfile p;
  p.app_name = name;
  for (std::size_t i = 0; i < fns; ++i) {
    prof::FunctionProfile fp;
    fp.app_name = name;
    fp.metrics[static_cast<std::size_t>(prof::Metric::kIpc)] = ipc;
    fp.metrics[static_cast<std::size_t>(prof::Metric::kL2Mpki)] = l3 * 2.0;
    fp.metrics[static_cast<std::size_t>(prof::Metric::kL3Mpki)] = l3;
    fp.metrics[static_cast<std::size_t>(prof::Metric::kMemIo)] = l3 * 0.8;
    fp.metrics[static_cast<std::size_t>(prof::Metric::kCtxSwitches)] = 100.0;
    p.functions.push_back(fp);
  }
  return p;
}

core::Scenario two_workload_scenario(const prof::AppProfile* a,
                                     const prof::AppProfile* b) {
  core::Scenario s;
  s.servers = 2;
  s.workloads.push_back(
      {a, std::vector<std::size_t>(a->functions.size(), 0), 0.0, 0.0});
  s.workloads.push_back(
      {b, std::vector<std::size_t>(b->functions.size(), 0), 0.0, 0.0});
  return s;
}

TEST(Esp, FeatureVectorShape) {
  const auto a = make_profile("a", 3, 1.5, 2.0);
  const auto b = make_profile("b", 1, 0.8, 8.0);
  const auto x = EspPredictor::featurize(two_workload_scenario(&a, &b));
  // 8 base + upper triangle of 8x8 (36) = 44.
  EXPECT_EQ(x.size(), 44u);
  EXPECT_DOUBLE_EQ(x[0], 1.5);  // target IPC (workload-level mean)
  EXPECT_DOUBLE_EQ(x[4], 0.8);  // corunner IPC sum
}

TEST(Esp, PredictsZeroUntrained) {
  const auto a = make_profile("a", 2, 1.5, 2.0);
  const auto b = make_profile("b", 1, 0.8, 8.0);
  EspPredictor esp;
  EXPECT_DOUBLE_EQ(esp.predict(two_workload_scenario(&a, &b)), 0.0);
}

TEST(Esp, LearnsSimpleContention) {
  // Ground truth: target QoS = own ipc - 0.1 * corunner L3 pressure.
  stats::Rng rng(3);
  EspPredictor esp(EspConfig{.l2 = 1e-4, .update_batch = 1000});
  std::vector<prof::AppProfile> profiles;
  profiles.reserve(200);
  for (int i = 0; i < 100; ++i) {
    profiles.push_back(
        make_profile("t", 2, rng.uniform(0.8, 2.5), rng.uniform(0.5, 4.0)));
    profiles.push_back(
        make_profile("c", 1, rng.uniform(0.8, 2.5), rng.uniform(0.5, 8.0)));
  }
  for (int i = 0; i < 100; ++i) {
    const auto& t = profiles[2 * i];
    const auto& c = profiles[2 * i + 1];
    const double qos =
        t.functions[0].metrics[static_cast<std::size_t>(prof::Metric::kIpc)] -
        0.1 * c.functions[0]
                  .metrics[static_cast<std::size_t>(prof::Metric::kL3Mpki)];
    esp.observe(two_workload_scenario(&t, &c), qos);
  }
  esp.flush();
  EXPECT_EQ(esp.samples_seen(), 100u);
  // In-distribution check.
  const auto t = make_profile("t", 2, 1.4, 2.0);
  const auto c = make_profile("c", 1, 1.0, 6.0);
  EXPECT_NEAR(esp.predict(two_workload_scenario(&t, &c)), 1.4 - 0.6, 0.1);
}

TEST(Pythia, FeatureVectorShape) {
  const auto a = make_profile("a", 3, 1.5, 2.0);
  const auto b = make_profile("b", 2, 0.8, 8.0);
  const auto x = PythiaPredictor::featurize(two_workload_scenario(&a, &b));
  EXPECT_EQ(x.size(), 2 * prof::kSelectedCount);
}

TEST(Pythia, PlacementBlind) {
  // Pythia ignores *where* functions run: different placements of the same
  // workloads featurize identically (this is exactly the weakness the
  // paper exploits).
  const auto a = make_profile("a", 3, 1.5, 2.0);
  const auto b = make_profile("b", 2, 0.8, 8.0);
  auto s1 = two_workload_scenario(&a, &b);
  auto s2 = two_workload_scenario(&a, &b);
  s2.workloads[1].fn_to_server = {1, 1};  // moved away
  EXPECT_EQ(PythiaPredictor::featurize(s1), PythiaPredictor::featurize(s2));
}

TEST(Pythia, LearnsLinearMixture) {
  stats::Rng rng(5);
  PythiaPredictor pythia(PythiaConfig{.l2 = 1e-4, .update_batch = 1000});
  std::vector<prof::AppProfile> keep;
  keep.reserve(300);
  for (int i = 0; i < 150; ++i) {
    keep.push_back(
        make_profile("t", 1, rng.uniform(0.8, 2.5), rng.uniform(0.5, 4.0)));
    keep.push_back(
        make_profile("c", 1, rng.uniform(0.8, 2.5), rng.uniform(0.5, 8.0)));
  }
  for (int i = 0; i < 150; ++i) {
    const auto& t = keep[2 * i];
    const auto& c = keep[2 * i + 1];
    const double own =
        t.functions[0].metrics[static_cast<std::size_t>(prof::Metric::kIpc)];
    const double pressure =
        c.functions[0]
            .metrics[static_cast<std::size_t>(prof::Metric::kL3Mpki)];
    pythia.observe(two_workload_scenario(&t, &c), own - 0.05 * pressure);
  }
  pythia.flush();
  const auto t = make_profile("t", 1, 2.0, 1.0);
  const auto c = make_profile("c", 1, 1.0, 4.0);
  EXPECT_NEAR(pythia.predict(two_workload_scenario(&t, &c)), 2.0 - 0.2, 0.1);
}

TEST(Baselines, NamesDistinct) {
  EspPredictor esp;
  PythiaPredictor pythia;
  EXPECT_EQ(esp.name(), "ESP");
  EXPECT_EQ(pythia.name(), "Pythia");
}

}  // namespace
}  // namespace gsight::baselines
