// core::Mutex / MutexLock / MutexUniqueLock (src/core/lock.hpp): the
// annotated capability wrappers every concurrent subsystem locks through.
// The annotations themselves are verified by clang -Wthread-safety
// (check.sh stage 2c) and by the gsight_analyze lock-discipline pass;
// these tests pin down the runtime behaviour — mutual exclusion, RAII
// release, try_lock semantics, and condition_variable interop through
// MutexUniqueLock::raw().
#include "core/lock.hpp"

#include <gtest/gtest.h>

#include <condition_variable>
#include <thread>
#include <vector>

namespace gsight::core {
namespace {

TEST(Lock, MutexLockProvidesMutualExclusion) {
  Mutex mutex;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        const MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Lock, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mutex;
  {
    const MutexLock lock(mutex);
    EXPECT_FALSE(mutex.try_lock());
  }
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(Lock, MutexLockReleasesOnScopeExit) {
  Mutex mutex;
  { const MutexLock lock(mutex); }
  // Destructor released: a fresh acquisition must not deadlock.
  const MutexLock again(mutex);
  SUCCEED();
}

TEST(Lock, UniqueLockWorksWithConditionVariable) {
  Mutex mutex;
  std::condition_variable cv;
  bool ready = false;
  std::thread producer([&] {
    {
      const MutexLock lock(mutex);
      ready = true;
    }
    cv.notify_one();
  });
  {
    MutexUniqueLock lock(mutex);
    // Explicit loop, not a predicate lambda — the same discipline the
    // annotated production code follows (see bounded_queue.hpp).
    while (!ready) cv.wait(lock.raw());
  }
  producer.join();
  EXPECT_TRUE(ready);
}

TEST(Lock, UniqueLockReleasesOnScopeExit) {
  Mutex mutex;
  { MutexUniqueLock lock(mutex); }
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

// The annotation macros must be inert text under any compiler: this
// function compiles with GSIGHT_REQUIRES on GCC (no-op) and clang
// (analysed), and calling it under the lock satisfies both.
Mutex guard_mutex;
int guarded_value GSIGHT_GUARDED_BY(guard_mutex) = 0;

int read_guarded() GSIGHT_REQUIRES(guard_mutex) { return guarded_value; }

TEST(Lock, AnnotationMacrosCompileAndRun) {
  const MutexLock lock(guard_mutex);
  guarded_value = 41;
  EXPECT_EQ(read_guarded() + 1, 42);
}

}  // namespace
}  // namespace gsight::core
