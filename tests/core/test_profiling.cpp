#include <gtest/gtest.h>

#include "profiling/load_generator.hpp"
#include "profiling/metric_set.hpp"
#include "profiling/solo_profiler.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/socialnetwork.hpp"
#include "workloads/sparkapps.hpp"

namespace gsight::prof {
namespace {

TEST(MetricSet, SixteenOfNineteenSelected) {
  EXPECT_EQ(kMetricCount, 19u);
  EXPECT_EQ(kSelectedCount, 16u);
  EXPECT_EQ(selected_metrics().size(), 16u);
  // The paper drops MLP, memory IO and disk IO (|corr| < 0.1, Table 3).
  EXPECT_FALSE(is_selected(Metric::kMemLp));
  EXPECT_FALSE(is_selected(Metric::kMemIo));
  EXPECT_FALSE(is_selected(Metric::kDiskIo));
  EXPECT_TRUE(is_selected(Metric::kIpc));
  EXPECT_TRUE(is_selected(Metric::kCtxSwitches));
  EXPECT_TRUE(is_selected(Metric::kDtlbMpki));
}

TEST(MetricSet, NamesAreUnique) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    names.insert(metric_name(static_cast<Metric>(i)));
  }
  EXPECT_EQ(names.size(), kMetricCount);
}

TEST(MetricSet, MetricsFromAccum) {
  sim::MetricAccum acc;
  sim::ExecObservation ob;
  ob.ipc = 1.5;
  ob.l3_mpki = 4.0;
  ob.net_mbps = 100.0;
  ob.membw_gbps = 6.0;
  ob.disk_mbps = 50.0;
  ob.cpu_freq_ghz = 2.0;
  wl::Phase phase = wl::cpu_phase("p", 1.0);
  phase.demand.mem_gb = 0.5;
  acc.add(2.0, ob, phase);  // 2 seconds at these values
  const auto v = metrics_from(acc.finalized(), /*mem_alloc_gb=*/1.0);
  EXPECT_NEAR(v[static_cast<std::size_t>(Metric::kIpc)], 1.5, 1e-12);
  EXPECT_NEAR(v[static_cast<std::size_t>(Metric::kL3Mpki)], 4.0, 1e-12);
  EXPECT_NEAR(v[static_cast<std::size_t>(Metric::kNetBw)], 100.0, 1e-12);
  EXPECT_NEAR(v[static_cast<std::size_t>(Metric::kMemIo)], 6.0, 1e-12);
  EXPECT_NEAR(v[static_cast<std::size_t>(Metric::kDiskIo)], 50.0, 1e-12);
  EXPECT_NEAR(v[static_cast<std::size_t>(Metric::kMemUtil)], 0.5, 1e-12);
  // TX + RX partition network bandwidth.
  EXPECT_NEAR(v[static_cast<std::size_t>(Metric::kTx)] +
                  v[static_cast<std::size_t>(Metric::kRx)],
              100.0, 1e-9);
}

TEST(MetricSet, SelectProjectsInOrder) {
  MetricVector all{};
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    all[i] = static_cast<double>(i);
  }
  const auto sel = select(all);
  for (std::size_t i = 0; i < kSelectedCount; ++i) {
    EXPECT_DOUBLE_EQ(sel[i],
                     static_cast<double>(selected_metrics()[i]));
  }
}

TEST(ProfileStore, PutGetContains) {
  ProfileStore store;
  AppProfile p;
  p.app_name = "x";
  store.put(p);
  EXPECT_TRUE(store.contains("x"));
  EXPECT_FALSE(store.contains("y"));
  EXPECT_EQ(store.get("x").app_name, "x");
  EXPECT_THROW(store.get("y"), std::out_of_range);
  EXPECT_EQ(store.size(), 1u);
}

struct ProfilerFixture : ::testing::Test {
  SoloProfilerConfig cfg = [] {
    SoloProfilerConfig c;
    c.ls_profile_s = 20.0;
    c.server = sim::ServerConfig::socket();
    return c;
  }();
};

TEST_F(ProfilerFixture, LsProfileIsSane) {
  SoloProfiler profiler(cfg);
  const auto profile = profiler.profile(ProfileRequest{wl::social_network()});
  EXPECT_EQ(profile.app_name, "social-network");
  ASSERT_EQ(profile.functions.size(), 9u);
  EXPECT_GT(profile.solo_e2e_p99_s, 0.0);
  EXPECT_GT(profile.solo_e2e_mean_s, 0.0);
  EXPECT_LE(profile.solo_e2e_mean_s, profile.solo_e2e_p99_s);
  EXPECT_GT(profile.solo_mean_ipc, 0.0);
  for (const auto& fn : profile.functions) {
    EXPECT_GT(fn.metrics[static_cast<std::size_t>(Metric::kIpc)], 0.0)
        << fn.fn_name;
    EXPECT_GT(fn.solo_p99_latency_s, 0.0) << fn.fn_name;
    EXPECT_GT(fn.solo_duration_s, 0.0) << fn.fn_name;
  }
}

TEST_F(ProfilerFixture, SoloIpcMatchesSpec) {
  SoloProfiler profiler(cfg);
  const auto profile = profiler.profile(ProfileRequest{wl::social_network()});
  // Solo-run IPC must equal the phase's base IPC (no interference).
  const auto& cp = profile.functions[wl::kComposePost];
  const double expected =
      wl::social_network().functions[wl::kComposePost].phases[0].uarch.base_ipc;
  EXPECT_NEAR(cp.solo_ipc, expected, 0.05);
}

TEST_F(ProfilerFixture, ScProfileHasJctAndLifetime) {
  SoloProfiler profiler(cfg);
  const auto profile = profiler.profile(ProfileRequest{wl::logistic_regression_small()});
  EXPECT_GT(profile.solo_jct_s, 5.0);
  EXPECT_GT(profile.functions[0].solo_duration_s, 5.0);
}

TEST_F(ProfilerFixture, NetworkFunctionShowsNetTraffic) {
  SoloProfiler profiler(cfg);
  const auto profile = profiler.profile(ProfileRequest{wl::iperf(0.2)});
  const auto& m = profile.functions[0].metrics;
  EXPECT_GT(m[static_cast<std::size_t>(Metric::kNetBw)], 100.0);
  EXPECT_LT(m[static_cast<std::size_t>(Metric::kDiskIo)], 1.0);
}

TEST_F(ProfilerFixture, HigherQpsRaisesActivityMetrics) {
  SoloProfilerConfig lo = cfg, hi = cfg;
  lo.ls_qps = 20.0;
  hi.ls_qps = 120.0;
  const auto p_lo = SoloProfiler(lo).profile(ProfileRequest{wl::social_network()});
  const auto p_hi = SoloProfiler(hi).profile(ProfileRequest{wl::social_network()});
  // CPU utilisation of the root function grows with request rate... the
  // *per-execution* metrics are rate-independent, but tail latency rises
  // with load (queueing).
  EXPECT_GE(p_hi.solo_e2e_p99_s, p_lo.solo_e2e_p99_s * 0.9);
}

TEST_F(ProfilerFixture, ColdStartProfilesCaptureStartupPhase) {
  // §5.2: if invocations may hit cold starts, the predictor uses profiles
  // that include the startup phase. Profile the same function both ways:
  // the cold profile must show the startup's disk traffic and a lower
  // effective IPC than the warm profile.
  auto app = wl::float_operation();
  app.functions[0].cold_start_s = 1.0;
  SoloProfilerConfig warm_cfg = cfg;
  warm_cfg.include_cold_start = false;
  SoloProfilerConfig cold_cfg = cfg;
  cold_cfg.include_cold_start = true;
  const auto warm = SoloProfiler(warm_cfg).profile(ProfileRequest{app});
  const auto cold = SoloProfiler(cold_cfg).profile(ProfileRequest{app});
  const auto disk = static_cast<std::size_t>(Metric::kDiskIo);
  EXPECT_GT(cold.functions[0].metrics[disk],
            warm.functions[0].metrics[disk] + 1.0);
  EXPECT_LT(cold.functions[0].solo_ipc, warm.functions[0].solo_ipc);
  EXPECT_GT(cold.solo_jct_s, warm.solo_jct_s + 0.5);
}

TEST_F(ProfilerFixture, ProfileAllFillsStore) {
  SoloProfiler profiler(cfg);
  const auto store =
      profiler.profile_all(
      {ProfileRequest{wl::iperf(0.2)}, ProfileRequest{wl::float_operation()}});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.contains("iperf"));
  EXPECT_TRUE(store.contains("float-operation"));
}

TEST(LoadGenerator, RampShape) {
  const auto steps = LoadGenerator::ramp(10.0, 50.0, 5, 2.0);
  ASSERT_EQ(steps.size(), 5u);
  EXPECT_DOUBLE_EQ(steps.front().qps, 10.0);
  EXPECT_DOUBLE_EQ(steps.back().qps, 50.0);
  EXPECT_DOUBLE_EQ(steps[2].qps, 30.0);
  for (const auto& s : steps) EXPECT_DOUBLE_EQ(s.duration_s, 2.0);
}

TEST(LoadGenerator, StepsDriveRequests) {
  sim::PlatformConfig pc;
  pc.servers = 2;
  pc.server = sim::ServerConfig::socket();
  pc.instance.startup_cores = 0.0;
  sim::Platform platform(pc);
  auto app = wl::social_network();
  for (auto& fn : app.functions) fn.cold_start_s = 0.0;
  // Spread across both sockets so the high step stays under capacity.
  std::vector<std::size_t> placement(9);
  for (std::size_t i = 0; i < 9; ++i) placement[i] = i % 2;
  const std::size_t id = platform.deploy(app, placement);
  const double end =
      LoadGenerator::run_steps(platform, id, {{15.0, 5.0}, {45.0, 5.0}});
  platform.run_until(end + 2.0);
  const auto& st = platform.stats(id);
  const auto early = st.e2e_values_between(0.0, 5.0).size();
  const auto late = st.e2e_values_between(5.0, 10.0).size();
  EXPECT_GT(late, early * 2);
  // Load stops after the schedule.
  EXPECT_LT(st.e2e_values_between(end + 0.5, end + 2.0).size(), 3u);
}

TEST(LoadGenerator, ClosedLoopKeepsConcurrency) {
  sim::PlatformConfig pc;
  pc.servers = 1;
  pc.server = sim::ServerConfig::socket();
  pc.instance.startup_cores = 0.0;
  sim::Platform platform(pc);
  auto app = wl::float_operation();
  app.cls = wl::WorkloadClass::kLatencySensitive;  // drive like a service
  app.functions[0].cold_start_s = 0.0;
  app.functions[0].jitter_sigma = 0.0;
  const std::size_t id = platform.deploy(app, {0});
  const std::size_t issued =
      LoadGenerator::run_closed_loop(platform, id, 2, 10.0);
  // Two users share ONE single-concurrency replica, so requests serialize:
  // ~5 completions of the 2 s function in 10 s, plus in-flight ones.
  EXPECT_GE(issued, 4u);
  EXPECT_LE(issued, 9u);
}

}  // namespace
}  // namespace gsight::prof
