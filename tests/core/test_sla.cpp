#include "core/sla.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace gsight::core {
namespace {

// Synthetic knee data mirroring Figure 7: above ipc=1.0 latency follows
// exp(a - b*ipc) tightly; below the knee latency is wild.
std::vector<LatencyIpcPoint> knee_points(std::size_t n_above,
                                         std::size_t n_below,
                                         stats::Rng& rng) {
  std::vector<LatencyIpcPoint> pts;
  for (std::size_t i = 0; i < n_above; ++i) {
    const double ipc = rng.uniform(1.0, 2.0);
    pts.push_back({ipc, std::exp(-1.0 - 2.0 * ipc) *
                            rng.lognormal_median(1.0, 0.05)});
  }
  for (std::size_t i = 0; i < n_below; ++i) {
    const double ipc = rng.uniform(0.3, 1.0);
    // Saturated regime: latency decoupled from IPC — enormous scatter
    // (orders of magnitude) so correlation collapses until these points
    // are excluded.
    pts.push_back({ipc, std::exp(rng.normal(-2.0, 2.5))});
  }
  return pts;
}

TEST(LatencyIpcCurve, NeedsEnoughPoints) {
  EXPECT_THROW(LatencyIpcCurve(std::vector<LatencyIpcPoint>(3)),
               std::invalid_argument);
}

TEST(LatencyIpcCurve, FindsKneeNearRegimeBoundary) {
  stats::Rng rng(3);
  // Enough saturated points that correlation stays weak until they are
  // excluded, forcing the knee up toward the regime boundary.
  LatencyIpcCurve curve(knee_points(400, 120, rng));
  EXPECT_GT(curve.knee_ipc(), 0.5);
  EXPECT_LT(curve.knee_ipc(), 1.25);
  EXPECT_LT(curve.correlation_above_knee(), -0.8);  // strong negative
}

TEST(LatencyIpcCurve, FractionBelowKneeSmall) {
  stats::Rng rng(5);
  // ~7% of points below the knee (paper: 4.1%).
  LatencyIpcCurve curve(knee_points(930, 70, rng));
  EXPECT_LT(curve.fraction_below_knee(), 0.15);
}

TEST(LatencyIpcCurve, CleanDataHasNoKnee) {
  stats::Rng rng(7);
  LatencyIpcCurve curve(knee_points(300, 0, rng));
  // With no saturated regime the knee sits at the very bottom.
  EXPECT_LT(curve.fraction_below_knee(), 0.05);
  EXPECT_LT(curve.correlation_above_knee(), -0.9);
}

TEST(LatencyIpcCurve, LatencyPredictionAboveKnee) {
  stats::Rng rng(9);
  LatencyIpcCurve curve(knee_points(500, 40, rng));
  // At ipc = 1.5 the generative model says exp(-1 - 3).
  EXPECT_NEAR(curve.latency_for_ipc(1.5), std::exp(-4.0),
              std::exp(-4.0) * 0.25);
}

TEST(LatencyIpcCurve, IpcForLatencyInverts) {
  stats::Rng rng(11);
  LatencyIpcCurve curve(knee_points(500, 40, rng));
  for (double ipc : {1.2, 1.5, 1.8}) {
    const double lat = curve.latency_for_ipc(ipc);
    EXPECT_NEAR(curve.ipc_for_latency(lat), ipc, 1e-9);
  }
}

TEST(LatencyIpcCurve, IpcFloorNeverBelowKnee) {
  stats::Rng rng(13);
  LatencyIpcCurve curve(knee_points(500, 40, rng));
  // A huge latency target would naively map to a tiny IPC; the curve must
  // clamp to the knee because latency is unpredictable down there.
  EXPECT_GE(curve.ipc_for_latency(100.0), curve.knee_ipc() - 1e-9);
}

TEST(MakeSla, CombinesTargetAndFloor) {
  stats::Rng rng(15);
  LatencyIpcCurve curve(knee_points(500, 40, rng));
  const Sla sla = make_sla(0.02, curve);
  EXPECT_DOUBLE_EQ(sla.p99_latency_s, 0.02);
  EXPECT_GT(sla.ipc_floor, 0.0);
  // Tighter latency target => higher IPC floor.
  const Sla tight = make_sla(0.005, curve);
  EXPECT_GE(tight.ipc_floor, sla.ipc_floor);
}

TEST(LatencyIpcCurve, QuantileFloorGuardsScatter) {
  stats::Rng rng(19);
  // Above ipc=1.0: latency tight around 1.0x. Between 0.6 and 1.0:
  // median fine but heavy upper tail (the scatter an SLA must fear).
  std::vector<LatencyIpcPoint> pts;
  for (int i = 0; i < 400; ++i) {
    pts.push_back({rng.uniform(1.0, 1.5), rng.uniform(0.9, 1.1)});
  }
  for (int i = 0; i < 200; ++i) {
    const double lat = rng.chance(0.3) ? rng.uniform(5.0, 50.0)
                                       : rng.uniform(0.9, 1.2);
    pts.push_back({rng.uniform(0.6, 1.0), lat});
  }
  LatencyIpcCurve curve(pts);
  // The floor answers "above which IPC do `quantile` of windows meet the
  // target?". A p97 guarantee tolerates almost none of the band's 30%-bad
  // windows, so its floor sits near the band's top; p50 tolerates the
  // whole band (its median is fine). Stricter quantiles => higher floors.
  const double floor97 = curve.ipc_for_latency_quantile(2.0, 0.97);
  const double floor90 = curve.ipc_for_latency_quantile(2.0, 0.90);
  const double floor50 = curve.ipc_for_latency_quantile(2.0, 0.50);
  EXPECT_GE(floor97, 0.85);
  EXPECT_GE(floor97, floor90 - 1e-9);
  EXPECT_GE(floor90, floor50 - 1e-9);
  // Floors never drop below the knee: latency is unpredictable there, so
  // even a lenient p50 target is clamped to it.
  EXPECT_GE(floor50, curve.knee_ipc() - 1e-9);
}

TEST(LatencyIpcCurve, QuantileFloorInfeasibleFallsBackToKnee) {
  stats::Rng rng(23);
  std::vector<LatencyIpcPoint> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({rng.uniform(0.5, 1.5), rng.uniform(10.0, 20.0)});
  }
  LatencyIpcCurve curve(pts);
  // No threshold achieves p75 latency <= 1.0 anywhere.
  EXPECT_DOUBLE_EQ(curve.ipc_for_latency_quantile(1.0, 0.75),
                   curve.knee_ipc());
}

TEST(LatencyIpcCurve, PointsSortedByIpc) {
  stats::Rng rng(17);
  LatencyIpcCurve curve(knee_points(100, 10, rng));
  const auto& pts = curve.points();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].ipc, pts[i - 1].ipc);
  }
}

}  // namespace
}  // namespace gsight::core
