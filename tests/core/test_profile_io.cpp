#include "profiling/profile_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace gsight::prof {
namespace {

AppProfile sample_profile(const std::string& name) {
  AppProfile p;
  p.app_name = name;
  p.cls = wl::WorkloadClass::kLatencySensitive;
  p.solo_e2e_p99_s = 0.0711;
  p.solo_e2e_mean_s = 0.021;
  p.solo_mean_ipc = 1.2345678901234567;
  for (int i = 0; i < 3; ++i) {
    FunctionProfile fp;
    fp.app_name = name;
    fp.fn_name = "fn with spaces " + std::to_string(i);
    fp.solo_duration_s = 0.004 * (i + 1);
    fp.solo_mean_latency_s = 0.005;
    fp.solo_p99_latency_s = 0.009;
    fp.solo_ipc = 1.5 + i;
    fp.mem_alloc_gb = 0.25;
    fp.demand.cores = 1.5;
    fp.demand.net_mbps = 80.0;
    for (std::size_t k = 0; k < kMetricCount; ++k) {
      fp.metrics[k] = 0.1 * static_cast<double>(k) + i;
    }
    p.functions.push_back(fp);
  }
  return p;
}

TEST(ProfileIo, RoundTripSingleProfile) {
  const auto original = sample_profile("round trip app");
  std::stringstream buffer;
  write_profile(buffer, original);
  const auto loaded = read_profile(buffer);
  EXPECT_EQ(loaded.app_name, original.app_name);
  EXPECT_EQ(loaded.cls, original.cls);
  EXPECT_DOUBLE_EQ(loaded.solo_e2e_p99_s, original.solo_e2e_p99_s);
  EXPECT_DOUBLE_EQ(loaded.solo_mean_ipc, original.solo_mean_ipc);
  ASSERT_EQ(loaded.functions.size(), original.functions.size());
  for (std::size_t i = 0; i < loaded.functions.size(); ++i) {
    const auto& a = loaded.functions[i];
    const auto& b = original.functions[i];
    EXPECT_EQ(a.fn_name, b.fn_name);
    EXPECT_DOUBLE_EQ(a.solo_duration_s, b.solo_duration_s);
    EXPECT_DOUBLE_EQ(a.demand.cores, b.demand.cores);
    EXPECT_DOUBLE_EQ(a.demand.net_mbps, b.demand.net_mbps);
    for (std::size_t k = 0; k < kMetricCount; ++k) {
      EXPECT_DOUBLE_EQ(a.metrics[k], b.metrics[k]) << i << "," << k;
    }
  }
}

TEST(ProfileIo, RejectsCorruptHeader) {
  std::stringstream buffer("not-a-profile at all");
  EXPECT_THROW(read_profile(buffer), std::runtime_error);
}

TEST(ProfileIo, RejectsTruncatedBody) {
  const auto original = sample_profile("x");
  std::stringstream buffer;
  write_profile(buffer, original);
  std::string text = buffer.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW(read_profile(truncated), std::runtime_error);
}

TEST(ProfileIo, StoreRoundTripViaFile) {
  ProfileStore store;
  store.put(sample_profile("alpha"));
  store.put(sample_profile("beta@40"));  // composite QPS key survives
  const std::string path = "/tmp/gsight_store_test.txt";
  save_store(store, path);
  const auto loaded = load_store(path);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded.contains("alpha"));
  EXPECT_TRUE(loaded.contains("beta@40"));
  EXPECT_DOUBLE_EQ(loaded.get("alpha").solo_mean_ipc,
                   store.get("alpha").solo_mean_ipc);
  EXPECT_EQ(store_keys(loaded),
            (std::vector<std::string>{"alpha", "beta@40"}));
  std::remove(path.c_str());
}

TEST(ProfileIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_store("/tmp/definitely_missing_gsight_store.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace gsight::prof
